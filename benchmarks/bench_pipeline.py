"""E12 — the staged pipeline: cold vs warm artifact store, per stage.

Cold rows rebuild every artifact (a fresh engine per round, or a store
with caching disabled); warm rows replay the same checks against a
populated :class:`repro.pipeline.ArtifactStore`.  The per-stage wall
times from the trace-fed :class:`EngineStats` timers are recorded for
each row, and the cold/warm ratio of the depth-3 workload is the
``cold_over_warm`` extra the regression gate watches: the content-
addressed store must keep replayed checks at least 2x faster than cold
ones, or memoization has silently broken.
"""

from time import perf_counter

import pytest

from repro.engine import ContainmentEngine
from repro.workloads.generators import random_coql_deep

from conftest import record, record_effort

SCHEMA = {"r": ("a", "b"), "s": ("k", "b")}

DEPTH3 = (
    "select [a: x.a,"
    " mids: select [k: y.k,"
    "  leaves: select [b: z.b] from z in s where z.k = y.k]"
    " from y in s where y.k = x.a]"
    " from x in r"
)


def _workload():
    queries = [DEPTH3] + [random_coql_deep(seed=s, depth=3) for s in range(3)]
    return [(a, b) for a in queries for b in queries]


def _run_workload(engine, pairs):
    from repro.errors import ReproError

    verdicts = []
    for sup, sub in pairs:
        try:
            verdicts.append(engine.contains(sup, sub, SCHEMA))
        except ReproError:
            verdicts.append(None)
    return verdicts


def _stage_times(engine):
    return {
        "time_" + stage: seconds
        for stage, seconds in sorted(engine.stats().timers.items())
    }


def test_cold_pipeline_depth3(benchmark):
    """Every round pays the full parse→…→decide pipeline (no store)."""
    pairs = _workload()

    def cold():
        return _run_workload(ContainmentEngine(retain_trace=False), pairs)

    verdicts = benchmark(cold)
    # The engine installs its own SearchCounters sink, so read the
    # deterministic search effort from a probe engine's stats.
    probe = ContainmentEngine(retain_trace=False)
    _run_workload(probe, pairs)
    record(benchmark, experiment="E12", mode="cold", pairs=len(pairs),
           decided=sum(v is not None for v in verdicts),
           **_stage_times(probe))
    record_effort(benchmark, probe.stats().search)


def test_warm_pipeline_depth3(benchmark):
    """Rounds replay the workload against a fully warmed store."""
    pairs = _workload()
    engine = ContainmentEngine(retain_trace=False)
    _run_workload(engine, pairs)  # warm the store
    engine.reset_stats()

    verdicts = benchmark(lambda: _run_workload(engine, pairs))
    engine.stats().search.reset()
    _run_workload(engine, pairs)
    effort = engine.stats().search
    store = engine.store()
    rates = {
        "hit_rate_" + kind: round(rate, 4)
        for kind, rate in store.hit_rates().items()
        if rate is not None
    }
    record(benchmark, experiment="E12", mode="warm", pairs=len(pairs),
           decided=sum(v is not None for v in verdicts),
           **_stage_times(engine), **rates)
    record_effort(benchmark, effort)


def test_cold_over_warm_ratio(benchmark):
    """The regression-gated ratio: warm replay vs cold run, same pairs.

    Measured outside the timing rounds with one cold and one warm pass
    (machine-local, but both halves on the same machine in the same
    process, so the ratio itself is stable).  The gate in
    ``check_regression.py`` flags a fresh ``cold_over_warm`` below 2.0.
    """
    pairs = _workload()

    start = perf_counter()
    cold_engine = ContainmentEngine(retain_trace=False)
    _run_workload(cold_engine, pairs)
    cold_s = perf_counter() - start

    warm_engine = ContainmentEngine(retain_trace=False)
    _run_workload(warm_engine, pairs)
    start = perf_counter()
    _run_workload(warm_engine, pairs)
    warm_s = perf_counter() - start

    ratio = cold_s / warm_s if warm_s else float("inf")
    benchmark(lambda: _run_workload(warm_engine, pairs))
    record(benchmark, experiment="E12", cold_s=round(cold_s, 6),
           warm_s=round(warm_s, 6), cold_over_warm=round(ratio, 2))
    assert ratio >= 2.0, (
        "warm replay no longer at least 2x faster than cold: %.2fx" % ratio
    )


@pytest.mark.parametrize("stage", ["prepare", "obligation_verdicts",
                                   "nonempty", "targets"])
def test_single_kind_ablation(benchmark, stage):
    """Warm runs with exactly one artifact kind disabled: how much each
    cache contributes (larger mean = more load-bearing kind)."""
    from repro.pipeline import ArtifactStore

    sizes = {"prepare": 512, "obligation_verdicts": 8192,
             "nonempty": 8192, "targets": 1024}
    sizes[stage] = 0
    pairs = _workload()
    engine = ContainmentEngine(store=ArtifactStore(limits=sizes),
                               retain_trace=False)
    _run_workload(engine, pairs)  # warm whatever is enabled

    benchmark(lambda: _run_workload(engine, pairs))
    record(benchmark, experiment="E12", disabled_kind=stage,
           pairs=len(pairs))
