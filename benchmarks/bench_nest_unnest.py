"""E6 — equivalence of nest/unnest sequences (the [24] question).

Scaling over pipeline length; every instance is inside the
atomic-attribute fragment, where the paper's answer applies
(NP-complete via the empty-set-free equivalence test).
"""

import pytest

from repro.objects.types import RecordType, ATOM
from repro.algebra import Pipeline, pipelines_equivalent
from repro.algebra.nest_unnest import pipeline_contained

from conftest import record

SCHEMA = {"r": RecordType({"a": ATOM, "b": ATOM, "c": ATOM})}


def _roundtrips(count):
    steps = []
    for i in range(count):
        attr = ("a", "b", "c")[i % 3]
        steps.append(("nest", (attr,), "g%d" % i))
        steps.append(("unnest", "g%d" % i))
    return Pipeline("r", steps)


@pytest.mark.parametrize("roundtrips", [1, 2, 3, 4])
def test_roundtrip_scaling(benchmark, roundtrips):
    pipeline = _roundtrips(roundtrips)
    identity = Pipeline("r", [])
    verdict = benchmark(
        lambda: pipelines_equivalent(pipeline, identity, SCHEMA)
    )
    record(benchmark, experiment="E6", roundtrips=roundtrips, verdict=verdict)
    assert verdict


@pytest.mark.parametrize("roundtrips", [1, 2, 3])
def test_nested_output_scaling(benchmark, roundtrips):
    """Pipelines ending in a nest: nested output types."""
    base = _roundtrips(roundtrips)
    with_nest = Pipeline("r", list(base.steps) + [("nest", ("b",), "final")])
    reference = Pipeline("r", [("nest", ("b",), "final")])
    verdict = benchmark(
        lambda: pipelines_equivalent(with_nest, reference, SCHEMA)
    )
    record(benchmark, experiment="E6", roundtrips=roundtrips, verdict=verdict)
    assert verdict


def test_renest_idempotence(benchmark):
    once = Pipeline("r", [("nest", ("b", "c"), "g")])
    thrice = Pipeline(
        "r",
        [("nest", ("b", "c"), "g"), ("unnest", "g"), ("nest", ("b", "c"), "g")],
    )
    verdict = benchmark(lambda: pipelines_equivalent(once, thrice, SCHEMA))
    record(benchmark, experiment="E6", verdict=verdict)
    assert verdict


def test_pipeline_containment(benchmark):
    identity = Pipeline("r", [])
    roundtrip = _roundtrips(2)
    verdict = benchmark(
        lambda: pipeline_contained(identity, roundtrip, SCHEMA)
    )
    record(benchmark, experiment="E6", verdict=verdict)
    assert verdict
