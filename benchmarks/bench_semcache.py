"""E14 — the semantic view-cache under a Zipf workload.

Replays the seeded workload simulator (company scenario, mild churn)
through :class:`repro.semcache.SemanticCache` and records the hit-rate
trajectory, then benchmarks the steady-state hot-query lookup (the
NF-identity fast path) and a catalog-minimization pass over a catalog
salted with redundant (alpha-renamed) views.

The recorded ``warm_hit_rate`` is deterministic for the pinned seed —
``check_regression.py`` gates on it (a cache that stops hitting is a
correctness event, not a tuning regression) alongside the usual p99.
"""

from conftest import record

from repro.semcache import CatalogMinimizer, SemanticCache
from repro.workloads import WorkloadSimulator, company_scenario

SEED = 11
STEPS = 240


def test_semcache_zipf_workload(benchmark):
    simulator = WorkloadSimulator(
        company_scenario(seed=SEED), steps=STEPS, seed=SEED,
        zipf_s=1.2, churn=0.02, max_views=24,
    )
    summary = simulator.run()
    cache = simulator.cache
    # The hottest pool entry: steady-state lookups ride the NF-identity
    # fast path, which is what a warm cache serves most.
    hot_name, hot_query = simulator.pool()[0]
    benchmark(lambda: cache.lookup(hot_query))
    record(
        benchmark,
        experiment="E14",
        scenario=summary["scenario"],
        seed=SEED,
        steps=summary["steps"],
        pool=summary["pool"],
        hot_query=hot_name,
        hit_rate=round(summary["hit_rate"], 4),
        warm_hit_rate=round(summary["warm_hit_rate"], 4),
        exact=summary["sources"]["exact"],
        residual=summary["sources"]["residual"],
        miss=summary["sources"]["miss"],
        admitted=summary["admitted"],
        evicted=summary["evicted"],
        churn_evictions=summary["churn_evictions"],
        prefetch_hints=summary["prefetch_hints"],
        p50_ms=round(summary["p50_ms"], 4),
        p99_ms=round(summary["p99_ms"], 4),
    )


def test_semcache_catalog_minimize(benchmark):
    scenario = company_scenario(seed=SEED)
    database = scenario.database()
    cache = SemanticCache(scenario.schema, database, max_views=32)
    for name, text in sorted(scenario.queries.items()):
        cache.add_view(name, text)
    # Salt the catalog with alpha-renamed duplicates the minimizer must
    # recognize as redundant (NF-identity makes them equivalent).
    for index, (name, text) in enumerate(sorted(scenario.queries.items())):
        renamed = text.replace("x in", "xx in").replace("x.", "xx.")
        cache.add_view("dup%d" % index, renamed)
    minimizer = CatalogMinimizer(cache.catalog())
    report = benchmark(lambda: minimizer.plan())
    record(
        benchmark,
        experiment="E14",
        views=len(cache.views()),
        kept=len(report.kept),
        removed=len(report.removed),
        undecided=len(report.undecided),
    )
