"""E13 — the containment service: cold vs warm vs cross-process warm.

Three rows, all driving a real :class:`BackgroundService` over HTTP
with the stdlib :class:`ServiceClient`:

* **cold** — a fresh service over a fresh database answers the workload
  for the first time (every artifact computed from scratch).
* **warm** — the same service answers the same workload again from its
  in-memory tier; per-request p50/p99 latencies are recorded, and the
  p99 is the tail-latency extra the regression gate watches.
* **cross-process warm** — the service is *stopped* and a brand-new one
  is started over the same SQLite store; its first answers must come
  from the persistent tier (``cross_process_hit_rate`` > 0, asserted
  here and recorded for the gate), which is the whole point of the
  tier: a restart does not refrigerate the cache.
"""

from time import perf_counter

from repro.service import BackgroundService, ServiceClient

from conftest import record

SCHEMA = {"r": ("a", "b"), "s": ("k", "b")}

LINKED = (
    "select [a: x.a, kids: select [b: y.b] from y in r where y.a = x.a]"
    " from x in r"
)
UNLINKED = (
    "select [a: x.a, kids: select [b: y.b] from y in s where y.k = x.a]"
    " from x in r"
)
WIDER = "select [a: x.a, kids: select [b: y.b] from y in s] from x in r"
FLAT = "select [v: x.a] from x in r"

QUERIES = [LINKED, UNLINKED, WIDER, FLAT]
PAIRS = [(a, b) for a in QUERIES for b in QUERIES]


def _run_workload(client):
    verdicts = []
    for sup, sub in PAIRS:
        try:
            verdicts.append(client.contain(sup, sub, SCHEMA))
        except Exception:
            verdicts.append(None)  # incomparable pairs answer 422
    return verdicts


def _percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _latencies_ms(client, rounds=5):
    samples = []
    for __ in range(rounds):
        for sup, sub in PAIRS:
            start = perf_counter()
            try:
                client.contain(sup, sub, SCHEMA)
            except Exception:
                pass
            samples.append((perf_counter() - start) * 1000.0)
    return samples


def test_service_cold_then_warm(benchmark, tmp_path):
    """One service: first pass cold, timed rounds warm, p50/p99 tails."""
    path = str(tmp_path / "bench.db")
    with BackgroundService(store_path=path) as svc:
        with ServiceClient(svc.host, svc.port) as client:
            start = perf_counter()
            verdicts = _run_workload(client)  # cold: compute everything
            cold_s = perf_counter() - start

            start = perf_counter()
            _run_workload(client)  # warm: in-memory tier
            warm_s = perf_counter() - start

            samples = _latencies_ms(client)
            benchmark(lambda: _run_workload(client))
            client.flush()
            stats = client.stats()

    ratio = cold_s / warm_s if warm_s else float("inf")
    record(
        benchmark, experiment="E13", mode="cold_then_warm",
        pairs=len(PAIRS),
        decided=sum(v is not None for v in verdicts),
        cold_s=round(cold_s, 6), warm_s=round(warm_s, 6),
        service_cold_over_warm=round(ratio, 3),
        p50_ms=round(_percentile(samples, 0.50), 4),
        p99_ms=round(_percentile(samples, 0.99), 4),
        batches=stats["service"]["batches"],
    )


def test_service_cross_process_warm_start(benchmark, tmp_path):
    """Restart over the same store: the first answers arrive warm."""
    path = str(tmp_path / "bench.db")
    with BackgroundService(store_path=path) as svc:
        with ServiceClient(svc.host, svc.port) as client:
            start = perf_counter()
            _run_workload(client)
            cold_s = perf_counter() - start
            client.flush()

    # A brand-new service (fresh engine, fresh memory tier) over the
    # surviving database: this is a process restart as far as every
    # cache above SQLite is concerned.
    with BackgroundService(store_path=path, preload=True) as svc:
        with ServiceClient(svc.host, svc.port) as client:
            start = perf_counter()
            verdicts = _run_workload(client)
            restart_s = perf_counter() - start
            stats = client.stats()
            samples = _latencies_ms(client, rounds=2)
            benchmark(lambda: _run_workload(client))

    rates = [
        rate for rate in stats["store"]["hit_rates"].values()
        if rate is not None
    ]
    hit_rate = max(rates) if rates else 0.0
    # The acceptance bar: a restarted service must actually hit the
    # persistent tier, not silently recompute.
    assert hit_rate > 0, "restarted service never hit the persistent tier"
    assert svc.service.preloaded > 0

    ratio = cold_s / restart_s if restart_s else float("inf")
    record(
        benchmark, experiment="E13", mode="cross_process_warm",
        pairs=len(PAIRS),
        decided=sum(v is not None for v in verdicts),
        cold_s=round(cold_s, 6), restart_s=round(restart_s, 6),
        cold_over_restart=round(ratio, 3),
        cross_process_hit_rate=round(hit_rate, 4),
        preloaded=svc.service.preloaded,
        p50_ms=round(_percentile(samples, 0.50), 4),
        p99_ms=round(_percentile(samples, 0.99), 4),
    )
