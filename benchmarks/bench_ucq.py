"""E17 — union families, the Sagiv–Yannakakis reduction, and the chase.

Two row groups, both deterministic for ``check_regression.py``:

* **union width sweep** — ``sub`` and ``sup`` unions of width W where
  every sub branch is covered by the *first* sup branch.  The inner
  short-circuit of the reduction must therefore decide exactly W branch
  pairs no matter how wide the sup family is; the recorded
  ``branches_decided`` (the cold-engine ``union_branches_decided``
  delta) is gated against ``union_width`` — more decisions than
  branches on a contained pair means the short-circuit broke.  The
  benchmarked body is the warm repeat, i.e. the ``branch_verdict``
  memo-table path a workload actually rides.

* **chase on/off** — the committed flip pair (``r[a] -> s[a]`` makes
  the r-projection contained in the s-projection) measured with the
  dependency installed and without, plus a non-contained two-variable
  sup whose witness escalation re-reads the chase artifact within one
  cold check.  The recorded ``chase_hit_rate`` must stay positive: the
  replay is deterministic, so a zero means the content-addressed chase
  memoization stopped firing.
"""

import pytest

from conftest import record

from repro.constraints import parse_constraint
from repro.engine import ContainmentEngine

SCHEMA = {"r": ("a", "b"), "s": ("a", "b")}
DEP = parse_constraint("r[a] -> s[a]")

WIDTHS = (1, 2, 4, 8)

FLIP_SUP = "select [a: y.a] from y in s"
FLIP_SUB = "select [a: x.a] from x in r"
ESCALATING_SUP = "select [a: y.a] from y in s, z in s where y.a = z.b"


def sub_branch(index):
    """The universal r-projection joined with *index* extra copies of r
    — contained in the bare projection, distinct per index."""
    extras = "".join(", y%d in r" % i for i in range(index))
    return "select [a: x.a] from x in r%s" % extras


def sup_branch(index):
    """Decoy sup branches over s that cover no sub branch."""
    extras = "".join(", w%d in s" % i for i in range(index))
    return "select [a: z.b] from z in s%s" % extras


def union_of(branches):
    if len(branches) == 1:
        return branches[0]
    return " union ".join("(%s)" % b for b in branches)


def chase_counters(engine):
    counters = engine.stats().counters
    hits = counters.get("chase_hits", 0)
    misses = counters.get("chase_misses", 0)
    rate = hits / (hits + misses) if hits + misses else 0.0
    return hits, misses, rate


@pytest.mark.parametrize("width", WIDTHS)
def test_union_width(benchmark, width):
    sub = union_of([sub_branch(i) for i in range(width)])
    sup = union_of([FLIP_SUB] + [sup_branch(i) for i in range(width - 1)])
    engine = ContainmentEngine()
    before = engine.stats().counter("union_branches_decided")
    verdict = engine.contains(sup, sub, SCHEMA)
    decided = engine.stats().counter("union_branches_decided") - before
    assert verdict is True
    benchmark(lambda: engine.contains(sup, sub, SCHEMA))
    record(
        benchmark,
        experiment="E17",
        union_width=width,
        sup_width=width,
        branches_decided=decided,
        contained=True,
        branch_verdict_entries=engine.cache_sizes().get("branch_verdict", 0),
    )


def test_chase_off_baseline(benchmark):
    engine = ContainmentEngine()
    verdict = engine.contains(FLIP_SUP, FLIP_SUB, SCHEMA)
    assert verdict is False
    benchmark(lambda: engine.contains(FLIP_SUP, FLIP_SUB, SCHEMA))
    hits, misses, __ = chase_counters(engine)
    record(
        benchmark,
        experiment="E17",
        pair="flip",
        constraints="off",
        contained=False,
        chase_hits=hits,
        chase_misses=misses,
    )


def test_chase_on_flip(benchmark):
    engine = ContainmentEngine(constraints=(DEP,))
    verdict = engine.contains(FLIP_SUP, FLIP_SUB, SCHEMA)
    assert verdict is True
    benchmark(lambda: engine.contains(FLIP_SUP, FLIP_SUB, SCHEMA))
    hits, misses, __ = chase_counters(engine)
    record(
        benchmark,
        experiment="E17",
        pair="flip",
        constraints=repr(DEP),
        contained=True,
        chase_hits=hits,
        chase_misses=misses,
    )


def test_chase_artifact_warm_replay(benchmark):
    # The two-variable sup forces a witness escalation; the flat sub's
    # canonical witness has the same ground atoms at every witness
    # count, so the escalated rebuild re-reads the chase artifact —
    # a warm hit within a single cold check.
    engine = ContainmentEngine(constraints=(DEP,))
    verdict = engine.contains(ESCALATING_SUP, FLIP_SUB, SCHEMA)
    assert verdict is False
    hits, misses, rate = chase_counters(engine)
    assert hits >= 1, "witness escalation no longer replays the chase"
    benchmark(lambda: engine.contains(ESCALATING_SUP, FLIP_SUB, SCHEMA))
    record(
        benchmark,
        experiment="E17",
        pair="escalating",
        constraints=repr(DEP),
        contained=False,
        chase_hits=hits,
        chase_misses=misses,
        chase_hit_rate=round(rate, 4),
        witness_escalations=engine.stats().counter("witness_escalations"),
    )
