"""E3 — simulation of conjunctive queries with grouping (NP-complete).

Measures:

* scaling over nesting depth (the d+1 quantifier alternations);
* scaling over body size at fixed depth;
* the witness-copy ablation (k = 1 vs the completeness bound);
* the exponential wall on 3-colorability reductions — the hardness side
  of the theorem (simulation generalizes containment).
"""

import pytest

from repro.grouping import is_simulated, simulation_certificate
from repro.workloads import chain_grouping_query, random_grouping_query
from repro.complexity import coloring_to_simulation, random_graph

from conftest import record


@pytest.mark.parametrize("depth", [1, 2, 3, 4])
def test_depth_scaling(benchmark, depth):
    """Reflexive simulation of a depth-d chain grouping query."""
    query = chain_grouping_query(depth)
    other = query.rename_apart("_p")
    verdict = benchmark(lambda: is_simulated(query, other))
    record(benchmark, experiment="E3", depth=depth, verdict=verdict)
    assert verdict


@pytest.mark.parametrize("atoms", [1, 2, 3, 4])
def test_body_size_scaling(benchmark, atoms):
    schema = {"r": 2, "s": 2}
    query = random_grouping_query(
        schema, seed=atoms, depth=2, atoms_per_node=atoms
    )
    other = query.rename_apart("_p")
    verdict = benchmark(lambda: is_simulated(query, other))
    record(benchmark, experiment="E3", atoms_per_node=atoms, verdict=verdict)
    assert verdict


@pytest.mark.parametrize("witnesses", [1, 2, 4, None])
def test_witness_ablation(benchmark, witnesses):
    """Certificate search with few witness copies vs the completeness
    bound (None).  Fewer witnesses: smaller target, may miss certificates
    in general (not on this instance)."""
    query = chain_grouping_query(2)
    other = query.rename_apart("_p")
    verdict = benchmark(
        lambda: is_simulated(query, other, witnesses=witnesses)
    )
    record(
        benchmark,
        experiment="E3-ablation",
        witnesses="bound" if witnesses is None else witnesses,
        verdict=verdict,
    )


@pytest.mark.parametrize("nodes,edges", [(5, 7), (7, 11), (9, 15), (11, 19)])
def test_coloring_hardness(benchmark, nodes, edges):
    """3-colorability as simulation: the NP-hard core.  Verdicts vary
    with the instance; times grow sharply with graph size on non-
    colorable instances."""
    graph = random_graph(nodes, edges, seed=nodes)
    sub, sup = coloring_to_simulation(graph)
    verdict = benchmark(lambda: is_simulated(sub, sup, witnesses=1))
    record(benchmark, experiment="E3", nodes=nodes, edges=len(graph),
           colorable=verdict)


def test_certificate_construction(benchmark):
    """End-to-end certificate object construction (not just the verdict)."""
    query = chain_grouping_query(3)
    other = query.rename_apart("_p")
    certificate = benchmark(lambda: simulation_certificate(query, other))
    record(benchmark, experiment="E3",
           witnesses=certificate.witnesses if certificate else None)
    assert certificate is not None
