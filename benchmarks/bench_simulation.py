"""E3 — simulation of conjunctive queries with grouping (NP-complete).

Measures:

* scaling over nesting depth (the d+1 quantifier alternations);
* scaling over body size at fixed depth;
* the witness-copy ablation (k = 1 vs the completeness bound);
* the exponential wall on 3-colorability reductions — the hardness side
  of the theorem (simulation generalizes containment);
* E11 — the ordering ablation: the whole decision procedure run under
  each homomorphism-search strategy (via :func:`use_ordering`), on a
  benign reflexive check and on the padded pigeonhole adversary where
  the propagating engine's component decomposition wins.
"""

import pytest

from repro.cq.terms import Var, Atom
from repro.cq.homomorphism import ORDERINGS, use_ordering
from repro.grouping import (
    GroupingNode,
    GroupingQuery,
    is_simulated,
    simulation_certificate,
)
from repro.workloads import chain_grouping_query, random_grouping_query
from repro.complexity import coloring_to_simulation, random_graph

from conftest import record, record_effort


@pytest.mark.parametrize("depth", [1, 2, 3, 4])
def test_depth_scaling(benchmark, depth):
    """Reflexive simulation of a depth-d chain grouping query."""
    query = chain_grouping_query(depth)
    other = query.rename_apart("_p")
    verdict = benchmark(lambda: is_simulated(query, other))
    record(benchmark, experiment="E3", depth=depth, verdict=verdict)
    assert verdict


@pytest.mark.parametrize("atoms", [1, 2, 3, 4])
def test_body_size_scaling(benchmark, atoms):
    schema = {"r": 2, "s": 2}
    query = random_grouping_query(
        schema, seed=atoms, depth=2, atoms_per_node=atoms
    )
    other = query.rename_apart("_p")
    verdict = benchmark(lambda: is_simulated(query, other))
    record(benchmark, experiment="E3", atoms_per_node=atoms, verdict=verdict)
    assert verdict


@pytest.mark.parametrize("witnesses", [1, 2, 4, None])
def test_witness_ablation(benchmark, witnesses):
    """Certificate search with few witness copies vs the completeness
    bound (None).  Fewer witnesses: smaller target, may miss certificates
    in general (not on this instance)."""
    query = chain_grouping_query(2)
    other = query.rename_apart("_p")
    verdict = benchmark(
        lambda: is_simulated(query, other, witnesses=witnesses)
    )
    record(
        benchmark,
        experiment="E3-ablation",
        witnesses="bound" if witnesses is None else witnesses,
        verdict=verdict,
    )


@pytest.mark.parametrize("nodes,edges", [(5, 7), (7, 11), (9, 15), (11, 19)])
def test_coloring_hardness(benchmark, nodes, edges):
    """3-colorability as simulation: the NP-hard core.  Verdicts vary
    with the instance; times grow sharply with graph size on non-
    colorable instances."""
    graph = random_graph(nodes, edges, seed=nodes)
    sub, sup = coloring_to_simulation(graph)
    verdict = benchmark(lambda: is_simulated(sub, sup, witnesses=1))
    record(benchmark, experiment="E3", nodes=nodes, edges=len(graph),
           colorable=verdict)


def padded_clique_grouping(n, rays, name):
    """A flat grouping query whose body is the K_n clique padded with an
    independent star — the E11 adversary lifted to the simulation
    setting (K_{n+1} ⊴ K_n is pigeonhole-refuted)."""
    atoms = tuple(
        Atom("e", (Var("V%d" % i), Var("V%d" % j)))
        for i in range(n)
        for j in range(n)
        if i != j
    ) + tuple(
        Atom("p", (Var("U0"), Var("U%d" % i))) for i in range(1, rays + 1)
    )
    return GroupingQuery(
        GroupingNode("", atoms, {"c0": Var("V0")}, (), ()), name
    )


@pytest.mark.parametrize("ordering", list(ORDERINGS))
def test_ordering_ablation_reflexive(benchmark, ordering, search_effort):
    """E11 — a benign reflexive simulation under each strategy."""
    query = chain_grouping_query(3)
    other = query.rename_apart("_p")

    def run():
        with use_ordering(ordering):
            return is_simulated(query, other)

    verdict, effort = search_effort(run)
    benchmark(run)
    record(benchmark, experiment="E11", suite="reflexive",
           ordering=ordering, verdict=verdict)
    record_effort(benchmark, effort)
    assert verdict


@pytest.mark.parametrize("ordering", list(ORDERINGS))
def test_ordering_ablation_adversary(benchmark, ordering, search_effort):
    """E11 — the padded pigeonhole adversary as a simulation check."""
    # K6 ⊴? K5: large enough that search (not pipeline overhead)
    # dominates, so the kernel gate measures the kernel.
    sub = padded_clique_grouping(5, 2, "k5")
    sup = padded_clique_grouping(6, 2, "k6")

    def run():
        with use_ordering(ordering):
            return is_simulated(sub, sup, witnesses=1)

    verdict, effort = search_effort(run)
    benchmark(run)
    record(benchmark, experiment="E11", suite="adversary",
           ordering=ordering, verdict=verdict)
    record_effort(benchmark, effort)
    assert not verdict


def test_certificate_construction(benchmark):
    """End-to-end certificate object construction (not just the verdict)."""
    query = chain_grouping_query(3)
    other = query.rename_apart("_p")
    certificate = benchmark(lambda: simulation_certificate(query, other))
    record(benchmark, experiment="E3",
           witnesses=certificate.witnesses if certificate else None)
    assert certificate is not None
