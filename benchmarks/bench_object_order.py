"""E7 (substrate) — the containment order on complex objects.

Two implementations of the same preorder: the structural recursion
(``dominated``) and graph simulation via iterated refinement
(``value_simulated``, the [6, 5] view).  The benchmark charts both over
growing nested values and asserts they agree — the coincidence the paper
states, measured.
"""

import random

import pytest

from repro.objects import Record, CSet, dominated, value_simulated

from conftest import record


def _random_value(rng, depth):
    if depth == 0 or rng.random() < 0.3:
        return rng.randrange(4)
    if rng.random() < 0.5:
        return Record(
            a=_random_value(rng, depth - 1), b=_random_value(rng, depth - 1)
        )
    return CSet([_random_value(rng, depth - 1) for __ in range(rng.randint(0, 3))])


def _pair(seed, depth):
    rng = random.Random(seed)
    low = _random_value(rng, depth)
    high = _random_value(rng, depth)
    return low, high


@pytest.mark.parametrize("depth", [2, 3, 4, 5])
def test_structural_order(benchmark, depth):
    pairs = [_pair(seed, depth) for seed in range(50)]

    def run():
        return sum(1 for low, high in pairs if dominated(low, high))

    positives = benchmark(run)
    record(benchmark, experiment="E7", depth=depth, positives=positives)


@pytest.mark.parametrize("depth", [2, 3, 4, 5])
def test_graph_simulation_order(benchmark, depth):
    pairs = [_pair(seed, depth) for seed in range(50)]

    def run():
        return sum(1 for low, high in pairs if value_simulated(low, high))

    positives = benchmark(run)
    expected = sum(1 for low, high in pairs if dominated(low, high))
    record(benchmark, experiment="E7", depth=depth, positives=positives)
    assert positives == expected  # the coincidence theorem, at scale


@pytest.mark.parametrize("width", [4, 16, 64])
def test_wide_set_domination(benchmark, width):
    low = CSet([Record(k=i, s=CSet([i])) for i in range(width)])
    high = CSet([Record(k=i, s=CSet([i, i + 1])) for i in range(width)])
    verdict = benchmark(lambda: dominated(low, high))
    record(benchmark, experiment="E7", width=width, verdict=verdict)
    assert verdict
