"""E7 — the COQL substrate itself: evaluation of the worked examples.

Interpreter throughput over growing databases, and the encoder path
(grouping-query evaluation + value reconstruction) against it — both
must produce identical nested answers, so this doubles as a correctness
gate at benchmark scale.
"""

import random

import pytest

from repro.objects import Database
from repro.coql import parse_coql, evaluate_coql
from repro.coql.containment import prepare
from repro.coql.encode import reconstruct_value
from repro.grouping.semantics import node_groups

from conftest import record

SCHEMA = {"r": ("a", "b"), "s": ("k", "b")}

QUERY = (
    "select [a: x.a, kids: select [b: y.b] from y in s where y.k = x.a]"
    " from x in r"
)


def _database(rows, seed=0):
    rng = random.Random(seed)
    return Database.from_dict(
        {
            "r": [
                {"a": rng.randrange(rows), "b": rng.randrange(3)}
                for __ in range(rows)
            ],
            "s": [
                {"k": rng.randrange(rows), "b": rng.randrange(5)}
                for __ in range(rows * 2)
            ],
        }
    )


@pytest.mark.parametrize("rows", [10, 30, 100])
def test_interpreter_scaling(benchmark, rows):
    expr = parse_coql(QUERY)
    db = _database(rows)
    answer = benchmark(lambda: evaluate_coql(expr, db))
    record(benchmark, experiment="E7", rows=rows, elements=len(answer))


@pytest.mark.parametrize("rows", [10, 30, 100])
def test_encoder_path_scaling(benchmark, rows):
    encoded = prepare(QUERY, SCHEMA)
    db = _database(rows)
    direct = evaluate_coql(parse_coql(QUERY), db)

    def run():
        groups = node_groups(encoded.query, db)
        return reconstruct_value(encoded, groups)

    rebuilt = benchmark(run)
    record(benchmark, experiment="E7", rows=rows, agrees=rebuilt == direct)
    assert rebuilt == direct


@pytest.mark.parametrize("rows", [10, 30])
def test_normalization_and_encoding(benchmark, rows):
    """Front-end cost: parse + typecheck + normalize + encode."""
    result = benchmark(lambda: prepare(QUERY, SCHEMA))
    record(benchmark, experiment="E7",
           nodes=len(result.query.nodes()))
