"""E4 — strong simulation (the equivalence-side condition, NP-complete).

Strong simulation layers classical containment checks (the reverse
directions) on top of every forward certificate candidate, so it is
systematically more expensive than simulation on the same instances —
the curves here quantify that gap.
"""

import pytest

from repro.grouping import is_simulated, is_strongly_simulated
from repro.workloads import chain_grouping_query, random_grouping_query

from conftest import record


@pytest.mark.parametrize("depth", [1, 2, 3])
def test_depth_scaling(benchmark, depth):
    query = chain_grouping_query(depth)
    other = query.rename_apart("_p")
    verdict = benchmark(lambda: is_strongly_simulated(query, other))
    record(benchmark, experiment="E4", depth=depth, verdict=verdict)
    assert verdict


@pytest.mark.parametrize("depth", [1, 2, 3])
def test_gap_to_plain_simulation(benchmark, depth):
    """The same instance under plain simulation (reference curve)."""
    query = chain_grouping_query(depth)
    other = query.rename_apart("_p")
    verdict = benchmark(lambda: is_simulated(query, other))
    record(benchmark, experiment="E4-reference", depth=depth, verdict=verdict)


@pytest.mark.parametrize("seed", [0, 3, 6])
def test_random_instances(benchmark, seed):
    schema = {"r": 2, "s": 2}
    q1 = random_grouping_query(schema, seed=seed, depth=2)
    q2 = random_grouping_query(schema, seed=seed + 5000, depth=2)
    if q1.shape() != q2.shape():
        q2 = q1.rename_apart("_p")
    verdict = benchmark(lambda: is_strongly_simulated(q1, q2))
    record(benchmark, experiment="E4", seed=seed, verdict=verdict)


def test_negative_instance(benchmark):
    """Groups included but not equal: every forward candidate must be
    generated and refuted."""
    from repro.grouping.build import node, grouping_query

    linked = grouping_query(
        node(
            "",
            ["r(Xa)"],
            {"a": "Xa"},
            children=[node("kids", ["s(Xa, Yb)"], {"b": "Yb"}, index=["Xa"])],
        )
    )
    unlinked = grouping_query(
        node(
            "",
            ["r(Xa)"],
            {"a": "Xa"},
            children=[node("kids", ["s(Z, Yb)"], {"b": "Yb"}, index=[])],
        )
    )
    verdict = benchmark(lambda: is_strongly_simulated(linked, unlinked))
    record(benchmark, experiment="E4", verdict=verdict)
    assert not verdict
