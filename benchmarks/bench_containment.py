"""E1 — COQL containment (Theorem 4.1), end to end.

Parse → typecheck → normalize → encode → truncation obligations →
simulation, over growing query sizes, plus the verdict-vs-semantics
sanity gate on a sample database.
"""

import pytest

from repro.coql import contains, parse_coql, evaluate_coql
from repro.objects import Database, dominated
from repro.workloads import random_coql

from conftest import record

SCHEMA = {"r": ("a", "b"), "s": ("k", "b")}


def _query_with_generators(count):
    gens = ", ".join("x%d in r" % i for i in range(count))
    conds = " and ".join(
        "x%d.b = x%d.a" % (i, i + 1) for i in range(count - 1)
    )
    text = (
        "select [v: x0.a, inner: select [w: y.b] from y in s "
        "where y.k = x0.a] from " + gens
    )
    if conds:
        text += " where " + conds
    return text


@pytest.mark.parametrize("generators", [1, 2, 3, 4])
def test_generator_scaling(benchmark, generators):
    query = _query_with_generators(generators)
    base = _query_with_generators(1)
    verdict = benchmark(lambda: contains(base, query, SCHEMA))
    record(benchmark, experiment="E1", generators=generators, verdict=verdict)
    assert verdict  # extra generators only restrict the outer set


@pytest.mark.parametrize("generators", [1, 2, 3])
def test_self_containment_scaling(benchmark, generators):
    query = _query_with_generators(generators)
    verdict = benchmark(lambda: contains(query, query, SCHEMA))
    record(benchmark, experiment="E1", generators=generators, verdict=verdict)
    assert verdict


def test_truncation_case(benchmark):
    """The containment refutation that needs the truncated obligation."""
    linked = (
        "select [a: x.a, kids: select [b: y.b] from y in s where y.k = x.a]"
        " from x in r"
    )
    restricted = linked + ", z in s where z.k = x.a"
    verdict = benchmark(lambda: contains(restricted, linked, SCHEMA))
    record(benchmark, experiment="E1", verdict=verdict)
    assert not verdict


@pytest.mark.parametrize("pairs", [10, 20])
def test_random_pair_throughput(benchmark, pairs):
    """Decisions per batch of random COQL pairs (mixed verdicts)."""
    from repro.errors import IncomparableQueriesError

    batch = [
        (random_coql(seed=s), random_coql(seed=s + 3000)) for s in range(pairs)
    ]

    def run():
        positives = 0
        for q1, q2 in batch:
            try:
                if contains(q2, q1, SCHEMA):
                    positives += 1
            except IncomparableQueriesError:
                pass
        return positives

    positives = benchmark(run)
    record(benchmark, experiment="E1", pairs=pairs, positives=positives)


@pytest.mark.parametrize("cached", [False, True], ids=["cold", "warm"])
def test_repeated_checks_engine_cache(benchmark, cached):
    """The same checks repeated: the engine cache short-circuits
    prepare and the simulation obligations (cold = caching disabled)."""
    from repro.engine import ContainmentEngine

    base = _query_with_generators(1)
    queries = [_query_with_generators(n) for n in (1, 2, 3)]
    if cached:
        engine = ContainmentEngine()
    else:
        engine = ContainmentEngine(prepare_cache_size=0, verdict_cache_size=0)

    def run():
        verdicts = []
        for __ in range(5):
            for query in queries:
                verdicts.append(engine.contains(base, query, SCHEMA))
        return all(verdicts)

    verdict = benchmark(run)
    stats = engine.stats()
    record(
        benchmark,
        experiment="E1",
        cached=cached,
        verdict=verdict,
        obligation_cache_hits=stats.counter("obligation_cache_hits"),
        obligations_checked=stats.counter("obligations_checked"),
        prepare_hits=stats.counter("prepare_hits"),
        homomorphism_nodes=stats.search.nodes,
    )
    assert verdict
    if cached:
        assert stats.counter("obligation_cache_hits") > 0
        assert stats.counter("prepare_hits") > 0
    else:
        assert stats.counter("obligation_cache_hits") == 0


def test_batched_matrix_engine(benchmark):
    """The N×N view-reuse matrix through the batch API: every query is
    prepared once and shared obligations are decided once."""
    from repro.engine import ContainmentEngine
    from repro.workloads import company_scenario

    scenario = company_scenario()
    engine = ContainmentEngine()

    def run():
        names, matrix = scenario.containment_matrix(engine=engine)
        return sum(1 for row in matrix for v in row if v)

    positives = benchmark(run)
    stats = engine.stats()
    record(
        benchmark,
        experiment="E1",
        positives=positives,
        prepare_hits=stats.counter("prepare_hits"),
        obligation_cache_hits=stats.counter("obligation_cache_hits"),
        homomorphism_nodes=stats.search.nodes,
    )
    assert positives >= len(scenario.queries)  # the diagonal at least
    assert stats.counter("obligation_cache_hits") > 0


@pytest.mark.parametrize("mode", ["sequential", "parallel"])
def test_batch_matrix_parallel_vs_sequential(benchmark, mode, jobs_option):
    """The batched N×N matrix, sequential vs sharded across a worker
    pool: the parallel row records its speedup over a same-process
    sequential reference pass (pool spin-up excluded — the pool is
    warmed in setup, matching a long-lived service engine)."""
    import time

    from repro.engine import ContainmentEngine, ParallelContainmentEngine
    from repro.workloads import random_coql_deep

    queries = [random_coql_deep(seed=s, depth=4) for s in range(12)]
    jobs = 1 if mode == "sequential" else jobs_option
    engines = []

    def setup():
        if mode == "sequential":
            engine = ContainmentEngine()
        else:
            engine = ParallelContainmentEngine(jobs=jobs)
            # Warm the pool (fork + worker engine construction) so the
            # measurement covers steady-state sharding only.
            engine.contains_many(
                [(queries[0], queries[0])] * jobs, SCHEMA, on_error="capture"
            )
        engines.append(engine)
        return (engine,), {}

    def run(engine):
        return engine.pairwise_matrix(queries, SCHEMA)

    matrix = benchmark.pedantic(run, setup=setup, rounds=3)
    positives = sum(1 for row in matrix for v in row if v is True)
    info = dict(
        experiment="E1",
        mode=mode,
        jobs=jobs,
        queries=len(queries),
        checks=len(queries) ** 2,
        positives=positives,
    )
    if mode == "parallel":
        reference = ContainmentEngine()
        start = time.perf_counter()
        sequential_matrix = reference.pairwise_matrix(queries, SCHEMA)
        sequential_s = time.perf_counter() - start
        assert sequential_matrix == matrix  # verdict parity, every cell
        info["sequential_reference_s"] = sequential_s
        try:
            parallel_s = benchmark.stats.stats.min
        except AttributeError:
            parallel_s = None
        if parallel_s:
            info["parallel_s"] = parallel_s
            info["speedup_vs_sequential"] = sequential_s / parallel_s
        stats = engines[-1].stats()
        info["worker_cache_hits"] = stats.counter("worker_cache_hits")
        info["chunks_dispatched"] = stats.counter("chunks_dispatched")
    for engine in engines:
        if hasattr(engine, "close"):
            engine.close()
    record(benchmark, **info)
    assert positives >= len(queries)  # the diagonal at least


def test_verdict_semantic_gate(benchmark):
    """Positive verdicts imply Hoare domination on a spot database."""
    q1 = (
        "select [a: x.a, kids: select [b: y.b] from y in s where y.k = x.a]"
        " from x in r"
    )
    q2 = "select [a: x.a, kids: select [b: y.b] from y in s] from x in r"
    db = Database.from_dict(
        {"r": [{"a": 1, "b": 0}], "s": [{"k": 1, "b": 5}, {"k": 2, "b": 6}]}
    )

    def run():
        assert contains(q2, q1, SCHEMA)
        return dominated(
            evaluate_coql(parse_coql(q1), db), evaluate_coql(parse_coql(q2), db)
        )

    verdict = benchmark(run)
    record(benchmark, experiment="E1", semantically_confirmed=verdict)
    assert verdict
