"""E8 — conservativity: flat COQL = conjunctive queries.

The paper (via [43]) notes COQL is a conservative extension of
conjunctive queries.  For flat query pairs, the COQL containment
pipeline and the classical Chandra–Merlin test must return the same
verdicts; this module verifies agreement at benchmark scale and measures
the overhead of the COQL front-end over the bare CQ test.
"""

import pytest

from repro.coql import contains as coql_contains
from repro.cq import parse_query, contains as cq_contains
from repro.workloads import random_coql

from conftest import record

SCHEMA = {"r": ("a", "b"), "s": ("k", "b")}

#: Flat COQL/CQ pairs expressing the same queries (CQ columns follow the
#: sorted-attribute convention: r(a,b) → r(A,B); s(k,b) → s(B,K)).
PAIRS = [
    ("select [v: x.a] from x in r", "q(V) :- r(V, B)"),
    (
        "select [v: x.a] from x in r, y in s where x.a = y.k",
        "q(V) :- r(V, B), s(B2, V)",
    ),
    (
        "select [v: x.a] from x in r, y in r where x.b = y.a",
        "q(V) :- r(V, B), r(B, B2)",
    ),
    (
        "select [v: y.b] from y in s where y.k = 1",
        "q(V) :- s(V, 1)",
    ),
]


@pytest.mark.parametrize("i", range(len(PAIRS)))
@pytest.mark.parametrize("j", range(len(PAIRS)))
def test_verdict_agreement(benchmark, i, j):
    if i == j:
        pytest.skip("trivial")
    coql_sub, cq_sub = PAIRS[i]
    coql_sup, cq_sup = PAIRS[j]
    cq_verdict = cq_contains(parse_query(cq_sup), parse_query(cq_sub))
    verdict = benchmark(lambda: coql_contains(coql_sup, coql_sub, SCHEMA))
    record(benchmark, experiment="E8", pair=(i, j), verdict=verdict)
    assert verdict is cq_verdict


@pytest.mark.parametrize("engine", ["coql", "cq"])
def test_overhead(benchmark, engine):
    """The COQL front-end overhead on one flat containment instance."""
    coql_sub, cq_sub = PAIRS[1]
    coql_sup, cq_sup = PAIRS[0]
    if engine == "coql":
        def run():
            return coql_contains(coql_sup, coql_sub, SCHEMA)
    else:
        sup, sub = parse_query(cq_sup), parse_query(cq_sub)

        def run():
            return cq_contains(sup, sub)
    verdict = benchmark(run)
    record(benchmark, experiment="E8", engine=engine, verdict=verdict)
    assert verdict


def test_random_flat_agreement_rate(benchmark):
    """Random flat COQL pairs: the decision completes and is internally
    consistent (self-containment positive)."""
    queries = [random_coql(seed=s, depth=1) for s in range(15)]

    def run():
        agreed = 0
        for text in queries:
            if coql_contains(text, text, SCHEMA):
                agreed += 1
        return agreed

    agreed = benchmark(run)
    record(benchmark, experiment="E8", self_contained=agreed)
    assert agreed == len(queries)
