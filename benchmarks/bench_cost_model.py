"""E15 — abstract-interpretation cost certificates (soundness + payoff).

Two claims, both falsifiable against the committed seed:

* **soundness** — for every case that records both, the certificate's
  ``predicted_nodes`` (the sound per-component ``prod(1 + rows) - 1``
  bound composed over obligation patterns and witness stages) must be
  at least the actual ``SearchCounters.nodes`` of the corresponding
  fresh check.  ``check_regression.py`` fails hard on any violation —
  an unsound bound is a bug in the abstract interpreter, not noise;
* **payoff** — ``ordering="cost"`` (per-component strategy choice from
  the same cost model) must stay within 10% wall time of the best
  *fixed* ordering on every suite (rows tagged ``suite``/``ordering``;
  compared within one fresh run, so machine speed cancels out).

Cases span the three regimes the certificate must cover: a benign
nested containment through the full engine (patterns, witness
escalation, non-emptiness tests), a truncation-pattern case split
(optional nested component), and the pigeonhole simulation adversary
where the bound is astronomically loose but must still dominate.
"""

import pytest

from repro.analysis.interp import cost_certificate, pair_certificate
from repro.cq.homomorphism import ORDERINGS, use_ordering
from repro.cq.terms import Atom, Var
from repro.engine import ContainmentEngine
from repro.grouping import GroupingNode, GroupingQuery, is_simulated
from repro.workloads import chain_grouping_query

from conftest import record, record_effort

SCHEMA = {"r": ("a", "b"), "s": ("b", "c")}

#: A nested pair decided through the whole engine (sub ⊑ sup holds).
NESTED_SUB = (
    "select [a: x.a, ys: select y.c from y in s where y.b = x.b] from x in r"
)
NESTED_SUP = (
    "select [a: x.a, ys: select y.c from y in s where y.b = x.b] from x in r"
)

#: The nested component is not provably non-empty (the extra equality
#: to the outer row blocks the syntactic test), so obligation
#: enumeration case-splits over truncation patterns.
TRUNCATED = (
    "select [a: x.a, ys: select y.c from y in s "
    "where y.b = x.b and y.c = x.a] from x in r"
)


def padded_clique_grouping(n, rays, name):
    """The E11 pigeonhole adversary (see bench_simulation)."""
    atoms = tuple(
        Atom("e", (Var("V%d" % i), Var("V%d" % j)))
        for i in range(n)
        for j in range(n)
        if i != j
    ) + tuple(
        Atom("p", (Var("U0"), Var("U%d" % i))) for i in range(1, rays + 1)
    )
    return GroupingQuery(
        GroupingNode("", atoms, {"c0": Var("V0")}, (), ()), name
    )


# -- soundness: predicted bound vs measured nodes ----------------------


ENGINE_CASES = {
    "nested_contained": (NESTED_SUP, NESTED_SUB, True),
    "nested_vs_truncated": (NESTED_SUP, TRUNCATED, True),
    "truncated_vs_nested": (TRUNCATED, NESTED_SUB, False),
}


@pytest.mark.parametrize("case", sorted(ENGINE_CASES))
def test_certificate_sound_on_engine_checks(benchmark, case):
    """Full ``engine.contains`` (patterns + escalation + non-emptiness
    tests) never exceeds the certificate's bound."""
    sup, sub, expected = ENGINE_CASES[case]
    certificate = ContainmentEngine().cost_certificate(
        sub, SCHEMA, against=sup
    )

    def run():
        engine = ContainmentEngine()
        verdict = engine.contains(sup, sub, SCHEMA)
        return verdict, engine.stats().search.nodes

    (verdict, nodes) = benchmark(run)
    assert verdict is expected
    assert nodes <= certificate.total_bound, (
        "UNSOUND: %d nodes > bound %d" % (nodes, certificate.total_bound)
    )
    record(
        benchmark,
        experiment="E15",
        case=case,
        verdict=verdict,
        nodes=nodes,
        predicted_nodes=certificate.total_bound,
        patterns=certificate.patterns,
        witness_stages=list(certificate.witness_stages),
    )


SIMULATION_CASES = {
    "chain_reflexive": lambda: (
        chain_grouping_query(3),
        chain_grouping_query(3).rename_apart("_p"),
        None,
        True,
    ),
    "clique_adversary": lambda: (
        padded_clique_grouping(4, 2, "k4"),
        padded_clique_grouping(5, 2, "k5"),
        1,
        False,
    ),
}


@pytest.mark.parametrize("case", sorted(SIMULATION_CASES))
def test_certificate_sound_on_simulation(benchmark, case, search_effort):
    """Bare ``is_simulated`` stays under the pair certificate's bound
    (the certificate also budgets pattern and non-emptiness searches the
    bare call never runs — dominance must hold regardless)."""
    sub, sup, witnesses, expected = SIMULATION_CASES[case]()
    certificate = pair_certificate(sub, sup, witnesses=witnesses)

    def run():
        return is_simulated(sub, sup, witnesses=witnesses)

    verdict, effort = search_effort(run)
    benchmark(run)
    assert verdict is expected
    assert effort.nodes <= certificate.total_bound
    record(
        benchmark,
        experiment="E15",
        case=case,
        verdict=verdict,
        predicted_nodes=certificate.total_bound,
    )
    record_effort(benchmark, effort)


# -- payoff: ordering="cost" vs the fixed orderings --------------------


ORDERING_SUITES = {
    "reflexive": lambda: (
        chain_grouping_query(3),
        chain_grouping_query(3).rename_apart("_p"),
        None,
        True,
    ),
    "adversary": lambda: (
        padded_clique_grouping(5, 2, "k5"),
        padded_clique_grouping(6, 2, "k6"),
        1,
        False,
    ),
}


@pytest.mark.parametrize("ordering", list(ORDERINGS))
@pytest.mark.parametrize("suite", sorted(ORDERING_SUITES))
def test_cost_ordering_competitive(benchmark, suite, ordering, search_effort):
    """E15 — every ordering on every suite; the regression gate compares
    the ``cost`` row's median against the best fixed ordering's."""
    sub, sup, witnesses, expected = ORDERING_SUITES[suite]()

    def run():
        with use_ordering(ordering):
            return is_simulated(sub, sup, witnesses=witnesses)

    verdict, effort = search_effort(run)
    benchmark(run)
    assert verdict is expected
    record(
        benchmark,
        experiment="E15",
        suite=suite,
        ordering=ordering,
        verdict=verdict,
    )
    record_effort(benchmark, effort)


# -- the analyzer itself ------------------------------------------------


def test_certificate_construction_cold(benchmark):
    """Building a certificate from COQL text on a fresh engine — the
    price of asking before checking."""

    def run():
        return cost_certificate(TRUNCATED, SCHEMA, engine=ContainmentEngine())

    certificate = benchmark(run)
    record(
        benchmark,
        experiment="E15",
        patterns=certificate.patterns,
        total_bound=certificate.total_bound,
    )
    assert certificate.total_bound > 0


def test_certificate_construction_warm(benchmark):
    """Re-asking on a warm engine hits the ``cost_certificate`` artifact
    kind (the pair core is cached; only AST facts recompute)."""
    engine = ContainmentEngine()
    engine.cost_certificate(TRUNCATED, SCHEMA)

    certificate = benchmark(
        lambda: engine.cost_certificate(TRUNCATED, SCHEMA)
    )
    hits = engine.stats().counter("cost_certificate_hits")
    record(
        benchmark,
        experiment="E15",
        total_bound=certificate.total_bound,
        cache_hits=hits,
    )
    assert hits > 0
