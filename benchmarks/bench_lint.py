"""E10 — static-analysis cost: the lint pass is cheap next to deciding
containment.

The analyzer (``repro.analysis``) runs the non-expensive rules
(COQL001–004, COQL007) over one query; the engine's opt-in pre-check
(``ContainmentEngine(analyze=True)``) runs that pass over both sides of
every ``contains`` call.  The guard here: on a truncation-heavy
instance, the analyzer's per-query cost is **< 5 %** of one cold
containment check, so wiring the pre-check into a pipeline does not
change its cost profile.
"""

import time

import pytest

from repro.analysis import AnalysisConfig, analyze
from repro.coql import parse_coql
from repro.engine import ContainmentEngine

from conftest import record

SCHEMA = {"r": ("a", "b"), "s": ("k", "b"), "t": ("k", "c")}

# Sibling nested subqueries make optional paths: every one doubles the
# number of truncation patterns the containment check must discharge,
# while the lint pass stays a single walk over the AST.
NESTED_PATHS = 6


def _query(paths, extra=""):
    parts = ", ".join(
        "g%d: select [b: y%d.b] from y%d in s where y%d.k = x.a"
        % (i, i, i, i)
        for i in range(paths)
    )
    return "select [a: x.a, %s] from x in r%s" % (parts, extra)


SUP = _query(NESTED_PATHS)
SUB = _query(NESTED_PATHS, ", z in t where z.k = x.a")


def _cold_contains_s(analyze_flag=False, rounds=5):
    """min wall time of one containment check on a fresh engine."""
    best = float("inf")
    for __ in range(rounds):
        engine = ContainmentEngine(analyze=analyze_flag)
        start = time.perf_counter()
        assert engine.contains(SUP, SUB, SCHEMA)
        best = min(best, time.perf_counter() - start)
    return best


def test_analyzer_overhead_vs_cold_containment(benchmark):
    """The per-query rule pass, against a cold containment check.

    This is the marginal cost the engine pre-check adds per query once
    the engine's prepare cache is shared (the pre-check and the check
    itself prepare the same queries).  The < 5 % bound is the
    documented guard.
    """
    engine = ContainmentEngine()
    config = AnalysisConfig(expensive=False)
    query = parse_coql(SUB)
    analyze(query, SCHEMA, engine=engine, config=config)  # warm prepare

    diagnostics = benchmark(
        lambda: analyze(query, SCHEMA, engine=engine, config=config)
    )
    cold_s = _cold_contains_s()
    try:
        analyzer_s = benchmark.stats.stats.min
    except AttributeError:  # pragma: no cover - harness variation
        analyzer_s = None
    record(
        benchmark,
        experiment="E10",
        nested_paths=NESTED_PATHS,
        diagnostics=len(diagnostics),
        cold_containment_s=cold_s,
        overhead_ratio=(analyzer_s / cold_s) if analyzer_s else None,
    )
    if analyzer_s is not None:
        assert analyzer_s < 0.05 * cold_s


def test_engine_precheck_end_to_end(benchmark):
    """A cold ``contains`` with the pre-check on, vs. off.

    Records the full end-to-end ratio (both queries analyzed, parse
    shared with the check itself) next to the per-query guard above.
    Verdict parity with the plain engine is asserted.
    """

    def run():
        engine = ContainmentEngine(analyze=True)
        verdict = engine.contains(SUP, SUB, SCHEMA)
        return verdict, engine.stats().counter("analysis_runs")

    (verdict, runs) = benchmark(run)
    assert verdict is ContainmentEngine().contains(SUP, SUB, SCHEMA) is True
    assert runs == 1
    plain_s = _cold_contains_s(analyze_flag=False)
    try:
        analyzed_s = benchmark.stats.stats.min
    except AttributeError:  # pragma: no cover - harness variation
        analyzed_s = None
    record(
        benchmark,
        experiment="E10",
        nested_paths=NESTED_PATHS,
        plain_cold_s=plain_s,
        end_to_end_ratio=(analyzed_s / plain_s) if analyzed_s else None,
    )


@pytest.mark.parametrize("expensive", [False, True], ids=["cheap", "full"])
def test_rule_pass_scaling(benchmark, expensive):
    """The lint pass alone, cheap rules vs. the full set (COQL005's
    minimization makes the expensive pass another containment-sized
    job — which is why the engine pre-check runs ``expensive=False``).
    """
    engine = ContainmentEngine()
    config = AnalysisConfig(expensive=expensive)
    query = parse_coql(SUB)
    analyze(query, SCHEMA, engine=engine, config=config)

    diagnostics = benchmark(
        lambda: analyze(query, SCHEMA, engine=engine, config=config)
    )
    record(
        benchmark,
        experiment="E10",
        expensive=expensive,
        diagnostics=len(diagnostics),
        codes=sorted({d.code for d in diagnostics}),
    )
