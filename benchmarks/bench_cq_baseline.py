"""E9 — the classical baseline: Chandra–Merlin containment.

The paper positions simulation as "more complex than containment of
conjunctive queries"; this module measures the baseline so E3/E4 have a
reference curve.  Also ablates the homomorphism-search atom ordering
(E11: the constraint-propagating engine vs the legacy
most-constrained-first and static strategies), one of the design
choices DESIGN.md calls out, on both a chain folding and the padded
pigeonhole adversary where component decomposition turns a
multiplicative refutation into an additive one.
"""

import pytest

from repro.cq import contains, minimize
from repro.cq.terms import Var, Const, Atom
from repro.cq.homomorphism import (
    ORDERINGS,
    find_homomorphism,
    ground_atoms_of_query,
)
from repro.workloads import chain_query, star_query, random_cq

from conftest import record, record_effort


@pytest.mark.parametrize("length", [2, 4, 8, 16, 32])
def test_chain_containment(benchmark, length):
    """Containment of a 2k-chain in a k-chain: verdict False, search
    explores the chain's foldings."""
    short = chain_query(length)
    long = chain_query(length * 2)
    verdict = benchmark(lambda: contains(short, long))
    record(benchmark, experiment="E9", length=length, verdict=verdict)


@pytest.mark.parametrize("points", [2, 4, 8, 16])
def test_star_containment(benchmark, points):
    """Stars collapse homomorphically: verdict True, found quickly."""
    small = star_query(points)
    big = star_query(points * 2)
    verdict = benchmark(lambda: contains(small, big))
    record(benchmark, experiment="E9", points=points, verdict=verdict)
    assert verdict


@pytest.mark.parametrize("atoms", [3, 5, 7, 9])
def test_random_containment(benchmark, atoms):
    schema = {"r": 2, "s": 2, "t": 1}
    pairs = [
        (
            random_cq(schema, atoms=atoms, variables=4, head_arity=1, seed=s),
            random_cq(schema, atoms=atoms, variables=4, head_arity=1, seed=s + 100),
        )
        for s in range(10)
    ]

    def run():
        return sum(1 for q1, q2 in pairs if contains(q2, q1))

    positives = benchmark(run)
    record(benchmark, experiment="E9", atoms=atoms, positives=positives)


@pytest.mark.parametrize("ordering", list(ORDERINGS))
def test_ordering_ablation(benchmark, ordering, search_effort):
    """Propagating vs most-constrained-first vs static on a chain
    folding."""
    short = chain_query(6)
    long = chain_query(12)
    target = ground_atoms_of_query(short)

    def run():
        return find_homomorphism(long.body, target, ordering=ordering)

    result, effort = search_effort(run)
    benchmark(run)
    record(benchmark, experiment="E9-ablation", ordering=ordering,
           found=result is not None)
    record_effort(benchmark, effort)


def padded_pigeonhole(n, rays, leaves):
    """K_n source into frozen K_{n-1}, padded with an independent star.

    The clique component is pigeonhole-refuted; a search that does not
    decompose components re-proves the refutation once per padding
    assignment (``leaves`` choices per ray), the propagating search
    refutes it exactly once (E11's adversarial family).
    """
    source = tuple(
        Atom("e", (Var("V%d" % i), Var("V%d" % j)))
        for i in range(n)
        for j in range(n)
        if i != j
    ) + tuple(
        Atom("p", (Var("U0"), Var("U%d" % i))) for i in range(1, rays + 1)
    )
    target = tuple(
        Atom("e", (Const("c%d" % i), Const("c%d" % j)))
        for i in range(n - 1)
        for j in range(n - 1)
        if i != j
    ) + tuple(
        Atom("p", (Const("hub"), Const("leaf%d" % j))) for j in range(leaves)
    )
    return source, target


@pytest.mark.parametrize("ordering", list(ORDERINGS))
def test_pigeonhole_adversary(benchmark, ordering, search_effort):
    """E11 — the padded pigeonhole refutation across strategies."""
    source, target = padded_pigeonhole(5, 2, 4)

    def run():
        return find_homomorphism(source, target, ordering=ordering)

    result, effort = search_effort(run)
    benchmark(run)
    record(benchmark, experiment="E11", ordering=ordering, n=5, rays=2,
           leaves=4, found=result is not None)
    record_effort(benchmark, effort)
    assert result is None


@pytest.mark.parametrize("atoms", [4, 8])
def test_minimization(benchmark, atoms):
    query = random_cq({"e": 2}, atoms=atoms, variables=3, head_arity=1, seed=5)
    minimized = benchmark(lambda: minimize(query))
    record(benchmark, experiment="E9", atoms=atoms,
           kept=len(minimized.body))
