"""E5 — equivalence of queries with grouping and aggregation.

Single-block equivalence (reduces to conjunctive-query equivalence) and
nested aggregation (strong simulation of the grouping tree), over
growing bodies.
"""

import pytest

from repro.cq.terms import Var, Atom
from repro.aggregates import (
    AggregateQuery,
    NestedAggregateQuery,
    aggregate_equivalent,
    aggregate_contained,
    nested_aggregate_equivalent,
)

from conftest import record


def _chain_body(length):
    return tuple(
        Atom("e", (Var("X%d" % i), Var("X%d" % (i + 1)))) for i in range(length)
    )


@pytest.mark.parametrize("length", [2, 4, 8, 12])
def test_single_block_scaling(benchmark, length):
    q1 = AggregateQuery(_chain_body(length), (Var("X0"),), "f", Var("X1"))
    # Redundant duplicated chain: equivalent.
    doubled = _chain_body(length) + tuple(
        Atom("e", (Var("Y%d" % i), Var("Y%d" % (i + 1)))) for i in range(length)
    ) + (Atom("e", (Var("X0"), Var("Y0"))),)
    q2 = AggregateQuery(doubled, (Var("X0"),), "f", Var("X1"))
    verdict = benchmark(lambda: aggregate_equivalent(q1, q2))
    record(benchmark, experiment="E5", chain=length, verdict=verdict)


@pytest.mark.parametrize("length", [2, 4, 8])
def test_containment_scaling(benchmark, length):
    q1 = AggregateQuery(_chain_body(length), (Var("X0"),), "f", Var("X1"))
    q2 = AggregateQuery(
        _chain_body(length) + (Atom("mark", (Var("X0"),)),),
        (Var("X0"),),
        "f",
        Var("X1"),
    )
    verdict = benchmark(lambda: aggregate_contained(q1, q2))
    record(benchmark, experiment="E5", chain=length, verdict=verdict)
    assert verdict


@pytest.mark.parametrize("extra", [0, 1, 2])
def test_nested_aggregation_scaling(benchmark, extra):
    base = (Atom("r", (Var("D"), Var("E"), Var("V"))),)
    padding = tuple(
        Atom("r", (Var("D"), Var("E%d" % i), Var("V%d" % i)))
        for i in range(extra)
    )
    q1 = NestedAggregateQuery(
        base, [((Var("D"),), "f"), ((Var("D"), Var("E")), "g")], Var("V")
    )
    q2 = NestedAggregateQuery(
        base + padding,
        [((Var("D"),), "f"), ((Var("D"), Var("E")), "g")],
        Var("V"),
    )
    verdict = benchmark(lambda: nested_aggregate_equivalent(q1, q2))
    record(benchmark, experiment="E5", padding=extra, verdict=verdict)
    assert verdict


def test_nested_negative(benchmark):
    base = (Atom("r", (Var("D"), Var("E"), Var("V"))),)
    q1 = NestedAggregateQuery(
        base, [((Var("D"),), "f"), ((Var("D"), Var("E")), "g")], Var("V")
    )
    q2 = NestedAggregateQuery(
        base + (Atom("s", (Var("E"),)),),
        [((Var("D"),), "f"), ((Var("D"), Var("E")), "g")],
        Var("V"),
    )
    verdict = benchmark(lambda: nested_aggregate_equivalent(q1, q2))
    record(benchmark, experiment="E5", verdict=verdict)
    assert not verdict
