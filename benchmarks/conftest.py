"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module reproduces one experiment of EXPERIMENTS.md
(E1–E10).  Benchmarks record their qualitative outcome (the verdict, the
size of the instance, counts of obligations, …) in
``benchmark.extra_info`` so the generated table doubles as the
experiment's result table.

``--jobs N`` selects the worker-process count for the parallel-engine
rows (default: one per CPU); the sequential rows ignore it.
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        action="store",
        type=int,
        default=None,
        help="worker processes for parallel benchmark rows "
             "(default: os.cpu_count())",
    )


@pytest.fixture
def jobs_option(request):
    """The ``--jobs`` value, defaulting to the machine's CPU count."""
    value = request.config.getoption("--jobs")
    if value is None:
        value = os.cpu_count() or 1
    return max(1, value)


def record(benchmark, **info):
    """Attach experiment metadata to a benchmark entry."""
    for key, value in info.items():
        benchmark.extra_info[key] = value
