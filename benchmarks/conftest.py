"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module reproduces one experiment of EXPERIMENTS.md
(E1–E11).  Benchmarks record their qualitative outcome (the verdict, the
size of the instance, counts of obligations, …) in
``benchmark.extra_info`` so the generated table doubles as the
experiment's result table.

``--jobs N`` selects the worker-process count for the parallel-engine
rows (default: one per CPU); the sequential rows ignore it.

``--bench-out DIR`` turns on the trajectory writer: at session end every
benchmarked module is written to ``DIR/BENCH_<module>.json`` (e.g.
``bench_simulation.py`` → ``BENCH_simulation.json``) with one row per
case — wall-time statistics plus everything the case recorded, including
the deterministic :class:`SearchCounters` effort of the ``search_effort``
fixture.  CI archives these files and ``check_regression.py`` compares
them against the committed seeds in ``benchmarks/seeds/``.
"""

import json
import os

import pytest

from repro.cq.homomorphism import SearchCounters, install_search_counters


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        action="store",
        type=int,
        default=None,
        help="worker processes for parallel benchmark rows "
             "(default: os.cpu_count())",
    )
    parser.addoption(
        "--bench-out",
        action="store",
        default=None,
        help="directory to write per-module BENCH_<module>.json "
             "trajectory files into (default: off)",
    )


@pytest.fixture
def jobs_option(request):
    """The ``--jobs`` value, defaulting to the machine's CPU count."""
    value = request.config.getoption("--jobs")
    if value is None:
        value = os.cpu_count() or 1
    return max(1, value)


def record(benchmark, **info):
    """Attach experiment metadata to a benchmark entry."""
    for key, value in info.items():
        benchmark.extra_info[key] = value


@pytest.fixture
def search_effort():
    """Measure one run's homomorphism-search effort, deterministically.

    Returns a callable: ``measure(fn) -> (result, SearchCounters)``.
    The function runs exactly once under a fresh counter sink, outside
    the benchmark's timing rounds, so the recorded ``nodes`` /
    ``backtracks`` / ``domain_wipeouts`` / ``components_solved`` are
    round-count-independent — the regression gate compares these, not
    the noisy wall times.
    """

    def measure(fn):
        counters = SearchCounters()
        previous = install_search_counters(counters)
        try:
            result = fn()
        finally:
            install_search_counters(previous)
        return result, counters

    return measure


def record_effort(benchmark, counters):
    """Attach a :class:`SearchCounters` snapshot to a benchmark entry.

    Uses the counters' own field-introspected ``as_dict`` so a counter
    added to :class:`SearchCounters` lands in the trajectory files (and
    the regression gate) automatically.
    """
    record(benchmark, **counters.as_dict())


# -- the trajectory writer --------------------------------------------------

_STAT_FIELDS = ("min", "max", "mean", "median", "stddev", "rounds")


def _module_of(fullname):
    # "bench_simulation.py::test_depth_scaling[2]" -> "bench_simulation"
    module = fullname.split("::", 1)[0]
    if module.endswith(".py"):
        module = module[:-3]
    return os.path.basename(module)


def _bench_rows(bench):
    stats = {}
    for field in _STAT_FIELDS:
        value = getattr(bench.stats, field, None)
        if value is not None:
            stats[field] = value
    return {
        "name": bench.name,
        "fullname": bench.fullname,
        "stats": stats,
        "extra": dict(bench.extra_info),
    }


def pytest_sessionfinish(session, exitstatus):
    out_dir = session.config.getoption("--bench-out", default=None)
    if not out_dir:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    by_module = {}
    for bench in bench_session.benchmarks:
        by_module.setdefault(_module_of(bench.fullname), []).append(
            _bench_rows(bench)
        )
    os.makedirs(out_dir, exist_ok=True)
    for module, rows in sorted(by_module.items()):
        name = module[len("bench_"):] if module.startswith("bench_") else module
        path = os.path.join(out_dir, "BENCH_%s.json" % name)
        with open(path, "w") as handle:
            json.dump(
                {"version": 1, "module": module, "rows": rows},
                handle,
                indent=2,
                sort_keys=True,
                default=str,
            )
            handle.write("\n")
