"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module reproduces one experiment of EXPERIMENTS.md
(E1–E9).  Benchmarks record their qualitative outcome (the verdict, the
size of the instance, counts of obligations, …) in
``benchmark.extra_info`` so the generated table doubles as the
experiment's result table.
"""

import pytest


def record(benchmark, **info):
    """Attach experiment metadata to a benchmark entry."""
    for key, value in info.items():
        benchmark.extra_info[key] = value
