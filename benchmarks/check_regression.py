"""Compare fresh BENCH_*.json trajectory files against committed seeds.

Usage::

    python check_regression.py --seeds seeds --fresh out [--tolerance 0.25]
                               [--strict-time]

For every seed file ``seeds/BENCH_<module>.json`` the matching fresh
file is loaded and rows are joined by ``fullname``.  Two comparisons:

* **search effort** (deterministic) — a row whose recorded ``nodes``
  exceeds the seed's by more than the tolerance (default 25%) is a
  **failure**; node counts do not depend on machine speed, so any growth
  is a real algorithmic regression.  Rows below the noise floor
  (``--floor``, default 100 nodes) are skipped: on trivial instances a
  few nodes of jitter from e.g. a changed tie-break are meaningless.
* **wall time** (noisy) — mean times beyond ``2x`` tolerance are
  reported as warnings only, unless ``--strict-time`` promotes them to
  failures (CI keeps them advisory: shared runners are too noisy).
* **cold/warm ratio** — a row recording ``cold_over_warm`` (the
  pipeline benchmark's artifact-store speedup, measured cold and warm on
  the same machine in the same process) must stay at least
  ``--min-speedup`` (default 2.0); below that is a warning, promoted to
  failure by ``--strict-time``, because it means the content-addressed
  store stopped doing its job.
* **tail latency** — a row recording ``p99_ms`` (the service
  benchmark's per-request 99th percentile) is compared like mean time:
  growth beyond ``2x`` tolerance over the seed is a warning, a failure
  under ``--strict-time``.  Tail latency is what micro-batching and the
  persistent tier exist to protect, so it gets its own gate instead of
  hiding inside the workload mean.
* **cross-process hit rate** — a row recording
  ``cross_process_hit_rate`` (the fraction of a restarted service's
  lookups served by the persistent tier) must stay positive; zero is a
  **failure** regardless of ``--strict-time``, because it is
  deterministic — it means warm restarts silently recompute.
* **semantic-cache warm hit rate** — a row recording ``warm_hit_rate``
  (the semantic cache's steady-state serving fraction under the seeded
  Zipf workload) must stay at least 0.5 and within tolerance of the
  seed; below that is a **failure** regardless of ``--strict-time``,
  because the replay is fully deterministic for its pinned seed — a
  drop means a serving rule stopped firing, not that a machine got
  slow.

* **certificate soundness** — a fresh row recording both
  ``predicted_nodes`` (the cost certificate's sound search bound) and
  ``nodes`` (the measured effort of the same check) must satisfy
  ``predicted >= actual``; a violation is a **failure** regardless of
  ``--strict-time`` — the bound is mathematical, an unsound one is a
  bug in the abstract interpreter, not noise.
* **cost-ordering competitiveness** — fresh rows tagged with both
  ``suite`` and ``ordering`` are grouped per suite; the ``cost`` row's
  median wall time must stay within ``--cost-margin`` (default 10%) of
  the best *fixed* ordering's median, with an absolute
  ``--wall-floor-ms`` grace (default 1ms) so sub-millisecond suites
  don't fail on scheduler jitter.  Compared within the fresh run only,
  so machine speed cancels; a violation is a **failure**.
* **union short-circuit** — a fresh row recording both ``union_width``
  and ``branches_decided`` with ``contained`` true (the ucq benchmark's
  width sweep, built so the first sup branch covers every sub branch)
  must satisfy ``branches_decided <= union_width``; more decisions than
  sub branches is a **failure** regardless of ``--strict-time`` — the
  Sagiv–Yannakakis inner loop is deterministic, so exceeding the bound
  means the short-circuit (or the ``branch_verdict`` memo) broke.
* **chase artifact hit rate** — a fresh row recording
  ``chase_hit_rate`` (the ucq benchmark's witness-escalation replay)
  must keep it positive; zero is a **failure** regardless of
  ``--strict-time``, because the replay is deterministic — it means the
  content-addressed chase memoization silently recomputes saturations.
* **bitset kernel speedup** — on every *adversary* suite (a ``suite``
  tag containing ``"adversary"``), the ``bitset`` ordering's median
  wall time must be at least ``--bitset-speedup`` (default 2.0) times
  faster than the ``propagating`` ordering's median, again with the
  ``--wall-floor-ms`` absolute grace.  Like the cost gate this is
  intra-run, so machine speed cancels; a violation is a **failure** —
  it means the compiled mask kernel lost its reason to be the default.

Rows present only on one side are reported (new benchmarks are fine;
vanished ones are a failure, they usually mean a silently skipped
case).  Exit status 0 = clean, 1 = regression.
"""

import argparse
import json
import os
import sys


def load_rows(path):
    with open(path) as handle:
        data = json.load(handle)
    return {row["fullname"]: row for row in data.get("rows", [])}


def compare_module(name, seed_rows, fresh_rows, tolerance, floor,
                   strict_time, min_speedup=2.0):
    failures = []
    warnings = []
    for fullname, seed in sorted(seed_rows.items()):
        fresh = fresh_rows.get(fullname)
        if fresh is None:
            failures.append("%s: row vanished from fresh run" % fullname)
            continue
        seed_nodes = seed.get("extra", {}).get("nodes")
        fresh_nodes = fresh.get("extra", {}).get("nodes")
        if seed_nodes is not None and fresh_nodes is not None:
            if seed_nodes >= floor and fresh_nodes > seed_nodes * (
                1.0 + tolerance
            ):
                failures.append(
                    "%s: search nodes regressed %d -> %d (>%d%%)"
                    % (fullname, seed_nodes, fresh_nodes,
                       int(tolerance * 100))
                )
        seed_ratio = seed.get("extra", {}).get("cold_over_warm")
        fresh_ratio = fresh.get("extra", {}).get("cold_over_warm")
        if seed_ratio is not None and fresh_ratio is not None:
            if fresh_ratio < min_speedup:
                message = (
                    "%s: cold/warm speedup %.2fx below the %.1fx floor "
                    "(seed had %.2fx)"
                    % (fullname, fresh_ratio, min_speedup, seed_ratio)
                )
                (failures if strict_time else warnings).append(message)
        fresh_hit_rate = fresh.get("extra", {}).get("cross_process_hit_rate")
        if seed.get("extra", {}).get(
            "cross_process_hit_rate"
        ) is not None and not fresh_hit_rate:
            failures.append(
                "%s: cross-process hit rate dropped to zero — restarted "
                "processes no longer warm-start from the persistent tier"
                % fullname
            )
        seed_warm = seed.get("extra", {}).get("warm_hit_rate")
        fresh_warm = fresh.get("extra", {}).get("warm_hit_rate")
        if seed_warm is not None and fresh_warm is not None:
            warm_floor = max(0.5, seed_warm * (1.0 - tolerance))
            if fresh_warm < warm_floor:
                failures.append(
                    "%s: warm hit rate %.3f below floor %.3f (seed %.3f) — "
                    "the semantic cache's serving rules regressed"
                    % (fullname, fresh_warm, warm_floor, seed_warm)
                )
        seed_p99 = seed.get("extra", {}).get("p99_ms")
        fresh_p99 = fresh.get("extra", {}).get("p99_ms")
        if seed_p99 and fresh_p99 and fresh_p99 > 1.0:
            if fresh_p99 > seed_p99 * (1.0 + tolerance) * 2.0:
                message = "%s: p99 latency %.2fms -> %.2fms" % (
                    fullname, seed_p99, fresh_p99,
                )
                (failures if strict_time else warnings).append(message)
        seed_mean = seed.get("stats", {}).get("mean")
        fresh_mean = fresh.get("stats", {}).get("mean")
        if seed_mean and fresh_mean and fresh_mean > 0.05:
            if fresh_mean > seed_mean * (1.0 + tolerance) * 2.0:
                message = "%s: mean time %.4fs -> %.4fs" % (
                    fullname, seed_mean, fresh_mean,
                )
                (failures if strict_time else warnings).append(message)
    for fullname in sorted(set(fresh_rows) - set(seed_rows)):
        warnings.append("%s: new row (no seed; not compared)" % fullname)
    return failures, warnings


def check_certificate_soundness(fresh_rows):
    """``predicted_nodes >= nodes`` on every fresh row recording both."""
    failures = []
    for fullname, fresh in sorted(fresh_rows.items()):
        extra = fresh.get("extra", {})
        predicted = extra.get("predicted_nodes")
        actual = extra.get("nodes")
        if predicted is None or actual is None:
            continue
        if int(actual) > int(predicted):
            failures.append(
                "%s: certificate UNSOUND: predicted bound %s < actual %s "
                "search nodes" % (fullname, predicted, actual)
            )
    return failures


def check_cost_ordering(fresh_rows, cost_margin, wall_floor_s):
    """The ``cost`` ordering's median vs the best fixed ordering, per
    suite, within one fresh run."""
    failures = []
    by_suite = {}
    for fresh in fresh_rows.values():
        extra = fresh.get("extra", {})
        suite = extra.get("suite")
        ordering = extra.get("ordering")
        median = fresh.get("stats", {}).get("median")
        if suite and ordering and median:
            by_suite.setdefault(suite, {})[ordering] = median
    for suite, medians in sorted(by_suite.items()):
        cost = medians.get("cost")
        fixed = [t for o, t in medians.items() if o != "cost"]
        if cost is None or not fixed:
            continue
        best = min(fixed)
        limit = max(best * (1.0 + cost_margin), best + wall_floor_s)
        if cost > limit:
            failures.append(
                "suite %s: cost-ordering median %.4fms exceeds the best "
                "fixed ordering's %.4fms by more than %d%% (+%.2fms floor)"
                % (suite, cost * 1000.0, best * 1000.0,
                   int(cost_margin * 100), wall_floor_s * 1000.0)
            )
    return failures


def check_union_short_circuit(fresh_rows):
    """``branches_decided <= union_width`` on contained union rows."""
    failures = []
    for fullname, fresh in sorted(fresh_rows.items()):
        extra = fresh.get("extra", {})
        width = extra.get("union_width")
        decided = extra.get("branches_decided")
        if width is None or decided is None or not extra.get("contained"):
            continue
        if int(decided) > int(width):
            failures.append(
                "%s: decided %s branch pairs for a contained union of "
                "width %s — the Sagiv-Yannakakis short-circuit broke"
                % (fullname, decided, width)
            )
    return failures


def check_chase_hit_rate(fresh_rows):
    """``chase_hit_rate`` must stay positive wherever it is recorded."""
    failures = []
    for fullname, fresh in sorted(fresh_rows.items()):
        rate = fresh.get("extra", {}).get("chase_hit_rate")
        if rate is None:
            continue
        if not rate:
            failures.append(
                "%s: chase artifact hit rate dropped to zero — witness "
                "escalation recomputes saturations instead of replaying "
                "the content-addressed chase artifact" % fullname
            )
    return failures


def check_bitset_speedup(fresh_rows, min_ratio, wall_floor_s):
    """The bitset kernel's median vs the propagating kernel's, per
    adversary suite, within one fresh run."""
    failures = []
    by_suite = {}
    for fresh in fresh_rows.values():
        extra = fresh.get("extra", {})
        suite = extra.get("suite")
        ordering = extra.get("ordering")
        median = fresh.get("stats", {}).get("median")
        if suite and ordering and median and "adversary" in suite:
            by_suite.setdefault(suite, {})[ordering] = median
    for suite, medians in sorted(by_suite.items()):
        bitset = medians.get("bitset")
        propagating = medians.get("propagating")
        if bitset is None or propagating is None:
            continue
        limit = max(propagating / min_ratio, wall_floor_s)
        if bitset > limit:
            failures.append(
                "suite %s: bitset median %.4fms is not %.1fx faster than "
                "propagating's %.4fms (limit %.4fms incl. %.2fms floor)"
                % (suite, bitset * 1000.0, min_ratio,
                   propagating * 1000.0, limit * 1000.0,
                   wall_floor_s * 1000.0)
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", default="seeds",
                        help="directory of committed seed BENCH_*.json")
    parser.add_argument("--fresh", default=".",
                        help="directory of freshly produced BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional growth (default 0.25)")
    parser.add_argument("--floor", type=int, default=100,
                        help="ignore rows whose seed node count is below "
                             "this (default 100)")
    parser.add_argument("--strict-time", action="store_true",
                        help="treat wall-time growth (and a cold/warm "
                             "speedup below the floor) as failure, not "
                             "warning")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="minimum acceptable cold/warm ratio for rows "
                             "recording one (default 2.0)")
    parser.add_argument("--cost-margin", type=float, default=0.10,
                        help="allowed fractional excess of the cost "
                             "ordering's median over the best fixed "
                             "ordering's, per suite (default 0.10)")
    parser.add_argument("--wall-floor-ms", type=float, default=1.0,
                        help="absolute grace in milliseconds added to the "
                             "cost-ordering limit so sub-millisecond "
                             "suites don't fail on jitter (default 1.0)")
    parser.add_argument("--bitset-speedup", type=float, default=2.0,
                        help="minimum median wall-time ratio of the "
                             "propagating ordering over the bitset "
                             "ordering on adversary suites (default 2.0)")
    options = parser.parse_args(argv)

    seed_files = sorted(
        name
        for name in os.listdir(options.seeds)
        if name.startswith("BENCH_") and name.endswith(".json")
    )
    if not seed_files:
        print("no seed files under %s" % options.seeds)
        return 1

    all_failures = []
    for name in seed_files:
        fresh_path = os.path.join(options.fresh, name)
        if not os.path.exists(fresh_path):
            all_failures.append("%s: fresh file missing" % name)
            continue
        fresh_rows = load_rows(fresh_path)
        failures, warnings = compare_module(
            name,
            load_rows(os.path.join(options.seeds, name)),
            fresh_rows,
            options.tolerance,
            options.floor,
            options.strict_time,
            options.min_speedup,
        )
        failures.extend(check_certificate_soundness(fresh_rows))
        failures.extend(check_cost_ordering(
            fresh_rows, options.cost_margin,
            options.wall_floor_ms / 1000.0,
        ))
        failures.extend(check_bitset_speedup(
            fresh_rows, options.bitset_speedup,
            options.wall_floor_ms / 1000.0,
        ))
        failures.extend(check_union_short_circuit(fresh_rows))
        failures.extend(check_chase_hit_rate(fresh_rows))
        for message in warnings:
            print("WARN  %s" % message)
        for message in failures:
            print("FAIL  %s" % message)
        if not failures and not warnings:
            print("ok    %s" % name)
        all_failures.extend(failures)

    if all_failures:
        print("%d regression(s)" % len(all_failures))
        return 1
    print("no regressions against %d seed file(s)" % len(seed_files))
    return 0


if __name__ == "__main__":
    sys.exit(main())
