"""E2 — weak equivalence and the exponential emptiness component.

A query with *s* set components none of which is provably non-empty has
up to 2^s truncation obligations; an empty-set-free query has exactly
one.  This module measures the blow-up and its disappearance — the
paper's observation that "this exponential component disappears" for
empty-set-free queries.
"""

import pytest

from repro.coql import weakly_equivalent
from repro.coql.containment import prepare, _obligation_patterns

from conftest import record

SCHEMA = {"r": ("a", "b"), "s": ("k", "b")}


def _query_with_children(count, linked):
    """One outer generator with *count* nested components.

    linked=False: components may be empty (grouped by x.a) →
    2^count obligations.  linked=True: components grouped over r itself
    (provably non-empty) → a single obligation.
    """
    children = []
    for i in range(count):
        if linked:
            inner = (
                "c%d: select [w: y%d.b] from y%d in r where y%d.a = x.a"
                % (i, i, i, i)
            )
        else:
            inner = (
                "c%d: select [w: y%d.b] from y%d in s where y%d.k = x.a"
                % (i, i, i, i)
            )
        children.append(inner)
    return "select [v: x.a, %s] from x in r" % ", ".join(children)


@pytest.mark.parametrize("components", [1, 2, 3, 4])
@pytest.mark.parametrize("linked", [False, True])
def test_emptiness_blowup(benchmark, components, linked):
    query = _query_with_children(components, linked)
    encoded = prepare(query, SCHEMA)
    obligations = len(list(_obligation_patterns(encoded.query)))
    verdict = benchmark(lambda: weakly_equivalent(query, query, SCHEMA))
    record(
        benchmark,
        experiment="E2",
        components=components,
        empty_set_free=linked,
        obligations=obligations,
        verdict=verdict,
    )
    assert verdict
    if linked:
        assert obligations == 1
    else:
        assert obligations == 2 ** components


@pytest.mark.parametrize("cached", [False, True], ids=["cold", "warm"])
def test_equivalence_batch_engine_cache(benchmark, cached):
    """Repeated weak-equivalence over a batch: with the engine cache on,
    the second direction of each check and every repeat are answered
    from the obligation memo, so the 2^s obligations are decided once."""
    from repro.engine import ContainmentEngine

    queries = [_query_with_children(c, linked=False) for c in (1, 2, 3)]
    if cached:
        engine = ContainmentEngine()
    else:
        engine = ContainmentEngine(prepare_cache_size=0, verdict_cache_size=0)

    def run():
        positives = 0
        for __ in range(3):
            for query in queries:
                if engine.weakly_equivalent(query, query, SCHEMA):
                    positives += 1
        return positives

    positives = benchmark(run)
    stats = engine.stats()
    record(
        benchmark,
        experiment="E2",
        cached=cached,
        positives=positives,
        obligation_cache_hits=stats.counter("obligation_cache_hits"),
        obligations_checked=stats.counter("obligations_checked"),
        homomorphism_nodes=stats.search.nodes,
    )
    assert positives == 9
    if cached:
        assert stats.counter("obligation_cache_hits") > 0
    else:
        assert stats.counter("obligation_cache_hits") == 0


@pytest.mark.parametrize("components", [2, 3])
def test_negative_weak_equivalence(benchmark, components):
    """Inequivalent pair (one component unlinked) — the decision must
    walk obligations until one fails."""
    q1 = _query_with_children(components, linked=False)
    q2 = q1.replace("y0.k = x.a", "y0.k = y0.k")  # unlink one component
    verdict = benchmark(lambda: weakly_equivalent(q1, q2, SCHEMA))
    record(benchmark, experiment="E2", components=components, verdict=verdict)
    assert not verdict
