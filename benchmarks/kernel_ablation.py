"""Kernel ablation: the bitset kernel vs the list kernel, head to head.

Runs the E11 instances (a benign reflexive simulation and the padded
pigeonhole adversary) plus a raw homomorphism enumeration under every
``ordering`` and writes one JSON report::

    python kernel_ablation.py --out out/kernel_ablation.json [--budget-s 0.5]

Per (instance, ordering) row: median wall time over ``--rounds`` timed
batches, search ``nodes``, and the verdict.  The script **fails** (exit
1) on any differential mismatch — every ordering must return the same
verdict / homomorphism count — and reports the bitset-over-propagating
speedup per instance for the artifact trail; the hard wall-time *gate*
lives in ``check_regression.py`` (``--bitset-speedup``), which compares
medians recorded by the benchmark suites proper.
"""

import argparse
import json
import statistics
import sys
from time import perf_counter

from repro.cq.homomorphism import (
    ORDERINGS,
    SearchCounters,
    count_homomorphisms,
    install_search_counters,
    use_ordering,
)
from repro.grouping import is_simulated
from repro.workloads import chain_grouping_query

from bench_simulation import padded_clique_grouping
from bench_cq_baseline import padded_pigeonhole


def _simulation_instance(sub, sup, witnesses):
    return lambda: is_simulated(sub, sup, witnesses=witnesses)


def _homomorphism_instance(source, target):
    return lambda: count_homomorphisms(source, target)


def instances():
    chain = chain_grouping_query(3)
    source, target = padded_pigeonhole(6, 2, 4)
    return {
        "reflexive_chain": _simulation_instance(
            chain, chain.rename_apart("_p"), None
        ),
        "adversary_clique": _simulation_instance(
            padded_clique_grouping(5, 2, "k5"),
            padded_clique_grouping(6, 2, "k6"),
            1,
        ),
        "adversary_homomorphism": _homomorphism_instance(source, target),
    }


def time_once(run, budget_s):
    """(median seconds per call, result) over three timed batches."""
    result = run()  # warm caches so every ordering pays the same prep
    samples = []
    for __ in range(3):
        started = perf_counter()
        calls = 0
        while perf_counter() - started < budget_s:
            run()
            calls += 1
        samples.append((perf_counter() - started) / calls)
    return statistics.median(samples), result


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="out/kernel_ablation.json")
    parser.add_argument("--budget-s", type=float, default=0.3,
                        help="wall-time budget per timed batch "
                             "(default 0.3s; three batches per row)")
    options = parser.parse_args(argv)

    rows = []
    mismatches = []
    for name, run in sorted(instances().items()):
        results = {}
        for ordering in ORDERINGS:
            sink = SearchCounters()
            previous = install_search_counters(sink)
            try:
                with use_ordering(ordering):
                    median_s, result = time_once(run, options.budget_s)
            finally:
                install_search_counters(previous)
            results[ordering] = result
            rows.append({
                "instance": name,
                "ordering": ordering,
                "median_s": median_s,
                "nodes": sink.nodes,
                "mask_intersections": sink.mask_intersections,
                "result": result,
            })
        reference = results["propagating"]
        for ordering, result in sorted(results.items()):
            if result != reference:
                mismatches.append(
                    "%s: ordering %r returned %r, propagating returned %r"
                    % (name, ordering, result, reference)
                )

    speedups = {}
    by_instance = {}
    for row in rows:
        by_instance.setdefault(row["instance"], {})[row["ordering"]] = row
    for name, per_ordering in sorted(by_instance.items()):
        speedups[name] = (
            per_ordering["propagating"]["median_s"]
            / per_ordering["bitset"]["median_s"]
        )
        print("%-24s bitset %.4fms  propagating %.4fms  (%.2fx)" % (
            name,
            per_ordering["bitset"]["median_s"] * 1000.0,
            per_ordering["propagating"]["median_s"] * 1000.0,
            speedups[name],
        ))

    report = {
        "version": 1,
        "rows": rows,
        "bitset_speedup": speedups,
        "mismatches": mismatches,
    }
    with open(options.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print("wrote %s (%d rows)" % (options.out, len(rows)))

    if mismatches:
        for message in mismatches:
            print("FAIL  %s" % message)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
