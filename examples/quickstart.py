#!/usr/bin/env python
"""Quickstart: complex objects, COQL, and containment in five minutes.

Run:  python examples/quickstart.py
"""

from repro.objects import Database, dominated
from repro.coql import (
    parse_coql,
    evaluate_coql,
    contains,
    weakly_equivalent,
)

# ----------------------------------------------------------------------
# 1. A tiny database of people and their pets (flat input relations —
#    the paper's setting; nested values appear in query *answers*).
# ----------------------------------------------------------------------
db = Database.from_dict(
    {
        "person": [
            {"name": "ann", "city": "nyc"},
            {"name": "bob", "city": "sfo"},
            {"name": "cat", "city": "nyc"},
        ],
        "pet": [
            {"owner": "ann", "species": "dog"},
            {"owner": "ann", "species": "axolotl"},
            {"owner": "bob", "species": "cat"},
        ],
    }
)
SCHEMA = {"person": ("name", "city"), "pet": ("owner", "species")}

# ----------------------------------------------------------------------
# 2. COQL: conjunctive queries whose answers are *nested* relations.
# ----------------------------------------------------------------------
owners = parse_coql(
    "select [who: p.name,"
    "        pets: select [kind: q.species] from q in pet where q.owner = p.name]"
    " from p in person"
)
answer = evaluate_coql(owners, db)
print("Nested answer:")
for element in answer:
    print("   ", element)

# ----------------------------------------------------------------------
# 3. Containment (Theorem 4.1): the Hoare order on answers, decided
#    syntactically — no databases enumerated.
# ----------------------------------------------------------------------
all_pets = (
    "select [who: p.name,"
    "        pets: select [kind: q.species] from q in pet]"
    " from p in person"
)
print()
print("owners ⊑ all_pets :", contains(all_pets, owners, SCHEMA))
print("all_pets ⊑ owners :", contains(owners, all_pets, SCHEMA))

# The verdict is semantic truth on *every* database; spot-check this one:
print(
    "spot check (Hoare order on this db):",
    dominated(answer, evaluate_coql(parse_coql(all_pets), db)),
)

# ----------------------------------------------------------------------
# 4. Weak equivalence: containment both ways.  Reformulations with
#    redundant generators are detected.
# ----------------------------------------------------------------------
redundant = (
    "select [who: p.name,"
    "        pets: select [kind: q.species] from q in pet where q.owner = p.name]"
    " from p in person, extra in person"
)
print()
print("redundant ≡w owners :", weakly_equivalent(redundant, owners, SCHEMA))
