#!/usr/bin/env python
"""The paper's phenomena, end to end.

Reproduces (with the motivating-example style of Section 2):

1. why containment of complex-object queries is *not* plain answer
   inclusion (the Hoare order and its non-antisymmetry);
2. the simulation condition with its uniform index choice — including
   the case where plain full-chain simulation holds but containment
   fails because of elements with empty inner sets (the truncation
   machinery);
3. Example A.1's outernest: nest vs outernest on the same data;
4. the Gyssens–Paredaens–Van Gucht question: deciding equivalence of
   nest;unnest sequences.

Run:  python examples/paper_examples.py
"""

from repro.objects import Database, CSet, dominated, hoare_equivalent
from repro.objects.types import RecordType, ATOM
from repro.coql import parse_coql, evaluate_coql, contains
from repro.algebra import (
    BaseRel,
    Nest,
    OuterNest,
    Pipeline,
    evaluate_algebra,
    pipelines_equivalent,
)

SCHEMA = {"r": ("a", "b"), "s": ("k", "b")}
TYPED_SCHEMA = {"r": RecordType({"a": ATOM, "b": ATOM})}


def section_1_hoare_order():
    print("1. The containment order on complex objects")
    print("   (lower/Hoare powerdomain: S ⊑ S' iff ∀x∈S ∃y∈S'. x ⊑ y)")
    left = CSet([CSet([1]), CSet([1, 2])])
    right = CSet([CSet([1, 2])])
    print("   {{1},{1,2}} ⊑ {{1,2}} :", dominated(left, right))
    print("   {{1,2}} ⊑ {{1},{1,2}} :", dominated(right, left))
    print("   mutually dominated yet different values:",
          hoare_equivalent(left, right) and left != right)
    print("   — on nested values ⊑ is a preorder, not a partial order,")
    print("     which is why equivalence and weak equivalence differ.")
    print()


def section_2_simulation_and_truncation():
    print("2. Containment needs more than full-chain simulation")
    linked = (
        "select [a: x.a, kids: select [b: y.b] from y in s where y.k = x.a]"
        " from x in r"
    )
    restricted = (
        "select [a: x.a, kids: select [b: y.b] from y in s where y.k = x.a]"
        " from x in r, z in s where z.k = x.a"
    )
    print("   Q1: groups s-partners under every r-row")
    print("   Q2: the same, but only for r-rows that have a partner")
    print("   Q2 ⊑ Q1 :", contains(linked, restricted, SCHEMA))
    print("   Q1 ⊑ Q2 :", contains(restricted, linked, SCHEMA))
    db = Database.from_dict({"r": [{"a": 7, "b": 0}], "s": [{"k": 1, "b": 5}]})
    q1_answer = evaluate_coql(parse_coql(linked), db)
    q2_answer = evaluate_coql(parse_coql(restricted), db)
    print("   witness database: r={[a:7]}, s={[k:1,b:5]}")
    print("   Q1 answer:", q1_answer)
    print("   Q2 answer:", q2_answer)
    print("   — Q1's element [a:7, kids:{}] has no counterpart in Q2:")
    print("     the per-emptiness-pattern obligations catch exactly this.")
    print()


def section_3_outernest():
    print("3. Example A.1: nest vs outernest")
    db = Database.from_dict(
        {
            "r": [{"a": 1, "b": 10}, {"a": 2, "b": 20}],
            "s": [{"k": 1, "b": 5}],
        }
    )
    nest = Nest(BaseRel("s"), ("b",), "grp")
    outer = OuterNest(BaseRel("r"), BaseRel("s"), (("a", "k"),), "grp")
    print("   ν[b→grp](s)              =", evaluate_algebra(nest, db))
    print("   outernest(r, s; a=k→grp) =", evaluate_algebra(outer, db))
    print("   — nest's groups are never empty; outernest keeps the")
    print("     unmatched r-row with an empty group, which is what COQL's")
    print("     nested subqueries produce and why Thomas–Fischer's nest")
    print("     must be replaced by outernest in the equivalence.")
    print()


def section_4_nest_unnest():
    print("4. Equivalence of nest;unnest sequences ([24], answered)")
    identity = Pipeline("r", [])
    roundtrip = Pipeline("r", [("nest", ("b",), "g"), ("unnest", "g")])
    double = Pipeline(
        "r",
        [("nest", ("b",), "g"), ("unnest", "g"), ("nest", ("a",), "h"),
         ("unnest", "h")],
    )
    renest = Pipeline(
        "r", [("nest", ("b",), "g"), ("unnest", "g"), ("nest", ("b",), "g")]
    )
    once = Pipeline("r", [("nest", ("b",), "g")])
    print("   μ∘ν ≡ id       :", pipelines_equivalent(roundtrip, identity, TYPED_SCHEMA))
    print("   μ∘ν∘μ∘ν ≡ id   :", pipelines_equivalent(double, identity, TYPED_SCHEMA))
    print("   ν∘μ∘ν ≡ ν      :", pipelines_equivalent(renest, once, TYPED_SCHEMA))
    print("   — nest (atomic attributes) never yields empty sets, so")
    print("     equivalence = weak equivalence and is NP-complete.")
    print()


if __name__ == "__main__":
    section_1_hoare_order()
    section_2_simulation_and_truncation()
    section_3_outernest()
    section_4_nest_unnest()
