#!/usr/bin/env python
"""Answering queries using nested materialized views.

The introduction motivates containment with query optimization: a
materialized view V can serve a query Q when ``Q ⊑ V`` — every element
of Q's answer is dominated by one of V's, so a rewriting only has to
filter/refine V instead of touching the base relations [12, 27].  This
example runs the test over a small catalogue of nested views.

Run:  python examples/view_reuse.py
"""

from repro.errors import IncomparableQueriesError
from repro.coql import contains

SCHEMA = {
    "orders": ("cust", "item"),
    "catalog": ("item", "category"),
    "gold": ("cust",),
}

#: Materialized views, each grouping a customer's items.
VIEWS = {
    "v_all_customers": (
        "select [c: o.cust,"
        "        items: select [i: p.item] from p in orders where p.cust = o.cust]"
        " from o in orders"
    ),
    "v_gold_customers": (
        "select [c: o.cust,"
        "        items: select [i: p.item] from p in orders where p.cust = o.cust]"
        " from o in orders, g in gold where g.cust = o.cust"
    ),
    "v_catalogued_items": (
        "select [c: o.cust,"
        "        items: select [i: p.item] from p in orders, k in catalog"
        "               where p.cust = o.cust and k.item = p.item]"
        " from o in orders"
    ),
}

#: Queries a planner would like to answer from a view.
QUERIES = {
    "q_gold_items": (
        "select [c: o.cust,"
        "        items: select [i: p.item] from p in orders where p.cust = o.cust]"
        " from o in orders, g in gold where g.cust = o.cust"
    ),
    "q_all_items": (
        "select [c: o.cust,"
        "        items: select [i: p.item] from p in orders where p.cust = o.cust]"
        " from o in orders"
    ),
}


def main():
    print("Which views can answer which queries (Q ⊑ V)?")
    print()
    for query_name, query in QUERIES.items():
        for view_name, view in VIEWS.items():
            try:
                usable = contains(view, query, SCHEMA)
            except IncomparableQueriesError:
                usable = "(incomparable shapes)"
            print("   %-14s from %-20s : %s" % (query_name, view_name, usable))
        print()
    print("Reading the table:")
    print(" * q_gold_items ⊑ v_all_customers — the broad view dominates the")
    print("   gold-only query, so a rewriting can filter the view.")
    print(" * q_all_items ⋢ v_gold_customers — the narrow view misses")
    print("   customers, and the decision procedure proves it.")
    print(" * q_all_items ⋢ v_catalogued_items — inner sets of the view drop")
    print("   uncatalogued items; domination fails inside the groups.")


if __name__ == "__main__":
    main()
