#!/usr/bin/env python
"""Nested inputs through the Section-5.1 index encoding.

The paper's decision procedures assume flat input relations; nested
inputs are first encoded as flat relations with *indexes* — every inner
set is replaced by a fresh atomic value, with a side table mapping
indexes to their members.  This example runs the full workflow: a nested
database, its encoding, querying through the indexes, and a containment
decision over the encoded schema.

Run:  python examples/nested_inputs.py
"""

from repro.objects import Database, Relation, encode_database
from repro.objects.json_io import dumps_database
from repro.coql import parse_coql, evaluate_coql, contains

nested = Database(
    [
        Relation.from_rows(
            "teams",
            [
                {"team": "blue", "members": [{"who": "ann"}, {"who": "bo"}]},
                {"team": "red", "members": [{"who": "cy"}]},
                {"team": "void", "members": []},
            ],
        )
    ]
)

print("1. The nested input relation:")
for row in nested["teams"]:
    print("   ", row)
print()

flat = encode_database(nested)
print("2. Its index encoding (all relations flat):")
for name in flat.names():
    print("   %s:" % name)
    for row in flat[name]:
        print("     ", row)
print()

print("3. Querying through the index column:")
roster = parse_coql(
    "select [t: e.team, m: c.who] from e in teams, c in teams__members"
    " where c.__index = e.members"
)
for row in evaluate_coql(roster, flat):
    print("   ", row)
print()

print("4. Containment over the encoded schema:")
wide = "select [t: e.team] from e in teams"
narrow = (
    "select [t: e.team] from e in teams, c in teams__members"
    " where c.__index = e.members"
)
print("   teams-with-members ⊑ all-teams :", contains(wide, narrow, flat))
print("   all-teams ⊑ teams-with-members :", contains(narrow, wide, flat))
print("   (the 'void' team has an empty member set: its index has no")
print("    rows in teams__members, so the narrow query misses it — and")
print("    the decision procedure proves that without looking at data.)")
print()

print("5. The encoded database as JSON (for interchange):")
print(dumps_database(flat, indent=2)[:400], "...")
