#!/usr/bin/env python
"""Checking aggregate-query rewritings (paper, Section 7).

Optimizers rewrite group-by queries (pushing group-bys past joins,
removing redundant subqueries, reusing grouped views) and previous work
[17, 13, 29, 35, 28] supplied transformation rules but no equivalence
*test*.  The paper's result: equivalence of conjunctive queries with
grouping and uninterpreted aggregates is decidable (NP-complete) — so a
rewrite can be *verified* instead of trusted.

Run:  python examples/aggregate_rewriting.py
"""

from repro.cq.parser import parse_atom
from repro.cq import Var
from repro.aggregates import (
    AggregateQuery,
    NestedAggregateQuery,
    aggregate_equivalent,
    aggregate_contained,
    nested_aggregate_equivalent,
    evaluate_aggregate,
)
from repro.workloads import random_flat_database


def atoms(*texts):
    return tuple(parse_atom(t) for t in texts)


def main():
    print("1. Verifying a redundant-join elimination")
    # SELECT g, sum(v) FROM sales s1, sales s2
    #  WHERE s1.store = s2.store GROUP BY g        -- s2 is redundant
    original = AggregateQuery(
        atoms("sales(G, V)", "sales(G, W)"), (Var("G"),), "sum", Var("V")
    )
    rewritten = AggregateQuery(
        atoms("sales(G, V)"), (Var("G"),), "sum", Var("V")
    )
    verdict = aggregate_equivalent(original, rewritten)
    print("   redundant self-join removable:", verdict)
    db = random_flat_database({"sales": 2}, rows=6, domain=3, seed=7)
    print(
        "   spot check (sum):",
        evaluate_aggregate(original, db) == evaluate_aggregate(rewritten, db),
    )
    print()

    print("2. Rejecting an unsound 'optimization'")
    # Filtering inside the group changes the aggregated set.
    filtered = AggregateQuery(
        atoms("sales(G, V)", "promo(V)"), (Var("G"),), "sum", Var("V")
    )
    print(
        "   drop the promo filter?        :",
        aggregate_equivalent(rewritten, filtered),
    )
    print(
        "   at least contained?           :",
        aggregate_contained(rewritten, filtered),
    )
    print("   — filtering within groups changes f's input; the test sees it.")
    print()

    print("3. Nested aggregation (aggregate of aggregates)")
    # per-store, per-item revenue, then per-store aggregate of those.
    body = atoms("sales3(S, I, V)")
    nested = NestedAggregateQuery(
        body, [((Var("S"),), "f"), ((Var("S"), Var("I")), "g")], Var("V")
    )
    widened = NestedAggregateQuery(
        atoms("sales3(S, I, V)", "sales3(S, I2, V2)"),
        [((Var("S"),), "f"), ((Var("S"), Var("I")), "g")],
        Var("V"),
    )
    print(
        "   redundant-atom variant equal  :",
        nested_aggregate_equivalent(nested, widened),
    )
    narrowed = NestedAggregateQuery(
        atoms("sales3(S, I, V)", "featured(I)"),
        [((Var("S"),), "f"), ((Var("S"), Var("I")), "g")],
        Var("V"),
    )
    print(
        "   featured-only variant equal   :",
        nested_aggregate_equivalent(nested, narrowed),
    )
    print("   — decided via strong simulation of the grouping trees: the")
    print("     inner aggregate value is uninterpreted, so inner groups")
    print("     must match exactly (the paper's index condition).")


if __name__ == "__main__":
    main()
