#!/usr/bin/env python
"""Explaining verdicts: certificates and counterexample databases.

``contains`` says yes/no; ``explain_containment`` shows *why*: for a
positive verdict the simulation certificates (the paper's extended
containment mappings), for a negative one a concrete database on which
the Hoare domination fails, with both answers evaluated on it.

Run:  python examples/counterexamples.py
"""

from repro.coql import explain_containment

SCHEMA = {"r": ("a", "b"), "s": ("k", "b")}

LINKED = (
    "select [a: x.a, kids: select [b: y.b] from y in s where y.k = x.a]"
    " from x in r"
)
UNLINKED = "select [a: x.a, kids: select [b: y.b] from y in s] from x in r"
RESTRICTED = LINKED + ", z in s where z.k = x.a"


def show(title, sup, sub):
    print(title)
    explanation = explain_containment(sup, sub, SCHEMA)
    if explanation.holds:
        print("   verdict: CONTAINED")
        print("   obligations discharged:", len(explanation.certificates))
        for pattern, certificate in sorted(explanation.certificates.items()):
            kept = sorted("/".join(p) or "(root)" for p in pattern)
            print(
                "     pattern %-28s certificate over %d variables"
                % (kept, len(certificate.mapping))
            )
    else:
        print("   verdict: NOT contained")
        kept = sorted("/".join(p) or "(root)" for p in explanation.failing_pattern)
        print("   failing obligation (kept nodes):", kept)
        if explanation.counterexample is not None:
            print("   counterexample database:")
            db = explanation.counterexample
            for name in db.names():
                rows = list(db[name])
                print("     %s = %s" % (name, rows if rows else "{}"))
            print("   sub answer :", explanation.sub_answer)
            print("   sup answer :", explanation.sup_answer)
    print()


if __name__ == "__main__":
    show("1. linked ⊑ unlinked (inner groups only grow)", UNLINKED, LINKED)
    show("2. unlinked ⊑ linked (fails inside the groups)", LINKED, UNLINKED)
    show(
        "3. linked ⊑ restricted (fails on elements with empty inner sets\n"
        "   — the truncated obligation catches it)",
        RESTRICTED,
        LINKED,
    )
