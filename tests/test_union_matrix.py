"""Parallel/sequential determinism for union-query matrices.

The union counterpart of ``test_semcache_matrix``: a
``pairwise_matrix`` over a workload that mixes union-free and union
queries must come out byte-identical between the sequential engine and
the sharded parallel engine — the Sagiv–Yannakakis branch order is the
source order on both paths, so verdicts, short-circuit points, and the
resulting cells agree exactly.  The constraint variant repeats the
comparison with an inclusion dependency installed on both engines and
checks the dependency flips the same cell on each.
"""

from repro.constraints import parse_constraint
from repro.engine import ContainmentEngine, ParallelContainmentEngine

SCHEMA = {"r": ("a", "b"), "s": ("a", "b")}

QUERIES = [
    "select [a: x.a] from x in r",
    "select [a: y.a] from y in s",
    "(select [a: x.a] from x in r) union (select [a: y.a] from y in s)",
    "select [a: x.a] from x in (r union s)",
    "(select [a: x.a] from x in r where x.a = x.b)"
    " union (select [a: y.a] from y in s)",
]

DEP = parse_constraint("r[a] -> s[a]")


def parallel_matrix(**kwargs):
    with ParallelContainmentEngine(jobs=2, timeout_s=120.0,
                                   **kwargs) as engine:
        return engine.pairwise_matrix(QUERIES, SCHEMA)


def test_union_matrix_parallel_is_byte_identical_to_sequential():
    matrix_seq = ContainmentEngine().pairwise_matrix(QUERIES, SCHEMA)
    matrix_par = parallel_matrix()
    assert repr(matrix_seq) == repr(matrix_par)
    for row_seq, row_par in zip(matrix_seq, matrix_par):
        for cell_seq, cell_par in zip(row_seq, row_par):
            assert cell_seq is cell_par  # identity, not mere equality


def test_union_matrix_verdicts():
    matrix = ContainmentEngine().pairwise_matrix(QUERIES, SCHEMA)
    union_rs = 2
    # The explicit union and the generator-source union are the same
    # family: mutually contained.
    assert matrix[union_rs][3] is True and matrix[3][union_rs] is True
    # Each branch is contained in the union, the union in neither branch.
    assert matrix[union_rs][0] is True and matrix[union_rs][1] is True
    assert matrix[0][union_rs] is False and matrix[1][union_rs] is False
    # Restricting one branch keeps containment one-way.
    assert matrix[union_rs][4] is True
    assert matrix[4][union_rs] is False
    # Diagonal: everything contains itself.
    assert all(matrix[i][i] is True for i in range(len(QUERIES)))


def test_union_matrix_under_constraints_agrees_and_flips():
    plain = ContainmentEngine().pairwise_matrix(QUERIES, SCHEMA)
    matrix_seq = ContainmentEngine(constraints=(DEP,)).pairwise_matrix(
        QUERIES, SCHEMA
    )
    matrix_par = parallel_matrix(constraints=(DEP,))
    assert repr(matrix_seq) == repr(matrix_par)
    for row_seq, row_par in zip(matrix_seq, matrix_par):
        for cell_seq, cell_par in zip(row_seq, row_par):
            assert cell_seq is cell_par
    # r[a] ⊆ s[a] makes the s-projection contain the r-projection —
    # a cell the unconstrained matrix decides the other way.
    assert plain[1][0] is False
    assert matrix_seq[1][0] is True
    # And transitively the restricted union collapses into plain s.
    assert plain[1][4] is False
    assert matrix_seq[1][4] is True
