"""Hypothesis differential oracle for union containment.

One direction of Theorem 4.1 checked at workload scale: whenever the
engine asserts ``sub ⊑ sup`` for randomly assembled unions, the answer
sets on a randomly generated database must be in subset order; and
whenever a database refutes the subset order, the engine must have said
False.  (The converse — engine says False but every sampled database
agrees — is not a test failure: small databases under-approximate the
canonical counterexample.)

Branches are drawn from a fixed pool of union-free selects so every
generated union typechecks; the engine is shared module-wide so the
``branch_verdict`` memo table turns the many overlapping checks into a
handful of homomorphism searches.
"""

from hypothesis import given, settings, strategies as st

from repro.coql import evaluate_coql, parse_coql
from repro.coql.containment import as_schema
from repro.engine import ContainmentEngine
from repro.objects.database import Database

SCHEMA = {"r": ("a", "b"), "s": ("a", "b")}

ROW_TYPES = as_schema({
    "r": {"a": "atom", "b": "atom"},
    "s": {"a": "atom", "b": "atom"},
})

BRANCHES = [
    "select [a: x.a] from x in r",
    "select [a: x.b] from x in r",
    "select [a: y.a] from y in s",
    "select [a: x.a] from x in r where x.a = x.b",
    "select [a: x.a] from x in r, y in s where x.a = y.a",
]

ENGINE = ContainmentEngine()


def union_of(indices):
    return " union ".join("(%s)" % BRANCHES[i] for i in indices)


def build_db(tables):
    return Database.from_dict(tables, schema=ROW_TYPES)


def answer(text, db):
    return set(evaluate_coql(parse_coql(text), db))


def row():
    return st.fixed_dictionaries({
        "a": st.integers(0, 2),
        "b": st.integers(0, 2),
    })


def database():
    return st.fixed_dictionaries({
        "r": st.lists(row(), max_size=4),
        "s": st.lists(row(), max_size=4),
    })


indices = st.lists(
    st.integers(0, len(BRANCHES) - 1), min_size=1, max_size=3, unique=True
)


@settings(max_examples=60, deadline=None)
@given(sup=indices, sub=indices, tables=database())
def test_positive_verdicts_hold_on_random_databases(sup, sub, tables):
    sup_text, sub_text = union_of(sup), union_of(sub)
    verdict = ENGINE.contains(sup_text, sub_text, SCHEMA)
    db = build_db(tables)
    sup_answer = answer(sup_text, db)
    sub_answer = answer(sub_text, db)
    if verdict is True:
        assert sub_answer <= sup_answer, (
            "engine said %r ⊑ %r but %r refutes it"
            % (sub_text, sup_text, tables)
        )
    if not sub_answer <= sup_answer:
        assert verdict is False


@settings(max_examples=40, deadline=None)
@given(sub=indices, tables=database())
def test_union_always_contains_each_branch(sub, tables):
    sup_text = union_of(sub)
    for index in sub:
        assert ENGINE.contains(sup_text, BRANCHES[index], SCHEMA) is True
    db = build_db(tables)
    sup_answer = answer(sup_text, db)
    for index in sub:
        assert answer(BRANCHES[index], db) <= sup_answer


def test_completeness_witness():
    # r ∪ s projects a-values from both relations; r alone cannot
    # contain it, and this database is the concrete refutation the
    # engine's False verdict promises to exist.
    sup = BRANCHES[0]
    sub = union_of([0, 2])
    assert ENGINE.contains(sup, sub, SCHEMA) is False
    db = build_db({"r": [], "s": [{"a": 7, "b": 7}]})
    assert not answer(sub, db) <= answer(sup, db)
