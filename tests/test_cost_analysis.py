"""Tests for the cost-certificate rules (COQL008-011), the ``repro
analyze`` / ``lint --explain`` CLI, and diagnostic-report stability.

The rules consume :mod:`repro.analysis.interp` facts rather than the
raw AST, so each gets a positive (fires) and negative (silent) case
against the interpreter's promises.  The report tests pin two
regressions: multi-line ``.coql`` source spans must survive the CLI
round trip, and JSON reports must be byte-stable (diagnostics sorted
by path, then position, then code).
"""

import json

from repro.analysis import (
    AnalysisConfig,
    DatabaseStatistics,
    Diagnostic,
    analyze,
)
from repro.cli import main
from repro.objects import Database

SCHEMA = {"r": ("a", "b"), "s": ("b", "c")}

DB = Database.from_dict({
    "r": [{"a": 1, "b": 2}, {"a": 2, "b": 3}],
    "s": [{"b": 2, "c": 10}],
})

#: A head-nested select joining two unbounded generators.
FANOUT_HAZARD = (
    "select [a: x.a, pairs: select [b: y.b, c: z.c]"
    " from y in s, z in s] from x in r"
)

NESTED_SAFE = (
    "select [a: x.a, ys: select y.c from y in s where y.b = x.b]"
    " from x in r"
)


def codes(diagnostics):
    return [d.code for d in diagnostics]


# -- COQL008: unbounded fan-out join -----------------------------------


class TestUnboundedFanout:
    def test_fires_on_nested_unbounded_join(self):
        found = [d for d in analyze(FANOUT_HAZARD, SCHEMA)
                 if d.code == "COQL008"]
        assert len(found) == 1
        assert "'y'" in found[0].message and "'z'" in found[0].message
        assert found[0].path.startswith("$.head")

    def test_silent_on_single_generator_nesting(self):
        assert "COQL008" not in codes(analyze(NESTED_SAFE, SCHEMA))

    def test_silent_on_top_level_join(self):
        flat = "select [v: x.a] from x in r, y in s where x.b = y.b"
        assert "COQL008" not in codes(analyze(flat, SCHEMA))

    def test_statistics_silence_the_rule(self):
        config = AnalysisConfig(stats=DatabaseStatistics.sample(DB))
        found = [d for d in analyze(FANOUT_HAZARD, SCHEMA, config=config)
                 if d.code == "COQL008"]
        assert found == []  # both generators now have finite bounds


# -- COQL009: interval-refuted condition -------------------------------


class TestIntervalRefutedCondition:
    DEAD = "select [v: x.a] from x in r where x.a = 5"

    def test_fires_only_with_statistics(self):
        config = AnalysisConfig(stats=DatabaseStatistics.sample(DB))
        found = [d for d in analyze(self.DEAD, SCHEMA, config=config)
                 if d.code == "COQL009"]
        assert len(found) == 1
        assert "sampled database" in found[0].message
        assert "COQL009" not in codes(analyze(self.DEAD, SCHEMA))

    def test_universal_contradictions_stay_coql002(self):
        query = "select [v: x.a] from x in r where x.a = 1 and x.a = 2"
        config = AnalysisConfig(stats=DatabaseStatistics.sample(DB))
        found = codes(analyze(query, SCHEMA, config=config))
        assert "COQL002" in found
        assert "COQL009" not in found

    def test_silent_on_satisfiable_condition(self):
        query = "select [v: x.a] from x in r where x.a = 1"
        config = AnalysisConfig(stats=DatabaseStatistics.sample(DB))
        assert "COQL009" not in codes(
            analyze(query, SCHEMA, config=config)
        )


# -- COQL010: singleton generator --------------------------------------


class TestSingletonGenerator:
    def test_fires_on_singleton_source(self):
        query = "select [v: x.a] from x in {[a: 1, b: 2]}"
        found = [d for d in analyze(query, SCHEMA)
                 if d.code == "COQL010"]
        assert len(found) == 1
        assert "'x'" in found[0].message

    def test_silent_on_relation_source(self):
        assert "COQL010" not in codes(
            analyze("select [v: x.a] from x in r", SCHEMA)
        )


# -- COQL011: certified complexity budget ------------------------------


class TestCertifiedComplexity:
    def test_fires_under_a_tiny_budget(self):
        config = AnalysisConfig(complexity_budget=0)
        found = [d for d in analyze(NESTED_SAFE, SCHEMA, config=config)
                 if d.code == "COQL011"]
        assert len(found) == 1
        message = found[0].message
        # Evidence-carrying: the certificate's own numbers.
        assert "pattern" in message and "witness stages" in message

    def test_silent_under_the_default_budget(self):
        assert "COQL011" not in codes(analyze(NESTED_SAFE, SCHEMA))


# -- diagnostic report stability (satellite: ordering fix) -------------


class TestReportOrdering:
    def test_sort_key_orders_by_position_then_code(self):
        def mk(code, path, line, col):
            span = (line, col) if line is not None else None
            return Diagnostic(code, "warning", "m", rule="x",
                              path=path, span=span)
        scrambled = [
            mk("COQL009", "$.b", 1, 1),
            mk("COQL001", "$.b", 1, 1),
            mk("COQL002", "$.a", 9, 9),
            mk("COQL002", "$.b", None, None),
            mk("COQL002", "$.b", 1, 2),
        ]
        ordered = sorted(scrambled, key=Diagnostic.sort_key)
        assert [(d.path, d.line, d.col, d.code) for d in ordered] == [
            ("$.a", 9, 9, "COQL002"),
            ("$.b", 1, 1, "COQL001"),
            ("$.b", 1, 1, "COQL009"),
            ("$.b", 1, 2, "COQL002"),
            ("$.b", None, None, "COQL002"),  # unpositioned sorts last
        ]

    def test_json_report_is_byte_stable(self, capsys):
        argv = [
            "lint", "--schema", "r:a,b;s:b,c", "--format", "json",
            "--no-minimize", FANOUT_HAZARD,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        report = json.loads(first)
        (entry,) = report["targets"]
        big = 1 << 30
        keys = [
            (
                d["path"] or "",
                d["line"] if d["line"] is not None else big,
                d["col"] if d["col"] is not None else big,
                d["code"],
            )
            for d in entry["diagnostics"]
        ]
        assert len(keys) >= 2  # the hazard trips several rules
        assert keys == sorted(keys)


# -- multi-line source spans through the CLI (satellite) ---------------


class TestMultilineSpans:
    SOURCE = (
        "# fixture: the contradiction lives on lines 5-6\n"
        "# schema: r:a,b\n"
        "select [v: x.a]\n"
        "from x in r\n"
        "where x.a = 1\n"
        "  and x.a = 2\n"
    )

    def test_lint_reports_the_later_lines(self, tmp_path, capsys):
        target = tmp_path / "multiline.coql"
        target.write_text(self.SOURCE)
        code = main(["lint", "--format", "json", str(target)])
        assert code == 1  # COQL002 is an error
        report = json.loads(capsys.readouterr().out)
        (entry,) = report["targets"]
        dead = [d for d in entry["diagnostics"] if d["code"] == "COQL002"]
        assert dead
        assert all(d["line"] is not None and d["line"] >= 5 for d in dead)

    def test_analyze_accepts_the_same_file(self, tmp_path, capsys):
        target = tmp_path / "multiline.coql"
        target.write_text(self.SOURCE)
        code = main(["analyze", str(target)])
        assert code == 0
        out = capsys.readouterr().out
        # The contradiction settles the self-containment statically
        # (the explanation stops before any search bounds).
        assert "settled statically: contained" in out


# -- CLI: lint --explain (satellite) -----------------------------------


class TestExplain:
    def test_known_code_prints_the_rule_docs(self, capsys):
        assert main(["lint", "--explain", "COQL008"]) == 0
        out = capsys.readouterr().out
        assert "COQL008 (unbounded-fanout-join)" in out
        assert "severity: warning" in out
        assert "paper:" in out
        # The check function's docstring rides along.
        assert "fan-out" in out

    def test_expensive_rules_are_flagged(self, capsys):
        assert main(["lint", "--explain", "COQL005"]) == 0
        assert "[expensive]" in capsys.readouterr().out

    def test_unknown_code_is_usage_error(self, capsys):
        assert main(["lint", "--explain", "COQL999"]) == 2
        assert "COQL999" in capsys.readouterr().err

    def test_explain_needs_no_targets_or_schema(self, capsys):
        assert main(["lint", "--explain", "COQL001"]) == 0

    def test_no_targets_without_explain_is_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert "no targets" in capsys.readouterr().err


# -- CLI: repro analyze ------------------------------------------------


class TestAnalyzeCli:
    def test_text_report(self, capsys):
        code = main(["analyze", "--schema", "r:a,b;s:b,c", NESTED_SAFE])
        assert code == 0
        out = capsys.readouterr().out
        assert "cost certificate" in out
        assert "total node bound" in out
        assert "fan-out" in out

    def test_json_report_is_schema_stable(self, capsys):
        code = main([
            "analyze", "--schema", "r:a,b;s:b,c", "--format", "json",
            NESTED_SAFE,
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 1
        assert report["summary"] == {"targets": 1, "over_budget": 0}
        (entry,) = report["targets"]
        certificate = entry["certificate"]
        for key in ("total_bound", "search_bound", "components",
                    "witness_stages", "patterns"):
            assert key in certificate
        assert entry["facts"] is not None

    def test_budget_violation_is_exit_one(self, capsys):
        code = main([
            "analyze", "--schema", "r:a,b;s:b,c", "--budget", "0",
            NESTED_SAFE,
        ])
        assert code == 1
        assert "OVER BUDGET" in capsys.readouterr().out

    def test_against_bounds_the_pair_check(self, capsys):
        code = main([
            "analyze", "--schema", "r:a,b",
            "--against", "select [v: x.a] from x in r",
            "select [v: x.a] from x in r, y in r where y.a = x.a",
        ])
        assert code == 0
        assert "total node bound" in capsys.readouterr().out

    def test_data_enables_statistics(self, tmp_path, capsys):
        data = tmp_path / "db.json"
        data.write_text(json.dumps({
            "r": [{"a": 1, "b": 2}],
            "s": [{"b": 2, "c": 10}],
        }))
        code = main([
            "analyze", "--schema", "r:a,b;s:b,c", "--data", str(data),
            "--format", "json", NESTED_SAFE,
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        (entry,) = report["targets"]
        # With one r-row and one s-row the output cardinality is pinned.
        assert entry["certificate"]["output_cardinality"]["hi"] == 1

    def test_missing_schema_is_usage_error(self, capsys):
        assert main(["analyze", NESTED_SAFE]) == 2
        assert "no schema" in capsys.readouterr().err

    def test_parse_error_is_usage_error(self, capsys):
        assert main(
            ["analyze", "--schema", "r:a,b", "select from x in"]
        ) == 2
