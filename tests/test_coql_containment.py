"""Tests for COQL containment / weak equivalence (Theorems 4.1, 4.2).

Includes the empirical validation backbone:

* encoder vs interpreter — the Section-5 encoding evaluates to exactly
  the interpreter's answer on random databases;
* containment vs Hoare order — a positive verdict implies answer
  domination on every sampled database; negative verdicts are probed for
  semantic refutations;
* truncation necessity — the case where full simulation holds but
  containment fails because of elements with empty inner sets.
"""

import random

import pytest

from repro.errors import IncomparableQueriesError, UnsupportedQueryError
from repro.objects import Database, Record, CSet, dominated
from repro.coql import (
    parse_coql,
    evaluate_coql,
    contains,
    weakly_equivalent,
    equivalent,
    empty_set_free,
)
from repro.coql.containment import prepare
from repro.coql.encode import reconstruct_value
from repro.grouping.semantics import node_groups
from repro.workloads import random_coql

SCHEMA = {"r": ("a", "b"), "s": ("k", "b")}


def random_named_db(seed, rows=4, domain=3):
    rng = random.Random(seed)
    tables = {}
    for name, attrs in SCHEMA.items():
        tables[name] = [
            {attr: rng.randrange(domain) for attr in attrs} for __ in range(rows)
        ]
    return Database.from_dict(tables)


LINKED = (
    "select [a: x.a, kids: select [b: y.b] from y in s where y.k = x.a]"
    " from x in r"
)
UNLINKED = (
    "select [a: x.a, kids: select [b: y.b] from y in s] from x in r"
)


class TestContainmentBasics:
    def test_linked_below_unlinked(self):
        assert contains(UNLINKED, LINKED, SCHEMA)
        assert not contains(LINKED, UNLINKED, SCHEMA)

    def test_self_containment(self):
        assert contains(LINKED, LINKED, SCHEMA)
        assert weakly_equivalent(LINKED, LINKED, SCHEMA)

    def test_flat_containment_matches_cq_world(self):
        narrow = "select [v: x.a] from x in r, y in s where x.a = y.k"
        wide = "select [v: x.a] from x in r"
        assert contains(wide, narrow, SCHEMA)
        assert not contains(narrow, wide, SCHEMA)

    def test_incomparable_shapes_raise(self):
        with pytest.raises(IncomparableQueriesError):
            contains("select [v: x.a] from x in r",
                     "select [w: x.a] from x in r", SCHEMA)

    def test_empty_query_contained_in_everything(self):
        empty = "select [v: x.a] from x in r where 1 = 2"
        some = "select [v: x.a] from x in r"
        assert contains(some, empty, SCHEMA)
        assert not contains(empty, some, SCHEMA)
        assert weakly_equivalent(empty, empty, SCHEMA)

    def test_empty_inner_component(self):
        with_empty = "select [a: x.a, kids: {}] from x in r"
        assert contains(LINKED, with_empty, SCHEMA)
        assert not contains(with_empty, LINKED, SCHEMA)
        assert weakly_equivalent(with_empty, with_empty, SCHEMA)

    def test_truncation_is_necessary(self):
        """Full simulation holds but containment fails: Q1's elements
        with empty inner sets have no counterpart in Q2.  This is the
        paper's reason containment needs the per-emptiness-pattern
        obligations."""
        q2 = (
            "select [a: x.a, kids: select [b: y.b] from y in s where y.k = x.a]"
            " from x in r, z in s where z.k = x.a"
        )
        # Q2 ⊑ Q1: Q2's rows are a subset, groups identical.
        assert contains(LINKED, q2, SCHEMA)
        # Q1 ⋢ Q2: the element (a, {}) exists for r-rows with no s partner.
        assert not contains(q2, LINKED, SCHEMA)
        # Semantic witness:
        db = Database.from_dict(
            {"r": [{"a": 7, "b": 0}], "s": [{"k": 1, "b": 5}]}
        )
        left = evaluate_coql(parse_coql(LINKED), db)
        right = evaluate_coql(parse_coql(q2), db)
        assert not dominated(left, right)

    def test_inner_constant_restriction(self):
        narrow = (
            "select [a: x.a, kids: select [b: y.b] from y in s "
            "where y.k = x.a and y.b = 1] from x in r"
        )
        assert contains(UNLINKED, narrow, SCHEMA)
        assert contains(LINKED, narrow, SCHEMA)
        assert not contains(narrow, LINKED, SCHEMA)

    def test_set_of_sets(self):
        q1 = "select (select {y.b} from y in s where y.k = x.a) from x in r"
        assert weakly_equivalent(q1, q1, SCHEMA)

    def test_outer_outer_condition_in_nested_query_unsupported(self):
        gated = (
            "select [a: x.a, kids: select [b: y.b] from y in s "
            "where x.a = x.b] from x in r"
        )
        with pytest.raises(UnsupportedQueryError):
            contains(gated, gated, SCHEMA)


class TestEmptySetFreedom:
    def test_unlinked_inner_is_not_provably_nonempty(self):
        assert not empty_set_free(LINKED, SCHEMA)
        assert not empty_set_free(UNLINKED, SCHEMA)

    def test_self_grouping_is_empty_set_free(self):
        # The nest idiom: group rows of r by a; groups contain at least
        # the originating row.
        nest = (
            "select [a: x.a, grp: select [b: y.b] from y in r where y.a = x.a]"
            " from x in r"
        )
        assert empty_set_free(nest, SCHEMA)

    def test_flat_queries_are_empty_set_free(self):
        assert empty_set_free("select [v: x.a] from x in r", SCHEMA)

    def test_equivalent_on_empty_set_free(self):
        nest1 = (
            "select [a: x.a, grp: select [b: y.b] from y in r where y.a = x.a]"
            " from x in r"
        )
        nest2 = (
            "select [a: z.a, grp: select [b: w.b] from w in r where w.a = z.a]"
            " from z in r"
        )
        assert equivalent(nest1, nest2, SCHEMA)

    def test_equivalent_raises_otherwise(self):
        with pytest.raises(UnsupportedQueryError):
            equivalent(LINKED, LINKED, SCHEMA)


class TestEncoderAgainstInterpreter:
    """The Section-5 encoding is validated against the interpreter."""

    @pytest.mark.parametrize("depth", [1, 2])
    def test_random_queries_random_databases(self, depth):
        checked = 0
        for seed in range(60):
            text = random_coql(seed=seed, depth=depth)
            expr = parse_coql(text)
            encoded = prepare(text, SCHEMA)
            if encoded.is_empty:
                continue
            for db_seed in range(4):
                db = random_named_db(db_seed)
                direct = evaluate_coql(expr, db)
                groups = node_groups(encoded.query, db)
                rebuilt = reconstruct_value(encoded, groups)
                assert rebuilt == direct, (text, db_seed)
            checked += 1
        assert checked >= 50

    def test_worked_example(self):
        db = Database.from_dict(
            {
                "r": [{"a": 1, "b": 0}, {"a": 9, "b": 0}],
                "s": [{"k": 1, "b": 5}],
            }
        )
        encoded = prepare(LINKED, SCHEMA)
        groups = node_groups(encoded.query, db)
        rebuilt = reconstruct_value(encoded, groups)
        assert rebuilt == CSet(
            [
                Record(a=1, kids=CSet([Record(b=5)])),
                Record(a=9, kids=CSet()),
            ]
        )


class TestContainmentAgainstSemantics:
    """Verdicts cross-checked against the Hoare order on answers."""

    @pytest.mark.parametrize("depth", [1, 2])
    def test_soundness(self, depth):
        positive = 0
        for seed in range(25):
            q1 = random_coql(seed=seed, depth=depth)
            q2 = random_coql(seed=seed + 3000, depth=depth)
            pairs = [(q1, q2)]
            if seed % 4 == 0:
                pairs.append((q1, q1))  # guaranteed-positive pair
            for sub_text, sup_text in pairs:
                try:
                    verdict = contains(sup_text, sub_text, SCHEMA)
                except IncomparableQueriesError:
                    continue
                if not verdict:
                    continue
                positive += 1
                sub_expr, sup_expr = parse_coql(sub_text), parse_coql(sup_text)
                for db_seed in range(5):
                    db = random_named_db(db_seed)
                    assert dominated(
                        evaluate_coql(sub_expr, db), evaluate_coql(sup_expr, db)
                    ), (sub_text, sup_text, db_seed)
        assert positive >= 5

    @pytest.mark.parametrize("depth", [1, 2])
    def test_negative_verdicts_usually_refutable(self, depth):
        """A False verdict should usually be witnessed by a database where
        domination fails (random probing; not every counterexample is
        found, so this asserts a healthy refutation rate, not 100%)."""
        negatives = 0
        refuted = 0
        for seed in range(20):
            q1 = random_coql(seed=seed, depth=depth)
            q2 = random_coql(seed=seed + 3000, depth=depth)
            try:
                if contains(q2, q1, SCHEMA):
                    continue
            except IncomparableQueriesError:
                continue
            negatives += 1
            e1, e2 = parse_coql(q1), parse_coql(q2)
            for db_seed in range(25):
                db = random_named_db(db_seed, rows=5, domain=3)
                if not dominated(evaluate_coql(e1, db), evaluate_coql(e2, db)):
                    refuted += 1
                    break
        assert negatives >= 5
        assert refuted >= negatives * 0.6


class TestConservativity:
    """COQL over flat relations = conjunctive queries (the paper's
    conservativity claim after [43])."""

    def test_flat_verdicts_match_cq_containment(self):
        from repro.cq import parse_query, contains as cq_contains

        pairs = [
            (
                "select [v: x.a] from x in r",
                "q(V) :- r(V, B)",
                "select [v: x.a] from x in r, y in s where x.a = y.k",
                "q(V) :- r(V, B), s(B2, V)",
            ),
        ]
        coql_wide, cq_wide, coql_narrow, cq_narrow = pairs[0]
        assert contains(coql_wide, coql_narrow, SCHEMA) is cq_contains(
            parse_query(cq_wide), parse_query(cq_narrow)
        )
        assert contains(coql_narrow, coql_wide, SCHEMA) is cq_contains(
            parse_query(cq_narrow), parse_query(cq_wide)
        )
