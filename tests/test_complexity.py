"""Tests for the NP-hardness reductions and the SAT oracle."""

import pytest

from repro.cq import contains
from repro.grouping import is_simulated
from repro.complexity import (
    solve_sat,
    random_3sat,
    coloring_to_containment,
    sat_to_containment,
    coloring_to_simulation,
    random_graph,
    greedy_is_colorable,
)


class TestSat:
    def test_satisfiable(self):
        assert solve_sat([(1, 2), (-1, 2), (1, -2)]) is not None

    def test_unsatisfiable(self):
        clauses = [(1, 2), (1, -2), (-1, 2), (-1, -2)]
        assert solve_sat(clauses) is None

    def test_model_satisfies(self):
        clauses = random_3sat(6, 12, seed=3)
        model = solve_sat(clauses)
        if model is not None:
            for clause in clauses:
                assert any(
                    model.get(abs(lit), False) == (lit > 0) for lit in clause
                )

    def test_empty_formula(self):
        assert solve_sat([]) == {}


class TestColoringReduction:
    def test_triangle_is_colorable(self):
        edges = ((0, 1), (1, 2), (0, 2))
        sub, sup = coloring_to_containment(edges)
        assert contains(sup, sub)

    def test_k4_is_not_colorable(self):
        edges = tuple(
            (i, j) for i in range(4) for j in range(i + 1, 4)
        )
        sub, sup = coloring_to_containment(edges)
        assert not contains(sup, sub)

    def test_odd_cycle_plus(self):
        # 5-cycle is 3-colorable.
        edges = tuple((i, (i + 1) % 5) for i in range(5))
        sub, sup = coloring_to_containment(edges)
        assert contains(sup, sub)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_exact_oracle(self, seed):
        edges = random_graph(7, 11, seed=seed)
        sub, sup = coloring_to_containment(edges)
        assert contains(sup, sub) is greedy_is_colorable(edges)

    @pytest.mark.parametrize("seed", range(4))
    def test_simulation_lift_matches(self, seed):
        edges = random_graph(6, 9, seed=seed)
        sub, sup = coloring_to_simulation(edges)
        assert is_simulated(sub, sup, witnesses=1) is greedy_is_colorable(edges)


class TestSatReduction:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_dpll(self, seed):
        clauses = random_3sat(5, 9, seed=seed)
        sub, sup = sat_to_containment(clauses)
        assert contains(sup, sub) is (solve_sat(clauses) is not None)

    def test_forced_assignment(self):
        clauses = [(1,), (-1, 2), (-2, 3)]
        sub, sup = sat_to_containment(clauses)
        assert contains(sup, sub)

    def test_contradiction(self):
        clauses = [(1,), (-1,)]
        sub, sup = sat_to_containment(clauses)
        assert not contains(sup, sub)
