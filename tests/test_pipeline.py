"""The staged compilation pipeline: content-addressed artifact store,
process-portable fingerprints, per-stage tracing, and the single-prepare
guarantee (module-level prepare == the engine's pipeline, uncached)."""

import json
import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.coql.containment import prepare
from repro.engine import ContainmentEngine
from repro.pipeline import (
    MISSING,
    STAGES,
    TIMED_STAGES,
    ArtifactStore,
    KindView,
    Pipeline,
    artifact_key,
    fingerprint,
    stage_table,
)

SCHEMA = {"r": ("a", "b"), "s": ("k", "b")}

LINKED = (
    "select [a: x.a, kids: select [b: y.b] from y in r where y.a = x.a]"
    " from x in r"
)
WIDER = "select [a: x.a, kids: select [b: y.b] from y in s] from x in r"
FLAT = "select [v: x.a] from x in r"

DEPTH3 = (
    "select [a: x.a,"
    " mids: select [k: y.k,"
    "  leaves: select [b: z.b] from z in s where z.k = y.k]"
    " from y in s where y.k = x.a]"
    " from x in r"
)


# -- ArtifactStore semantics (the old _LRUCache contract) ---------------


class TestArtifactStore:
    def test_lookup_miss_then_hit(self):
        store = ArtifactStore()
        assert store.lookup("prepare", "k") is MISSING
        store.store("prepare", "k", "artifact")
        assert store.lookup("prepare", "k") == "artifact"
        counters = store.counters()["prepare"]
        assert counters == {"hits": 1, "misses": 1, "evictions": 0}

    def test_none_and_false_are_storable_values(self):
        store = ArtifactStore()
        store.store("verdicts", "k1", None)
        store.store("verdicts", "k2", False)
        assert store.lookup("verdicts", "k1") is None
        assert store.lookup("verdicts", "k2") is False

    def test_maxsize_zero_disables(self):
        store = ArtifactStore(limits={"prepare": 0})
        store.store("prepare", "k", "artifact")
        assert store.lookup("prepare", "k") is MISSING
        assert store.sizes()["prepare"] == 0
        # Other kinds are unaffected.
        store.store("targets", "k", "t")
        assert store.lookup("targets", "k") == "t"

    def test_maxsize_none_is_unbounded(self):
        store = ArtifactStore(limits={"nonempty": None}, default_maxsize=2)
        for i in range(50):
            store.store("nonempty", i, i)
        assert store.sizes()["nonempty"] == 50
        assert store.counters()["nonempty"]["evictions"] == 0

    def test_lru_eviction_order(self):
        store = ArtifactStore(limits={"prepare": 2})
        store.store("prepare", "a", 1)
        store.store("prepare", "b", 2)
        assert store.lookup("prepare", "a") == 1  # refresh a
        store.store("prepare", "c", 3)  # evicts b, the LRU entry
        assert store.lookup("prepare", "b") is MISSING
        assert store.lookup("prepare", "a") == 1
        assert store.lookup("prepare", "c") == 3
        assert store.counters()["prepare"]["evictions"] == 1

    def test_per_kind_isolation(self):
        # A flood of one kind must never evict another kind's entries.
        store = ArtifactStore(limits={"prepare": 4, "verdicts": 2})
        store.store("prepare", "p", "enc")
        for i in range(20):
            store.store("verdicts", i, bool(i % 2))
        assert store.lookup("prepare", "p") == "enc"
        assert store.sizes() == {"prepare": 1, "verdicts": 2}

    def test_clear_keeps_tallies(self):
        store = ArtifactStore()
        store.store("prepare", "k", "v")
        store.lookup("prepare", "k")
        store.lookup("prepare", "absent")
        store.clear()
        assert store.sizes()["prepare"] == 0
        assert len(store) == 0
        counters = store.counters()["prepare"]
        assert (counters["hits"], counters["misses"]) == (1, 1)

    def test_clear_single_kind(self):
        store = ArtifactStore()
        store.store("prepare", "k", "v")
        store.store("targets", "k", "v")
        store.clear("prepare")
        assert store.sizes() == {"prepare": 0, "targets": 1}

    def test_reset_counters_keeps_entries(self):
        store = ArtifactStore()
        store.store("prepare", "k", "v")
        store.lookup("prepare", "k")
        store.reset_counters()
        assert store.counters()["prepare"] == {
            "hits": 0, "misses": 0, "evictions": 0,
        }
        assert store.lookup("prepare", "k") == "v"  # entry survived

    def test_hit_rates_none_before_any_lookup(self):
        store = ArtifactStore(limits={"prepare": 8})
        assert store.hit_rates()["prepare"] is None
        store.lookup("prepare", "absent")
        assert store.hit_rates()["prepare"] == 0.0
        store.store("prepare", "k", "v")
        store.lookup("prepare", "k")
        assert store.hit_rates()["prepare"] == 0.5

    def test_limit_is_non_mutating(self):
        # Regression: limit() used to materialize an empty segment for
        # a never-used kind, polluting sizes()/counters()/hit_rates()
        # (and every JSON stats consumer downstream).
        store = ArtifactStore(default_maxsize=7)
        assert store.limit("never_used") == 7
        assert store.sizes() == {}
        assert store.counters() == {}
        assert store.hit_rates() == {}

    def test_clear_unknown_kind_is_non_mutating(self):
        store = ArtifactStore()
        store.store("prepare", "k", "v")
        store.clear("never_used")
        assert set(store.sizes()) == {"prepare"}
        assert set(store.counters()) == {"prepare"}

    def test_accounting_reports_only_used_kinds(self):
        # Configured kinds are reported from construction (their bounds
        # were explicitly set); everything else appears only after a
        # store or a lookup.
        store = ArtifactStore(limits={"prepare": 4})
        assert set(store.sizes()) == {"prepare"}
        store.limit("targets")
        store.clear("targets")
        assert set(store.sizes()) == {"prepare"}
        store.lookup("targets", "k")  # a miss is real usage
        assert set(store.sizes()) == {"prepare", "targets"}
        assert store.counters()["targets"]["misses"] == 1

    def test_limit_reports_configured_bounds(self):
        store = ArtifactStore(limits={"prepare": 4, "off": 0,
                                      "wide": None})
        assert store.limit("prepare") == 4
        assert store.limit("off") == 0
        assert store.limit("wide") is None
        assert store.limit("other") == 1024

    def test_kind_view_mapping_protocol(self):
        store = ArtifactStore()
        view = KindView(store, "targets")
        key = ("structural", ("key", 3))
        assert view.get(key) is None
        assert view.get(key, "default") == "default"
        view[key] = "compiled"
        assert view.get(key) == "compiled"
        assert len(view) == 1


class TestEngineStoreSemantics:
    """The engine-level cache contract, now routed through the store."""

    def test_cache_sizes_keys_are_stable(self):
        engine = ContainmentEngine()
        assert set(engine.cache_sizes()) == {
            "prepare", "obligation_verdicts", "nonempty", "targets",
            "cost_certificate", "branch_verdict", "chase",
        }

    def test_reset_stats_keeps_entries_and_zeroes_store_tallies(self):
        engine = ContainmentEngine()
        engine.contains(WIDER, LINKED, SCHEMA)
        sizes = engine.cache_sizes()
        assert sizes["prepare"] == 2
        engine.reset_stats()
        assert engine.cache_sizes() == sizes
        assert all(
            tally == {"hits": 0, "misses": 0, "evictions": 0}
            for tally in engine.store().counters().values()
        )
        engine.contains(WIDER, LINKED, SCHEMA)
        assert engine.stats().counter("prepare_hits") == 2

    def test_clear_caches_drops_entries_keeps_stats(self):
        engine = ContainmentEngine()
        engine.contains(WIDER, LINKED, SCHEMA)
        before = engine.stats().counter("prepare_misses")
        engine.clear_caches()
        assert sum(engine.cache_sizes().values()) == 0
        assert engine.stats().counter("prepare_misses") == before
        engine.contains(WIDER, LINKED, SCHEMA)
        assert engine.stats().counter("prepare_misses") == before + 2

    def test_disabled_caches_still_decide_correctly(self):
        engine = ContainmentEngine(
            prepare_cache_size=0, verdict_cache_size=0, target_cache_size=0
        )
        reference = ContainmentEngine()
        for sup, sub in [(WIDER, LINKED), (LINKED, WIDER), (FLAT, FLAT)]:
            assert engine.contains(sup, sub, SCHEMA) == reference.contains(
                sup, sub, SCHEMA
            )
        assert sum(engine.cache_sizes().values()) == 0

    def test_shared_store_shares_prepared_artifacts(self):
        store = ArtifactStore()
        first = ContainmentEngine(store=store)
        second = ContainmentEngine(store=store)
        first.contains(WIDER, LINKED, SCHEMA)
        second.contains(WIDER, LINKED, SCHEMA)
        assert second.stats().counter("prepare_hits") == 2
        assert second.stats().counter("prepare_misses") == 0
        assert second.stats().counter("obligation_cache_hits") >= 1

    def test_view_catalog_accepts_shared_store(self):
        from repro.coql import ViewCatalog

        store = ArtifactStore()
        engine = ContainmentEngine(store=store)
        engine.contains(WIDER, LINKED, SCHEMA)
        catalog = ViewCatalog(SCHEMA, views={"wide": WIDER}, store=store)
        catalog.analyze(LINKED)
        assert catalog.engine().stats().counter("prepare_hits") >= 2


# -- fingerprints: deterministic, structural, process-portable ----------


def _key_in_subprocess(query, schema, name):
    return Pipeline().prepare_key(query, schema, name)


class TestFingerprint:
    def test_equal_structures_equal_digests(self):
        from repro.coql import parse_coql

        assert fingerprint(parse_coql(LINKED)) == fingerprint(
            parse_coql(LINKED)
        )
        assert fingerprint(parse_coql(LINKED)) != fingerprint(
            parse_coql(WIDER)
        )

    def test_spans_do_not_participate(self):
        # The same query with different surface placement parses to ASTs
        # with different source spans; the fingerprint must not see them.
        from repro.coql import parse_coql

        shifted = "   " + FLAT.replace(" from", "  from")
        assert fingerprint(parse_coql(FLAT)) == fingerprint(
            parse_coql(shifted)
        )

    def test_unordered_containers_are_canonicalized(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint(
            {"b": 2, "a": 1}
        )
        assert fingerprint(frozenset({1, 2, 3})) == fingerprint(
            frozenset({3, 2, 1})
        )

    def test_type_distinctions_survive(self):
        assert fingerprint((1, 2)) != fingerprint((1, "2"))
        assert fingerprint(True) != fingerprint(1)
        assert fingerprint(()) != fingerprint(frozenset())

    def test_tuple_and_list_never_collide(self):
        # Regression: tuples and lists shared the T tag, so ("a",) and
        # ["a"] fingerprinted identically and one artifact could alias
        # across kinds keying on either sequence shape.
        assert fingerprint(("a",)) != fingerprint(["a"])
        assert fingerprint(()) != fingerprint([])
        assert fingerprint((1, (2, 3))) != fingerprint((1, [2, 3]))
        assert artifact_key("k", ("a",)) != artifact_key("k", ["a"])

    def test_float_policy_structural_equality(self):
        # Pinned policy: structurally equal floats share a digest.
        assert fingerprint(-0.0) == fingerprint(0.0)
        assert fingerprint(float("nan")) == fingerprint(float("nan"))
        assert fingerprint(float("nan")) == fingerprint(-float("nan"))
        # ...but numeric equality across types still does not unify.
        assert fingerprint(1.0) != fingerprint(1)
        assert fingerprint(0.5) != fingerprint(0.25)
        assert fingerprint(float("inf")) != fingerprint(float("-inf"))

    def test_sequence_collision_property(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        atoms = st.one_of(
            st.none(), st.booleans(), st.integers(),
            st.floats(allow_nan=False), st.text(max_size=8),
        )
        nested = st.recursive(
            atoms,
            lambda inner: st.one_of(
                st.lists(inner, max_size=4),
                st.tuples(inner), st.tuples(inner, inner),
            ),
            max_leaves=10,
        )

        @settings(max_examples=200, deadline=None)
        @given(st.lists(nested, max_size=4))
        def check(items):
            # A sequence as a tuple vs. as a list must never collide,
            # and converting any nested list level changes the digest.
            assert fingerprint(tuple(items)) != fingerprint(list(items))

        check()

    def test_fingerprint_matches_structural_equality_property(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        scalars = st.one_of(
            st.none(), st.booleans(), st.integers(min_value=-99,
                                                  max_value=99),
            st.sampled_from([0.0, -0.0, 1.5, float("nan")]),
            st.sampled_from(["a", "b", ""]),
        )

        @settings(max_examples=200, deadline=None)
        @given(st.tuples(scalars, scalars), st.tuples(scalars, scalars))
        def check(left, right):
            def canon(v):
                # The documented policy's notion of structural equality:
                # type-tagged, with -0.0≡0.0 and all NaNs identified.
                def one(x):
                    if isinstance(x, float):
                        if x != x:
                            return ("float", "nan")
                        return ("float", x + 0.0)
                    return (type(x).__name__, x)
                return tuple(one(x) for x in v)

            same = canon(left) == canon(right)
            assert (fingerprint(left) == fingerprint(right)) == same

        check()

    def test_artifact_key_separates_kinds(self):
        assert artifact_key("prepare", "q") != artifact_key("targets", "q")

    def test_rejects_unencodable_objects(self):
        with pytest.raises(TypeError):
            fingerprint(object())

    def test_keys_are_identical_across_processes(self):
        # Spawned workers start a fresh interpreter with its own hash
        # salt — content-addressed keys must come out bit-identical
        # anyway, or the parallel engine's workers and the parent would
        # never agree on cache entries.
        parent_keys = [
            Pipeline().prepare_key(text, SCHEMA, "q")
            for text in (LINKED, WIDER, DEPTH3)
        ]
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
            worker_keys = [
                pool.submit(_key_in_subprocess, text, SCHEMA, "q").result()
                for text in (LINKED, WIDER, DEPTH3)
            ]
        assert parent_keys == worker_keys
        assert len(set(parent_keys)) == 3

    def test_worker_computed_key_hits_parent_store(self):
        # The cross-process cache-hit guarantee: an artifact prepared in
        # the parent is found under the key a worker computes.
        engine = ContainmentEngine()
        engine.prepare(DEPTH3, SCHEMA)
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
            key = pool.submit(
                _key_in_subprocess, DEPTH3, SCHEMA, "q"
            ).result()
        assert engine.store().lookup("prepare", key) is not MISSING


# -- one prepare implementation -----------------------------------------


class TestSinglePrepare:
    def test_module_prepare_is_the_uncached_pipeline(self):
        reference = prepare(LINKED, SCHEMA)
        engine = ContainmentEngine()
        cached = engine.prepare(LINKED, SCHEMA)
        assert fingerprint(reference.query) == fingerprint(cached.query)
        assert reference.shape == cached.shape

    def test_module_prepare_never_caches(self):
        first = prepare(LINKED, SCHEMA)
        second = prepare(LINKED, SCHEMA)
        assert first is not second
        engine = ContainmentEngine()
        assert engine.prepare(LINKED, SCHEMA) is engine.prepare(
            LINKED, SCHEMA
        )

    def test_uncached_pipeline_stores_nothing(self):
        pipeline = Pipeline(store=None)
        pipeline.prepare(LINKED, SCHEMA)
        assert pipeline.store is None


# -- stage declarations --------------------------------------------------


class TestStageDeclarations:
    def test_dag_covers_the_decision_procedure(self):
        names = [stage.name for stage in STAGES]
        assert names == [
            "parse", "typecheck", "analyze", "encode", "build_grouping",
            "minimize", "expand_family", "chase", "enumerate_obligations",
            "compile_target", "decide", "reduce_union", "analyze_cost",
        ]
        assert set(stage_table()) == set(names)

    def test_every_stage_cites_the_paper(self):
        assert all(stage.paper for stage in STAGES)

    def test_cached_stages_declare_their_keys(self):
        for stage in STAGES:
            if stage.cache_kind is not None:
                assert stage.cache_key, stage.name

    def test_cache_kinds_match_engine_cache_names(self):
        kinds = {s.cache_kind for s in STAGES if s.cache_kind}
        # The four legacy engine caches plus the text-keyed parse memo
        # (internal to the pipeline; not surfaced by cache_sizes()).
        assert kinds == {
            "parse", "prepare", "obligation_verdicts", "nonempty", "targets",
            "cost_certificate", "branch_verdict", "chase",
        }

    def test_parse_stage_returns_shared_ast_on_hit(self):
        pipeline = Pipeline.with_default_store()
        first = pipeline.parse(LINKED)
        second = pipeline.parse(LINKED)
        assert first is second
        assert Pipeline(store=None).parse(LINKED) is not first


# -- tracing: the timers are a view over the trace -----------------------


class TestTracing:
    def _worked_engine(self):
        engine = ContainmentEngine()
        engine.contains(WIDER, LINKED, SCHEMA)
        engine.contains(WIDER, LINKED, SCHEMA)  # warm: cache-hit spans
        engine.contains(DEPTH3, DEPTH3, SCHEMA)  # depth-3 workload
        engine.weakly_equivalent(LINKED, LINKED, SCHEMA)
        return engine

    def test_one_root_span_per_public_decision(self):
        engine = self._worked_engine()
        roots = engine.tracer().roots()
        assert [r.stage for r in roots] == ["check"] * 4
        assert [r.label for r in roots] == [
            "contains", "contains", "contains", "weakly_equivalent",
        ]

    def test_span_durations_reconcile_with_stats_timers(self):
        # The acceptance invariant: summing span durations per stage
        # reproduces the EngineStats timers exactly, because the tracer
        # is the only writer of add_time.
        engine = self._worked_engine()
        stats = engine.stats()
        summed = {}
        for event in engine.tracer().events():
            if event.stage in TIMED_STAGES:
                summed[event.stage] = (
                    summed.get(event.stage, 0.0) + event.duration
                )
        assert summed  # the workload exercised timed stages
        for stage, seconds in summed.items():
            assert stats.time(stage) == pytest.approx(seconds, rel=1e-9)
        for stage, seconds in stats.timers.items():
            assert seconds == pytest.approx(summed.get(stage, 0.0))

    def test_stage_summary_counts_cache_outcomes(self):
        engine = self._worked_engine()
        summary = engine.tracer().stage_summary()
        assert summary["prepare"]["hits"] >= 2
        assert summary["prepare"]["misses"] >= 2
        assert summary["check"]["runs"] == 4

    def test_chrome_trace_is_valid_and_complete(self, tmp_path):
        engine = self._worked_engine()
        path = tmp_path / "trace.json"
        engine.tracer().write_chrome_trace(str(path))
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0.0
            assert event["ts"] >= 0.0
            assert isinstance(event["pid"], int)
            assert event["name"]
        # Chrome times are microseconds: the per-stage totals match the
        # stats timers (and therefore the trace tree) to float precision.
        stats = engine.stats()
        by_stage = {}
        for event in events:
            by_stage[event["name"]] = (
                by_stage.get(event["name"], 0.0) + event["dur"] / 1e6
            )
        for stage in TIMED_STAGES:
            if stage in by_stage:
                assert by_stage[stage] == pytest.approx(
                    stats.time(stage), rel=1e-6
                )

    def test_trace_tree_nests_stages_under_checks(self):
        engine = ContainmentEngine()
        engine.contains(WIDER, LINKED, SCHEMA)
        (root,) = engine.tracer().roots()
        child_stages = [child.stage for child in root.children]
        assert child_stages.count("prepare") == 2
        assert "obligations" in child_stages
        prepare_span = next(
            c for c in root.children if c.stage == "prepare"
        )
        assert prepare_span.cache == "miss"
        assert {c.stage for c in prepare_span.children} >= {
            "typecheck", "normalize", "encode",
        }

    def test_clear_trace_keeps_stats(self):
        engine = self._worked_engine()
        stats_before = engine.stats().as_dict()
        engine.clear_trace()
        assert engine.tracer().roots() == ()
        assert engine.stats().as_dict() == stats_before

    def test_unretained_tracer_still_feeds_timers(self):
        engine = ContainmentEngine(retain_trace=False)
        engine.contains(WIDER, LINKED, SCHEMA)
        assert engine.tracer().roots() == ()
        assert engine.stats().time("encode") > 0.0

    def test_trace_export_shape(self):
        engine = self._worked_engine()
        tree = engine.tracer().as_dict()
        assert tree["version"] == 1
        assert len(tree["checks"]) == 4
        json.dumps(tree)  # JSON-able throughout


class TestParallelEngineTracing:
    def test_parallel_engine_exposes_local_tracer(self):
        from repro.engine import ParallelContainmentEngine

        with ParallelContainmentEngine(jobs=1) as parallel:
            parallel.contains(WIDER, LINKED, SCHEMA)
            roots = parallel.tracer().roots()
        assert [r.stage for r in roots] == ["check"]
