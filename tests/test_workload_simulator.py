"""Seed reproducibility of the scenarios, the simulator, and the CLI.

The ``repro semcache`` contract is that one ``--seed`` pins everything:
database generation, the derived query pool's shuffle, the Zipf draws,
churn coin-flips, and therefore the whole hit/miss trajectory.  These
tests pin a known trajectory literal for one seed (so an accidental
extra RNG draw anywhere in the path shows up as a diff, not as silent
nondeterminism) and check the CLI surfaces the same numbers.
"""

import json

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.workloads import (
    SCENARIOS,
    WorkloadSimulator,
    company_scenario,
    orders_scenario,
    scenario_by_name,
)


def _summary_sans_latency(summary):
    return {
        key: value for key, value in summary.items()
        if key not in ("p50_ms", "p99_ms")
    }


class TestScenarioSeeds:
    def test_default_seed_is_threaded(self):
        assert (
            company_scenario(seed=7).database()
            == company_scenario().database(seed=7)
        )
        assert (
            orders_scenario(seed=7).database()
            == orders_scenario().database(seed=7)
        )
        assert company_scenario(seed=7).database() != (
            company_scenario(seed=8).database()
        )

    def test_registry(self):
        assert set(SCENARIOS) == {"company", "orders"}
        assert scenario_by_name("orders", seed=4).default_seed == 4
        with pytest.raises(ReproError):
            scenario_by_name("nosuch")

    def test_empty_relation_seeds_still_generate(self):
        # Seed 2 leaves the orders scenario's gold table empty; the
        # schema-threaded generator must still produce a typed database.
        database = orders_scenario(seed=2).database()
        assert len(database["gold"]) == 0


class TestSimulatorDeterminism:
    def test_same_seed_same_trajectory(self):
        runs = [
            WorkloadSimulator(
                company_scenario(seed=13), steps=40, seed=13,
                zipf_s=1.2, churn=0.05, max_views=8,
            ).run()
            for __ in range(2)
        ]
        assert _summary_sans_latency(runs[0]) == _summary_sans_latency(
            runs[1]
        )

    def test_different_seed_different_trajectory(self):
        one = WorkloadSimulator(
            company_scenario(seed=13), steps=40, seed=13
        ).run()
        other = WorkloadSimulator(
            company_scenario(seed=14), steps=40, seed=14
        ).run()
        assert one["trajectory"] != other["trajectory"]

    def test_pinned_trajectory_for_seed_13(self):
        """The exact replay for (company, steps=40, seed=13, zipf=1.2,
        churn=0.05, max_views=8).  An extra RNG draw anywhere in the
        lookup path changes these literals."""
        summary = WorkloadSimulator(
            company_scenario(seed=13), steps=40, seed=13,
            zipf_s=1.2, churn=0.05, max_views=8,
        ).run()
        assert summary["sources"] == {"exact": 26, "residual": 7, "miss": 7}
        assert summary["hit_rate"] == pytest.approx(0.825)
        assert summary["warm_hit_rate"] == pytest.approx(0.9)
        assert summary["admitted"] == 7
        assert summary["churn_evictions"] == 1
        assert summary["pool"] == 11
        assert [
            (entry["query"], entry["source"])
            for entry in summary["trajectory"][:6]
        ] == [
            ("dept_all", "miss"),
            ("dept_floor_eq", "miss"),
            ("emp_all", "miss"),
            ("emp_all", "exact"),
            ("dept_floor_eq", "exact"),
            ("dept_floor_eq", "exact"),
        ]


class TestSemcacheCli:
    def test_json_summary_round_trips_the_seed(self, capsys):
        exit_code = main([
            "semcache", "--scenario", "company", "--steps", "40",
            "--seed", "13", "--zipf", "1.2", "--churn", "0.05",
            "--max-views", "8", "--json",
        ])
        assert exit_code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["seed"] == 13
        assert summary["sources"] == {"exact": 26, "residual": 7, "miss": 7}

    def test_text_summary_and_oracle_exit_zero(self, capsys):
        exit_code = main([
            "semcache", "--scenario", "orders", "--steps", "30",
            "--seed", "5", "--oracle",
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "scenario orders: 30 step(s), seed 5" in out
        assert "hit rate" in out

    def test_unknown_scenario_is_usage_error(self, capsys):
        assert main(["semcache", "--scenario", "nosuch"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
