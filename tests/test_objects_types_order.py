"""Unit tests for complex-object types and the Hoare containment order."""

import pytest

from repro.errors import TypeCheckError
from repro.objects import (
    Record,
    CSet,
    AtomType,
    RecordType,
    SetType,
    ATOM,
    infer_type,
    conforms,
    join_types,
    dominated,
    hoare_equivalent,
)
from repro.objects.types import EMPTY_SET, EmptySetType


class TestTypes:
    def test_atom_type_singleton(self):
        assert AtomType() is ATOM

    def test_infer_atom(self):
        assert infer_type(3) == ATOM

    def test_infer_record(self):
        t = infer_type(Record(a=1, b="x"))
        assert t == RecordType({"a": ATOM, "b": ATOM})

    def test_infer_set(self):
        t = infer_type(CSet([Record(a=1)]))
        assert t == SetType(RecordType({"a": ATOM}))

    def test_infer_empty_set(self):
        assert infer_type(CSet()) == EMPTY_SET

    def test_infer_set_with_empty_inner(self):
        t = infer_type(CSet([Record(a=CSet()), Record(a=CSet([1]))]))
        assert t == SetType(RecordType({"a": SetType(ATOM)}))

    def test_incompatible_set_elements_raise(self):
        with pytest.raises(TypeCheckError):
            infer_type(CSet([1, Record(a=2)]))

    def test_join_empty_with_set(self):
        assert join_types(EMPTY_SET, SetType(ATOM)) == SetType(ATOM)
        assert join_types(SetType(ATOM), EMPTY_SET) == SetType(ATOM)

    def test_join_mismatched_records(self):
        with pytest.raises(TypeCheckError):
            join_types(RecordType({"a": ATOM}), RecordType({"b": ATOM}))

    def test_conforms(self):
        t = SetType(RecordType({"a": ATOM, "kids": SetType(ATOM)}))
        value = CSet([Record(a=1, kids=CSet([2]))])
        assert conforms(value, t)
        assert conforms(CSet([Record(a=1, kids=CSet())]), t)
        assert not conforms(CSet([Record(a=CSet(), kids=CSet())]), t)

    def test_record_type_accessors(self):
        t = RecordType({"a": ATOM, "b": SetType(ATOM)})
        assert t.atomic_attrs() == ("a",)
        assert t.set_attrs() == ("b",)


class TestHoareOrder:
    def test_atoms(self):
        assert dominated(1, 1)
        assert not dominated(1, 2)

    def test_flat_sets_are_subset(self):
        assert dominated(CSet([1]), CSet([1, 2]))
        assert not dominated(CSet([1, 2]), CSet([1]))

    def test_empty_set_below_everything(self):
        assert dominated(CSet(), CSet())
        assert dominated(CSet(), CSet([1]))

    def test_records_componentwise(self):
        low = Record(a=1, s=CSet([1]))
        high = Record(a=1, s=CSet([1, 2]))
        assert dominated(low, high)
        assert not dominated(high, low)

    def test_mismatched_records_incomparable(self):
        assert not dominated(Record(a=1), Record(b=1))

    def test_nested_sets(self):
        low = CSet([CSet([1])])
        high = CSet([CSet([1, 2])])
        assert dominated(low, high)
        assert not dominated(high, low)

    def test_preorder_not_antisymmetric(self):
        # The classic example: mutual domination without equality.
        left = CSet([CSet([1]), CSet([1, 2])])
        right = CSet([CSet([1, 2])])
        assert hoare_equivalent(left, right)
        assert left != right

    def test_kind_mismatch_incomparable(self):
        assert not dominated(1, CSet([1]))
        assert not dominated(CSet([1]), Record(a=1))

    def test_reflexive_on_samples(self):
        samples = [
            1,
            "x",
            Record(a=1),
            CSet([Record(a=CSet([1, 2]))]),
            CSet([CSet([]), CSet([1])]),
        ]
        for value in samples:
            assert dominated(value, value)

    def test_transitive_on_chain(self):
        a = CSet([])
        b = CSet([Record(x=1, s=CSet([]))])
        c = CSet([Record(x=1, s=CSet([2])), Record(x=3, s=CSet([]))])
        assert dominated(a, b) and dominated(b, c) and dominated(a, c)
