"""The restricted chase under linear inclusion dependencies.

Guards the :mod:`repro.constraints` layer in isolation: declaration
parsing/validation, position resolution against the flat index encoding
(sorted attribute order), termination on cyclic-but-linear dependency
sets, soundness of the derived atoms (content-addressed labelled nulls,
ground atoms untouched), deterministic truncation on null-generating
cycles, and byte-identical rederivation.
"""

import pytest

from repro.coql.containment import as_schema
from repro.constraints import (
    InclusionDependency,
    parse_constraint,
    parse_constraints,
    validate_constraints,
)
from repro.constraints.chase import (
    chase_atoms,
    chase_null,
    is_chase_null,
    resolve_dependencies,
)
from repro.cq.terms import Atom, Const
from repro.errors import ParseError, SchemaError

SCHEMA = as_schema({
    "r": {"a": "atom", "b": "atom"},
    "s": {"a": "atom", "b": "atom"},
})


def atom(pred, *values):
    return Atom(pred, tuple(Const(value) for value in values))


class TestDeclarations:
    def test_parse_round_trip(self):
        dep = parse_constraint("r[a,b] -> s[b,a]")
        assert repr(dep) == "r[a,b] -> s[b,a]"
        assert dep == InclusionDependency("r", ("a", "b"), "s", ("b", "a"))
        assert parse_constraint(repr(dep)) == dep

    def test_alternate_arrows(self):
        assert parse_constraint("r[a] => s[a]") == parse_constraint(
            "r[a] ⊆ s[a]"
        )

    @pytest.mark.parametrize("text", [
        "r[a]", "r[a] -> ", "r -> s[a]", "r[] -> s[a]", "[a] -> s[b]",
        "r[a] -> s[a] -> t[a]",
    ])
    def test_malformed_declarations(self, text):
        with pytest.raises(ParseError):
            parse_constraint(text)

    def test_constructor_validation(self):
        with pytest.raises(SchemaError):
            InclusionDependency("r", ("a", "b"), "s", ("a",))
        with pytest.raises(SchemaError):
            InclusionDependency("r", (), "s", ())
        with pytest.raises(SchemaError):
            InclusionDependency("r", ("a", "a"), "s", ("a", "b"))

    def test_parse_constraints_skips_blanks_and_comments(self):
        deps = parse_constraints([
            "", "# a comment", "r[a] -> s[a]", "  ", "s[b] -> r[b]",
        ])
        assert [repr(d) for d in deps] == ["r[a] -> s[a]", "s[b] -> r[b]"]

    def test_validate_against_schema(self):
        deps = parse_constraints(["r[a] -> s[b]"])
        assert validate_constraints(deps, SCHEMA) == deps
        with pytest.raises(SchemaError):
            validate_constraints(parse_constraints(["r[a] -> nope[b]"]),
                                 SCHEMA)
        with pytest.raises(SchemaError):
            validate_constraints(parse_constraints(["r[zz] -> s[b]"]),
                                 SCHEMA)

    def test_declarations_are_immutable_and_hashable(self):
        dep = parse_constraint("r[a] -> s[a]")
        with pytest.raises(AttributeError):
            dep.source = "t"
        assert len({dep, parse_constraint("r[a] -> s[a]")}) == 1


class TestResolution:
    def test_positions_follow_sorted_attribute_order(self):
        # RecordType sorts attributes, so r(a, b) has a at 0, b at 1 no
        # matter the declaration order in the schema text.
        resolved = resolve_dependencies(
            parse_constraints(["r[b] -> s[a]"]), SCHEMA
        )
        ((__, source, source_pos, target, target_pos, width),) = resolved
        assert (source, source_pos) == ("r", (1,))
        assert (target, target_pos, width) == ("s", (0,), 2)

    def test_unknown_names_raise(self):
        with pytest.raises(SchemaError):
            resolve_dependencies(parse_constraints(["q[a] -> s[a]"]), SCHEMA)
        with pytest.raises(SchemaError):
            resolve_dependencies(parse_constraints(["r[c] -> s[a]"]), SCHEMA)


class TestChase:
    def deps(self, *texts):
        return resolve_dependencies(parse_constraints(texts), SCHEMA)

    def test_single_step_adds_null_filled_conclusion(self):
        result = chase_atoms([atom("r", 1, 2)], self.deps("r[a] -> s[b]"))
        assert not result.truncated
        assert len(result.added) == 1
        derived = result.added[0]
        assert derived.pred == "s"
        # b (position 1) carries the mapped value; a (position 0) is a
        # labelled null.
        assert derived.args[1].value == 1
        assert is_chase_null(derived.args[0].value)
        # The original atoms survive as an untouched prefix.
        assert result.atoms[: 1] == (atom("r", 1, 2),)

    def test_restricted_firing_skips_witnessed_conclusions(self):
        result = chase_atoms(
            [atom("r", 1, 2), atom("s", 1, 9)], self.deps("r[a] -> s[a]")
        )
        assert result.added == ()
        assert not result.truncated

    def test_fully_mapped_cycle_terminates(self):
        # r[a] ⊆ s[a] and s[a] ⊆ r[a]: mutually recursive but fully
        # mapped on the cycle positions — the restricted chase reaches
        # a fixpoint after deriving each missing projection once.
        result = chase_atoms(
            [atom("r", 1, 2), atom("s", 3, 4)],
            self.deps("r[a] -> s[a]", "s[a] -> r[a]"),
        )
        assert not result.truncated
        derived = {(a.pred, a.args[0].value) for a in result.added}
        assert derived == {("s", 1), ("r", 3)}
        # Every cycle projection is witnessed exactly once: re-chasing
        # the saturation is a no-op.
        again = chase_atoms(
            result.atoms, self.deps("r[a] -> s[a]", "s[a] -> r[a]")
        )
        assert again.added == ()

    def test_null_generating_cycle_truncates_soundly(self):
        # r[a] ⊆ r[b] keeps inventing fresh a-nulls: the bound cuts the
        # run and flags it, instead of diverging.
        result = chase_atoms(
            [atom("r", 1, 2)], self.deps("r[a] -> r[b]"), max_rounds=4
        )
        assert result.truncated
        assert result.rounds <= 4
        assert all(a.pred == "r" for a in result.added)
        assert all(is_chase_null(a.args[0].value) for a in result.added)

    def test_max_atoms_bound(self):
        result = chase_atoms(
            [atom("r", 1, 2)], self.deps("r[a] -> r[b]"), max_atoms=3
        )
        assert result.truncated
        assert len(result.atoms) <= 3

    def test_rederivation_is_byte_identical(self):
        deps = self.deps("r[a] -> s[b]", "s[a] -> r[a]")
        first = chase_atoms([atom("r", 1, 2), atom("r", 5, 6)], deps)
        second = chase_atoms([atom("r", 1, 2), atom("r", 5, 6)], deps)
        assert repr(first.atoms) == repr(second.atoms)
        assert first.rounds == second.rounds

    def test_null_is_content_addressed(self):
        dep = parse_constraint("r[a] -> s[b]")
        null = chase_null(dep, atom("r", 1, 2), 0)
        assert null == chase_null(dep, atom("r", 1, 2), 0)
        assert null != chase_null(dep, atom("r", 1, 3), 0)
        assert null != chase_null(dep, atom("r", 1, 2), 1)
        assert is_chase_null(null)
        assert not is_chase_null("plain")
        assert not is_chase_null(17)

    def test_arity_mismatch_is_an_error(self):
        with pytest.raises(SchemaError):
            chase_atoms([atom("r", 1)], self.deps("r[b] -> s[a]"))
