"""Differential guarantees of the bitset homomorphism kernel.

The bitset kernel (``ordering="bitset"``) must be a drop-in for the
list-based propagating search: same homomorphism *sequence* (not just
set — the engine guarantees hash-seed-independent enumeration order),
same search-tree size (the mask solver visits the candidate sets the
list solver would, so ``nodes`` can never be worse), and the same
verdicts along an entire workload-simulator trajectory.  These tests
pin all three, plus the incremental-cardinality expansion order the
``min(remaining, key=...)`` heuristic commits to.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cq.terms import Var, Const, Atom
from repro.cq.homomorphism import (
    find_all_homomorphisms,
    ground_atoms_of_query,
    SearchCounters,
    install_search_counters,
    use_ordering,
)
from repro.workloads import WorkloadSimulator, company_scenario
from repro.workloads.generators import random_cq

SCHEMA = {"r": 2, "s": 2, "t": 3}


def _pair_for_seed(seed):
    """One (source, target) instance; half the family is satisfiable."""
    source_q = random_cq(SCHEMA, atoms=3, variables=4, seed=seed, constants=1)
    target_q = random_cq(
        SCHEMA, atoms=4, variables=3, seed=seed + 10_000, constants=1
    )
    target = ground_atoms_of_query(target_q)
    if seed % 2:
        target = target + ground_atoms_of_query(source_q)
    return source_q.body, target


def _run(source, target, ordering, **kwargs):
    """(homomorphism list, counters) for one search under *ordering*."""
    sink = SearchCounters()
    previous = install_search_counters(sink)
    try:
        found = list(
            find_all_homomorphisms(source, target, ordering=ordering, **kwargs)
        )
    finally:
        install_search_counters(previous)
    return found, sink


def padded_pigeonhole(n, rays, leaves):
    """K_n into frozen K_{n-1} padded with an independent star (the
    adversary family of test_propagation / benchmarks E11)."""
    source = tuple(
        Atom("e", (Var("V%d" % i), Var("V%d" % j)))
        for i in range(n)
        for j in range(n)
        if i != j
    ) + tuple(
        Atom("p", (Var("U0"), Var("U%d" % i))) for i in range(1, rays + 1)
    )
    target = tuple(
        Atom("e", (Const("c%d" % i), Const("c%d" % j)))
        for i in range(n - 1)
        for j in range(n - 1)
        if i != j
    ) + tuple(
        Atom("p", (Const("hub"), Const("leaf%d" % j))) for j in range(leaves)
    )
    return source, target


class TestHypothesisDifferential:
    @given(seed=st.integers(min_value=0, max_value=99_999))
    @settings(max_examples=250, deadline=None)
    def test_bitset_matches_propagating_byte_for_byte(self, seed):
        source, target = _pair_for_seed(seed)
        reference, ref_counters = _run(source, target, "propagating")
        found, counters = _run(source, target, "bitset")
        # Identical sequence, not just identical set: the bitset kernel
        # walks set bits in ascending row-id order, which is exactly the
        # list kernel's insertion order.
        assert found == reference
        # Identical candidate sets at every choice point imply an
        # identical search tree; never *more* nodes than the list kernel.
        assert counters.nodes <= ref_counters.nodes
        assert counters.backtracks <= ref_counters.backtracks

    @given(seed=st.integers(min_value=0, max_value=99_999))
    @settings(max_examples=60, deadline=None)
    def test_cost_hybrid_enumerates_the_same_set(self, seed):
        source, target = _pair_for_seed(seed)
        reference, __ = _run(source, target, "propagating")
        found, __ = _run(source, target, "cost")
        assert {frozenset(m.items()) for m in found} == {
            frozenset(m.items()) for m in reference
        }


class TestAdversaryDifferential:
    def test_padded_pigeonhole_identical_refutation(self):
        source, target = padded_pigeonhole(5, 2, 4)
        reference, ref_counters = _run(source, target, "propagating")
        found, counters = _run(source, target, "bitset")
        assert found == reference == []
        assert counters.nodes == ref_counters.nodes
        assert counters.backtracks == ref_counters.backtracks
        assert counters.domain_wipeouts == ref_counters.domain_wipeouts
        assert counters.components_solved == ref_counters.components_solved
        assert counters.mask_intersections > 0
        assert ref_counters.mask_intersections == 0

    def test_satisfiable_pigeonhole_identical_enumeration(self):
        # K_4 into frozen K_4: satisfiable, many homomorphisms — the
        # order-sensitive half of the adversary family.
        source, target = padded_pigeonhole(4, 2, 3)
        target = target + tuple(
            Atom("e", (Const("c3"), Const("c%d" % j))) for j in range(3)
        ) + tuple(
            Atom("e", (Const("c%d" % j), Const("c3"))) for j in range(3)
        )
        reference, ref_counters = _run(source, target, "propagating")
        found, counters = _run(source, target, "bitset")
        assert found == reference
        assert len(found) > 0
        assert counters.nodes == ref_counters.nodes


class TestWorkloadTrajectory:
    def _summary(self, ordering):
        with use_ordering(ordering):
            summary = WorkloadSimulator(
                company_scenario(seed=13), steps=40, seed=13,
                zipf_s=1.2, churn=0.05, max_views=8,
            ).run()
        # Latencies are wall-clock; everything else is pinned by seed
        # and must not depend on the homomorphism kernel.
        return {
            key: value
            for key, value in summary.items()
            if key not in ("p50_ms", "p99_ms")
        }

    def test_seed_13_trajectory_is_kernel_independent(self):
        assert self._summary("bitset") == self._summary("propagating")


class TestExpansionOrderRegression:
    """The ``min(remaining, key=lambda p: (counts[p], p))`` heuristic on
    incrementally maintained cardinalities: the atom with the fewest
    candidates is expanded first, source position breaking ties."""

    SOURCE = (
        Atom("r", (Var("X"), Var("Y"))),
        Atom("s", (Var("Y"),)),
    )
    TARGET = (
        Atom("r", (Const(1), Const(10))),
        Atom("r", (Const(2), Const(20))),
        Atom("r", (Const(3), Const(10))),
        Atom("s", (Const(20),)),
        Atom("s", (Const(10),)),
    )
    # s(Y) holds 2 candidate rows to r(X, Y)'s 3, so it is expanded
    # first and its insertion order (20 before 10) drives enumeration.
    EXPECTED = [
        {Var("X"): 2, Var("Y"): 20},
        {Var("X"): 1, Var("Y"): 10},
        {Var("X"): 3, Var("Y"): 10},
    ]
    # A source-order expansion would enumerate X ascending instead.
    STATIC_ORDER = [
        {Var("X"): 1, Var("Y"): 10},
        {Var("X"): 2, Var("Y"): 20},
        {Var("X"): 3, Var("Y"): 10},
    ]

    @pytest.mark.parametrize("ordering", ("bitset", "propagating", "cost"))
    def test_fewest_candidates_first(self, ordering):
        found, __ = _run(self.SOURCE, self.TARGET, ordering)
        assert found == self.EXPECTED

    def test_static_control_differs(self):
        # The pin above is only meaningful if the heuristic actually
        # changed the order relative to naive source-order expansion.
        found, __ = _run(self.SOURCE, self.TARGET, "static")
        assert found == self.STATIC_ORDER
        assert found != self.EXPECTED
