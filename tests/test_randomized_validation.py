"""Randomized end-to-end validation sweeps.

Each sweep pits a decision procedure against semantics on randomized
instances: positive verdicts must hold on every sampled database;
negative verdicts are probed for witnesses.

Set ``REPRO_SLOW_TESTS=1`` to widen every sweep (more seeds, deeper
queries) — batches are cheap now that the engine shards them, so the
extended sweeps run in CI's nightly/slow legs while the default case
counts keep ordinary runs fast.
"""

import os
import random

import pytest

from repro.errors import IncomparableQueriesError, UnsupportedQueryError
from repro.cq.terms import Var
from repro.objects import Database
from repro.objects.types import RecordType, ATOM
from repro.aggregates import (
    AggregateQuery,
    aggregate_contained,
    evaluate_symbolic,
)
from repro.algebra import Pipeline, pipelines_equivalent
from repro.coql import contains
from repro.workloads import random_flat_database, random_coql

#: Sweep-width multiplier: 1 by default, larger under REPRO_SLOW_TESTS=1.
SWEEP = 4 if os.environ.get("REPRO_SLOW_TESTS") == "1" else 1


def seeds(count, start=0):
    """``count`` seeds by default, ``SWEEP * count`` in slow mode."""
    return range(start, start + SWEEP * count)


class TestAggregateContainmentRandomized:
    BODIES = [
        ("r(G, V)",),
        ("r(G, V)", "r(G, W)"),
        ("r(G, V)", "s(G)"),
        ("r(G, V)", "s(V)"),
        ("r(G, V)", "r(W, V)", "s(W)"),
        ("r(G, V)", "t(G, V)"),
    ]

    def _query(self, body_texts):
        from repro.cq.parser import parse_atom

        return AggregateQuery(
            tuple(parse_atom(t) for t in body_texts), (Var("G"),), "f", Var("V")
        )

    @pytest.mark.parametrize("seed", seeds(15))
    def test_containment_soundness(self, seed):
        rng = random.Random(seed)
        q1 = self._query(rng.choice(self.BODIES))
        q2 = self._query(rng.choice(self.BODIES))
        if not aggregate_contained(q2, q1):
            return
        # q1 ⊑ q2: q1's symbolic result rows must appear in q2's.
        for db_seed in range(8):
            db = random_flat_database(
                {"r": 2, "s": 1, "t": 2}, rows=5, domain=3, seed=db_seed
            )
            assert evaluate_symbolic(q1, db) <= evaluate_symbolic(q2, db), (
                q1,
                q2,
                db_seed,
            )

    @pytest.mark.parametrize("seed", seeds(10))
    def test_refutations_witnessed(self, seed):
        rng = random.Random(seed + 500)
        q1 = self._query(rng.choice(self.BODIES))
        q2 = self._query(rng.choice(self.BODIES))
        if aggregate_contained(q2, q1):
            return
        witnessed = any(
            not (
                evaluate_symbolic(q1, db) <= evaluate_symbolic(q2, db)
            )
            for db in (
                random_flat_database(
                    {"r": 2, "s": 1, "t": 2}, rows=5, domain=2, seed=s
                )
                for s in range(30)
            )
        )
        assert witnessed, (q1, q2)


class TestNestUnnestRandomized:
    SCHEMA = {"r": RecordType({"a": ATOM, "b": ATOM, "c": ATOM})}

    def _random_pipeline(self, seed, steps):
        """A random valid nest/unnest pipeline over r(a,b,c).

        Tracks flat attributes and live set labels.  A nest must include
        every live label among the nested attributes (otherwise a
        set-valued attribute would govern the grouping — the footnote-3
        restriction); an unnest re-exposes the label's contents.
        """
        rng = random.Random(seed)
        flat = ["a", "b", "c"]
        live = {}  # label -> (flat attrs inside, labels inside)
        out = []
        counter = 0
        for __ in range(steps):
            if live and (rng.random() < 0.5 or len(flat) < 2):
                label = rng.choice(sorted(live))
                inner_flat, inner_labels = live.pop(label)
                out.append(("unnest", label))
                flat.extend(inner_flat)
                live.update(inner_labels)
            elif len(flat) >= 2:
                count = rng.randint(1, len(flat) - 1)
                chosen = sorted(rng.sample(flat, count))
                attrs = tuple(chosen) + tuple(sorted(live))
                label = "g%d" % counter
                counter += 1
                for attr in chosen:
                    flat.remove(attr)
                nested_labels = dict(live)
                live = {label: (chosen, nested_labels)}
                out.append(("nest", attrs, label))
        return Pipeline("r", out)

    def _random_db(self, seed):
        rng = random.Random(seed)
        rows = [
            {"a": rng.randrange(2), "b": rng.randrange(2), "c": rng.randrange(2)}
            for __ in range(rng.randint(1, 5))
        ]
        return Database.from_dict({"r": rows})

    @pytest.mark.parametrize("seed", seeds(15))
    def test_equivalence_matches_evaluation(self, seed):
        p1 = self._random_pipeline(seed, steps=3)
        p2 = self._random_pipeline(seed + 700, steps=3)
        try:
            verdict = pipelines_equivalent(p1, p2, self.SCHEMA)
        except (IncomparableQueriesError, UnsupportedQueryError):
            return
        agree = all(
            p1.evaluate(self._random_db(s)) == p2.evaluate(self._random_db(s))
            for s in range(10)
        )
        if verdict:
            assert agree, (p1, p2)
        else:
            # probe harder for a witness before accepting a refutation
            witnessed = any(
                p1.evaluate(self._random_db(s)) != p2.evaluate(self._random_db(s))
                for s in range(40)
            )
            assert witnessed, (p1, p2)

    @pytest.mark.parametrize("seed", seeds(10))
    def test_self_equivalence(self, seed):
        pipeline = self._random_pipeline(seed, steps=4)
        assert pipelines_equivalent(pipeline, pipeline, self.SCHEMA)


class TestBatchedCoqlSweep:
    """Batch-path validation: the engine's sharded batch must agree with
    per-pair module-level decisions on a seeded random sweep.  Depth and
    pair counts widen under REPRO_SLOW_TESTS=1 (the parallel engine
    makes wide sweeps cheap on multi-core machines)."""

    SCHEMA = {"r": ("a", "b"), "s": ("k", "b")}

    def _pairs(self):
        from repro.workloads import random_coql_deep

        depths = (2, 3) if SWEEP == 1 else (2, 3, 4)
        pairs = []
        for depth in depths:
            pairs.extend(
                (
                    random_coql_deep(seed=seed, depth=depth),
                    random_coql_deep(seed=seed + 12345, depth=depth),
                )
                for seed in seeds(10)
            )
        return pairs

    def test_batch_agrees_with_singles(self):
        from repro.engine import ParallelContainmentEngine
        from repro.errors import ReproError

        pairs = self._pairs()
        with ParallelContainmentEngine(jobs=2) as engine:
            batch = engine.contains_many(pairs, self.SCHEMA, on_error="capture")
        for (sup, sub), verdict in zip(pairs, batch):
            try:
                expected = contains(sup, sub, self.SCHEMA)
            except ReproError as exc:
                expected = exc
            if isinstance(expected, ReproError):
                assert type(verdict) is type(expected)
            else:
                assert verdict == expected, (sup, sub)


class TestCoqlContainmentTransitivity:
    SCHEMA = {"r": ("a", "b"), "s": ("k", "b")}

    @pytest.mark.parametrize("seed", seeds(8))
    def test_transitive(self, seed):
        qs = [
            random_coql(seed=seed + i * 1111, depth=2) for i in range(3)
        ]
        a, b, c = qs
        try:
            ab = contains(b, a, self.SCHEMA)
            bc = contains(c, b, self.SCHEMA)
            if ab and bc:
                assert contains(c, a, self.SCHEMA), (a, b, c)
        except IncomparableQueriesError:
            return
