"""The containment engine: memoization, instrumentation, batch APIs,
and the API-consistency bugfixes that rode along with it (method
threading through equivalence, truncate validation, shared
provably-non-empty verdicts)."""

import pytest

from repro.errors import (
    ReproError,
    IncomparableQueriesError,
    UnsupportedQueryError,
)
from repro.coql import contains, weakly_equivalent, equivalent, ViewCatalog
from repro.coql.containment import (
    prepare,
    _contains_encoded,
    _provably_nonempty,
    empty_set_free,
)
from repro.engine import ContainmentEngine, EngineStats, default_engine
from repro.workloads import company_scenario, orders_scenario
from repro.workloads.generators import (
    random_coql,
    random_coql_deep,
    chain_grouping_query,
)

SCHEMA = {"r": ("a", "b"), "s": ("k", "b")}

LINKED = (
    "select [a: x.a, kids: select [b: y.b] from y in r where y.a = x.a]"
    " from x in r"
)
UNLINKED = (
    "select [a: x.a, kids: select [b: y.b] from y in s where y.k = x.a]"
    " from x in r"
)
WIDER = "select [a: x.a, kids: select [b: y.b] from y in s] from x in r"
FLAT = "select [v: x.a] from x in r"
FLAT_RESTRICTED = "select [v: x.a] from x in r, y in s where y.b = x.b"


class TestEngineAgreesWithReferencePipeline:
    def pairs(self):
        queries = [LINKED, UNLINKED, WIDER, FLAT]
        queries += [random_coql(seed=s) for s in range(6)]
        return [(a, b) for a in queries for b in queries]

    def test_verdicts_match_uncached_path(self):
        engine = ContainmentEngine()
        for sup, sub in self.pairs():
            try:
                expected = _contains_encoded(
                    prepare(sup, SCHEMA, "sup"), prepare(sub, SCHEMA, "sub")
                )
            except (IncomparableQueriesError, UnsupportedQueryError) as exc:
                with pytest.raises(type(exc)):
                    engine.contains(sup, sub, SCHEMA)
                continue
            assert engine.contains(sup, sub, SCHEMA) == expected, (sup, sub)

    def test_module_level_functions_delegate(self):
        assert contains(WIDER, UNLINKED, SCHEMA)
        assert not contains(UNLINKED, WIDER, SCHEMA)
        assert weakly_equivalent(LINKED, LINKED, SCHEMA)
        assert default_engine().stats().counter("contains_calls") > 0


class TestMemoization:
    def test_repeated_check_hits_all_caches(self):
        engine = ContainmentEngine()
        assert engine.contains(WIDER, UNLINKED, SCHEMA)
        stats = engine.stats()
        misses = stats.counter("obligation_cache_misses")
        assert misses > 0
        assert stats.counter("prepare_misses") == 2
        assert engine.contains(WIDER, UNLINKED, SCHEMA)
        assert stats.counter("prepare_hits") == 2
        assert stats.counter("obligation_cache_hits") == misses
        assert stats.counter("obligation_cache_misses") == misses

    def test_equivalence_shares_obligations_across_directions(self):
        engine = ContainmentEngine()
        assert engine.weakly_equivalent(UNLINKED, UNLINKED, SCHEMA)
        stats = engine.stats()
        # Both directions pose the same truncated (sub, sup) pairs: the
        # second direction must be answered entirely from cache.
        assert stats.counter("obligation_cache_hits") == stats.counter(
            "obligation_cache_misses"
        )
        assert stats.counter("obligations_checked") == stats.counter(
            "obligation_cache_misses"
        )

    def test_cache_disabled_engine_recomputes(self):
        engine = ContainmentEngine(
            prepare_cache_size=0, verdict_cache_size=0
        )
        assert engine.contains(WIDER, UNLINKED, SCHEMA)
        assert engine.contains(WIDER, UNLINKED, SCHEMA)
        stats = engine.stats()
        assert stats.counter("prepare_hits") == 0
        assert stats.counter("obligation_cache_hits") == 0
        assert stats.counter("prepare_misses") == 4

    def test_text_and_ast_share_one_prepare_entry(self):
        from repro.coql import parse_coql

        engine = ContainmentEngine()
        engine.prepare(FLAT, SCHEMA)
        engine.prepare(parse_coql(FLAT), SCHEMA)
        stats = engine.stats()
        assert stats.counter("prepare_misses") == 1
        assert stats.counter("prepare_hits") == 1

    def test_clear_caches_and_reset_stats(self):
        engine = ContainmentEngine()
        engine.contains(WIDER, UNLINKED, SCHEMA)
        assert engine.cache_sizes()["prepare"] == 2
        engine.clear_caches()
        assert engine.cache_sizes() == {
            "prepare": 0,
            "obligation_verdicts": 0,
            "nonempty": 0,
            "targets": 0,
            "cost_certificate": 0,
            "branch_verdict": 0,
            "chase": 0,
        }
        engine.reset_stats()
        assert engine.stats().as_dict()["homomorphism_nodes"] == 0
        assert engine.stats().counter("contains_calls") == 0
        assert engine.contains(WIDER, UNLINKED, SCHEMA)


class TestInstrumentation:
    def test_homomorphism_counters_tick(self):
        engine = ContainmentEngine()
        engine.contains(WIDER, UNLINKED, SCHEMA)
        stats = engine.stats()
        assert stats.search.nodes > 0
        assert stats.counter("obligations_checked") > 0
        assert stats.counter("certificate_searches") > 0

    def test_stage_timers_cover_pipeline(self):
        engine = ContainmentEngine()
        engine.contains(WIDER, UNLINKED, SCHEMA)
        data = engine.stats().as_dict()
        for stage in ("parse", "typecheck", "normalize", "encode",
                      "obligations", "simulation"):
            assert data["time_" + stage] >= 0.0

    def test_skipped_implied_obligations_counted(self):
        # UNLINKED has one possibly-empty child: 2 patterns, 0 skipped.
        # LINKED's child is provably non-empty: 1 pattern, 1 skipped.
        engine = ContainmentEngine()
        engine.contains(LINKED, LINKED, SCHEMA)
        assert engine.stats().counter("obligations_skipped_implied") == 1

    def test_counters_do_not_leak_outside_engine_calls(self):
        from repro.cq.homomorphism import SearchCounters
        from repro.cq.propagation import active_counters

        assert active_counters() is None or isinstance(
            active_counters(), SearchCounters
        )
        engine = ContainmentEngine()
        before = active_counters()
        engine.contains(WIDER, UNLINKED, SCHEMA)
        assert active_counters() is before

    def test_stats_format_is_textual(self):
        engine = ContainmentEngine()
        engine.contains(WIDER, UNLINKED, SCHEMA)
        text = engine.stats().format()
        assert "obligations_checked" in text
        assert "homomorphism_nodes" in text


class TestEngineStatsMerge:
    def test_merge_adds_every_field(self):
        left = EngineStats()
        left.tally("obligations_checked", 3)
        left.tally("only_left", 1)
        left.add_time("simulation", 0.25)
        left.search.nodes = 10
        left.search.backtracks = 2
        right = EngineStats()
        right.tally("obligations_checked", 4)
        right.tally("only_right", 7)
        right.add_time("simulation", 0.5)
        right.add_time("parse", 0.125)
        right.search.nodes = 5
        right.search.backtracks = 1
        result = left.merge(right)
        assert result is left
        assert left.counter("obligations_checked") == 7
        assert left.counter("only_left") == 1
        assert left.counter("only_right") == 7  # worker-only counters kept
        assert left.time("simulation") == 0.75
        assert left.time("parse") == 0.125
        assert left.search.nodes == 15
        assert left.search.backtracks == 3

    def test_merge_leaves_other_untouched(self):
        left, right = EngineStats(), EngineStats()
        right.tally("x", 2)
        left.merge(right)
        left.tally("x", 100)
        assert right.counter("x") == 2

    def test_merge_rejects_non_stats(self):
        with pytest.raises(TypeError):
            EngineStats().merge({"x": 1})

    def test_merge_of_real_engine_stats_matches_sum(self):
        one, two = ContainmentEngine(), ContainmentEngine()
        one.contains(WIDER, UNLINKED, SCHEMA)
        two.contains(FLAT, FLAT_RESTRICTED, SCHEMA)
        expected_obligations = (
            one.stats().counter("obligations_checked")
            + two.stats().counter("obligations_checked")
        )
        expected_nodes = one.stats().search.nodes + two.stats().search.nodes
        one.stats().merge(two.stats())
        assert one.stats().counter("obligations_checked") == expected_obligations
        assert one.stats().search.nodes == expected_nodes


class TestStatsAggregationExhaustiveness:
    """Round-trip guarantee: every SearchCounters field survives
    merge/as_dict/reset, by dataclass-fields introspection — a counter
    added to SearchCounters can never be silently dropped from the
    aggregation paths again."""

    def _distinct(self, offset):
        from dataclasses import fields

        from repro.cq.homomorphism import SearchCounters

        counters = SearchCounters()
        for index, field in enumerate(fields(SearchCounters)):
            setattr(counters, field.name, offset + index)
        return counters

    def test_search_counters_is_introspectable(self):
        from dataclasses import fields, is_dataclass

        from repro.cq.homomorphism import SearchCounters

        assert is_dataclass(SearchCounters)
        names = [field.name for field in fields(SearchCounters)]
        assert set(names) >= {
            "nodes", "backtracks", "domain_wipeouts", "components_solved",
        }

    def test_merge_covers_every_field(self):
        from dataclasses import fields

        from repro.cq.homomorphism import SearchCounters

        left, right = self._distinct(100), self._distinct(1000)
        result = left.merge(right)
        assert result is left
        for index, field in enumerate(fields(SearchCounters)):
            assert getattr(left, field.name) == 1100 + 2 * index, field.name

    def test_as_dict_covers_every_field(self):
        from dataclasses import fields

        from repro.cq.homomorphism import SearchCounters

        counters = self._distinct(7)
        as_dict = counters.as_dict()
        assert set(as_dict) == {f.name for f in fields(SearchCounters)}
        for index, field in enumerate(fields(SearchCounters)):
            assert as_dict[field.name] == 7 + index

    def test_reset_covers_every_field(self):
        from dataclasses import fields

        from repro.cq.homomorphism import SearchCounters

        counters = self._distinct(3)
        counters.reset()
        for field in fields(SearchCounters):
            assert getattr(counters, field.name) == 0, field.name

    def test_engine_stats_round_trip_exposes_every_field(self):
        from dataclasses import fields

        from repro.cq.homomorphism import SearchCounters

        one, two = EngineStats(), EngineStats()
        one.search = self._distinct(10)
        two.search = self._distinct(20)
        one.merge(two)
        as_dict = one.as_dict()
        for index, field in enumerate(fields(SearchCounters)):
            key = "homomorphism_" + field.name
            assert key in as_dict, key
            assert as_dict[key] == 30 + 2 * index


class TestMethodThreadingBugfix:
    """`weakly_equivalent`/`equivalent` used to ignore method=."""

    def test_weakly_equivalent_canonical_end_to_end(self):
        engine = ContainmentEngine()
        assert engine.weakly_equivalent(
            UNLINKED, UNLINKED, SCHEMA, method="canonical"
        )
        # The canonical path never runs the NP certificate search.
        assert engine.stats().counter("certificate_searches") == 0

    def test_equivalent_canonical_end_to_end(self):
        engine = ContainmentEngine()
        assert engine.equivalent(FLAT, FLAT, SCHEMA, method="canonical")
        assert not engine.equivalent(
            FLAT, FLAT_RESTRICTED, SCHEMA, method="canonical"
        )
        assert engine.stats().counter("certificate_searches") == 0

    def test_module_level_regression(self):
        assert weakly_equivalent(LINKED, LINKED, SCHEMA, method="canonical")
        assert equivalent(FLAT, FLAT, SCHEMA, method="canonical")

    def test_unknown_method_now_rejected_everywhere(self):
        with pytest.raises(UnsupportedQueryError):
            contains(FLAT, FLAT, SCHEMA, method="nope")
        with pytest.raises(UnsupportedQueryError):
            weakly_equivalent(FLAT, FLAT, SCHEMA, method="nope")
        with pytest.raises(UnsupportedQueryError):
            equivalent(FLAT, FLAT, SCHEMA, method="nope")

    def test_methods_agree_on_mixed_verdicts(self):
        engine = ContainmentEngine()
        for sup, sub in [(WIDER, UNLINKED), (UNLINKED, WIDER),
                         (FLAT, FLAT_RESTRICTED), (FLAT_RESTRICTED, FLAT)]:
            assert engine.contains(
                sup, sub, SCHEMA, method="certificate"
            ) == engine.contains(sup, sub, SCHEMA, method="canonical")


class TestTruncateValidationBugfix:
    """truncate used to drop unknown / orphaned paths silently."""

    def test_unknown_path_raises(self):
        query = prepare(UNLINKED, SCHEMA).query
        with pytest.raises(ReproError, match="absent from query"):
            query.truncate({(), ("kids",), ("nope",)})

    def test_non_prefix_closed_raises(self):
        chain = chain_grouping_query(3)
        with pytest.raises(ReproError, match="prefix-closed"):
            chain.truncate({(), ("n1", "n2")})

    def test_valid_truncations_still_work(self):
        chain = chain_grouping_query(3)
        assert chain.truncate({()}).depth() == 1
        assert chain.truncate({(), ("n1",)}).depth() == 2
        assert chain.truncate({(), ("n1",), ("n1", "n2")}).depth() == 3


class TestNonemptyMemoBugfix:
    """The provably-non-empty test is decided once per (query, path)."""

    def test_memoized_verdicts_match_reference(self):
        engine = ContainmentEngine()
        corpus = [LINKED, UNLINKED, WIDER] + [
            random_coql(seed=s) for s in range(8)
        ]
        for text in corpus:
            encoded = prepare(text, SCHEMA)
            if encoded.is_empty:
                continue
            for path in encoded.query.paths():
                if not path:
                    continue
                assert engine._provably_nonempty(
                    encoded.query, path
                ) == _provably_nonempty(encoded.query, path), (text, path)

    def test_empty_set_free_matches_module_and_hits_cache(self):
        engine = ContainmentEngine()
        assert engine.empty_set_free(LINKED, SCHEMA)
        assert not engine.empty_set_free(UNLINKED, SCHEMA)
        assert empty_set_free(LINKED, SCHEMA)
        assert not empty_set_free(UNLINKED, SCHEMA)
        # The same (query, path) pairs recur between empty_set_free and
        # the obligation enumeration of a containment check.
        engine.contains(LINKED, LINKED, SCHEMA)
        engine.contains(UNLINKED, UNLINKED, SCHEMA)
        assert engine.stats().counter("nonempty_hits") > 0


class TestBatchAPIs:
    def test_contains_many_orders_and_verdicts(self):
        engine = ContainmentEngine()
        verdicts = engine.contains_many(
            [(WIDER, UNLINKED), (UNLINKED, WIDER), (FLAT, FLAT)], SCHEMA
        )
        assert verdicts == [True, False, True]

    def test_contains_many_capture_mode(self):
        engine = ContainmentEngine()
        verdicts = engine.contains_many(
            [(FLAT, FLAT), (FLAT, UNLINKED), (WIDER, UNLINKED)],
            SCHEMA,
            on_error="capture",
        )
        assert verdicts[0] is True
        assert isinstance(verdicts[1], IncomparableQueriesError)
        assert verdicts[2] is True

    def test_contains_many_raise_mode_propagates(self):
        engine = ContainmentEngine()
        with pytest.raises(IncomparableQueriesError):
            engine.contains_many([(FLAT, UNLINKED)], SCHEMA)
        with pytest.raises(UnsupportedQueryError):
            engine.contains_many([(FLAT, FLAT)], SCHEMA, on_error="bad")

    def test_pairwise_matrix(self):
        engine = ContainmentEngine()
        queries = [FLAT, FLAT_RESTRICTED, UNLINKED]
        matrix = engine.pairwise_matrix(queries, SCHEMA)
        assert matrix[0][0] is True
        assert matrix[0][1] is True  # restricted ⊑ flat
        assert matrix[1][0] is False
        assert matrix[0][2] is None  # incomparable shapes
        assert matrix[2][2] is True

    def test_matrix_reuses_prepared_queries(self):
        engine = ContainmentEngine()
        engine.pairwise_matrix([FLAT, FLAT_RESTRICTED, WIDER], SCHEMA)
        assert engine.stats().counter("prepare_misses") == 3
        assert engine.stats().counter("prepare_hits") > 0

    def test_scenario_containment_matrix(self):
        scenario = company_scenario()
        names, matrix = scenario.containment_matrix()
        assert len(names) == len(scenario.queries)
        assert len(matrix) == len(names)
        by = {n: i for i, n in enumerate(names)}
        # Every named query is self-contained.
        for name in names:
            assert matrix[by[name]][by[name]] is True
        # staffed ⊑ staff_by_dept but not conversely.
        assert matrix[by["staff_by_dept"]][by["staffed_depts_only"]] is True
        assert matrix[by["staffed_depts_only"]][by["staff_by_dept"]] is False


class TestViewCatalogEngine:
    def test_catalog_shares_one_engine_across_queries(self):
        scenario = orders_scenario()
        catalog = ViewCatalog(scenario.schema, scenario.queries)
        engine = catalog.engine()
        for text in scenario.queries.values():
            catalog.analyze(text)
        stats = engine.stats()
        # Views are prepared once, then re-served from cache.
        assert stats.counter("prepare_hits") > stats.counter(
            "prepare_misses"
        )
        assert stats.counter("obligation_cache_hits") > 0

    def test_catalog_accepts_external_engine(self):
        engine = ContainmentEngine()
        scenario = orders_scenario()
        catalog = ViewCatalog(scenario.schema, scenario.queries, engine=engine)
        assert catalog.engine() is engine
        reports = catalog.analyze(scenario.queries["basket_per_customer"])
        assert reports["basket_per_customer"].exact
        assert engine.stats().counter("contains_calls") > 0

    def test_catalog_reports_unchanged_by_caching(self):
        scenario = orders_scenario()
        catalog = ViewCatalog(scenario.schema, scenario.queries)
        first = catalog.analyze(scenario.queries["gold_baskets"])
        second = catalog.analyze(scenario.queries["gold_baskets"])
        for name in catalog.names():
            assert first[name].usable == second[name].usable
            assert first[name].exact == second[name].exact
        assert first["basket_per_customer"].usable
        assert not first["basket_per_customer"].exact

    def test_view_containment_matrix(self):
        scenario = orders_scenario()
        catalog = ViewCatalog(scenario.schema, scenario.queries)
        names, matrix = catalog.containment_matrix()
        assert names == catalog.names()
        by = {n: i for i, n in enumerate(names)}
        assert matrix[by["basket_per_customer"]][by["gold_baskets"]] is True


class TestDepth3CrossValidation:
    """Depth-3 queries with possibly-empty inner sets: the certificate
    and canonical procedures must agree, and repeated checks must be
    served from the obligation cache."""

    def test_certificate_vs_canonical(self):
        engine = ContainmentEngine()
        compared = 0
        for seed in range(6):
            q1 = random_coql_deep(seed=seed, depth=3)
            q2 = random_coql_deep(seed=seed + 500, depth=3)
            for sup, sub in [(q1, q1), (q1, q2)]:
                try:
                    certificate = engine.contains(
                        sup, sub, SCHEMA, method="certificate"
                    )
                    canonical = engine.contains(
                        sup, sub, SCHEMA, method="canonical"
                    )
                except (IncomparableQueriesError, UnsupportedQueryError):
                    continue
                assert certificate == canonical, (sup, sub)
                compared += 1
        assert compared >= 6

    def test_repeated_depth3_checks_hit_cache(self):
        engine = ContainmentEngine()
        queries = [random_coql_deep(seed=s, depth=3) for s in range(4)]
        for __ in range(2):
            for text in queries:
                assert engine.weakly_equivalent(text, text, SCHEMA)
        stats = engine.stats()
        assert stats.counter("obligation_cache_hits") > 0
        assert stats.counter("prepare_hits") > 0
        assert stats.counter("nonempty_hits") > 0
        # Second pass decided nothing anew.
        assert stats.counter("obligations_checked") == stats.counter(
            "obligation_cache_misses"
        )

    def test_possibly_empty_inner_sets_expand_obligations(self):
        engine = ContainmentEngine()
        found_multi = False
        for seed in range(12):
            text = random_coql_deep(seed=seed, depth=3)
            try:
                engine.contains(text, text, SCHEMA)
            except (IncomparableQueriesError, UnsupportedQueryError):
                continue
            if engine.stats().counter("obligations_checked") > 1:
                found_multi = True
                break
        assert found_multi
