"""The containment service: protocol, batching, deadlines, and the
warm-restart contract (a restarted service answers from the persistent
tier)."""

import asyncio
import json
import threading
from http.client import HTTPConnection

import pytest

from repro.engine import UNDECIDED
from repro.service import (
    BackgroundService,
    ContainmentService,
    MicroBatcher,
    ServiceClient,
    ServiceError,
)

SCHEMA = {"r": ["a", "b"], "s": ["k", "b"]}
WIDER = "select [a: x.a, kids: select [b: y.b] from y in s] from x in r"
UNLINKED = (
    "select [a: x.a, kids: select [b: y.b] from y in s where y.k = x.a]"
    " from x in r"
)
FLAT = "select [v: x.a] from x in r"
FLAT_RESTRICTED = "select [v: x.a] from x in r, y in s where y.b = x.b"


@pytest.fixture(scope="module")
def service():
    with BackgroundService(timeout_s=30.0) as svc:
        yield svc


@pytest.fixture()
def client(service):
    with ServiceClient(service.host, service.port) as c:
        yield c


class TestProtocol:
    def test_health(self, client):
        assert client.health() is True

    def test_contain_verdicts(self, client):
        assert client.contain(WIDER, UNLINKED, SCHEMA) is True
        assert client.contain(UNLINKED, WIDER, SCHEMA) is False

    def test_contain_string_schema(self, client):
        assert client.contain(FLAT, FLAT, "r:a,b;s:k,b") is True

    def test_equiv(self, client):
        assert client.equiv(FLAT, FLAT, SCHEMA) is True
        assert client.equiv(FLAT, FLAT_RESTRICTED, SCHEMA) is False
        # Strict equivalence is only decided for empty-set-free queries
        # (UNLINKED is not); weak equivalence is decidable in general.
        assert client.equiv(WIDER, UNLINKED, SCHEMA, weak=True) is False
        with pytest.raises(ServiceError) as info:
            client.equiv(WIDER, UNLINKED, SCHEMA)
        assert info.value.status == 422
        assert info.value.kind == "UnsupportedQueryError"

    def test_matrix(self, client):
        matrix = client.matrix([WIDER, UNLINKED, FLAT], SCHEMA)
        assert matrix[0][1] is True      # UNLINKED ⊑ WIDER
        assert matrix[1][0] is False
        assert matrix[0][2] is None      # incomparable with FLAT
        assert all(matrix[i][i] is True for i in range(3))

    def test_lint_report_shape(self, client):
        report = client.lint(query=FLAT, schema=SCHEMA)
        assert report["version"] == 1
        assert report["summary"]["targets"] == 1
        assert report["targets"][0]["target"] == FLAT
        report = client.lint(
            queries=[FLAT, WIDER], schema=SCHEMA, select=["COQL001"]
        )
        assert report["summary"]["targets"] == 2

    def test_classify(self, client):
        labels = client.classify(
            FLAT_RESTRICTED,
            {"flat": FLAT, "same": FLAT_RESTRICTED, "nested": WIDER},
            SCHEMA,
        )
        assert labels == {
            "flat": "subsuming",
            "same": "equivalent",
            "nested": "irrelevant",
        }

    def test_classify_bad_views_is_400(self, client):
        for views in ({}, {"v": 7}):
            with pytest.raises(ServiceError) as info:
                client.classify(FLAT, views, SCHEMA)
            assert info.value.status == 400

    def test_incomparable_is_422_with_type(self, client):
        with pytest.raises(ServiceError) as info:
            client.contain(FLAT, UNLINKED, SCHEMA)
        assert info.value.status == 422
        assert info.value.kind == "IncomparableQueriesError"

    def test_missing_schema_is_400(self, client):
        with pytest.raises(ServiceError) as info:
            client.contain(FLAT, FLAT)
        assert info.value.status == 400

    def test_bad_method_is_400(self, client):
        with pytest.raises(ServiceError) as info:
            client.contain(FLAT, FLAT, SCHEMA, method="oracle")
        assert info.value.status == 400

    def test_ordering_knob_is_honored(self, client):
        # Every kernel answers the same verdicts; the knob joins the
        # batch group key so ablation requests never share a batch with
        # default-kernel traffic.
        for ordering in ("bitset", "propagating", "cost"):
            assert client.contain(
                WIDER, UNLINKED, SCHEMA, ordering=ordering
            ) is True
            assert client.contain(
                UNLINKED, WIDER, SCHEMA, ordering=ordering
            ) is False
        assert client.equiv(FLAT, FLAT, SCHEMA, ordering="bitset") is True
        matrix = client.matrix(
            [FLAT, FLAT_RESTRICTED], SCHEMA, ordering="propagating"
        )
        assert matrix == [[True, True], [False, True]]

    def test_bad_ordering_is_400(self, client):
        with pytest.raises(ServiceError) as info:
            client.contain(FLAT, FLAT, SCHEMA, ordering="bogus")
        assert info.value.status == 400

    def test_unknown_route_is_404(self, service):
        conn = HTTPConnection(service.host, service.port, timeout=10)
        conn.request("POST", "/v1/nope", body=b"{}")
        assert conn.getresponse().status == 404
        conn.close()

    def test_invalid_json_body_is_400(self, service):
        conn = HTTPConnection(service.host, service.port, timeout=10)
        conn.request("POST", "/v1/contain", body=b"not json")
        response = conn.getresponse()
        assert response.status == 400
        payload = json.loads(response.read())
        assert "error" in payload
        conn.close()

    def test_stats_shape(self, client):
        client.contain(WIDER, UNLINKED, SCHEMA)
        stats = client.stats()
        assert stats["service"]["requests"]["contain"] >= 1
        assert stats["service"]["batches"] >= 1
        assert "prepare_hits" in stats["engine"]
        assert "hit_rates" in stats["store"]

    def test_concurrent_requests_all_answered(self, service):
        expected = {WIDER: True, UNLINKED: False}
        results = {}
        errors = []

        def hit(sup, sub):
            try:
                with ServiceClient(service.host, service.port) as c:
                    results[(sup, sub)] = c.contain(sup, sub, SCHEMA)
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [
            threading.Thread(target=hit, args=(sup, sub))
            for sup in (WIDER, UNLINKED)
            for sub in (WIDER, UNLINKED)
            for __ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert not errors
        assert results[(WIDER, UNLINKED)] is True
        assert results[(UNLINKED, WIDER)] is False
        assert results[(WIDER, WIDER)] is True


class TestMicroBatcher:
    def test_coalesces_concurrent_submits(self):
        calls = []

        def run_batch(group, items):
            calls.append((group, list(items)))
            return [item * 10 for item in items]

        async def main():
            batcher = MicroBatcher(run_batch, window_s=0.01)
            results = await asyncio.gather(
                batcher.submit("g", "knobs", 1),
                batcher.submit("g", "knobs", 2),
                batcher.submit("g", "knobs", 3),
            )
            return results, batcher

        results, batcher = asyncio.run(main())
        assert results == [10, 20, 30]
        assert len(calls) == 1
        assert calls[0] == ("knobs", [1, 2, 3])
        assert batcher.batches == 1
        assert batcher.largest_batch == 3

    def test_incompatible_groups_never_share_a_batch(self):
        calls = []

        def run_batch(group, items):
            calls.append(group)
            return list(items)

        async def main():
            batcher = MicroBatcher(run_batch, window_s=0.01)
            await asyncio.gather(
                batcher.submit("a", "knobs-a", 1),
                batcher.submit("b", "knobs-b", 2),
            )
            return batcher

        batcher = asyncio.run(main())
        assert sorted(calls) == ["knobs-a", "knobs-b"]
        assert batcher.batches == 2

    def test_max_batch_dispatches_early(self):
        calls = []

        def run_batch(group, items):
            calls.append(list(items))
            return list(items)

        async def main():
            batcher = MicroBatcher(run_batch, window_s=30.0, max_batch=2)
            return await asyncio.gather(
                batcher.submit("g", "k", 1),
                batcher.submit("g", "k", 2),
                batcher.submit("g", "k", 3),
                batcher.submit("g", "k", 4),
            )

        assert asyncio.run(main()) == [1, 2, 3, 4]
        assert calls == [[1, 2], [3, 4]]

    def test_batch_failure_fails_every_member(self):
        def run_batch(group, items):
            raise RuntimeError("engine fell over")

        async def main():
            batcher = MicroBatcher(run_batch, window_s=0.0)
            return await asyncio.gather(
                batcher.submit("g", "k", 1),
                batcher.submit("g", "k", 2),
                return_exceptions=True,
            )

        results = asyncio.run(main())
        assert all(isinstance(r, RuntimeError) for r in results)


class TestDeadlines:
    def test_response_deadline_answers_undecided(self):
        async def main():
            service = ContainmentService(
                port=0, batch_window_s=0.0, deadline_grace_s=0.05
            )
            try:

                async def stuck():
                    await asyncio.sleep(60)

                verdict, missed = await service._with_deadline(
                    stuck(), 0.01
                )
                assert verdict is UNDECIDED
                assert missed
                assert service._deadline_misses == 1
                # No deadline: the value passes straight through.
                async def quick():
                    return True

                verdict, missed = await service._with_deadline(quick(), None)
                assert verdict is True
                assert not missed
            finally:
                await service.stop()

        asyncio.run(main())

    def test_contain_with_budget_still_decides_fast_checks(self, client):
        # A generous per-request deadline must not disturb verdicts.
        assert client.contain(
            WIDER, UNLINKED, SCHEMA, timeout_s=30.0
        ) is True


class TestWarmRestart:
    def test_restarted_service_hits_persistent_tier(self, tmp_path):
        path = str(tmp_path / "service.db")
        with BackgroundService(store_path=path, timeout_s=30.0) as svc:
            with ServiceClient(svc.host, svc.port) as c:
                assert c.contain(WIDER, UNLINKED, SCHEMA) is True
                c.flush()
                cold = c.stats()
        assert sum(cold["store"]["persistent"]["sizes"].values()) > 0

        # Fresh service process state over the same database file: the
        # first answer comes from artifacts the dead service prepared.
        with BackgroundService(
            store_path=path, timeout_s=30.0, preload=True
        ) as svc:
            assert svc.service.preloaded > 0
            with ServiceClient(svc.host, svc.port) as c:
                assert c.contain(WIDER, UNLINKED, SCHEMA) is True
                warm = c.stats()
        rates = [
            rate for rate in warm["store"]["hit_rates"].values()
            if rate is not None
        ]
        assert rates and max(rates) > 0

    def test_matrix_and_lint_share_the_tier(self, tmp_path):
        path = str(tmp_path / "service.db")
        with BackgroundService(store_path=path, timeout_s=30.0) as svc:
            with ServiceClient(svc.host, svc.port) as c:
                c.matrix([WIDER, UNLINKED], SCHEMA)
                c.flush()
        with BackgroundService(store_path=path, timeout_s=30.0) as svc:
            with ServiceClient(svc.host, svc.port) as c:
                report = c.lint(query=WIDER, schema=SCHEMA)
                assert report["summary"]["errors"] == 0
                stats = c.stats()
        counters = stats["store"]["persistent"]["counters"]
        assert sum(
            tally["hits"] for tally in counters.values()
        ) > 0
