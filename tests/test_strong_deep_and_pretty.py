"""Strong simulation at depth 3, and the grouping pretty-printer."""


from repro.grouping import (
    is_strongly_simulated,
    semantic_strongly_simulates,
    simulation_certificate,
)
from repro.grouping.pretty import format_grouping, format_certificate
from repro.grouping.build import node, grouping_query
from repro.workloads import (
    chain_grouping_query,
    random_grouping_query,
    random_flat_database,
)

SCHEMA = {"r": 2, "s": 2}


class TestStrongSimulationDepth3:
    def test_reflexive_chain(self):
        q = chain_grouping_query(3)
        assert is_strongly_simulated(q, q.rename_apart("_p"))

    def test_random_soundness(self):
        checked = 0
        for seed in range(8):
            q = random_grouping_query(
                SCHEMA, seed=seed, depth=3, atoms_per_node=1, variables=4
            )
            other = q.rename_apart("_p")
            if not is_strongly_simulated(q, other, witnesses=2):
                continue
            for db_seed in range(3):
                db = random_flat_database(SCHEMA, rows=3, domain=2, seed=db_seed)
                assert semantic_strongly_simulates(q, other, db)
            checked += 1
        assert checked >= 5

    def test_unlinked_leaf_not_strong(self):
        tight = grouping_query(
            node(
                "",
                ["r(X, W)"],
                {"a": "X"},
                children=[
                    node(
                        "m",
                        ["s(X, Y)"],
                        {"b": "Y"},
                        index=["X"],
                        children=[node("l", ["s(Y, Z)"], {"c": "Z"}, index=["Y"])],
                    )
                ],
            )
        )
        loose = grouping_query(
            node(
                "",
                ["r(X, W)"],
                {"a": "X"},
                children=[
                    node(
                        "m",
                        ["s(X, Y)"],
                        {"b": "Y"},
                        index=["X"],
                        children=[node("l", ["s(U, Z)"], {"c": "Z"}, index=[])],
                    )
                ],
            )
        )
        assert not is_strongly_simulated(tight, loose)
        # the inclusion direction does hold
        from repro.grouping import is_simulated

        assert is_simulated(tight, loose)


class TestPretty:
    def test_format_grouping_mentions_every_node(self):
        q = chain_grouping_query(3)
        text = format_grouping(q)
        assert "(root)" in text
        assert text.count(":-") == 3

    def test_format_certificate(self):
        q = chain_grouping_query(2)
        cert = simulation_certificate(q, q.rename_apart("_p"))
        text = format_certificate(cert)
        assert "witnesses per node" in text
        assert "↦" in text
