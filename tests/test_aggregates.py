"""Tests for aggregate-query equivalence (paper, Section 7).

The single-block theorem (equivalence ⟺ core CQ equivalence) is
cross-validated against symbolic evaluation on random databases; the
nested case against grouping-tree evaluation.
"""

import pytest

from repro.errors import IncomparableQueriesError
from repro.cq import Var
from repro.cq.parser import parse_atom
from repro.aggregates import (
    AggregateQuery,
    NestedAggregateQuery,
    evaluate_aggregate,
    evaluate_symbolic,
    aggregate_equivalent,
    aggregate_contained,
    nested_aggregate_equivalent,
)
from repro.grouping.semantics import evaluate_grouping
from repro.workloads import random_flat_database


def atoms(*texts):
    return tuple(parse_atom(t) for t in texts)


def agg(body_texts, group_by, func="f", target="V"):
    return AggregateQuery(
        atoms(*body_texts),
        tuple(Var(g) for g in group_by),
        func,
        Var(target),
    )


class TestSemantics:
    def test_count(self):
        query = agg(["r(G, V)"], ["G"], func="count")
        db = random_flat_database({"r": 2}, rows=6, domain=3, seed=1)
        result = evaluate_aggregate(query, db)
        keys = {row[0] for row in result}
        assert keys == {row[0] for row in evaluate_symbolic(query, db)}

    def test_sum_and_min_max(self):
        from repro.objects import Database

        db = Database.from_dict(
            {"r": [{"c00": 1, "c01": 5}, {"c00": 1, "c01": 7}, {"c00": 2, "c01": 9}]}
        )
        query = agg(["r(G, V)"], ["G"])
        assert evaluate_aggregate(query, db, func="sum") == frozenset(
            {(1, 12), (2, 9)}
        )
        assert evaluate_aggregate(query, db, func="min") == frozenset(
            {(1, 5), (2, 9)}
        )
        assert evaluate_aggregate(query, db, func="max") == frozenset(
            {(1, 7), (2, 9)}
        )

    def test_symbolic_groups(self):
        from repro.objects import Database

        db = Database.from_dict(
            {"r": [{"c00": 1, "c01": 5}, {"c00": 1, "c01": 7}]}
        )
        query = agg(["r(G, V)"], ["G"])
        assert evaluate_symbolic(query, db) == frozenset(
            {(1, ("f", frozenset({5, 7})))}
        )


class TestSingleBlockEquivalence:
    def test_redundant_atom(self):
        q1 = agg(["r(G, V)"], ["G"])
        q2 = agg(["r(G, V)", "r(G, W)"], ["G"])
        assert aggregate_equivalent(q1, q2)

    def test_extra_join_not_equivalent(self):
        q1 = agg(["r(G, V)"], ["G"])
        q2 = agg(["r(G, V)", "s(G)"], ["G"])
        assert not aggregate_equivalent(q1, q2)
        # but contained one way
        assert aggregate_contained(q1, q2)

    def test_different_funcs_not_equivalent(self):
        q1 = agg(["r(G, V)"], ["G"], func="f")
        q2 = agg(["r(G, V)"], ["G"], func="g")
        assert not aggregate_equivalent(q1, q2)

    def test_group_arity_mismatch_raises(self):
        q1 = agg(["r(G, V)"], ["G"])
        q2 = agg(["r(G, V)"], ["G", "G"])
        with pytest.raises(IncomparableQueriesError):
            aggregate_equivalent(q1, q2)

    def test_containment_strictness(self):
        """q2 restricts the groups to keys present in s: results are a
        subset of q1's (same groups at shared keys)."""
        q1 = agg(["r(G, V)"], ["G"])
        q2 = agg(["r(G, V)", "s(G)"], ["G"])
        assert aggregate_contained(q1, q2)
        assert not aggregate_contained(q2, q1)

    def test_containment_rejects_shrunk_groups(self):
        """q3 filters *within* groups, so its groups differ at shared
        keys: not contained (the aggregate value would change)."""
        q1 = agg(["r(G, V)"], ["G"])
        q3 = agg(["r(G, V)", "p(V)"], ["G"])
        assert not aggregate_contained(q1, q3)
        assert not aggregate_contained(q3, q1)

    @pytest.mark.parametrize("seed", range(12))
    def test_verdicts_match_symbolic_semantics(self, seed):
        schema = {"r": 2, "s": 1}
        bodies = [
            ["r(G, V)"],
            ["r(G, V)", "r(G, W)"],
            ["r(G, V)", "s(G)"],
            ["r(G, V)", "s(V)"],
            ["r(G, V)", "r(W, V)"],
        ]
        import random as _random

        rng = _random.Random(seed)
        q1 = agg(rng.choice(bodies), ["G"])
        q2 = agg(rng.choice(bodies), ["G"])
        verdict = aggregate_equivalent(q1, q2)
        agree = True
        for db_seed in range(8):
            db = random_flat_database(schema, rows=5, domain=3, seed=db_seed)
            if evaluate_symbolic(q1, db) != evaluate_symbolic(q2, db):
                agree = False
                break
        if verdict:
            assert agree, (q1, q2)
        # Negative verdicts should usually be refutable; with this small
        # pool of bodies, every inequivalent pair is.
        if agree and not verdict:
            pytest.fail("decider refuted but no semantic difference found")

    def test_concrete_aggregates_agree_with_verdict(self):
        q1 = agg(["r(G, V)"], ["G"], func="count")
        q2 = agg(["r(G, V)", "r(G, W)"], ["G"], func="count")
        assert aggregate_equivalent(q1, q2)
        for db_seed in range(5):
            db = random_flat_database({"r": 2}, rows=5, domain=3, seed=db_seed)
            assert evaluate_aggregate(q1, db) == evaluate_aggregate(q2, db)


class TestNestedAggregates:
    def body(self):
        return atoms("r(D, E, V)")

    def test_reflexive(self):
        q = NestedAggregateQuery(
            self.body(), [((Var("D"),), "f"), ((Var("D"), Var("E")), "g")], Var("V")
        )
        assert nested_aggregate_equivalent(q, q)

    def test_redundant_atom_equivalent(self):
        q1 = NestedAggregateQuery(
            self.body(), [((Var("D"),), "f"), ((Var("D"), Var("E")), "g")], Var("V")
        )
        q2 = NestedAggregateQuery(
            atoms("r(D, E, V)", "r(D, E2, V2)"),
            [((Var("D"),), "f"), ((Var("D"), Var("E")), "g")],
            Var("V"),
        )
        assert nested_aggregate_equivalent(q1, q2)

    def test_filtered_not_equivalent(self):
        q1 = NestedAggregateQuery(
            self.body(), [((Var("D"),), "f"), ((Var("D"), Var("E")), "g")], Var("V")
        )
        q2 = NestedAggregateQuery(
            atoms("r(D, E, V)", "s(E)"),
            [((Var("D"),), "f"), ((Var("D"), Var("E")), "g")],
            Var("V"),
        )
        assert not nested_aggregate_equivalent(q1, q2)

    def test_function_mismatch(self):
        q1 = NestedAggregateQuery(self.body(), [((Var("D"),), "f")], Var("V"))
        q2 = NestedAggregateQuery(self.body(), [((Var("D"),), "g")], Var("V"))
        assert not nested_aggregate_equivalent(q1, q2)

    def test_verdicts_match_grouping_evaluation(self):
        q1 = NestedAggregateQuery(
            self.body(), [((Var("D"),), "f"), ((Var("D"), Var("E")), "g")], Var("V")
        )
        q2 = NestedAggregateQuery(
            atoms("r(D, E, V)", "r(D, E2, V2)"),
            [((Var("D"),), "f"), ((Var("D"), Var("E")), "g")],
            Var("V"),
        )
        assert nested_aggregate_equivalent(q1, q2)
        g1, g2 = q1.to_grouping(), q2.to_grouping()
        for db_seed in range(6):
            db = random_flat_database({"r": 3, "s": 1}, rows=5, domain=3, seed=db_seed)
            assert evaluate_grouping(g1, db) == evaluate_grouping(g2, db)

    def test_refinement_required(self):
        from repro.errors import UnsupportedQueryError

        with pytest.raises(UnsupportedQueryError):
            NestedAggregateQuery(
                self.body(),
                [((Var("D"),), "f"), ((Var("E"),), "g")],
                Var("V"),
            )
