"""Union queries end-to-end: COQL syntax through engines and persistence.

Covers the family pipeline the way a user crosses it: concrete-syntax
round-trips, the typechecker's branch-join diagnostics (and their
wording unification with the flat cq layer), family expansion,
evaluation, Sagiv–Yannakakis verdicts on both engines with
``branch_verdict`` memoization, chase-enabled verdict flips, and the
persistence of the new artifact kinds through the SQLite tier.
"""

import pytest

from repro.coql import (
    evaluate_coql,
    normalize,
    parse_coql,
    typecheck,
)
from repro.coql.containment import as_schema
from repro.coql.family import contains_union, family_of, union_branches
from repro.coql.pretty import to_text
from repro.constraints import parse_constraint
from repro.cq.parser import parse_query
from repro.cq.unions import UnionQuery
from repro.engine import ContainmentEngine, ParallelContainmentEngine
from repro.errors import (
    IncomparableQueriesError,
    TypeCheckError,
    UnsupportedQueryError,
    union_arity_mismatch,
)
from repro.objects.database import Database

SCHEMA = as_schema({
    "r": {"a": "atom", "b": "atom"},
    "s": {"a": "atom", "b": "atom"},
})

R_BRANCH = "select [a: x.a] from x in r"
S_BRANCH = "select [a: y.a] from y in s"
UNION_RS = "(%s) union (%s)" % (R_BRANCH, S_BRANCH)


class TestSyntax:
    def test_round_trip(self):
        query = parse_coql(UNION_RS)
        text = to_text(query)
        assert "union" in text
        assert to_text(parse_coql(text)) == text

    def test_nested_unions_splice_flat(self):
        third = "select [a: z.b] from z in r"
        nested = parse_coql("((%s) union (%s)) union (%s)"
                            % (R_BRANCH, S_BRANCH, third))
        flat = parse_coql("(%s) union (%s) union (%s)"
                          % (R_BRANCH, S_BRANCH, third))
        assert len(union_branches(nested)) == 3
        assert to_text(nested) == to_text(flat)

    def test_branches_carry_spans(self):
        query = parse_coql(UNION_RS)
        branches = union_branches(query)
        assert all(branch.span is not None for branch in branches)
        assert branches[0].span != branches[1].span

    def test_typecheck_joins_branch_types(self):
        assert repr(typecheck(parse_coql(UNION_RS), SCHEMA)) == "{[a: atom]}"

    def test_arity_mismatch_is_spanned(self):
        bad = "(%s) union (select [a: y.a, b: y.b] from y in s)" % R_BRANCH
        with pytest.raises(TypeCheckError) as excinfo:
            typecheck(parse_coql(bad), SCHEMA)
        assert str(excinfo.value).startswith(union_arity_mismatch((1, 2)))
        assert excinfo.value.span is not None

    def test_wording_unified_with_cq_layer(self):
        # The flat Sagiv–Yannakakis layer and the COQL typechecker
        # report arity mismatches with one shared wording.
        with pytest.raises(IncomparableQueriesError) as excinfo:
            UnionQuery([
                parse_query("q(X) :- r(X, Y)"),
                parse_query("q(X, Y) :- r(X, Y)"),
            ])
        assert str(excinfo.value) == union_arity_mismatch((1, 2))
        assert "1, 2" in str(excinfo.value)


class TestFamily:
    def test_duplicate_branches_collapse(self):
        dup = parse_coql("(%s) union (%s)" % (R_BRANCH, R_BRANCH))
        assert len(union_branches(dup)) == 1
        assert len(family_of(dup).branches) == 1

    def test_union_free_query_is_its_own_branch(self):
        query = parse_coql(R_BRANCH)
        assert not contains_union(query)
        assert union_branches(query)[0] is query

    def test_generator_source_union_distributes(self):
        query = parse_coql("select [a: x.a] from x in (r union s)")
        branches = union_branches(query)
        assert len(branches) == 2
        assert {to_text(b) for b in branches} == {
            "select [a: x.a] from x in r",
            "select [a: x.a] from x in s",
        }

    def test_head_union_raises_spanned(self):
        query = parse_coql("select ({x.a} union {x.b}) from x in r")
        with pytest.raises(UnsupportedQueryError) as excinfo:
            family_of(query)
        assert "not distributable" in str(excinfo.value)
        assert excinfo.value.span is not None

    def test_raw_union_normalize_raises_spanned(self):
        with pytest.raises(UnsupportedQueryError) as excinfo:
            normalize(parse_coql(UNION_RS))
        assert "per branch" in str(excinfo.value)
        assert excinfo.value.span == (1, 1)


class TestEvaluation:
    def test_union_is_answer_concatenation(self):
        db = Database.from_dict({
            "r": [{"a": 1, "b": 2}],
            "s": [{"a": 3, "b": 4}, {"a": 1, "b": 5}],
        })
        answer = evaluate_coql(parse_coql(UNION_RS), db)
        left = evaluate_coql(parse_coql(R_BRANCH), db)
        right = evaluate_coql(parse_coql(S_BRANCH), db)
        assert set(answer) == set(left) | set(right)
        assert len(set(answer)) == 2  # a:1 appears in both branches once


class TestEngineVerdicts:
    def test_sagiv_yannakakis_reduction(self):
        engine = ContainmentEngine()
        assert engine.contains(UNION_RS, R_BRANCH, SCHEMA) is True
        assert engine.contains(UNION_RS, S_BRANCH, SCHEMA) is True
        assert engine.contains(UNION_RS, UNION_RS, SCHEMA) is True
        assert engine.contains(R_BRANCH, UNION_RS, SCHEMA) is False

    def test_weak_equivalence_is_branch_order_insensitive(self):
        engine = ContainmentEngine()
        flipped = "(%s) union (%s)" % (S_BRANCH, R_BRANCH)
        assert engine.weakly_equivalent(UNION_RS, flipped, SCHEMA) is True

    def test_branch_verdicts_are_memoized(self):
        engine = ContainmentEngine()
        assert engine.contains(UNION_RS, UNION_RS, SCHEMA) is True
        stats = engine.stats()
        decided = stats.counter("union_branches_decided")
        assert decided >= 2
        misses = stats.counter("branch_verdict_misses")
        assert misses >= 2
        assert engine.cache_sizes().get("branch_verdict", 0) >= 2
        # The second identical check answers from the memo table.
        assert engine.contains(UNION_RS, UNION_RS, SCHEMA) is True
        assert stats.counter("branch_verdict_hits") >= 2
        assert stats.counter("branch_verdict_misses") == misses

    def test_parallel_engine_agrees(self):
        with ParallelContainmentEngine(jobs=2, timeout_s=120.0) as engine:
            assert engine.contains(UNION_RS, R_BRANCH, SCHEMA) is True
            assert engine.contains(R_BRANCH, UNION_RS, SCHEMA) is False


class TestChaseFlip:
    DEP = parse_constraint("r[a] -> s[a]")
    FLIP_SCHEMA = as_schema({"r": {"a": "atom"}, "s": {"a": "atom"}})
    SUP = "select [a: y.a] from y in s"
    SUB = "select [a: x.a] from x in r"

    def test_per_call_constraints_flip_the_verdict(self):
        engine = ContainmentEngine()
        assert engine.contains(self.SUP, self.SUB, self.FLIP_SCHEMA) is False
        assert engine.contains(
            self.SUP, self.SUB, self.FLIP_SCHEMA, constraints=(self.DEP,)
        ) is True
        stats = engine.stats()
        assert stats.counter("chase_misses") >= 1
        assert engine.cache_sizes().get("chase", 0) >= 1

    def test_engine_default_constraints(self):
        engine = ContainmentEngine(constraints=(self.DEP,))
        assert engine.contains(self.SUP, self.SUB, self.FLIP_SCHEMA) is True
        # constraints=() per call opts back out of the engine default.
        assert engine.contains(
            self.SUP, self.SUB, self.FLIP_SCHEMA, constraints=()
        ) is False

    def test_parallel_engine_flips_too(self):
        with ParallelContainmentEngine(
            jobs=2, timeout_s=120.0, constraints=(self.DEP,)
        ) as engine:
            assert engine.contains(
                self.SUP, self.SUB, self.FLIP_SCHEMA
            ) is True


class TestPersistence:
    def test_new_kinds_survive_the_sqlite_tier(self, tmp_path):
        dep = TestChaseFlip.DEP
        path = str(tmp_path / "artifacts.sqlite")
        first = ContainmentEngine(store_path=path, constraints=(dep,))
        assert first.contains(
            TestChaseFlip.SUP, TestChaseFlip.SUB, TestChaseFlip.FLIP_SCHEMA
        ) is True
        assert first.contains(UNION_RS, R_BRANCH, SCHEMA) is True
        store = first.store()
        store.flush()
        on_disk = store.disk.sizes()
        assert on_disk.get("chase", 0) >= 1
        assert on_disk.get("branch_verdict", 0) >= 1
        store.close()

        second = ContainmentEngine(store_path=path, constraints=(dep,))
        # A higher witness count rebuilds the compiled target, but a
        # flat sub's canonical witness has the same ground atoms at any
        # count — so the chase artifact is read back from disk.
        assert second.contains(
            TestChaseFlip.SUP, TestChaseFlip.SUB, TestChaseFlip.FLIP_SCHEMA,
            witnesses=2,
        ) is True
        assert second.contains(UNION_RS, R_BRANCH, SCHEMA) is True
        counters = second.store().disk.counters()
        assert counters["chase"]["hits"] >= 1
        assert counters["branch_verdict"]["hits"] >= 1
        second.store().close()


class TestCli:
    def test_contain_with_constraints_flips(self, capsys):
        from repro.cli import main

        base = ["contain", "--schema", "r:a;s:a",
                TestChaseFlip.SUP, TestChaseFlip.SUB]
        assert main(base) == 1
        assert capsys.readouterr().out.strip() == "NOT contained"
        assert main(base + ["--constraints", "r[a] -> s[a]"]) == 0
        assert capsys.readouterr().out.strip() == "contained"

    def test_contain_union_queries(self, capsys):
        from repro.cli import main

        assert main(["contain", "--schema", "r:a,b;s:a,b",
                     UNION_RS, R_BRANCH]) == 0
        assert capsys.readouterr().out.strip() == "contained"

    def test_stats_show_the_new_kinds(self, capsys):
        from repro.cli import main

        assert main(["contain", "--schema", "r:a;s:a",
                     "--constraints", "r[a] -> s[a]", "--stats",
                     TestChaseFlip.SUP, TestChaseFlip.SUB]) == 0
        err = capsys.readouterr().err
        assert "chase_misses" in err
        assert "chase" in err
