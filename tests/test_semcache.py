"""Unit tests of the semantic cache's serving rules and maintenance.

The serving rules are the sound fragment worked out in
:mod:`repro.semcache.residual`: NF-identity, equivalent-with-set-free
head, and the refinement residual.  Everything outside them must MISS —
in particular a weakly equivalent view with a *nested* head and a
different normal form, where verbatim serving would be unsound (Hoare
equivalence does not force value equality on nested sets).
"""

from repro.coql.eval import evaluate_coql
from repro.coql.normalize import normalize
from repro.coql.parser import parse_coql
from repro.objects.database import Database
from repro.semcache import (
    CatalogMinimizer,
    SemanticCache,
    head_is_set_free,
    residual_plan,
)

SCHEMA = {"dept": ("dname", "floor"), "emp": ("name", "dep", "salary_band")}

DB = Database.from_dict({
    "dept": [
        {"dname": "d1", "floor": 2},
        {"dname": "d2", "floor": 3},
        {"dname": "d3", "floor": 2},
    ],
    "emp": [
        {"name": "e1", "dep": "d1", "salary_band": 1},
        {"name": "e2", "dep": "d1", "salary_band": 2},
        {"name": "e3", "dep": "d2", "salary_band": 1},
    ],
})

FLAT = "select [d: x.dname, floor: x.floor] from x in dept"
NESTED = (
    "select [d: x.dname,"
    " staff: select [n: y.name] from y in emp where y.dep = x.dname]"
    " from x in dept"
)


def _cache(**kwargs):
    kwargs.setdefault("max_views", 8)
    return SemanticCache(SCHEMA, DB, **kwargs)


class TestServingRules:
    def test_nf_identity_serves_alpha_renamed_nested_queries(self):
        cache = _cache()
        cache.add_view("nested", NESTED)
        renamed = NESTED.replace("x", "qq").replace("y", "zz")
        answer = cache.lookup(renamed)
        assert answer.source == "exact" and answer.view == "nested"
        assert answer.classification == "equivalent"
        assert answer.value == evaluate_coql(parse_coql(NESTED), DB)
        assert cache.counters["exact_hits"] == 1

    def test_residual_serves_refinements_without_touching_the_db(self):
        cache = _cache()
        cache.add_view("flat", FLAT)
        refined = FLAT + " where x.floor = 2"
        answer = cache.lookup(refined)
        assert answer.source == "residual" and answer.view == "flat"
        assert answer.classification == "subsuming"
        assert answer.value == evaluate_coql(parse_coql(refined), DB)
        assert len(answer.value) == 2

    def test_residual_rebuilds_a_narrower_head(self):
        cache = _cache()
        cache.add_view("flat", FLAT)
        narrower = "select [d: x.dname] from x in dept where x.floor = 2"
        answer = cache.lookup(narrower)
        assert answer.source == "residual"
        assert answer.value == evaluate_coql(parse_coql(narrower), DB)

    def test_equivalent_nested_with_different_nf_is_not_served(self):
        """Weak equivalence of nested outputs does not license verbatim
        serving: the cache must fall through to a miss (and answer by
        direct evaluation) rather than hand back the view's value."""
        cache = _cache()
        cache.add_view("nested", NESTED)
        # Equivalent via the redundant generator z (z = x always
        # satisfies it), but a different normal form.
        redundant = (
            "select [d: x.dname,"
            " staff: select [n: y.name] from y in emp where y.dep = x.dname]"
            " from x in dept, z in dept where z.dname = x.dname"
        )
        labels = cache.classify(redundant)
        assert labels["nested"] == "equivalent"
        answer = cache.lookup(redundant)
        assert answer.source == "miss"
        assert answer.value == evaluate_coql(parse_coql(redundant), DB)

    def test_contained_views_become_prefetch_hints_not_answers(self):
        cache = _cache()
        restricted = FLAT + " where x.floor = 2"
        cache.add_view("second_floor", restricted)
        answer = cache.lookup(FLAT)
        assert answer.source == "miss"
        assert answer.prefetch == ("second_floor",)
        assert cache.counters["prefetch_hints"] == 1

    def test_miss_admits_and_next_lookup_hits(self):
        cache = _cache()
        first = cache.lookup(FLAT)
        assert first.source == "miss" and first.view == "~q0"
        second = cache.lookup(FLAT)
        assert second.source == "exact" and second.view == "~q0"
        refinement = FLAT + ' where x.dname = "d1"'
        third = cache.lookup(refinement)
        assert third.source == "residual" and third.view == "~q0"
        assert third.value == evaluate_coql(parse_coql(refinement), DB)

    def test_admission_disabled_with_zero_budget(self):
        cache = _cache(max_views=0)
        answer = cache.lookup(FLAT)
        assert answer.source == "miss" and answer.view is None
        assert cache.views() == ()


class TestMaintenance:
    def test_lru_eviction_spares_pinned_views(self):
        cache = _cache(max_views=2)
        cache.add_view("keep", FLAT, pinned=True)
        cache.add_view("a", FLAT + " where x.floor = 2")
        cache.add_view("b", FLAT + " where x.floor = 3")  # evicts "a"
        assert set(cache.views()) == {"keep", "b"}
        assert cache.counters["evicted"] == 1

    def test_minimize_prunes_alpha_renamed_duplicates(self):
        cache = _cache()
        cache.add_view("orig", NESTED)
        cache.add_view("dup", NESTED.replace("x", "qq").replace("y", "zz"))
        cache.add_view("other", FLAT)
        report = cache.minimize()
        # Catalog order is sorted, so "dup" is kept and "orig" pruned.
        assert report.removed == {"orig": "dup"}
        assert set(cache.views()) == {"dup", "other"}
        # The survivor still serves the evicted spelling.
        answer = cache.lookup(NESTED)
        assert answer.source == "exact"

    def test_minimizer_keeps_merely_contained_views(self):
        cache = _cache()
        cache.add_view("all", FLAT)
        cache.add_view("some", FLAT + " where x.floor = 2")
        report = CatalogMinimizer(cache.catalog()).plan()
        assert report.removed == {}
        assert set(report.kept) == {"all", "some"}

    def test_contradictory_query_answers_empty(self):
        cache = _cache()
        answer = cache.lookup(
            FLAT + ' where x.dname = "d1" and x.dname = "d2"'
        )
        assert len(answer.value) == 0


class TestResidualGuards:
    def test_set_free_guard(self):
        assert head_is_set_free(normalize(parse_coql(FLAT)).head)
        assert not head_is_set_free(normalize(parse_coql(NESTED)).head)

    def test_no_plan_when_needed_path_is_not_exposed(self):
        view = normalize(parse_coql("select [d: x.dname] from x in dept"))
        query = normalize(parse_coql(
            "select [d: x.dname] from x in dept where x.floor = 2"
        ))
        assert residual_plan(query, view) is None  # floor not exposed

    def test_no_plan_across_different_generators(self):
        view = normalize(parse_coql(FLAT))
        query = normalize(parse_coql("select [n: e.name] from e in emp"))
        assert residual_plan(query, view) is None

    def test_plan_is_exact_on_constant_conditions(self):
        view = normalize(parse_coql(FLAT))
        query = normalize(parse_coql(FLAT + " where x.floor = 2"))
        plan = residual_plan(query, view)
        assert plan is not None
        materialized = evaluate_coql(parse_coql(FLAT), DB)
        expected = evaluate_coql(parse_coql(FLAT + " where x.floor = 2"), DB)
        assert plan.evaluate(materialized) == expected
