"""Tests for the nested relational algebra and the nest/unnest decider."""

import pytest

from repro.errors import SchemaError, UnsupportedQueryError, IncomparableQueriesError
from repro.objects import Database, Record, CSet
from repro.objects.types import RecordType, SetType, ATOM
from repro.coql import evaluate_coql
from repro.algebra import (
    BaseRel,
    Project,
    SelectEq,
    Product,
    RenameAttr,
    Nest,
    Unnest,
    OuterNest,
    evaluate_algebra,
    infer_algebra_type,
    algebra_to_coql,
    Pipeline,
    pipelines_equivalent,
)
from repro.algebra.nest_unnest import pipeline_contained

SCHEMA = {
    "r": RecordType({"a": ATOM, "b": ATOM}),
    "s": RecordType({"k": ATOM, "c": ATOM}),
}


def db():
    return Database.from_dict(
        {
            "r": [{"a": 1, "b": 10}, {"a": 1, "b": 11}, {"a": 2, "b": 20}],
            "s": [{"k": 1, "c": 5}],
        }
    )


class TestOperators:
    def test_project(self):
        result = evaluate_algebra(Project(BaseRel("r"), ("a",)), db())
        assert result == CSet([Record(a=1), Record(a=2)])

    def test_select_eq_attr_const(self):
        result = evaluate_algebra(
            SelectEq(BaseRel("r"), "a", ("const", 1)), db()
        )
        assert len(result) == 2

    def test_select_eq_attr_attr(self):
        result = evaluate_algebra(SelectEq(BaseRel("s"), "k", "c"), db())
        assert result == CSet()

    def test_product(self):
        result = evaluate_algebra(Product(BaseRel("r"), BaseRel("s")), db())
        assert len(result) == 3

    def test_product_name_clash(self):
        with pytest.raises(SchemaError):
            evaluate_algebra(Product(BaseRel("r"), BaseRel("r")), db())

    def test_rename(self):
        result = evaluate_algebra(RenameAttr(BaseRel("s"), {"k": "a"}), db())
        assert Record(a=1, c=5) in result

    def test_nest_groups(self):
        result = evaluate_algebra(Nest(BaseRel("r"), ("b",), "grp"), db())
        assert result == CSet(
            [
                Record(a=1, grp=CSet([Record(b=10), Record(b=11)])),
                Record(a=2, grp=CSet([Record(b=20)])),
            ]
        )

    def test_nest_never_empty_groups(self):
        result = evaluate_algebra(Nest(BaseRel("r"), ("b",), "grp"), db())
        assert all(len(row["grp"]) > 0 for row in result)

    def test_unnest_inverts_nest(self):
        expr = Unnest(Nest(BaseRel("r"), ("b",), "grp"), "grp")
        assert evaluate_algebra(expr, db()) == CSet(db()["r"].rows)

    def test_unnest_drops_empty_sets(self):
        nested = Database.from_dict(
            {"t": [{"a": 1, "grp": [{"b": 2}]}, {"a": 3, "grp": []}]}
        )
        result = evaluate_algebra(Unnest(BaseRel("t"), "grp"), nested)
        assert result == CSet([Record(a=1, b=2)])

    def test_outer_nest_keeps_empty_groups(self):
        expr = OuterNest(BaseRel("r"), BaseRel("s"), (("a", "k"),), "ks")
        result = evaluate_algebra(expr, db())
        empty_group_rows = [row for row in result if len(row["ks"]) == 0]
        assert len(empty_group_rows) == 1  # the a=2 rows


class TestTypeInference:
    def test_nest_type(self):
        t = infer_algebra_type(Nest(BaseRel("r"), ("b",), "grp"), SCHEMA)
        assert t == RecordType(
            {"a": ATOM, "grp": SetType(RecordType({"b": ATOM}))}
        )

    def test_unnest_type_roundtrip(self):
        expr = Unnest(Nest(BaseRel("r"), ("b",), "grp"), "grp")
        assert infer_algebra_type(expr, SCHEMA) == SCHEMA["r"]

    def test_unknown_attr(self):
        with pytest.raises(SchemaError):
            infer_algebra_type(Project(BaseRel("r"), ("zz",)), SCHEMA)

    def test_unnest_non_set(self):
        with pytest.raises(SchemaError):
            infer_algebra_type(Unnest(BaseRel("r"), "a"), SCHEMA)


class TestCoqlTranslation:
    """The algebra-to-COQL translation agrees with the operator
    semantics — the paper's expressive-equivalence claim, executable."""

    CASES = [
        Project(BaseRel("r"), ("a",)),
        SelectEq(BaseRel("r"), "a", ("const", 1)),
        Product(BaseRel("r"), BaseRel("s")),
        RenameAttr(BaseRel("s"), {"k": "a2"}),
        Nest(BaseRel("r"), ("b",), "grp"),
        Unnest(Nest(BaseRel("r"), ("b",), "grp"), "grp"),
        OuterNest(BaseRel("r"), BaseRel("s"), (("a", "k"),), "ks"),
        Nest(SelectEq(BaseRel("r"), "a", ("const", 1)), ("b",), "grp"),
        Project(Unnest(Nest(BaseRel("r"), ("b",), "g"), "g"), ("b",)),
    ]

    @pytest.mark.parametrize("expr", CASES, ids=[repr(c) for c in CASES])
    def test_translation_agrees(self, expr):
        database = db()
        direct = evaluate_algebra(expr, database)
        via_coql = evaluate_coql(algebra_to_coql(expr, SCHEMA), database)
        assert direct == via_coql

    def test_nest_on_set_attribute_rejected(self):
        nested_schema = {
            "t": RecordType(
                {"a": ATOM, "grp": SetType(RecordType({"b": ATOM}))}
            )
        }
        # Grouping governed by the set-valued attribute "grp".
        with pytest.raises(UnsupportedQueryError):
            algebra_to_coql(Nest(BaseRel("t"), ("a",), "g2"), nested_schema)


class TestNestUnnestEquivalence:
    """The answer to the Gyssens–Paredaens–Van Gucht question [24]."""

    def test_nest_unnest_roundtrip_is_identity(self):
        identity = Pipeline("r", [])
        roundtrip = Pipeline("r", [("nest", ("b",), "grp"), ("unnest", "grp")])
        assert pipelines_equivalent(roundtrip, identity, SCHEMA)

    def test_roundtrip_by_other_attribute(self):
        identity = Pipeline("r", [])
        other = Pipeline("r", [("nest", ("a",), "g"), ("unnest", "g")])
        assert pipelines_equivalent(other, identity, SCHEMA)

    def test_double_roundtrip(self):
        identity = Pipeline("r", [])
        double = Pipeline(
            "r",
            [
                ("nest", ("b",), "g"),
                ("unnest", "g"),
                ("nest", ("a",), "h"),
                ("unnest", "h"),
            ],
        )
        assert pipelines_equivalent(double, identity, SCHEMA)

    def test_renest_idempotent(self):
        once = Pipeline("r", [("nest", ("b",), "g")])
        thrice = Pipeline(
            "r", [("nest", ("b",), "g"), ("unnest", "g"), ("nest", ("b",), "g")]
        )
        assert pipelines_equivalent(once, thrice, SCHEMA)

    def test_different_nestings_not_equivalent(self):
        by_b = Pipeline("r", [("nest", ("b",), "g")])
        # Nest by ("a",) yields a different label/type; compare instead
        # nest-by-b against nest-by-b of a *filtered* relation — not
        # expressible as a pipeline, so use two structurally different
        # pipelines with the same type: ν(b) vs ν(b) after a no-op
        # re-group — they are equivalent; the inequivalent case needs the
        # label to match, so build ν(b→g) vs μ(ν(b→g)) re-nested by a.
        by_b_regrouped = Pipeline(
            "r",
            [("nest", ("b",), "g")],
        )
        assert pipelines_equivalent(by_b, by_b_regrouped, SCHEMA)

    def test_incomparable_shapes_raise(self):
        nested = Pipeline("r", [("nest", ("b",), "g")])
        flat = Pipeline("r", [])
        with pytest.raises(IncomparableQueriesError):
            pipelines_equivalent(nested, flat, SCHEMA)

    def test_pipeline_containment(self):
        identity = Pipeline("r", [])
        roundtrip = Pipeline("r", [("nest", ("b",), "grp"), ("unnest", "grp")])
        assert pipeline_contained(identity, roundtrip, SCHEMA)
        assert pipeline_contained(roundtrip, identity, SCHEMA)

    def test_equivalence_matches_evaluation_on_random_dbs(self):
        import random as _random

        identity = Pipeline("r", [])
        roundtrip = Pipeline("r", [("nest", ("b",), "grp"), ("unnest", "grp")])
        for seed in range(10):
            rng = _random.Random(seed)
            rows = [
                {"a": rng.randrange(3), "b": rng.randrange(3)}
                for __ in range(5)
            ]
            database = Database.from_dict({"r": rows, "s": [{"k": 0, "c": 0}]})
            assert roundtrip.evaluate(database) == identity.evaluate(database)
