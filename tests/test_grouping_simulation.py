"""Tests for the simulation decision procedure (paper Sections 5, 6).

Besides hand-crafted cases, these tests cross-validate the certificate
procedure against two independent semantic implementations:

* soundness — whenever the certificate exists, the semantic simulation
  condition holds on randomized databases;
* completeness — the certificate verdict agrees with semantic simulation
  over the canonical database family.
"""

import pytest

from repro.cq import parse_query, contains
from repro.grouping import (
    is_simulated,
    simulation_certificate,
    is_strongly_simulated,
    semantic_simulates,
    semantic_strongly_simulates,
    check_simulation_on_canonical,
    check_strong_simulation_on_canonical,
)
from repro.grouping.build import node, grouping_query
from repro.workloads import (
    random_flat_database,
    random_cq,
    random_grouping_query,
)


def flat_of(cq):
    """Wrap a flat CQ as a (depth-1) grouping query with value columns."""
    values = {"v%d" % i: t for i, t in enumerate(cq.head)}
    return grouping_query(node("", list(cq.body), values))


def linked_query():
    """Inner set linked to the outer row: {[b: y] | s(xa, y)}."""
    return grouping_query(
        node(
            "",
            ["r(Xa)"],
            {"a": "Xa"},
            children=[node("kids", ["s(Xa, Yb)"], {"b": "Yb"}, index=["Xa"])],
        )
    )


def unlinked_query():
    """Inner set not linked to the outer row: all of s."""
    return grouping_query(
        node(
            "",
            ["r(Xa)"],
            {"a": "Xa"},
            children=[node("kids", ["s(Z, Yb)"], {"b": "Yb"}, index=[])],
        )
    )


class TestFlatSimulationIsContainment:
    """Depth-1 simulation coincides with Chandra–Merlin containment."""

    CASES = [
        ("q(X) :- r(X, Y), s(Y)", "q(X) :- r(X, Y)", True),
        ("q(X) :- r(X, Y)", "q(X) :- r(X, Y), s(Y)", False),
        ("q(X, Y) :- e(X, Z), e(Z, Y)", "q(X, Y) :- e(X, Z), e(Z, Y)", True),
        ("q() :- e(A,B), e(B,C), e(C,A)", "q() :- e(X,X)", False),
        ("q() :- e(X,X)", "q() :- e(A,B), e(B,C), e(C,A)", True),
    ]

    @pytest.mark.parametrize("sub_text,sup_text,expected", CASES)
    def test_matches_containment(self, sub_text, sup_text, expected):
        sub, sup = parse_query(sub_text), parse_query(sup_text)
        assert contains(sup, sub) is expected
        assert is_simulated(flat_of(sub), flat_of(sup)) is expected

    def test_random_flat_queries_agree_with_containment(self):
        schema = {"r": 2, "s": 1, "t": 2}
        agreements = 0
        for seed in range(60):
            q1 = random_cq(schema, atoms=3, variables=3, head_arity=1, seed=seed)
            q2 = random_cq(schema, atoms=2, variables=3, head_arity=1, seed=seed + 1000)
            if len(q1.head) != len(q2.head):
                continue
            expected = contains(q2, q1)
            assert is_simulated(flat_of(q1), flat_of(q2)) is expected
            agreements += 1
        assert agreements > 30


class TestNestedSimulation:
    def test_reflexive(self):
        q = linked_query()
        assert is_simulated(q, q)

    def test_linked_below_unlinked(self):
        # {y | s(xa,y)} ⊆ {y | s(z,y)} for every database: simulated.
        assert is_simulated(linked_query(), unlinked_query())

    def test_unlinked_not_below_linked(self):
        assert not is_simulated(unlinked_query(), linked_query())

    def test_certificate_exposes_choice(self):
        cert = simulation_certificate(linked_query(), unlinked_query())
        assert cert is not None
        assert cert.index_choice[("kids",)] == ()

    def test_extra_inner_condition_simulated(self):
        narrow = grouping_query(
            node(
                "",
                ["r(Xa)"],
                {"a": "Xa"},
                children=[
                    node(
                        "kids",
                        ["s(Xa, Yb)", "p(Yb)"],
                        {"b": "Yb"},
                        index=["Xa"],
                    )
                ],
            )
        )
        assert is_simulated(narrow, linked_query())
        assert not is_simulated(linked_query(), narrow)

    def test_outer_join_extra_atom(self):
        small_outer = grouping_query(
            node(
                "",
                ["r(Xa)", "p(Xa)"],
                {"a": "Xa"},
                children=[node("kids", ["s(Xa, Yb)"], {"b": "Yb"}, index=["Xa"])],
            )
        )
        assert is_simulated(small_outer, linked_query())
        assert not is_simulated(linked_query(), small_outer)

    def test_value_mismatch_fails(self):
        q1 = grouping_query(node("", ["r(X, Y)"], {"a": "X"}))
        q2 = grouping_query(node("", ["r(X, Y)"], {"a": "Y"}))
        assert not is_simulated(q1, q2)
        # but reflexivity still holds
        assert is_simulated(q2, q2)

    def test_constant_values(self):
        q1 = grouping_query(node("", ["r(X)"], {"a": 1}))
        q2 = grouping_query(node("", ["r(X)"], {"a": "X"}))
        assert not is_simulated(q1, q2)  # q2's output is X, not always 1
        assert not is_simulated(q2, q1)

    def test_index_arity_may_differ(self):
        two_key = grouping_query(
            node(
                "",
                ["r(X, K1, K2)"],
                {"a": "X"},
                children=[
                    node("c", ["s(K1, K2, Y)"], {"b": "Y"}, index=["K1", "K2"])
                ],
            )
        )
        one_key = grouping_query(
            node(
                "",
                ["r(X, K1, K2)"],
                {"a": "X"},
                children=[node("c", ["s(K1, W, Y)"], {"b": "Y"}, index=["K1"])],
            )
        )
        assert is_simulated(two_key, one_key)
        assert not is_simulated(one_key, two_key)

    def test_depth_three_reflexive(self):
        q = grouping_query(
            node(
                "",
                ["r(X)"],
                {"a": "X"},
                children=[
                    node(
                        "m",
                        ["s(X, Y)"],
                        {"b": "Y"},
                        index=["X"],
                        children=[node("l", ["t(Y, Z)"], {"c": "Z"}, index=["Y"])],
                    )
                ],
            )
        )
        assert is_simulated(q, q)
        assert is_strongly_simulated(q, q)


class TestSemanticCrossValidation:
    """The certificate procedure against the brute-force checkers."""

    SCHEMA = {"r": 2, "s": 2}

    def _pairs(self, count, depth):
        for seed in range(count):
            q1 = random_grouping_query(self.SCHEMA, seed=seed, depth=depth)
            q2 = random_grouping_query(self.SCHEMA, seed=seed + 5000, depth=depth)
            if q1.shape() == q2.shape():
                yield q1, q2
            if seed % 3 == 0:
                # Guaranteed-positive pair: a query against a renamed copy.
                yield q1, q1.rename_apart("_p")

    @pytest.mark.parametrize("depth", [1, 2])
    def test_soundness_on_random_databases(self, depth):
        """Certificate ⟹ semantic simulation on arbitrary databases."""
        checked = 0
        for q1, q2 in self._pairs(80, depth):
            if not is_simulated(q1, q2):
                continue
            for db_seed in range(6):
                db = random_flat_database(self.SCHEMA, rows=4, domain=3, seed=db_seed)
                assert semantic_simulates(q1, q2, db), (q1, q2, db_seed)
            checked += 1
        assert checked >= 3

    @pytest.mark.parametrize("depth", [1, 2])
    def test_agreement_with_canonical_family(self, depth):
        """Certificate verdict == semantic verdict on canonical databases."""
        compared = 0
        for q1, q2 in self._pairs(60, depth):
            expected = check_simulation_on_canonical(q1, q2)
            assert is_simulated(q1, q2) is expected, (q1, q2)
            compared += 1
        assert compared >= 5

    def test_strong_soundness_on_random_databases(self):
        checked = 0
        for q1, q2 in self._pairs(60, 2):
            if not is_strongly_simulated(q1, q2):
                continue
            for db_seed in range(6):
                db = random_flat_database(self.SCHEMA, rows=4, domain=3, seed=db_seed)
                assert semantic_strongly_simulates(q1, q2, db), (q1, q2, db_seed)
            checked += 1
        assert checked >= 2

    def test_strong_against_canonical_family(self):
        """The canonical family of `sub` is a *necessary* condition for
        strong simulation: the certificate may only say True when the
        family holds, and must say False when the family refutes.  (It is
        not sufficient: refuting the reverse direction can require
        databases exhibiting extra rows in `sup`'s groups, which the
        sub-built canonical family cannot produce — the tests probe such
        cases with random databases instead.)"""
        compared = 0
        disagreements = 0
        for q1, q2 in self._pairs(25, 2):
            canonical_ok = check_strong_simulation_on_canonical(q1, q2)
            verdict = is_strongly_simulated(q1, q2)
            if verdict:
                assert canonical_ok, (q1, q2)
            if not canonical_ok:
                assert not verdict, (q1, q2)
            if canonical_ok and not verdict:
                # The certificate refuted beyond the canonical family; a
                # random database should witness the refutation.
                disagreements += 1
                refuted = any(
                    not semantic_strongly_simulates(
                        q1,
                        q2,
                        random_flat_database(self.SCHEMA, rows=4, domain=3, seed=s),
                    )
                    for s in range(60)
                )
                assert refuted, (q1, q2)
            compared += 1
        assert compared >= 5


class TestStrongSimulation:
    def test_linked_vs_unlinked_not_strong(self):
        # Groups are included but not equal.
        assert is_simulated(linked_query(), unlinked_query())
        assert not is_strongly_simulated(linked_query(), unlinked_query())

    def test_reflexive(self):
        assert is_strongly_simulated(linked_query(), linked_query())

    def test_strong_implies_simulation(self):
        for seed in range(25):
            q1 = random_grouping_query({"r": 2, "s": 2}, seed=seed, depth=2)
            q2 = random_grouping_query({"r": 2, "s": 2}, seed=seed + 7000, depth=2)
            if q1.shape() != q2.shape():
                continue
            if is_strongly_simulated(q1, q2):
                assert is_simulated(q1, q2)

    def test_renamed_copy_strongly_simulates(self):
        q = linked_query()
        renamed = q.rename_apart("_p")
        assert is_strongly_simulated(q, renamed)
        assert is_strongly_simulated(renamed, q)

    def test_redundant_outer_atom(self):
        redundant = grouping_query(
            node(
                "",
                ["r(Xa)", "r(Zb)"],
                {"a": "Xa"},
                children=[node("kids", ["s(Xa, Yb)"], {"b": "Yb"}, index=["Xa"])],
            )
        )
        assert is_strongly_simulated(redundant, linked_query())
        assert is_strongly_simulated(linked_query(), redundant)
