"""Edge cases of the type system: ``EmptySetType``, ``join_types``, and
the :func:`repro.coql.typecheck.typecheck` error paths.

The empty set is the subtle corner of the COQL type system — ``{}`` has
a set type with an *unknown* element (the bottom set type under
``join_types``), and the paper's containment results hinge on tracking
exactly where such components can appear.
"""

import pytest

from repro.coql.ast import (
    Const,
    EmptySet,
    Flatten,
    Proj,
    RecordExpr,
    RelRef,
    Select,
    Singleton,
    VarRef,
)
from repro.coql.parser import parse_coql
from repro.coql.typecheck import typecheck
from repro.errors import TypeCheckError
from repro.objects.types import (
    ATOM,
    EMPTY_SET,
    EmptySetType,
    RecordType,
    SetType,
    infer_type,
    join_types,
)
from repro.objects.values import CSet, Record

SCHEMA = {"r": RecordType({"a": ATOM, "b": ATOM})}


class TestEmptySetType:
    def test_singleton_instance(self):
        assert EmptySetType() is EMPTY_SET
        assert EmptySetType() == EmptySetType()
        assert hash(EmptySetType()) == hash(EMPTY_SET)

    def test_inferred_for_empty_cset(self):
        assert infer_type(CSet()) == EMPTY_SET
        nested = infer_type(CSet([CSet()]))
        assert nested == SetType(EMPTY_SET)

    def test_join_is_bottom_set_type(self):
        element = SetType(ATOM)
        assert join_types(EMPTY_SET, element) == element
        assert join_types(element, EMPTY_SET) == element
        assert join_types(EMPTY_SET, EMPTY_SET) == EMPTY_SET

    def test_join_with_non_set_raises(self):
        with pytest.raises(TypeCheckError, match="incompatible"):
            join_types(EMPTY_SET, ATOM)
        with pytest.raises(TypeCheckError, match="incompatible"):
            join_types(ATOM, EMPTY_SET)

    def test_join_inside_records_and_sets(self):
        left = RecordType({"kids": EMPTY_SET})
        right = RecordType({"kids": SetType(ATOM)})
        assert join_types(left, right) == right
        assert join_types(SetType(EMPTY_SET), SetType(SetType(ATOM))) == \
            SetType(SetType(ATOM))

    def test_join_mismatched_records_raises(self):
        with pytest.raises(TypeCheckError, match="different attributes"):
            join_types(RecordType({"a": ATOM}), RecordType({"b": ATOM}))

    def test_mixed_set_inference_joins_elements(self):
        value = CSet([Record({"kids": CSet()}),
                      Record({"kids": CSet([1])})])
        assert infer_type(value) == SetType(
            RecordType({"kids": SetType(ATOM)})
        )
        with pytest.raises(TypeCheckError):
            infer_type(CSet([1, Record({"a": 2})]))


class TestTypecheckEmptySet:
    def test_empty_literal(self):
        assert typecheck(EmptySet(), SCHEMA) == EMPTY_SET
        assert typecheck(Singleton(EmptySet()), SCHEMA) == SetType(EMPTY_SET)

    def test_flatten_of_empty_collapses(self):
        assert typecheck(Flatten(EmptySet()), SCHEMA) == EMPTY_SET
        assert typecheck(
            Flatten(Singleton(EmptySet())), SCHEMA
        ) == EMPTY_SET

    def test_generator_over_empty_set_is_vacuous(self):
        query = parse_coql("select [v: x] from x in {}")
        result = typecheck(query, SCHEMA)
        assert result == SetType(RecordType({"v": EMPTY_SET}))


class TestTypecheckErrorPaths:
    def test_unknown_relation(self):
        with pytest.raises(TypeCheckError, match="unknown relation nope"):
            typecheck(RelRef("nope"), SCHEMA)

    def test_non_record_schema_entry(self):
        with pytest.raises(TypeCheckError, match="must be a RecordType"):
            typecheck(RelRef("r"), {"r": ATOM})

    def test_unbound_variable(self):
        with pytest.raises(TypeCheckError, match="unbound variable z"):
            typecheck(VarRef("z"), SCHEMA)

    def test_projection_on_non_record(self):
        with pytest.raises(TypeCheckError, match="non-record"):
            typecheck(Proj(Const(1), "a"), SCHEMA)

    def test_projection_missing_attribute(self):
        query = parse_coql("select [v: x.zzz] from x in r")
        with pytest.raises(TypeCheckError, match="no attribute zzz"):
            typecheck(query, SCHEMA)

    def test_flatten_non_set(self):
        with pytest.raises(TypeCheckError, match="non-set"):
            typecheck(Flatten(Const(1)), SCHEMA)

    def test_flatten_set_of_non_sets(self):
        with pytest.raises(TypeCheckError, match="set of non-sets"):
            typecheck(Flatten(RelRef("r")), SCHEMA)

    def test_generator_over_non_set(self):
        query = Select(RecordExpr({"v": VarRef("x")}), [("x", Const(1))])
        with pytest.raises(TypeCheckError, match="non-set type"):
            typecheck(query, SCHEMA)

    def test_condition_on_non_atomic_operands(self):
        query = parse_coql("select [v: x.a] from x in r where x = x")
        with pytest.raises(TypeCheckError, match="atomic expressions only"):
            typecheck(query, SCHEMA)
        query = parse_coql("select [v: x.a] from x in r where x.a = r")
        with pytest.raises(TypeCheckError, match="atomic expressions only"):
            typecheck(query, SCHEMA)

    def test_errors_carry_spans_from_parsed_text(self):
        query = parse_coql("select [v: x.zzz] from x in r")
        with pytest.raises(TypeCheckError) as caught:
            typecheck(query, SCHEMA)
        assert caught.value.span == (1, 13)
        assert "line 1" in str(caught.value)
