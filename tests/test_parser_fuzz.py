"""Fuzz tests: parsers must reject garbage with ParseError, never crash.

Also grammar round-trips: printing then re-parsing is the identity for
both the datalog CQ syntax and COQL (the COQL case also lives in
test_unions_pretty_json; here the inputs are adversarial).
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.errors import ParseError, ReproError
from repro.cq.parser import parse_query, parse_atom
from repro.coql.parser import parse_coql

# Characters that appear in the grammars, to bias the fuzzer toward
# almost-valid inputs (pure noise rarely exercises deep paths).
_ALPHABET = list("qrsxyzXYZ()[]{},.=:123\"' infromselectwher")

garbage = st.text(alphabet=_ALPHABET, min_size=0, max_size=40)


class TestCqParserFuzz:
    @given(garbage)
    @settings(max_examples=300, deadline=None)
    def test_never_crashes(self, text):
        try:
            parse_query(text)
        except (ParseError, ReproError):
            pass  # rejection is the expected outcome

    @given(garbage)
    @settings(max_examples=200, deadline=None)
    def test_atom_never_crashes(self, text):
        try:
            parse_atom(text)
        except (ParseError, ReproError):
            pass

    def test_specific_near_misses(self):
        for text in [
            "q(X) :-",
            "q(X) :- r(X,)",
            "q(X) :- r(X))",
            "(X) :- r(X)",
            "q(X) r(X)",
            "q(X) :- R(X)",  # uppercase predicate
        ]:
            with pytest.raises((ParseError, ReproError)):
                parse_query(text)


class TestCoqlParserFuzz:
    @given(garbage)
    @settings(max_examples=300, deadline=None)
    def test_never_crashes(self, text):
        try:
            parse_coql(text)
        except (ParseError, ReproError):
            pass

    def test_specific_near_misses(self):
        for text in [
            "select",
            "select x from",
            "select [v: x.a] from x",
            "select [v: x.a] from x in",
            "select [v x.a] from x in r",
            "select [v: x.a] from x in r where",
            "select [v: x.a] from x in r where x.a",
            "{",
            "[a: 1",
            "flatten(",
        ]:
            with pytest.raises((ParseError, ReproError)):
                parse_coql(text)

    def test_deeply_nested_input(self):
        text = "select [v: x.a] from x in r"
        for __ in range(12):
            text = "select [w: (%s)] from y in r" % text
        parse_coql(text)  # must parse without blowing the stack
