"""Tests for containment explanations (witnesses and counterexamples)."""

import pytest

from repro.objects import dominated
from repro.coql import parse_coql, evaluate_coql, contains
from repro.coql.explain import explain_containment
from repro.workloads import random_coql
from repro.errors import IncomparableQueriesError

SCHEMA = {"r": ("a", "b"), "s": ("k", "b")}

LINKED = (
    "select [a: x.a, kids: select [b: y.b] from y in s where y.k = x.a]"
    " from x in r"
)
UNLINKED = "select [a: x.a, kids: select [b: y.b] from y in s] from x in r"


class TestPositiveExplanations:
    def test_certificates_cover_all_obligations(self):
        explanation = explain_containment(UNLINKED, LINKED, SCHEMA)
        assert explanation.holds
        assert len(explanation.certificates) == 2  # full + pruned pattern
        for certificate in explanation.certificates.values():
            assert certificate.mapping

    def test_flat_positive(self):
        explanation = explain_containment(
            "select [v: x.a] from x in r",
            "select [v: x.a] from x in r where x.b = 1",
            SCHEMA,
        )
        assert explanation.holds
        assert len(explanation.certificates) == 1


class TestCounterexamples:
    def test_group_content_counterexample(self):
        explanation = explain_containment(LINKED, UNLINKED, SCHEMA)
        assert not explanation.holds
        assert explanation.counterexample is not None
        assert not dominated(explanation.sub_answer, explanation.sup_answer)

    def test_truncation_counterexample(self):
        restricted = LINKED + ", z in s where z.k = x.a"
        explanation = explain_containment(restricted, LINKED, SCHEMA)
        assert not explanation.holds
        assert explanation.counterexample is not None
        # The counterexample exhibits an element with an empty inner set.
        db = explanation.counterexample
        direct_sub = evaluate_coql(parse_coql(LINKED), db)
        direct_sup = evaluate_coql(parse_coql(restricted), db)
        assert not dominated(direct_sub, direct_sup)

    def test_counterexample_agrees_with_interpreter(self):
        explanation = explain_containment(LINKED, UNLINKED, SCHEMA)
        db = explanation.counterexample
        assert evaluate_coql(parse_coql(UNLINKED), db) == explanation.sub_answer
        assert evaluate_coql(parse_coql(LINKED), db) == explanation.sup_answer

    def test_flat_negative(self):
        explanation = explain_containment(
            "select [v: x.a] from x in r where x.b = 1",
            "select [v: x.a] from x in r",
            SCHEMA,
        )
        assert not explanation.holds
        assert explanation.counterexample is not None


class TestAgreementWithContains:
    @pytest.mark.parametrize("depth", [1, 2])
    def test_verdicts_match(self, depth):
        compared = 0
        for seed in range(15):
            q1 = random_coql(seed=seed, depth=depth)
            q2 = random_coql(seed=seed + 3000, depth=depth)
            try:
                verdict = contains(q2, q1, SCHEMA)
            except IncomparableQueriesError:
                continue
            explanation = explain_containment(q2, q1, SCHEMA)
            assert explanation.holds is verdict, (q1, q2)
            if not verdict and explanation.counterexample is not None:
                assert not dominated(
                    explanation.sub_answer, explanation.sup_answer
                )
            compared += 1
        assert compared >= 8

    def test_counterexample_hit_rate(self):
        """Counterexamples should be found for most refutations."""
        negatives = 0
        found = 0
        for seed in range(20):
            q1 = random_coql(seed=seed, depth=2)
            q2 = random_coql(seed=seed + 3000, depth=2)
            try:
                explanation = explain_containment(q2, q1, SCHEMA)
            except IncomparableQueriesError:
                continue
            if explanation.holds:
                continue
            negatives += 1
            if explanation.counterexample is not None:
                found += 1
        assert negatives >= 5
        assert found >= negatives * 0.7
