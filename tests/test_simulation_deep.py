"""Deeper cross-validation: branching trees, depth 3, and the second
decision path (canonical-family method) against the certificate search."""

import pytest

from repro.errors import IncomparableQueriesError
from repro.grouping import (
    is_simulated,
    semantic_simulates,
    check_simulation_on_canonical,
)
from repro.workloads import (
    random_grouping_query,
    random_flat_database,
    random_coql,
)
from repro.coql import contains

SCHEMA = {"r": 2, "s": 2}


class TestBranchingTrees:
    def _pairs(self, count):
        for seed in range(count):
            q1 = random_grouping_query(
                SCHEMA, seed=seed, depth=2, branching=2, variables=4
            )
            q2 = random_grouping_query(
                SCHEMA, seed=seed + 4000, depth=2, branching=2, variables=4
            )
            if q1.shape() == q2.shape():
                yield q1, q2
            if seed % 3 == 0:
                yield q1, q1.rename_apart("_p")

    def test_reflexive(self):
        for seed in range(10):
            q = random_grouping_query(SCHEMA, seed=seed, depth=2, branching=2)
            assert is_simulated(q, q)

    def test_certificate_agrees_with_canonical(self):
        compared = 0
        for q1, q2 in self._pairs(30):
            expected = check_simulation_on_canonical(q1, q2)
            assert is_simulated(q1, q2) is expected, (q1, q2)
            compared += 1
        assert compared >= 5

    def test_soundness_on_random_databases(self):
        checked = 0
        for q1, q2 in self._pairs(30):
            if not is_simulated(q1, q2):
                continue
            for db_seed in range(4):
                db = random_flat_database(SCHEMA, rows=3, domain=3, seed=db_seed)
                assert semantic_simulates(q1, q2, db), (q1, q2, db_seed)
            checked += 1
        assert checked >= 2


class TestDepthThree:
    def _pairs(self, count):
        for seed in range(count):
            q1 = random_grouping_query(
                SCHEMA, seed=seed, depth=3, variables=4, atoms_per_node=1
            )
            yield q1, q1.rename_apart("_p")
            q2 = random_grouping_query(
                SCHEMA, seed=seed + 9000, depth=3, variables=4, atoms_per_node=1
            )
            if q1.shape() == q2.shape():
                yield q1, q2

    def test_certificate_agrees_with_canonical(self):
        compared = 0
        for q1, q2 in self._pairs(6):
            expected = check_simulation_on_canonical(q1, q2, max_witnesses=2)
            assert is_simulated(q1, q2, witnesses=2) is expected, (q1, q2)
            compared += 1
        assert compared >= 4

    def test_soundness_on_random_databases(self):
        checked = 0
        for q1, q2 in self._pairs(8):
            if not is_simulated(q1, q2):
                continue
            for db_seed in range(3):
                db = random_flat_database(SCHEMA, rows=3, domain=2, seed=db_seed)
                assert semantic_simulates(q1, q2, db), (q1, q2, db_seed)
            checked += 1
        assert checked >= 3


class TestCanonicalMethod:
    """coql.contains(method='canonical') agrees with the certificate."""

    COQL_SCHEMA = {"r": ("a", "b"), "s": ("k", "b")}

    @pytest.mark.parametrize("depth", [1, 2])
    def test_methods_agree(self, depth):
        compared = 0
        for seed in range(12):
            q1 = random_coql(seed=seed, depth=depth)
            q2 = random_coql(seed=seed + 3000, depth=depth)
            try:
                by_certificate = contains(q2, q1, self.COQL_SCHEMA)
            except IncomparableQueriesError:
                continue
            by_canonical = contains(
                q2, q1, self.COQL_SCHEMA, method="canonical"
            )
            assert by_certificate is by_canonical, (q1, q2)
            compared += 1
        assert compared >= 6

    def test_unknown_method_rejected(self):
        from repro.errors import UnsupportedQueryError

        with pytest.raises(UnsupportedQueryError):
            contains(
                "select [v: x.a] from x in r",
                "select [v: x.a] from x in r",
                self.COQL_SCHEMA,
                method="zen",
            )
