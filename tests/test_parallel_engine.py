"""Differential test oracle for the parallel containment engine.

Parallelism must never change a verdict: for seeded random pairs from
every generator family (:func:`random_coql` / :func:`random_coql_deep`
at the COQL layer, :func:`random_cq` and :func:`random_grouping_query`
at the grouping-simulation layer), the sharded
:class:`ParallelContainmentEngine` must agree exactly with the
sequential :class:`ContainmentEngine`, and — at small depth — with the
brute-force canonical-database decision procedure
(:mod:`repro.grouping.bruteforce`).  Together the sweeps below cover
230+ seeded pairs with a zero-mismatch requirement.

Metamorphic properties harden the oracle further: ``contains(q, q)`` is
always True, and the pairwise matrix of a query list with duplicates
must assign identical verdicts to cells whose (sup, sub) queries are
equal — a scheduling- or chunking-dependent result would break both.
"""

import pytest

from repro.errors import ReproError
from repro.engine import ContainmentEngine, ParallelContainmentEngine
from repro.grouping.query import GroupingNode, GroupingQuery
from repro.grouping.simulation import is_simulated
from repro.grouping.bruteforce import check_simulation_on_canonical
from repro.workloads import (
    random_coql,
    random_coql_deep,
    random_cq,
    random_grouping_query,
)

SCHEMA = {"r": ("a", "b"), "s": ("k", "b")}
CQ_SCHEMA = {"r": 2, "s": 1}


@pytest.fixture(scope="module")
def parallel():
    """One shared two-worker engine: pool reuse across the module keeps
    worker caches warm and the suite fast."""
    engine = ParallelContainmentEngine(jobs=2, chunk_size=8)
    yield engine
    engine.close()


def same_verdicts(expected, got):
    """Zero-mismatch assertion: booleans must match exactly; captured
    exceptions compare by type (pickling rebuilds the instance)."""
    assert len(expected) == len(got)
    mismatches = [
        (index, e, g)
        for index, (e, g) in enumerate(zip(expected, got))
        if (
            type(e) is not type(g)
            if isinstance(e, ReproError) or isinstance(g, ReproError)
            else e != g
        )
    ]
    assert not mismatches, "verdict mismatches: %r" % (mismatches[:5],)


def flat_grouping(cq, name):
    """A conjunctive query as a one-node grouping query (its head
    becomes the value columns), the shape-preserving embedding the
    paper uses for the flat fragment."""
    values = {"c%d" % i: term for i, term in enumerate(cq.head)}
    return GroupingQuery(GroupingNode("", cq.body, values, (), ()), name)


class TestCoqlDifferentialOracle:
    """COQL pairs: parallel vs sequential engine (120 seeded pairs)."""

    def _pairs(self):
        pairs = [
            (random_coql(seed=seed), random_coql(seed=seed + 3000))
            for seed in range(80)
        ]
        pairs += [
            (
                random_coql_deep(seed=seed, depth=3),
                random_coql_deep(seed=seed + 900, depth=3),
            )
            for seed in range(40)
        ]
        return pairs

    def test_parallel_matches_sequential(self, parallel):
        pairs = self._pairs()
        expected = ContainmentEngine().contains_many(
            pairs, SCHEMA, on_error="capture"
        )
        got = parallel.contains_many(pairs, SCHEMA, on_error="capture")
        same_verdicts(expected, got)

    def test_parallel_matches_bruteforce_canonical(self, parallel):
        """At depth <= 2 the canonical-database method is affordable:
        the certificate verdicts (sharded) must match it pairwise."""
        pairs = [
            (random_coql(seed=seed), random_coql(seed=seed + 3000))
            for seed in range(30)
        ]
        got = parallel.contains_many(
            pairs, SCHEMA, on_error="capture", method="certificate"
        )
        canonical = ContainmentEngine().contains_many(
            pairs, SCHEMA, on_error="capture", method="canonical"
        )
        same_verdicts(canonical, got)


class TestSimulationDifferentialOracle:
    """Grouping-simulation pairs: parallel vs sequential vs brute force
    (50 flat CQ embeddings + 30 random depth-2 trees + 30 at depth 1)."""

    def _cq_pairs(self):
        return [
            (
                flat_grouping(
                    random_cq(
                        CQ_SCHEMA, atoms=3, variables=4, head_arity=1,
                        seed=seed,
                    ),
                    "a%d" % seed,
                ),
                flat_grouping(
                    random_cq(
                        CQ_SCHEMA, atoms=3, variables=4, head_arity=1,
                        seed=seed + 5000,
                    ),
                    "b%d" % seed,
                ),
            )
            for seed in range(50)
        ]

    def _tree_pairs(self, depth, count, offset):
        return [
            (
                random_grouping_query(
                    CQ_SCHEMA, seed=seed, depth=depth, atoms_per_node=2,
                    variables=4,
                ),
                random_grouping_query(
                    CQ_SCHEMA, seed=seed + offset, depth=depth,
                    atoms_per_node=2, variables=4,
                ),
            )
            for seed in range(count)
        ]

    @pytest.mark.parametrize(
        "family",
        ["flat_cq", "tree_depth1", "tree_depth2"],
    )
    def test_three_way_agreement(self, parallel, family):
        if family == "flat_cq":
            pairs = self._cq_pairs()
        elif family == "tree_depth1":
            pairs = self._tree_pairs(depth=1, count=30, offset=9000)
        else:
            pairs = self._tree_pairs(depth=2, count=30, offset=7000)
        got = parallel.simulated_many(pairs, on_error="capture")
        for index, (sub, sup) in enumerate(pairs):
            try:
                sequential = is_simulated(sub, sup)
            except ReproError as exc:
                sequential = exc
            try:
                brute = check_simulation_on_canonical(sub, sup)
            except ReproError as exc:
                brute = exc
            same_verdicts([sequential], [got[index]])
            same_verdicts([brute], [got[index]])


class TestMetamorphic:
    def test_self_containment_always_true(self, parallel):
        queries = [random_coql(seed=seed) for seed in range(20)]
        queries += [random_coql_deep(seed=seed, depth=3) for seed in range(10)]
        verdicts = parallel.contains_many(
            [(query, query) for query in queries], SCHEMA
        )
        assert verdicts == [True] * len(queries)

    def test_matrix_of_duplicates_is_consistent(self, parallel):
        base = [random_coql(seed=seed) for seed in range(3)]
        queries = base + base  # every query appears twice
        matrix = parallel.pairwise_matrix(queries, SCHEMA)
        size = len(base)
        for i in range(len(queries)):
            assert matrix[i][i] is True  # diagonal: q ⊑ q
        for i in range(len(queries)):
            for j in range(len(queries)):
                # the duplicate's row/column must be cell-identical
                assert matrix[i][j] == matrix[(i + size) % (2 * size)][j]
                assert matrix[i][j] == matrix[i][(j + size) % (2 * size)]

    def test_matrix_matches_singles(self, parallel):
        queries = [random_coql(seed=seed) for seed in range(4)]
        matrix = parallel.pairwise_matrix(queries, SCHEMA)
        engine = ContainmentEngine()
        for i, sup in enumerate(queries):
            for j, sub in enumerate(queries):
                try:
                    expected = engine.contains(sup, sub, SCHEMA)
                except ReproError:
                    expected = None
                assert matrix[i][j] == expected


class TestPicklingBoundary:
    def test_typed_schema_crosses_the_pool(self):
        """ViewCatalog-style typed schemas (RecordType/SetType values)
        must survive the worker boundary — a pickling failure would
        silently degrade every batch to in-process."""
        import pickle

        from repro.objects.types import ATOM, EMPTY_SET, RecordType, SetType

        typed = {
            "r": RecordType({"a": ATOM, "kids": SetType(RecordType({"b": ATOM}))}),
            "s": RecordType({"k": ATOM, "b": ATOM}),
        }
        for value in (ATOM, EMPTY_SET, typed["r"], SetType(ATOM)):
            assert pickle.loads(pickle.dumps(value)) == value
        pairs = [
            (random_coql(seed=seed), random_coql(seed=seed + 3000))
            for seed in range(6)
        ]
        schema = {
            "r": RecordType({"a": ATOM, "b": ATOM}),
            "s": RecordType({"k": ATOM, "b": ATOM}),
        }
        expected = ContainmentEngine().contains_many(
            pairs, schema, on_error="capture"
        )
        with ParallelContainmentEngine(jobs=2) as engine:
            got = engine.contains_many(pairs, schema, on_error="capture")
            assert engine.stats().counter("pool_failures") == 0
        same_verdicts(expected, got)

    def test_view_catalog_matrix_does_not_degrade(self):
        """Regression: the catalog's normalized RecordType schema used
        to fail worker unpickling, silently falling back in-process."""
        from repro.coql import ViewCatalog

        catalog = ViewCatalog(
            SCHEMA, {"v%d" % i: random_coql(seed=i) for i in range(3)}
        )
        sequential = catalog.containment_matrix()
        assert catalog.containment_matrix(jobs=2) == sequential
        assert (
            catalog.engine().stats().counter("pool_failures") == 0
        )


class TestDeterminismAndDegradation:
    def test_chunking_does_not_change_order(self):
        pairs = [
            (random_coql(seed=seed), random_coql(seed=seed + 3000))
            for seed in range(17)  # deliberately not a chunk multiple
        ]
        expected = ContainmentEngine().contains_many(
            pairs, SCHEMA, on_error="capture"
        )
        for chunk_size in (1, 3, 17, 100):
            with ParallelContainmentEngine(
                jobs=2, chunk_size=chunk_size
            ) as engine:
                same_verdicts(
                    expected,
                    engine.contains_many(pairs, SCHEMA, on_error="capture"),
                )

    def test_jobs_one_runs_in_process(self):
        engine = ParallelContainmentEngine(jobs=1)
        pairs = [
            (random_coql(seed=seed), random_coql(seed=seed + 3000))
            for seed in range(5)
        ]
        expected = ContainmentEngine().contains_many(
            pairs, SCHEMA, on_error="capture"
        )
        same_verdicts(
            expected, engine.contains_many(pairs, SCHEMA, on_error="capture")
        )
        assert engine._executor is None  # never forked
        engine.close()

    def test_worker_stats_merge_back(self, parallel):
        parallel.reset_stats()
        pairs = [
            (random_coql(seed=seed), random_coql(seed=seed + 3000))
            for seed in range(12)
        ]
        parallel.contains_many(pairs, SCHEMA, on_error="capture")
        stats = parallel.stats()
        assert stats.counter("tasks_dispatched") == 12
        assert stats.counter("chunks_dispatched") >= 2
        assert stats.counter("batch_calls") == 1
        # the actual decision work happened in workers and was merged;
        # with the module-scoped pool the workers' memo tables may be
        # warm, in which case obligations resolve as worker cache hits
        assert stats.counter("contains_calls") == 12
        assert (
            stats.counter("obligations_checked")
            + stats.counter("obligation_cache_hits")
        ) > 0
