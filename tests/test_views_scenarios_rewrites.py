"""Tests for view catalogues, scenarios, aggregate rewrites, and
grouping-level minimization."""

import pytest

from repro.cq.parser import parse_atom
from repro.cq.terms import Var
from repro.coql import ViewCatalog, contains, weakly_equivalent, evaluate_coql, parse_coql
from repro.objects import dominated
from repro.grouping import minimize_grouping, simulation_equivalent
from repro.grouping.build import node, grouping_query
from repro.aggregates import (
    AggregateQuery,
    verify_rewrite,
    eliminate_redundant_atoms,
    RewriteError,
)
from repro.workloads import company_scenario, orders_scenario


class TestViewCatalog:
    def catalog(self):
        scenario = orders_scenario()
        return ViewCatalog(scenario.schema, scenario.queries), scenario

    def test_exact_view_detected(self):
        catalog, scenario = self.catalog()
        reports = catalog.analyze(scenario.queries["basket_per_customer"])
        assert reports["basket_per_customer"].exact

    def test_usable_strictly_wider_view(self):
        catalog, scenario = self.catalog()
        reports = catalog.analyze(scenario.queries["gold_baskets"])
        assert reports["basket_per_customer"].usable
        assert not reports["basket_per_customer"].exact

    def test_unusable_view(self):
        catalog, scenario = self.catalog()
        reports = catalog.analyze(scenario.queries["basket_per_customer"])
        assert not reports["gold_baskets"].usable
        assert not reports["catalogued_baskets"].usable

    def test_best_views_order(self):
        catalog, scenario = self.catalog()
        best = catalog.best_views(scenario.queries["gold_baskets"])
        assert best[0] == "gold_baskets"  # exact first
        assert "basket_per_customer" in best

    def test_counterexamples_on_request(self):
        catalog, scenario = self.catalog()
        reports = catalog.analyze(
            scenario.queries["basket_per_customer"], with_counterexamples=True
        )
        bad = reports["catalogued_baskets"]
        assert not bad.usable
        assert bad.counterexample is not None

    def test_incomparable_view(self):
        scenario = orders_scenario()
        catalog = ViewCatalog(
            scenario.schema, {"flat": "select [c: o.cust] from o in orders"}
        )
        reports = catalog.analyze(scenario.queries["basket_per_customer"])
        assert not reports["flat"].comparable


class TestScenarios:
    @pytest.mark.parametrize("factory", [company_scenario, orders_scenario])
    def test_queries_typecheck_and_run(self, factory):
        scenario = factory()
        db = scenario.database(scale=1, seed=3)
        for name, text in scenario.queries.items():
            answer = evaluate_coql(parse_coql(text), db)
            assert answer is not None

    def test_company_relationships(self):
        scenario = company_scenario()
        q = scenario.queries
        assert weakly_equivalent(
            q["staff_by_dept"], q["staff_by_dept_renamed"], scenario.schema
        )
        assert contains(
            q["staff_by_dept"], q["staffed_depts_only"], scenario.schema
        )
        assert not contains(
            q["staffed_depts_only"], q["staff_by_dept"], scenario.schema
        )
        assert contains(
            q["all_staff_under_dept"], q["staff_by_dept"], scenario.schema
        )

    def test_verdicts_hold_on_generated_data(self):
        scenario = company_scenario()
        q = scenario.queries
        for seed in range(4):
            db = scenario.database(scale=1, seed=seed)
            lhs = evaluate_coql(parse_coql(q["staffed_depts_only"]), db)
            rhs = evaluate_coql(parse_coql(q["staff_by_dept"]), db)
            assert dominated(lhs, rhs)

    def test_scale_grows_database(self):
        scenario = orders_scenario()
        small = scenario.database(scale=1, seed=0)
        big = scenario.database(scale=3, seed=0)
        assert len(big["orders"]) >= len(small["orders"])


class TestAggregateRewrites:
    def test_eliminate_redundant_atoms(self):
        query = AggregateQuery(
            (parse_atom("r(G, V)"), parse_atom("r(G, W)")),
            (Var("G"),),
            "sum",
            Var("V"),
        )
        slim = eliminate_redundant_atoms(query)
        assert len(slim.body) == 1

    def test_keeps_group_shrinking_atoms(self):
        query = AggregateQuery(
            (parse_atom("r(G, V)"), parse_atom("p(V)")),
            (Var("G"),),
            "sum",
            Var("V"),
        )
        slim = eliminate_redundant_atoms(query)
        assert len(slim.body) == 2

    def test_verify_rewrite_accepts_sound(self):
        original = AggregateQuery(
            (parse_atom("r(G, V)"), parse_atom("r(G, W)")),
            (Var("G"),),
            "sum",
            Var("V"),
        )
        rewritten = AggregateQuery(
            (parse_atom("r(G, V)"),), (Var("G"),), "sum", Var("V")
        )
        assert verify_rewrite(original, rewritten) is rewritten

    def test_verify_rewrite_rejects_unsound(self):
        original = AggregateQuery(
            (parse_atom("r(G, V)"),), (Var("G"),), "sum", Var("V")
        )
        bogus = AggregateQuery(
            (parse_atom("r(G, V)"), parse_atom("p(V)")),
            (Var("G"),),
            "sum",
            Var("V"),
        )
        with pytest.raises(RewriteError):
            verify_rewrite(original, bogus)


class TestGroupingMinimization:
    def test_drops_redundant_atom(self):
        query = grouping_query(
            node(
                "",
                ["r(Xa)", "r(Zb)"],
                {"a": "Xa"},
                children=[node("kids", ["s(Xa, Yb)"], {"b": "Yb"}, index=["Xa"])],
            )
        )
        minimized = minimize_grouping(query)
        assert len(minimized.root.own_atoms) == 1
        assert simulation_equivalent(query, minimized)

    def test_keeps_linking_atoms(self):
        query = grouping_query(
            node(
                "",
                ["r(Xa)"],
                {"a": "Xa"},
                children=[node("kids", ["s(Xa, Yb)"], {"b": "Yb"}, index=["Xa"])],
            )
        )
        minimized = minimize_grouping(query)
        assert minimized == query

    def test_minimizes_child_bodies(self):
        query = grouping_query(
            node(
                "",
                ["r(Xa)"],
                {"a": "Xa"},
                children=[
                    node(
                        "kids",
                        ["s(Xa, Yb)", "s(Xa, Wc)"],
                        {"b": "Yb"},
                        index=["Xa"],
                    )
                ],
            )
        )
        minimized = minimize_grouping(query)
        child = minimized.root.children[0]
        assert len(child.own_atoms) == 1

    def test_atom_binding_value_protected(self):
        query = grouping_query(node("", ["r(Xa)"], {"a": "Xa"}))
        assert minimize_grouping(query) == query
