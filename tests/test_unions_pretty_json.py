"""Tests for union queries, the COQL pretty-printer, and JSON I/O."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.errors import ReproError, IncomparableQueriesError, ValueConstructionError
from repro.cq import parse_query
from repro.cq.unions import UnionQuery, union_contains, union_equivalent
from repro.coql import parse_coql
from repro.coql.pretty import to_text
from repro.objects import Record, CSet, Database
from repro.objects.json_io import (
    dumps_value,
    loads_value,
    dumps_database,
    loads_database,
)
from repro.workloads import random_flat_database, random_coql


class TestUnionQueries:
    def q(self, text):
        return parse_query(text)

    def test_disjunct_containment(self):
        u1 = UnionQuery([self.q("q(X) :- r(X, Y), s(Y)")])
        u2 = UnionQuery([self.q("q(X) :- r(X, Y)"), self.q("q(X) :- t(X)")])
        assert union_contains(u2, u1)
        assert not union_contains(u1, u2)

    def test_union_equivalence(self):
        u1 = UnionQuery(
            [self.q("q(X) :- r(X, Y)"), self.q("q(X) :- r(X, Y), s(Y)")]
        )
        u2 = UnionQuery([self.q("q(X) :- r(X, Y)")])
        assert union_equivalent(u1, u2)

    def test_minimize_drops_redundant_disjuncts(self):
        u = UnionQuery(
            [self.q("q(X) :- r(X, Y)"), self.q("q(X) :- r(X, Y), s(Y)")]
        )
        assert len(u.minimize().disjuncts) == 1

    def test_evaluate_unions_answers(self):
        u = UnionQuery([self.q("q(X) :- r(X, Y)"), self.q("q(Y) :- r(X, Y)")])
        db = Database.from_dict({"r": [{"c00": 1, "c01": 2}]})
        assert u.evaluate(db) == frozenset({(1,), (2,)})

    def test_semantic_soundness(self):
        u1 = UnionQuery([self.q("q(X) :- r(X, Y), s(Y)")])
        u2 = UnionQuery([self.q("q(X) :- r(X, Y)"), self.q("q(X) :- t(X)")])
        assert union_contains(u2, u1)
        for seed in range(6):
            db = random_flat_database({"r": 2, "s": 1, "t": 1}, rows=4,
                                      domain=3, seed=seed)
            assert u1.evaluate(db) <= u2.evaluate(db)

    def test_arity_checks(self):
        with pytest.raises(IncomparableQueriesError):
            UnionQuery([self.q("q(X) :- r(X, Y)"), self.q("q(X, Y) :- r(X, Y)")])
        with pytest.raises(ReproError):
            UnionQuery([])

    def test_bare_cqs_accepted(self):
        assert union_contains(
            self.q("q(X) :- r(X, Y)"), self.q("q(X) :- r(X, Y), s(Y)")
        )


class TestPrettyPrinter:
    ROUND_TRIPS = [
        "select [v: x.a] from x in r",
        "select [v: x.a] from x in r where x.b = 2",
        'select [v: x.a, w: "blue"] from x in r, y in s where x.a = y.k',
        "select [a: x.a, kids: select [b: y.b] from y in s where y.k = x.a]"
        " from x in r",
        "flatten(select {x.a} from x in r)",
        "{3}",
        "{}",
        "select (select {y.b} from y in s) from x in r",
        "select [v: z.w] from z in (select [w: x.a] from x in r)",
    ]

    @pytest.mark.parametrize("text", ROUND_TRIPS)
    def test_round_trip(self, text):
        expr = parse_coql(text)
        assert parse_coql(to_text(expr)) == expr

    @given(st.integers(0, 2000), st.sampled_from([1, 2]))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_random(self, seed, depth):
        expr = parse_coql(random_coql(seed=seed, depth=depth))
        assert parse_coql(to_text(expr)) == expr

    def test_string_escaping(self):
        expr = parse_coql('select [v: "say \\"hi\\""] from x in r')
        assert parse_coql(to_text(expr)) == expr


class TestJsonIO:
    values_strategy = st.recursive(
        st.one_of(st.integers(0, 5), st.sampled_from(["x", "y"])),
        lambda inner: st.one_of(
            st.dictionaries(
                st.sampled_from(["a", "b"]), inner, min_size=1, max_size=2
            ).map(Record),
            st.lists(inner, max_size=3).map(CSet),
        ),
        max_leaves=6,
    )

    @given(values_strategy)
    @settings(max_examples=80, deadline=None)
    def test_value_round_trip(self, value):
        assert loads_value(dumps_value(value)) == value

    def test_database_round_trip(self):
        db = Database.from_dict(
            {
                "emp": [
                    {"name": "ann", "kids": [{"k": "bo"}]},
                    {"name": "dan", "kids": []},
                ]
            }
        )
        assert loads_database(dumps_database(db)) == db

    def test_null_rejected(self):
        with pytest.raises(ValueConstructionError):
            loads_value("null")
        with pytest.raises(ValueConstructionError):
            loads_value('{"a": null}')

    def test_duplicates_collapse(self):
        assert loads_value("[1, 1, 2]") == CSet([1, 2])

    def test_non_object_rows_rejected(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            loads_database('{"r": [1, 2]}')
