"""The constraint-propagating homomorphism core: compiled targets,
deterministic enumeration, ordering-strategy equivalence, component
decomposition, adversarial node-count separation, and the engine's
simulation-target cache."""

import pytest

from repro.errors import ReproError
from repro.cq import parse_atom
from repro.cq.terms import Var, Const, Atom
from repro.cq.homomorphism import (
    find_homomorphism,
    find_all_homomorphisms,
    count_homomorphisms,
    ground_atoms_of_query,
    compile_target,
    CompiledTarget,
    SearchCounters,
    install_search_counters,
    default_ordering,
    use_ordering,
    ORDERINGS,
)
from repro.cq.propagation import active_counters
from repro.engine import ContainmentEngine
from repro.workloads.generators import random_cq, chain_grouping_query

SCHEMA = {"r": 2, "s": 2, "t": 3}


def atoms(*texts):
    return tuple(parse_atom(t) for t in texts)


def mapping_set(mappings):
    return {frozenset(m.items()) for m in mappings}


@pytest.fixture
def counters():
    sink = SearchCounters()
    previous = install_search_counters(sink)
    yield sink
    install_search_counters(previous)


# -- the adversarial family -------------------------------------------------
#
# K_n source into frozen K_{n-1}: the pigeonhole refutation, padded with
# an independent star p(U0, U_i) whose target has `leaves` rows per ray.
# A search that does not decompose components re-discovers the clique
# refutation once per padding assignment (multiplicative, leaves^rays);
# the propagating search refutes the clique component once (additive).


def clique_source(n):
    return tuple(
        Atom("e", (Var("V%d" % i), Var("V%d" % j)))
        for i in range(n)
        for j in range(n)
        if i != j
    )


def clique_target(n):
    return tuple(
        Atom("e", (Const("c%d" % i), Const("c%d" % j)))
        for i in range(n)
        for j in range(n)
        if i != j
    )


def padded_pigeonhole(n, rays, leaves):
    source = clique_source(n) + tuple(
        Atom("p", (Var("U0"), Var("U%d" % i))) for i in range(1, rays + 1)
    )
    target = clique_target(n - 1) + tuple(
        Atom("p", (Const("hub"), Const("leaf%d" % j))) for j in range(leaves)
    )
    return source, target


class TestCompileTarget:
    def test_idempotent_passthrough(self):
        compiled = compile_target(atoms("r(1, 2)", "s(2, 3)"))
        assert isinstance(compiled, CompiledTarget)
        assert compile_target(compiled) is compiled

    def test_rejects_non_ground_atoms(self):
        with pytest.raises(ReproError):
            compile_target(atoms("r(1, X)"))

    def test_rows_deduplicate_in_insertion_order(self):
        compiled = compile_target(
            atoms("r(2, 1)", "r(1, 2)", "r(2, 1)", "r(1, 2)")
        )
        assert compiled.rows[("r", 2)] == ((2, 1), (1, 2))

    def test_inverted_index_and_domains(self):
        compiled = compile_target(atoms("r(1, 2)", "r(1, 3)", "r(4, 2)"))
        index = compiled.index[("r", 2)]
        assert index[0][1] == frozenset({0, 1})
        assert index[0][4] == frozenset({2})
        assert index[1][2] == frozenset({0, 2})
        assert compiled.domains[("r", 2)] == (
            frozenset({1, 4}),
            frozenset({2, 3}),
        )

    def test_entry_points_accept_compiled_targets(self):
        compiled = compile_target(atoms("r(1, 2)", "r(2, 3)"))
        source = atoms("r(X, Y)")
        for ordering in ORDERINGS:
            assert (
                find_homomorphism(source, compiled, ordering=ordering)
                is not None
            )
            assert count_homomorphisms(source, compiled, ordering=ordering) == 2


class TestDeterminism:
    def test_enumeration_order_is_insertion_order(self):
        source = atoms("r(X, Y)")
        target = atoms("r(3, 0)", "r(1, 0)", "r(2, 0)")
        for ordering in ORDERINGS:
            rows = [
                m[Var("X")]
                for m in find_all_homomorphisms(
                    source, target, ordering=ordering
                )
            ]
            assert rows == [3, 1, 2], ordering

    def test_repeated_calls_enumerate_identically(self):
        source = atoms("r(X, Y)", "s(Y, Z)", "r(Z, W)")
        target = atoms(
            "r(1, 2)", "r(2, 1)", "r(3, 1)", "s(2, 3)", "s(1, 3)", "s(2, 1)"
        )
        for ordering in ORDERINGS:
            first = list(
                find_all_homomorphisms(source, target, ordering=ordering)
            )
            second = list(
                find_all_homomorphisms(source, target, ordering=ordering)
            )
            assert first == second, ordering
            assert first, ordering

    def test_duplicate_target_atoms_do_not_duplicate_homomorphisms(self):
        source = atoms("r(X, Y)")
        target = atoms("r(1, 2)", "r(1, 2)", "r(1, 2)")
        for ordering in ORDERINGS:
            assert count_homomorphisms(source, target, ordering=ordering) == 1


class TestOrderingParameter:
    def test_default_is_bitset(self):
        assert default_ordering() == "bitset"
        assert ORDERINGS[0] == "bitset"
        assert "propagating" in ORDERINGS  # the differential twin stays

    def test_unknown_ordering_raises(self):
        source = atoms("r(X, Y)")
        target = atoms("r(1, 2)")
        with pytest.raises(ReproError):
            list(find_all_homomorphisms(source, target, ordering="mystery"))
        with pytest.raises(ReproError):
            with use_ordering("mystery"):
                pass

    def test_use_ordering_swaps_and_restores_default(self):
        assert default_ordering() == "bitset"
        with use_ordering("static"):
            assert default_ordering() == "static"
            with use_ordering("adaptive"):
                assert default_ordering() == "adaptive"
            assert default_ordering() == "static"
        assert default_ordering() == "bitset"

    def test_count_homomorphisms_respects_ordering(self, counters):
        source = atoms("r(X, Y)", "r(Y, Z)")
        target = atoms("r(1, 2)", "r(2, 3)", "r(2, 1)")
        counts = {}
        for ordering in ORDERINGS:
            counters.reset()
            counts[ordering] = count_homomorphisms(
                source, target, ordering=ordering
            )
            if ordering in ("bitset", "propagating", "cost"):
                assert counters.components_solved > 0
            else:
                assert counters.components_solved == 0
            if ordering == "bitset":
                assert counters.kernel_selected > 0
                assert counters.mask_intersections > 0
            elif ordering in ("adaptive", "static"):
                assert counters.kernel_selected == 0
                assert counters.mask_intersections == 0
        assert len(set(counts.values())) == 1


class TestFixedAndAllowed:
    SOURCE = atoms("r(X, Y)", "s(Y, Z)")
    TARGET = atoms("r(1, 2)", "r(1, 3)", "s(2, 4)", "s(3, 4)", "s(3, 5)")

    def test_fixed_pins_and_is_echoed(self):
        for ordering in ORDERINGS:
            found = mapping_set(
                find_all_homomorphisms(
                    self.SOURCE, self.TARGET,
                    fixed={Var("Y"): 3}, ordering=ordering,
                )
            )
            assert found == {
                frozenset({(Var("X"), 1), (Var("Y"), 3), (Var("Z"), 4)}),
                frozenset({(Var("X"), 1), (Var("Y"), 3), (Var("Z"), 5)}),
            }

    def test_fixed_variable_absent_from_source_is_echoed(self):
        for ordering in ORDERINGS:
            found = list(
                find_all_homomorphisms(
                    atoms("r(X, Y)"), atoms("r(1, 2)"),
                    fixed={Var("Q"): 9}, ordering=ordering,
                )
            )
            assert found == [{Var("X"): 1, Var("Y"): 2, Var("Q"): 9}]

    def test_allowed_restricts_every_occurrence(self):
        for ordering in ORDERINGS:
            found = mapping_set(
                find_all_homomorphisms(
                    self.SOURCE, self.TARGET,
                    allowed={Var("Y"): {2}}, ordering=ordering,
                )
            )
            assert found == {
                frozenset({(Var("X"), 1), (Var("Y"), 2), (Var("Z"), 4)})
            }

    def test_fixed_outside_allowed_yields_nothing(self):
        for ordering in ORDERINGS:
            assert (
                count_homomorphisms(
                    self.SOURCE, self.TARGET,
                    fixed={Var("Y"): 3}, allowed={Var("Y"): {2}},
                    ordering=ordering,
                )
                == 0
            )

    def test_fixed_and_allowed_interact_across_shared_atoms(self):
        # Pinning X forces Y through r; allowed on Z then decides between
        # the two s-rows reachable from that Y.
        for ordering in ORDERINGS:
            found = mapping_set(
                find_all_homomorphisms(
                    self.SOURCE, self.TARGET,
                    fixed={Var("X"): 1}, allowed={Var("Z"): {5}},
                    ordering=ordering,
                )
            )
            assert found == {
                frozenset({(Var("X"), 1), (Var("Y"), 3), (Var("Z"), 5)})
            }

    def test_empty_allowed_set_refutes_without_search(self, counters):
        assert (
            find_homomorphism(
                self.SOURCE, self.TARGET, allowed={Var("Y"): set()}
            )
            is None
        )
        assert counters.nodes == 0
        assert counters.domain_wipeouts >= 1


class TestComponentDecomposition:
    def test_independent_atoms_solved_componentwise(self, counters):
        source = atoms("r(X, Y)", "s(A, B)")
        target = atoms("r(1, 2)", "r(3, 4)", "s(5, 6)", "s(7, 8)", "s(9, 0)")
        found = list(find_all_homomorphisms(source, target))
        assert len(found) == 2 * 3
        assert counters.components_solved == 2
        assert mapping_set(found) == mapping_set(
            find_all_homomorphisms(source, target, ordering="adaptive")
        )

    def test_cross_product_nodes_are_additive(self, counters):
        source = atoms("r(X, Y)", "s(A, B)")
        target = atoms(
            "r(1, 2)", "r(3, 4)", "r(5, 6)", "s(5, 6)", "s(7, 8)", "s(9, 0)"
        )
        assert find_homomorphism(source, target) is not None
        # One row per component suffices for the first solution: the
        # cross product is enumerated lazily.
        assert counters.nodes == 2

    def test_failing_component_short_circuits(self, counters):
        source = atoms("r(X, X)", "s(A, B)")
        target = atoms("r(1, 2)", "s(5, 6)", "s(7, 8)")
        assert find_homomorphism(source, target) is None
        # The r-component admits no homomorphism; the s-component's
        # solutions must not be enumerated at all.
        assert counters.nodes == 0

    def test_ground_source_atoms_form_singleton_components(self):
        source = atoms("r(1, 2)", "r(X, Y)")
        target = atoms("r(1, 2)", "r(3, 4)")
        found = mapping_set(find_all_homomorphisms(source, target))
        assert found == mapping_set(
            find_all_homomorphisms(source, target, ordering="static")
        )
        assert len(found) == 2

    def test_ground_source_atom_absent_from_target_refutes(self):
        source = atoms("r(9, 9)", "r(X, Y)")
        target = atoms("r(1, 2)")
        for ordering in ORDERINGS:
            assert (
                find_homomorphism(source, target, ordering=ordering) is None
            )

    def test_empty_source_yields_fixed_binding(self):
        for ordering in ORDERINGS:
            found = list(
                find_all_homomorphisms(
                    (), atoms("r(1, 2)"), fixed={Var("X"): 7},
                    ordering=ordering,
                )
            )
            assert found == [{Var("X"): 7}]


class TestAdversary:
    def test_pigeonhole_refuted_by_every_strategy(self):
        source, target = padded_pigeonhole(4, 2, 3)
        for ordering in ORDERINGS:
            assert (
                find_homomorphism(source, target, ordering=ordering) is None
            )

    def test_propagating_visits_strictly_fewer_nodes(self, counters):
        source, target = padded_pigeonhole(5, 2, 4)
        counts = {}
        for ordering in ("propagating", "adaptive"):
            counters.reset()
            assert (
                find_homomorphism(source, target, ordering=ordering) is None
            )
            counts[ordering] = counters.nodes
        assert counts["propagating"] < counts["adaptive"]
        # The component argument makes the padded refutation additive,
        # not multiplicative: at least the 2x bar of experiment E11.
        assert counts["propagating"] * 2 <= counts["adaptive"]

    def test_propagation_counters_tick_on_refutation(self, counters):
        source, target = padded_pigeonhole(5, 2, 4)
        assert find_homomorphism(source, target) is None
        assert counters.domain_wipeouts > 0
        assert counters.components_solved >= 1

    def test_satisfiable_clique_found_by_every_strategy(self):
        # K_4 into K_4 has homomorphisms; all strategies agree on the set.
        source = clique_source(4)
        target = clique_target(4)
        sets = [
            mapping_set(
                find_all_homomorphisms(source, target, ordering=ordering)
            )
            for ordering in ORDERINGS
        ]
        assert all(found == sets[0] for found in sets)
        assert len(sets[0]) == 24  # the 4! vertex permutations


class TestDifferentialEquivalence:
    def pairs(self):
        out = []
        for seed in range(100):
            source_q = random_cq(
                SCHEMA, atoms=3, variables=4, seed=seed, constants=1
            )
            target_q = random_cq(
                SCHEMA, atoms=4, variables=3, seed=seed + 10_000, constants=1
            )
            target = ground_atoms_of_query(target_q)
            if seed % 2:
                # Mix in a frozen copy of the source so half the family
                # is satisfiable (the identity homomorphism exists).
                target = target + ground_atoms_of_query(source_q)
            out.append((source_q.body, target))
        return out

    def test_all_orderings_enumerate_the_same_set(self):
        compared = 0
        nonempty = 0
        for source, target in self.pairs():
            reference = mapping_set(
                find_all_homomorphisms(source, target, ordering="propagating")
            )
            for ordering in ("adaptive", "static"):
                assert reference == mapping_set(
                    find_all_homomorphisms(source, target, ordering=ordering)
                ), (ordering, source)
                compared += 1
            nonempty += bool(reference)
        assert compared >= 200
        assert nonempty >= 25  # the family is not vacuously unsatisfiable

    def test_all_orderings_agree_under_fixed_and_allowed(self):
        compared = 0
        for source, target in self.pairs()[:50]:
            variables = sorted(
                {v for atom in source for v in atom.variables()}, key=repr
            )
            if not variables:
                continue
            compiled = compile_target(target)
            values = sorted(
                {v for rows in compiled.rows.values() for r in rows for v in r},
                key=repr,
            )
            fixed = {variables[0]: values[0]} if values else {}
            allowed = (
                {variables[-1]: set(values[: max(1, len(values) // 2)])}
                if len(variables) > 1 and values
                else {}
            )
            reference = mapping_set(
                find_all_homomorphisms(
                    source, target, fixed=fixed, allowed=allowed,
                    ordering="propagating",
                )
            )
            for ordering in ("adaptive", "static"):
                assert reference == mapping_set(
                    find_all_homomorphisms(
                        source, target, fixed=fixed, allowed=allowed,
                        ordering=ordering,
                    )
                ), (ordering, source, fixed, allowed)
                compared += 1
        assert compared >= 80


class TestEngineTargetCache:
    SCHEMA = {"r": ("a", "b"), "s": ("k", "b")}
    LINKED = (
        "select [a: x.a, kids: select [b: y.b] from y in r where y.a = x.a]"
        " from x in r"
    )
    UNLINKED = (
        "select [a: x.a, kids: select [b: y.b] from y in s where y.k = x.a]"
        " from x in r"
    )
    WIDER = "select [a: x.a, kids: select [b: y.b] from y in s] from x in r"

    def test_simulated_reuses_compiled_targets(self):
        engine = ContainmentEngine()
        sub = chain_grouping_query(2)
        sup = chain_grouping_query(2)
        assert engine.simulated(sub, sup)
        assert engine.simulated(sub, sup)
        stats = engine.stats()
        assert stats.counter("target_cache_hits") >= 1
        assert stats.counter("target_cache_misses") >= 1
        assert engine.cache_sizes()["targets"] >= 1

    def test_pairwise_matrix_hits_the_target_cache(self):
        engine = ContainmentEngine()
        engine.pairwise_matrix(
            [self.LINKED, self.UNLINKED, self.WIDER], self.SCHEMA
        )
        assert engine.stats().counter("target_cache_hits") > 0

    def test_weak_equivalence_sweep_hits_the_target_cache(self):
        # With verdict memoization off, every obligation re-decides and
        # the compiled target is the only thing saving recompilation.
        engine = ContainmentEngine(verdict_cache_size=0)
        assert engine.weakly_equivalent(self.LINKED, self.LINKED, self.SCHEMA)
        assert engine.stats().counter("target_cache_hits") > 0

    def test_target_cache_can_be_disabled(self):
        engine = ContainmentEngine(target_cache_size=0)
        sub = chain_grouping_query(2)
        assert engine.simulated(sub, sub)
        assert engine.simulated(sub, sub)
        stats = engine.stats()
        assert stats.counter("target_cache_hits") == 0
        assert engine.cache_sizes()["targets"] == 0

    def test_search_counters_flow_into_engine_stats(self):
        engine = ContainmentEngine()
        assert engine.contains(self.WIDER, self.UNLINKED, self.SCHEMA)
        data = engine.stats().as_dict()
        assert data["homomorphism_nodes"] > 0
        assert data["homomorphism_components_solved"] > 0
        assert "homomorphism_domain_wipeouts" in data

    def test_counters_do_not_leak_outside_the_fixture(self):
        assert active_counters() is None
