"""Unit tests for complex-object values (Record, CSet, atoms)."""

import pytest

from repro.errors import ValueConstructionError
from repro.objects import Record, CSet, is_atom, is_complex_object, sort_key


class TestAtoms:
    def test_scalars_are_atoms(self):
        for value in ("x", 3, 2.5, True):
            assert is_atom(value)

    def test_collections_are_not_atoms(self):
        assert not is_atom([1])
        assert not is_atom(Record(a=1))
        assert not is_atom(CSet([1]))


class TestRecord:
    def test_attribute_access(self):
        r = Record(name="ann", age=7)
        assert r["name"] == "ann"
        assert r["age"] == 7

    def test_missing_attribute_raises(self):
        with pytest.raises(KeyError):
            Record(a=1)["b"]

    def test_get_with_default(self):
        assert Record(a=1).get("b", 9) == 9

    def test_equality_ignores_order(self):
        assert Record(a=1, b=2) == Record(b=2, a=1)

    def test_hashable(self):
        assert hash(Record(a=1)) == hash(Record(a=1))

    def test_keys_sorted(self):
        assert Record(b=1, a=2).keys() == ("a", "b")

    def test_nested_components(self):
        r = Record(a=CSet([Record(b=1)]))
        assert isinstance(r["a"], CSet)

    def test_replace(self):
        r = Record(a=1, b=2).replace(b=3, c=4)
        assert r == Record(a=1, b=3, c=4)

    def test_project(self):
        assert Record(a=1, b=2).project(["a"]) == Record(a=1)

    def test_immutable(self):
        r = Record(a=1)
        with pytest.raises(AttributeError):
            r.x = 1

    def test_invalid_component_rejected(self):
        with pytest.raises(ValueConstructionError):
            Record(a=object())

    def test_invalid_attr_name_rejected(self):
        with pytest.raises(ValueConstructionError):
            Record({1: "x"})

    def test_contains(self):
        assert "a" in Record(a=1)
        assert "b" not in Record(a=1)


class TestCSet:
    def test_deduplication(self):
        assert len(CSet([1, 1, 2])) == 2

    def test_equality(self):
        assert CSet([1, 2]) == CSet([2, 1])

    def test_nested_sets(self):
        s = CSet([CSet([1]), CSet([])])
        assert len(s) == 2

    def test_membership(self):
        assert Record(a=1) in CSet([Record(a=1)])

    def test_union_intersection(self):
        assert CSet([1]) | CSet([2]) == CSet([1, 2])
        assert CSet([1, 2]) & CSet([2, 3]) == CSet([2])

    def test_subset(self):
        assert CSet([1]) <= CSet([1, 2])
        assert not (CSet([3]) <= CSet([1, 2]))

    def test_iteration_deterministic(self):
        s = CSet(["b", "a", "c"])
        assert list(s) == list(s) == ["a", "b", "c"]

    def test_invalid_element_rejected(self):
        with pytest.raises(ValueConstructionError):
            CSet([object()])

    def test_immutable(self):
        s = CSet([1])
        with pytest.raises(AttributeError):
            s.x = 1


class TestWellFormedness:
    def test_nested_value_is_complex_object(self):
        value = CSet([Record(a=1, b=CSet([Record(c="x")]))])
        assert is_complex_object(value)

    def test_sort_key_total_on_mixed(self):
        values = [CSet([1]), Record(a=1), "z", 3, CSet([])]
        ordered = sorted(values, key=sort_key)
        assert sorted(ordered, key=sort_key) == ordered
