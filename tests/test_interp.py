"""Tests for the abstract interpreter (:mod:`repro.analysis.interp`).

Three layers, mirroring the module:

* the abstract domains (cardinality intervals, sampled statistics) and
  their algebra;
* :func:`interpret` — total on arbitrary ASTs, sound facts on real
  queries (dead conditions, fan-out, generator cardinalities);
* the certificates — ``component_node_bound`` / ``pair_certificate`` /
  ``cost_certificate`` must *dominate* the measured
  ``SearchCounters.nodes`` of the searches they budget, and the
  ``cost`` ordering they feed must agree with every fixed ordering on
  verdicts.
"""

import json
import pickle

import pytest

from hypothesis import given, settings, strategies as st

from repro.analysis.interp import (
    INF,
    PATTERN_ENUMERATION_CAP,
    ColumnStats,
    CostCertificate,
    DatabaseStatistics,
    Interval,
    component_node_bound,
    cost_certificate,
    format_bound,
    interpret,
    pair_certificate,
    target_row_bounds,
)
from repro.coql.ast import (
    EmptySet,
    Flatten,
    Proj,
    RecordExpr,
    RelRef,
    Select,
    Singleton,
    VarRef,
)
from repro.coql.parser import parse_coql
from repro.cq.homomorphism import (
    ORDERINGS,
    SearchCounters,
    install_search_counters,
    use_ordering,
)
from repro.engine import ContainmentEngine
from repro.errors import ParseError, ReproError
from repro.cq.terms import Atom, Var
from repro.grouping import GroupingNode, GroupingQuery, is_simulated
from repro.objects import Database
from repro.workloads import chain_grouping_query


def clique_grouping(n, rays, name):
    """The E11 pigeonhole adversary (single node, so any two instances
    are shape-comparable)."""
    atoms = tuple(
        Atom("e", (Var("V%d" % i), Var("V%d" % j)))
        for i in range(n)
        for j in range(n)
        if i != j
    ) + tuple(
        Atom("p", (Var("U0"), Var("U%d" % i))) for i in range(1, rays + 1)
    )
    return GroupingQuery(
        GroupingNode("", atoms, {"c0": Var("V0")}, (), ()), name
    )

SCHEMA = {"r": ("a", "b"), "s": ("b", "c")}

DB = Database.from_dict({
    "r": [{"a": 1, "b": 2}, {"a": 2, "b": 3}],
    "s": [{"b": 2, "c": 10}],
})


@pytest.fixture
def counters():
    sink = SearchCounters()
    previous = install_search_counters(sink)
    yield sink
    install_search_counters(previous)


# -- the interval domain -----------------------------------------------


class TestInterval:
    def test_constructors_and_predicates(self):
        assert Interval.top() == Interval(0, INF)
        assert Interval.point(3) == Interval(3, 3)
        assert Interval.point(1).is_singleton
        assert not Interval.point(2).is_singleton
        assert Interval.top().is_unbounded
        assert Interval.point(0).is_empty
        assert not Interval(0, 1).is_empty

    def test_times_is_cross_join_cardinality(self):
        assert Interval(1, 2).times(Interval(3, 4)) == Interval(3, 8)
        assert Interval.point(0).times(Interval.top()) == Interval.point(0)
        assert Interval(1, INF).times(Interval(2, 5)) == Interval(2, INF)

    def test_join_is_interval_hull(self):
        assert Interval(1, 2).join(Interval(4, 5)) == Interval(1, 5)
        assert Interval(0, INF).join(Interval(3, 3)) == Interval(0, INF)

    def test_with_zero_widens_only_the_floor(self):
        assert Interval(2, 7).with_zero() == Interval(0, 7)
        top = Interval.top()
        assert top.with_zero() is top

    def test_str(self):
        assert str(Interval(0, INF)) == "[0, inf]"
        assert str(Interval.point(4)) == "[4, 4]"


class TestFormatBound:
    def test_rendering_tiers(self):
        assert format_bound(INF) == "inf"
        assert format_bound(42) == "42"
        assert format_bound(10**7) == "~1.00e+07"
        assert format_bound(19004963774880799438808).startswith("~1.90e+22")


# -- sampled statistics ------------------------------------------------


class TestDatabaseStatistics:
    def test_sample_pins_cardinalities(self):
        stats = DatabaseStatistics.sample(DB)
        assert stats.relation_cardinality("r") == Interval.point(2)
        assert stats.relation_cardinality("s") == Interval.point(1)
        assert stats.relation_cardinality("missing") is None

    def test_sample_collects_complete_value_sets(self):
        stats = DatabaseStatistics.sample(DB)
        assert stats.column_values("r", "a") == frozenset({1, 2})
        assert stats.column_values("s", "c") == frozenset({10})
        assert stats.column_values("r", "nope") is None

    def test_truncated_columns_cannot_refute(self):
        wide = Database.from_dict(
            {"t": [{"k": i} for i in range(10)]}
        )
        stats = DatabaseStatistics.sample(wide, max_values=4)
        assert stats.column_values("t", "k") is None
        # ... but the row count is still exact.
        assert stats.relation_cardinality("t") == Interval.point(10)
        column = stats.relations["t"].columns["k"]
        assert column == ColumnStats(10, None)

    def test_as_dict_reports_completeness(self):
        payload = DatabaseStatistics.sample(DB).as_dict()
        assert payload["r"]["rows"] == 2
        assert payload["r"]["columns"]["a"] == {
            "distinct": 2, "complete": True,
        }
        json.dumps(payload)  # JSON-safe


# -- interpret: facts on real queries ----------------------------------


class TestInterpret:
    def test_flat_select_facts(self):
        facts = interpret(parse_coql("select [v: x.a] from x in r"))
        (gen,) = facts.generators
        assert gen.var == "x" and gen.relation == "r"
        assert gen.card == Interval.top()
        (sel,) = facts.selects
        assert not sel.nested
        assert facts.card == Interval.top()
        assert facts.fanout() == ()

    def test_stats_sharpen_cardinalities(self):
        stats = DatabaseStatistics.sample(DB)
        facts = interpret(
            parse_coql("select [v: x.a] from x in r"), stats=stats
        )
        assert facts.card == Interval.point(2)
        (gen,) = facts.generators
        assert gen.card == Interval.point(2)

    def test_conditions_widen_the_floor(self):
        facts = interpret(
            parse_coql("select [v: x.a] from x in r where x.a = 1"),
            stats=DatabaseStatistics.sample(DB),
        )
        assert facts.card == Interval(0, 2)

    def test_universal_contradiction_is_dead_everywhere(self):
        facts = interpret(parse_coql(
            "select [v: x.a] from x in r where x.a = 1 and x.a = 2"
        ))
        (dead,) = facts.dead_conditions
        assert dead.universal
        assert facts.card.is_empty

    def test_transitive_contradiction_through_union_find(self):
        facts = interpret(parse_coql(
            "select [v: x.a] from x in r "
            "where x.a = 1 and x.b = x.a and x.b = 2"
        ))
        assert any(d.universal for d in facts.dead_conditions)
        assert facts.card.is_empty

    def test_stats_refute_disjoint_value_sets(self):
        stats = DatabaseStatistics.sample(DB)
        facts = interpret(
            parse_coql("select [v: x.a] from x in r where x.a = 5"),
            stats=stats,
        )
        (dead,) = facts.dead_conditions
        assert not dead.universal  # dead on THIS database only
        assert facts.card.is_empty

    def test_stats_refute_disjoint_columns(self):
        stats = DatabaseStatistics.sample(DB)
        facts = interpret(
            parse_coql(
                "select [v: x.a] from x in r, y in s where x.a = y.c"
            ),
            stats=stats,  # r.a = {1,2}, s.c = {10}: disjoint
        )
        assert len(facts.dead_conditions) == 1

    def test_satisfiable_conditions_stay_alive(self):
        stats = DatabaseStatistics.sample(DB)
        facts = interpret(
            parse_coql(
                "select [v: x.a] from x in r, y in s where x.b = y.b"
            ),
            stats=stats,  # r.b = {2,3}, s.b = {2}: overlap
        )
        assert facts.dead_conditions == ()

    def test_no_stats_no_value_refutation(self):
        facts = interpret(
            parse_coql("select [v: x.a] from x in r where x.a = 5")
        )
        assert facts.dead_conditions == ()

    def test_singleton_generator_card(self):
        facts = interpret(
            parse_coql("select [v: x.a] from x in {[a: 1]}")
        )
        (gen,) = facts.generators
        assert gen.card.is_singleton

    def test_nested_select_fanout(self):
        facts = interpret(parse_coql(
            "select [a: x.a, ys: select y.c from y in s where y.b = x.b]"
            " from x in r"
        ))
        nested = [s for s in facts.selects if s.nested]
        assert len(nested) == 1
        ((path, hi),) = facts.fanout()
        assert ".ys" in path and hi == INF

    def test_stats_bound_the_fanout(self):
        facts = interpret(
            parse_coql(
                "select [a: x.a, ys: select y.c from y in s"
                " where y.b = x.b] from x in r"
            ),
            stats=DatabaseStatistics.sample(DB),
        )
        ((__, hi),) = facts.fanout()
        assert hi == 1  # s has one row

    def test_spans_point_into_multiline_source(self):
        source = (
            "select [v: x.a,\n"
            "        w: x.b]\n"
            "from x in r\n"
            "where x.a = 1\n"
            "  and x.a = 2"
        )
        facts = interpret(parse_coql(source))
        (dead,) = facts.dead_conditions
        assert dead.span is not None
        line, __ = dead.span
        assert line >= 4  # the conditions live on lines 4-5
        (gen,) = facts.generators
        assert gen.span is not None and gen.span[0] == 3

    def test_facts_as_dict_is_json_safe(self):
        facts = interpret(parse_coql(
            "select [a: x.a, ys: select y.c from y in s where y.b = x.b]"
            " from x in r"
        ))
        payload = json.loads(json.dumps(facts.as_dict()))
        assert payload["card"] == {"lo": 0, "hi": "inf"}
        assert any(s["nested"] for s in payload["selects"])


class TestInterpretTotality:
    """interpret() must be total: garbage in, sound trivial facts out."""

    def _check(self, facts):
        assert facts.card.lo >= 0
        assert facts.card.lo <= facts.card.hi
        for fact in facts.selects:
            assert fact.out_card.lo >= 0
            assert fact.out_card.lo <= fact.out_card.hi
        for gen in facts.generators:
            assert gen.card.lo >= 0

    @given(st.text(
        alphabet=list("qrsxyzXYZ()[]{},.=:123\"' infromselectwher"),
        min_size=0, max_size=40,
    ))
    @settings(max_examples=200, deadline=None)
    def test_never_crashes_on_fuzzed_parses(self, text):
        """Whatever the parser accepts, the interpreter abstracts."""
        try:
            query = parse_coql(text)
        except (ParseError, ReproError):
            return
        self._check(interpret(query))

    def test_non_ast_garbage_yields_top(self):
        for garbage in [None, 42, "not an ast", object(), [1, 2]]:
            facts = interpret(garbage)
            assert facts.card == Interval.top()
            assert facts.selects == ()

    def test_ill_typed_asts_survive(self):
        # A select nested inside a condition is ill-typed but must not
        # crash the interpreter.
        inner = Select(RecordExpr({"v": Proj(VarRef("y"), "a")}),
                       [("y", RelRef("r"))])
        query = Select(
            RecordExpr({"v": Proj(VarRef("x"), "a")}),
            [("x", RelRef("r"))],
            [(inner, inner)],
        )
        self._check(interpret(query))

    def test_exotic_shapes(self):
        for query in [
            EmptySet(),
            Singleton(Singleton(EmptySet())),
            Flatten(RelRef("r")),
            Flatten(Flatten(VarRef("free"))),
            Proj(Proj(VarRef("x"), "a"), "b"),
        ]:
            self._check(interpret(query))

    def test_deeply_nested_does_not_blow_the_stack(self):
        text = "select [v: x.a] from x in r"
        for __ in range(12):
            text = "select [w: (%s)] from y in r" % text
        self._check(interpret(parse_coql(text)))


# -- search-node bounds ------------------------------------------------


class TestComponentNodeBound:
    def test_algebra(self):
        assert component_node_bound([]) == 0
        assert component_node_bound([1]) == 1
        assert component_node_bound([1, 1]) == 3
        assert component_node_bound([2, 3]) == 11
        assert component_node_bound([0, 5]) == 5

    def test_counts_nonempty_partial_assignments(self):
        # prod(1 + c_i) enumerates each atom's "absent or one row"
        # choice; minus one for the all-absent root.
        counts = [2, 1, 3]
        expected = (1 + 2) * (1 + 1) * (1 + 3) - 1
        assert component_node_bound(counts) == expected


class TestTargetRowBounds:
    def test_chain_counts_match_target_construction(self):
        sub = chain_grouping_query(3)
        rows = target_row_bounds(sub, witnesses=1)
        assert rows  # at least the root atoms
        for count in rows.values():
            assert count > 0
        # More witnesses mean more (never fewer) target rows.
        more = target_row_bounds(sub, witnesses=3)
        assert all(more[key] >= rows[key] for key in rows)


# -- certificates: soundness against measured searches -----------------


def measured_nodes(counters, fn):
    counters.reset()
    result = fn()
    return result, counters.nodes


class TestPairCertificate:
    def test_dominates_reflexive_simulation(self, counters):
        sub = chain_grouping_query(3)
        sup = chain_grouping_query(3).rename_apart("_p")
        certificate = pair_certificate(sub, sup)
        verdict, nodes = measured_nodes(
            counters, lambda: is_simulated(sub, sup)
        )
        assert verdict is True
        assert nodes <= certificate.total_bound

    @pytest.mark.parametrize("ordering", list(ORDERINGS))
    def test_dominates_every_ordering(self, counters, ordering):
        """The bound holds per strategy, not just for the default."""
        sub = clique_grouping(3, 2, "k3")
        sup = clique_grouping(4, 2, "k4")
        certificate = pair_certificate(sub, sup, witnesses=1)
        with use_ordering(ordering):
            verdict, nodes = measured_nodes(
                counters, lambda: is_simulated(sub, sup, witnesses=1)
            )
        assert nodes <= certificate.total_bound

    def test_pinned_witnesses_collapse_stages(self):
        sub = chain_grouping_query(2)
        sup = chain_grouping_query(2).rename_apart("_p")
        pinned = pair_certificate(sub, sup, witnesses=2)
        assert pinned.witness_stages == (2,)
        escalating = pair_certificate(sub, sup)
        assert escalating.witness_stages[0] == 1
        assert escalating.total_bound >= pinned.total_bound or (
            len(escalating.witness_stages) == 1
        )

    def test_enumerates_patterns_under_the_cap(self):
        sub = chain_grouping_query(2)
        sup = chain_grouping_query(2).rename_apart("_p")
        certificate = pair_certificate(
            sub, sup, witnesses=1, is_nonempty=lambda q, path: False
        )
        assert certificate.patterns_enumerated
        # One optional path -> full + truncated pattern.
        assert certificate.patterns == 2

    def test_cap_falls_back_to_exponential_envelope(self):
        sub = chain_grouping_query(PATTERN_ENUMERATION_CAP + 2)
        sup = chain_grouping_query(PATTERN_ENUMERATION_CAP + 2)
        certificate = pair_certificate(
            sub, sup, witnesses=1, is_nonempty=lambda q, path: False
        )
        assert not certificate.patterns_enumerated
        assert certificate.patterns == 2 ** (PATTERN_ENUMERATION_CAP + 1)

    def test_as_dict_handles_astronomical_bounds(self):
        sub = chain_grouping_query(4)
        sup = chain_grouping_query(4).rename_apart("_p")
        payload = pair_certificate(sub, sup).as_dict()
        json.dumps(payload)  # big ints are valid JSON
        assert payload["total_bound"] == (
            pair_certificate(sub, sup).total_bound
        )


class TestCostCertificate:
    NESTED = (
        "select [a: x.a, ys: select y.c from y in s where y.b = x.b]"
        " from x in r"
    )

    def test_dominates_full_engine_check(self, counters):
        certificate = ContainmentEngine().cost_certificate(
            self.NESTED, SCHEMA, against=self.NESTED
        )
        engine = ContainmentEngine()
        verdict, nodes = measured_nodes(
            counters,
            lambda: engine.contains(self.NESTED, self.NESTED, SCHEMA),
        )
        assert verdict is True
        assert nodes <= certificate.total_bound

    def test_carries_ast_facts(self):
        certificate = cost_certificate(
            self.NESTED, SCHEMA, engine=ContainmentEngine()
        )
        assert certificate.facts is not None
        assert certificate.output_cardinality is not None
        assert certificate.fanout  # the nested select shows up

    def test_statically_settled_pair_skips_the_search(self):
        empty = (
            "select [v: x.a] from x in r where x.a = 1 and x.a = 2"
        )
        certificate = cost_certificate(
            empty, SCHEMA, against="select [v: x.a] from x in r",
            engine=ContainmentEngine(),
        )
        assert certificate.settled is True
        assert certificate.total_bound == 0
        assert "settled statically" in certificate.explain()

    def test_explain_is_self_contained(self):
        text = cost_certificate(
            self.NESTED, SCHEMA, engine=ContainmentEngine()
        ).explain()
        assert "total node bound" in text
        assert "witness stages" in text
        assert "strategy" in text

    def test_recommended_orderings_match_components(self):
        certificate = cost_certificate(
            self.NESTED, SCHEMA, engine=ContainmentEngine()
        )
        assert len(certificate.recommended_orderings) == len(
            certificate.components
        )
        assert set(certificate.recommended_orderings) <= {
            "simple", "bitset"
        }

    def test_certificate_is_picklable(self):
        certificate = cost_certificate(
            self.NESTED, SCHEMA, engine=ContainmentEngine()
        )
        clone = pickle.loads(pickle.dumps(certificate))
        assert clone.total_bound == certificate.total_bound

    def test_engine_caches_the_pair_core(self):
        engine = ContainmentEngine()
        first = engine.cost_certificate(self.NESTED, SCHEMA)
        second = engine.cost_certificate(self.NESTED, SCHEMA)
        assert first.total_bound == second.total_bound
        assert engine.stats().counter("cost_certificate_hits") > 0


# -- the cost ordering agrees with every fixed ordering ----------------


class TestCostOrderingDifferential:
    PAIRS = [
        ("reflexive", lambda: (
            chain_grouping_query(3),
            chain_grouping_query(3).rename_apart("_p"),
        )),
        ("clique_simulated", lambda: (
            clique_grouping(3, 2, "k3"),
            clique_grouping(3, 2, "k3b"),
        )),
        ("clique_adversary", lambda: (
            clique_grouping(4, 2, "k4"),
            clique_grouping(5, 2, "k5"),
        )),
    ]

    @pytest.mark.parametrize(
        "name", [name for name, __ in PAIRS]
    )
    def test_same_verdict_as_fixed_orderings(self, name):
        build = dict(self.PAIRS)[name]
        sub, sup = build()
        verdicts = {}
        for ordering in ORDERINGS:
            with use_ordering(ordering):
                verdicts[ordering] = is_simulated(sub, sup)
        assert len(set(verdicts.values())) == 1, verdicts
