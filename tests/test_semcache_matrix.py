"""Parallel/sequential determinism of the classification protocol.

Regressions guarded here:

* ``ViewCatalog.containment_matrix`` with ``jobs > 1`` must return
  byte-identical results to the sequential engine (the semantic cache's
  minimizer trusts either path interchangeably);
* ``catalog.classify`` must agree between the sequential and sharded
  paths;
* an :data:`repro.engine.UNDECIDED` verdict (the timeout outcome) can
  only *demote* a label — never ``subsuming`` or ``equivalent`` off an
  undecided direction — and labels derived from UNDECIDED are never
  cached under the ``classification`` artifact kind (a later, slower
  pass must be able to improve on them).
"""

from repro.coql.views import ViewCatalog
from repro.engine import (
    CLASSIFICATIONS,
    ContainmentEngine,
    UNDECIDED,
    classification_of,
)
from repro.engine.core import resolve_classifications

SCHEMA = {"dept": ("dname", "floor"), "emp": ("name", "dep", "salary_band")}

VIEWS = {
    "flat": "select [d: x.dname, floor: x.floor] from x in dept",
    "renamed": "select [d: zz.dname, floor: zz.floor] from zz in dept",
    "second_floor": (
        "select [d: x.dname, floor: x.floor] from x in dept"
        " where x.floor = 2"
    ),
    "names_only": "select [n: e.name] from e in emp",
    "staffed": (
        "select [d: x.dname, floor: x.floor] from x in dept, e in emp"
        " where e.dep = x.dname"
    ),
}

QUERY = "select [d: q.dname, floor: q.floor] from q in dept where q.floor = 2"


def test_classification_of_truth_table():
    assert classification_of(True, True) == "equivalent"
    assert classification_of(True, False) == "subsuming"
    assert classification_of(False, True) == "contained"
    assert classification_of(False, False) == "irrelevant"
    # UNDECIDED (falsy) and captured errors only ever demote.
    assert classification_of(UNDECIDED, True) == "contained"
    assert classification_of(True, UNDECIDED) == "subsuming"
    assert classification_of(UNDECIDED, UNDECIDED) == "irrelevant"
    assert classification_of(ValueError("boom"), True) == "contained"
    for label in (
        classification_of(UNDECIDED, UNDECIDED),
        classification_of(True, False),
    ):
        assert label in CLASSIFICATIONS


def test_matrix_parallel_is_byte_identical_to_sequential():
    sequential = ViewCatalog(SCHEMA, views=VIEWS)
    names_seq, matrix_seq = sequential.containment_matrix()
    parallel = ViewCatalog(SCHEMA, views=VIEWS)
    names_par, matrix_par = parallel.containment_matrix(
        jobs=2, timeout_s=120.0
    )
    assert names_seq == names_par
    assert repr(matrix_seq) == repr(matrix_par)
    for row_seq, row_par in zip(matrix_seq, matrix_par):
        for cell_seq, cell_par in zip(row_seq, row_par):
            assert cell_seq is cell_par  # identity, not mere equality


def test_classify_parallel_agrees_with_sequential():
    catalog = ViewCatalog(SCHEMA, views=VIEWS)
    sequential = catalog.classify(QUERY)
    sharded = ViewCatalog(SCHEMA, views=VIEWS).classify(
        QUERY, jobs=2, timeout_s=120.0
    )
    assert sequential == sharded
    assert sequential == {
        "flat": "subsuming",
        "renamed": "subsuming",
        "second_floor": "equivalent",
        "names_only": "irrelevant",
        "staffed": "irrelevant",
    }


def test_classify_is_label_cached():
    engine = ContainmentEngine()
    catalog = ViewCatalog(SCHEMA, views=VIEWS, engine=engine)
    first = catalog.classify(QUERY)
    stats_before = engine.stats().as_dict()
    second = catalog.classify(QUERY)
    stats_after = engine.stats().as_dict()
    assert first == second
    hits = (
        stats_after["classification_hits"]
        - stats_before.get("classification_hits", 0)
    )
    assert hits == len(VIEWS)
    assert engine.store().sizes().get("classification", 0) >= len(VIEWS)


def test_undecided_labels_are_demoted_and_never_cached():
    """Feed the protocol UNDECIDED verdicts directly (the exact shape a
    timed-out parallel check produces): every label must demote, and
    nothing may land in the classification cache."""
    engine = ContainmentEngine()
    pipeline = engine.pipeline()
    candidates = [VIEWS["flat"], VIEWS["second_floor"]]

    labels = resolve_classifications(
        pipeline, QUERY, candidates, SCHEMA, None, "certificate",
        lambda pairs: [UNDECIDED] * len(pairs),
    )
    assert labels == ["irrelevant", "irrelevant"]
    assert engine.store().sizes().get("classification", 0) == 0

    # A half-decided pair: proven backward direction still counts, but
    # the undecided forward direction can never yield "subsuming" — and
    # the label still stays out of the cache.
    labels = resolve_classifications(
        pipeline, QUERY, candidates, SCHEMA, None, "certificate",
        lambda pairs: [
            UNDECIDED if index % 2 == 0 else True
            for index in range(len(pairs))
        ],
    )
    assert "subsuming" not in labels and "equivalent" not in labels
    assert labels == ["contained", "contained"]
    assert engine.store().sizes().get("classification", 0) == 0

    # Fully decided verdicts, by contrast, are cached.
    labels = resolve_classifications(
        pipeline, QUERY, candidates, SCHEMA, None, "certificate",
        lambda pairs: [True] * len(pairs),
    )
    assert labels == ["equivalent", "equivalent"]
    assert engine.store().sizes().get("classification", 0) == 2
