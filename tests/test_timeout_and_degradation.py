"""Timeout enforcement and graceful degradation of the parallel engine.

Simulation of grouping queries is NP-complete (Theorem 5.1), so the
parallel engine must survive pathological checks.  The adversarial pair
here is a pigeonhole instance built by joining stars
(:func:`repro.workloads.generators.star_query`) into complete graphs:
deciding whether the K\\ :sub:`n` clique query is simulated by the
K\\ :sub:`n-1` one forces the homomorphism search to exhaust an
(n-1)!-shaped refutation — seconds at n=7, minutes beyond — while the
chain-into-star checks around it stay microseconds.  A bounded batch
must finish, report the hard entry per policy, and count the timeout.

Degradation: when no worker pool can be created (or it breaks
mid-batch), batches fall back to the in-process sequential engine with
identical verdicts.
"""

import pickle
import signal

import pytest

from repro.errors import ContainmentTimeout, ReproError
from repro.engine import ContainmentEngine, ParallelContainmentEngine, UNDECIDED
from repro.engine.parallel import Undecided
from repro.grouping.query import GroupingNode, GroupingQuery
from repro.grouping.simulation import is_simulated
from repro.workloads import chain_query, random_coql, star_query

SCHEMA = {"r": ("a", "b"), "s": ("k", "b")}

needs_sigalrm = pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"),
    reason="per-check timeouts need SIGALRM (POSIX)",
)


def flat(cq, name):
    values = {"c%d" % i: term for i, term in enumerate(cq.head)}
    return GroupingQuery(GroupingNode("", cq.body, values, (), ()), name)


def clique(size, name):
    """The K_size clique query: the join of *size* stars, one centered
    at each variable (star_query's shape with the rays identified)."""
    star = star_query(size - 1)
    variables = sorted(
        {v for atom in star.body for v in atom.variables()}, key=repr
    )
    center = star.head[0]
    rays = [v for v in variables if v != center]
    atoms = []
    for i in range(size):
        others = [j for j in range(size) if j != i]
        renaming = {center: star.head[0].__class__("V%d" % i)}
        renaming.update(
            (ray, star.head[0].__class__("V%d" % j))
            for ray, j in zip(rays, others)
        )
        atoms.extend(
            atom.__class__(
                atom.pred, tuple(renaming.get(t, t) for t in atom.args)
            )
            for atom in star.body
        )
    return GroupingQuery(
        GroupingNode(
            "", tuple(atoms), {"c0": center.__class__("V0")}, (), ()
        ),
        name,
    )


HARD_SUB = clique(8, "k8_target")  # K9 -> K8: pigeonhole, no simulation
HARD_SUP = clique(9, "k9")

EASY_PAIRS = [
    (flat(chain_query(6, head_arity=1), "chain6"),
     flat(star_query(6), "star6")),
    (flat(star_query(5), "star5"),
     flat(chain_query(5, head_arity=1), "chain5")),
]
EASY_EXPECTED = [is_simulated(sub, sup) for sub, sup in EASY_PAIRS]


@needs_sigalrm
class TestTimeoutPath:
    def test_batch_completes_around_hard_pair(self):
        batch = [EASY_PAIRS[0], (HARD_SUB, HARD_SUP), EASY_PAIRS[1]]
        with ParallelContainmentEngine(
            jobs=2, timeout_s=0.4, chunk_size=1
        ) as engine:
            verdicts = engine.simulated_many(batch)
            stats = engine.stats()
        assert verdicts[0] == EASY_EXPECTED[0]
        assert verdicts[1] is UNDECIDED
        assert verdicts[2] == EASY_EXPECTED[1]
        assert stats.counter("timeouts") == 1
        assert stats.counter("tasks_dispatched") == 3

    def test_raise_policy_propagates_timeout(self):
        with ParallelContainmentEngine(
            jobs=2, timeout_s=0.4, chunk_size=1, on_timeout="raise"
        ) as engine:
            with pytest.raises(ContainmentTimeout):
                engine.simulated_many([(HARD_SUB, HARD_SUP)])
            assert engine.stats().counter("timeouts") == 1

    def test_in_process_timeout_without_pool(self):
        """jobs=1 never forks: the deadline fires in the main thread."""
        engine = ParallelContainmentEngine(jobs=1, timeout_s=0.4)
        verdicts = engine.simulated_many([EASY_PAIRS[0], (HARD_SUB, HARD_SUP)])
        assert verdicts == [EASY_EXPECTED[0], UNDECIDED]
        assert engine._executor is None
        assert engine.stats().counter("timeouts") == 1

    def test_timeout_does_not_poison_later_checks(self):
        """After a timed-out check the worker (and its caches) keep
        answering correctly — the alarm is always cleared."""
        with ParallelContainmentEngine(
            jobs=2, timeout_s=0.4, chunk_size=1
        ) as engine:
            first = engine.simulated_many([(HARD_SUB, HARD_SUP)])
            second = engine.simulated_many(EASY_PAIRS)
        assert first == [UNDECIDED]
        assert second == EASY_EXPECTED


@needs_sigalrm
class TestNestedDeadlines:
    """``_deadline`` must preserve a pre-existing ``ITIMER_REAL``.

    The regression: an inner deadline's exit used to zero the timer
    outright, so an outer batch deadline wrapped around a per-check
    deadline (the in-process degradation path) silently lost its
    timeout and the batch could run forever.
    """

    def test_outer_deadline_survives_inner_exit(self):
        from time import sleep

        from repro.engine.parallel import _deadline

        with pytest.raises(ContainmentTimeout):
            with _deadline(0.3):
                with _deadline(5.0):
                    sleep(0.05)  # inner body completes well under budget
                # pre-fix: the inner exit zeroed ITIMER_REAL here and
                # the outer deadline never fired
                sleep(2.0)

    def test_inner_deadline_bounded_by_tighter_outer(self):
        from time import monotonic, sleep

        from repro.engine.parallel import _deadline

        start = monotonic()
        with pytest.raises(ContainmentTimeout):
            with _deadline(0.2):
                with _deadline(10.0):
                    sleep(2.0)
        assert monotonic() - start < 1.5

    def test_exit_rearms_remaining_not_original(self):
        from time import sleep

        from repro.engine.parallel import _deadline

        # The outer budget is 0.5s; the inner body consumes 0.3s of it.
        # On exit the outer timer must be re-armed with ~0.2s, so a
        # 2.0s follow-up still times out — and quickly.
        from time import monotonic

        start = monotonic()
        with pytest.raises(ContainmentTimeout):
            with _deadline(0.5):
                with _deadline(5.0):
                    sleep(0.3)
                sleep(2.0)
        assert monotonic() - start < 1.5

    def test_timer_cleared_after_outermost_exit(self):
        from repro.engine.parallel import _deadline

        with _deadline(5.0):
            pass
        remaining, _ = signal.setitimer(signal.ITIMER_REAL, 0.0)
        assert remaining == 0.0


class TestUndecidedVerdict:
    def test_falsy_singleton(self):
        assert not UNDECIDED
        assert Undecided() is UNDECIDED
        assert repr(UNDECIDED) == "UNDECIDED"

    def test_identity_survives_pickling(self):
        assert pickle.loads(pickle.dumps(UNDECIDED)) is UNDECIDED

    def test_distinguishable_from_false_and_none(self):
        assert UNDECIDED is not False and UNDECIDED is not None
        assert isinstance(UNDECIDED, Undecided)


class TestDegradation:
    PAIRS = [
        (random_coql(seed=seed), random_coql(seed=seed + 3000))
        for seed in range(8)
    ]

    def test_unavailable_pool_falls_back_in_process(self, monkeypatch):
        from repro.engine import parallel as parallel_module

        def refuse(*args, **kwargs):
            raise OSError("no fork for you")

        monkeypatch.setattr(
            parallel_module, "ProcessPoolExecutor", refuse
        )
        engine = ParallelContainmentEngine(jobs=4)
        expected = ContainmentEngine().contains_many(
            self.PAIRS, SCHEMA, on_error="capture"
        )
        got = engine.contains_many(self.PAIRS, SCHEMA, on_error="capture")
        assert [type(v) for v in got] == [type(v) for v in expected]
        assert [v for v in got if not isinstance(v, ReproError)] == [
            v for v in expected if not isinstance(v, ReproError)
        ]
        assert engine.stats().counter("pool_failures") == 1
        # a second batch does not retry pool construction endlessly
        engine.contains_many(self.PAIRS, SCHEMA, on_error="capture")
        assert engine.stats().counter("pool_failures") == 1
        engine.close()

    def test_broken_pool_mid_batch_recomputes_locally(self):
        from concurrent.futures.process import BrokenProcessPool

        class ExplodingExecutor:
            def submit(self, *args, **kwargs):
                raise BrokenProcessPool("worker died")

            def shutdown(self, **kwargs):  # pragma: no cover
                raise AssertionError("injected executors are never shut down")

        engine = ParallelContainmentEngine(
            jobs=2, executor=ExplodingExecutor()
        )
        expected = ContainmentEngine().contains_many(
            self.PAIRS, SCHEMA, on_error="capture"
        )
        got = engine.contains_many(self.PAIRS, SCHEMA, on_error="capture")
        assert [
            v for v in got if not isinstance(v, ReproError)
        ] == [v for v in expected if not isinstance(v, ReproError)]
        assert engine.stats().counter("pool_failures") == 1

    def test_timeout_semantics_identical_after_degradation(self, monkeypatch):
        if not hasattr(signal, "SIGALRM"):
            pytest.skip("needs SIGALRM")
        from repro.engine import parallel as parallel_module

        monkeypatch.setattr(
            parallel_module,
            "ProcessPoolExecutor",
            lambda *a, **k: (_ for _ in ()).throw(OSError("refused")),
        )
        engine = ParallelContainmentEngine(jobs=4, timeout_s=0.4)
        verdicts = engine.simulated_many([EASY_PAIRS[0], (HARD_SUB, HARD_SUP)])
        assert verdicts == [EASY_EXPECTED[0], UNDECIDED]
        assert engine.stats().counter("timeouts") == 1
