"""Unit tests for the GroupingQuery tree API (traversal, truncation,
renaming, flat views) and for the workload generators."""

import pytest

from repro.errors import ReproError
from repro.cq.terms import Var
from repro.cq import evaluate
from repro.grouping import GroupingQuery
from repro.grouping.build import node, grouping_query
from repro.workloads import (
    chain_query,
    star_query,
    chain_grouping_query,
    random_cq,
    random_grouping_query,
    random_flat_database,
    random_coql,
)


def three_level():
    return grouping_query(
        node(
            "",
            ["r(X)"],
            {"a": "X"},
            children=[
                node(
                    "mid",
                    ["s(X, Y)"],
                    {"b": "Y"},
                    index=["X"],
                    children=[node("leaf", ["t(Y, Z)"], {"c": "Z"}, index=["Y"])],
                )
            ],
        )
    )


class TestTreeApi:
    def test_paths(self):
        q = three_level()
        assert set(q.paths()) == {(), ("mid",), ("mid", "leaf")}

    def test_nodes_preorder(self):
        labels = [n.label for n in three_level().nodes()]
        assert labels == ["", "mid", "leaf"]

    def test_full_body_accumulates(self):
        q = three_level()
        assert len(q.full_body(())) == 1
        assert len(q.full_body(("mid",))) == 2
        assert len(q.full_body(("mid", "leaf"))) == 3

    def test_node_at_and_parent(self):
        q = three_level()
        assert q.node_at(("mid", "leaf")).label == "leaf"
        assert q.parent_path(("mid", "leaf")) == ("mid",)
        with pytest.raises(ReproError):
            q.parent_path(())

    def test_depth(self):
        assert three_level().depth() == 3
        assert grouping_query(node("", ["r(X)"], {"a": "X"})).depth() == 1

    def test_truncate_prefix_closed(self):
        q = three_level()
        t = q.truncate({(), ("mid",)})
        assert set(t.paths()) == {(), ("mid",)}
        with pytest.raises(ReproError):
            q.truncate({("mid",)})  # missing root

    def test_truncate_keeps_values(self):
        t = three_level().truncate({()})
        assert t.root.value_names() == ("a",)

    def test_rename_apart_fresh_vars(self):
        q = three_level()
        renamed = q.rename_apart("_w")
        assert not set(q.variables()) & set(renamed.variables())
        assert renamed.shape() == q.shape()

    def test_to_flat_cq(self):
        q = three_level()
        flat = q.to_flat_cq(("mid",))
        assert flat.head == (Var("X"), Var("Y"))
        assert len(flat.body) == 2

    def test_shape_distinguishes_labels(self):
        other = grouping_query(
            node(
                "",
                ["r(X)"],
                {"a": "X"},
                children=[node("other", ["s(X, Y)"], {"b": "Y"}, index=["X"])],
            )
        )
        assert other.shape() != three_level().shape()

    def test_equality_and_hash(self):
        assert three_level() == three_level()
        assert hash(three_level()) == hash(three_level())


class TestWorkloadGenerators:
    def test_chain_query_structure(self):
        q = chain_query(5)
        assert len(q.body) == 5
        assert q.head == (Var("X0"), Var("X5"))

    def test_star_query_structure(self):
        q = star_query(4)
        assert len(q.body) == 4
        assert all(atom.args[0] == Var("C") for atom in q.body)

    def test_chain_grouping_depths(self):
        for depth in (1, 2, 3):
            q = chain_grouping_query(depth)
            assert q.depth() == depth

    def test_random_cq_is_safe_and_deterministic(self):
        q1 = random_cq({"r": 2}, seed=9)
        q2 = random_cq({"r": 2}, seed=9)
        assert q1 == q2
        body_vars = {v for atom in q1.body for v in atom.variables()}
        assert all(t in body_vars for t in q1.head)

    def test_random_grouping_query_validates(self):
        for seed in range(10):
            q = random_grouping_query({"r": 2, "s": 2}, seed=seed, depth=3)
            assert isinstance(q, GroupingQuery)
            assert q.depth() <= 3

    def test_random_flat_database_deterministic(self):
        db1 = random_flat_database({"r": 2}, seed=4)
        db2 = random_flat_database({"r": 2}, seed=4)
        assert db1 == db2

    def test_random_coql_parses(self):
        from repro.coql import parse_coql

        for seed in range(20):
            parse_coql(random_coql(seed=seed, depth=2))

    def test_chain_query_evaluation(self):
        from repro.objects import Database

        db = Database.from_dict(
            {"e": [{"c00": 1, "c01": 2}, {"c00": 2, "c01": 3}]}
        )
        assert evaluate(chain_query(2), db) == frozenset({(1, 3)})
