"""The differential workload oracle (satellite of the semantic cache).

Every answer the cache *serves* (exact or residual — anything except a
direct-evaluation miss) across long seeded simulator replays is
compared against :func:`repro.coql.eval.evaluate_coql` on the base
database.  The serving rules are proved sound in
:mod:`repro.semcache.residual`; this is the workload-scale check that
the implementation honors the proof — with churn, LRU eviction, and
admission racing in the background.

A mismatch dumps the (query, view, verdict) dossier so a failure here
localizes to the serving rule that fired.
"""

import pytest

from repro.semcache import CacheAnswer, SemanticCache
from repro.workloads import (
    WorkloadSimulator,
    company_scenario,
    oracle_mismatch,
    orders_scenario,
)


def _format(mismatches):
    return "\n".join(
        "step %(step)d %(query_name)s via %(view)s (%(verdict)s, "
        "%(source)s): %(query)s" % m for m in mismatches
    )


@pytest.mark.parametrize(
    "scenario_factory, steps, seed, zipf_s, churn",
    [
        (company_scenario, 220, 17, 1.2, 0.03),
        (orders_scenario, 200, 23, 1.1, 0.02),
    ],
    ids=["company", "orders"],
)
def test_oracle_zero_mismatches(scenario_factory, steps, seed, zipf_s, churn):
    simulator = WorkloadSimulator(
        scenario_factory(seed=seed), steps=steps, seed=seed,
        zipf_s=zipf_s, churn=churn, max_views=16, oracle=True,
    )
    summary = simulator.run()
    assert summary["steps"] == steps
    assert not summary["mismatches"], _format(summary["mismatches"])
    # The oracle must actually have exercised served answers, or the
    # zero-mismatch claim is vacuous.
    served = summary["sources"]["exact"] + summary["sources"]["residual"]
    assert served > steps // 2
    assert summary["sources"]["residual"] > 0


def test_oracle_covers_both_serving_sources():
    """Across the two scenarios the oracle checks both exact and
    residual answers, not just the NF-identity fast path."""
    sources = {"exact": 0, "residual": 0}
    for factory, seed in ((company_scenario, 17), (orders_scenario, 23)):
        simulator = WorkloadSimulator(
            factory(seed=seed), steps=120, seed=seed, zipf_s=1.2,
            oracle=True,
        )
        summary = simulator.run()
        assert not summary["mismatches"], _format(summary["mismatches"])
        for key in sources:
            sources[key] += summary["sources"][key]
    assert sources["exact"] > 0 and sources["residual"] > 0


def test_oracle_detects_a_corrupted_view():
    """Tamper with a materialized view: the oracle must notice, and its
    dossier must carry the fields the dump format relies on."""
    scenario = company_scenario(seed=5)
    database = scenario.database()
    cache = SemanticCache(scenario.schema, database)
    query = "select [d: x.dname, floor: x.floor] from x in dept"
    cache.add_view("depts", query)
    from repro.objects.values import CSet

    cache.view("depts").value = CSet()  # corrupt the materialization
    answer = cache.lookup(query)
    assert answer.source == "exact" and answer.view == "depts"
    mismatch = oracle_mismatch(query, answer, database)
    assert mismatch is not None
    assert {"query", "view", "verdict", "expected", "got"} <= set(mismatch)
    assert mismatch["view"] == "depts"


def test_oracle_accepts_a_correct_answer():
    scenario = company_scenario(seed=5)
    database = scenario.database()
    cache = SemanticCache(scenario.schema, database)
    query = "select [d: x.dname] from x in dept"
    cache.add_view("names", query)
    answer = cache.lookup(query)
    assert answer.hit
    assert oracle_mismatch(query, answer, database) is None


def test_oracle_checks_residual_answers():
    """A handcrafted refinement served residually passes the oracle; a
    corrupted residual source does not."""
    scenario = company_scenario(seed=9)
    database = scenario.database()
    cache = SemanticCache(scenario.schema, database)
    base = "select [d: x.dname, floor: x.floor] from x in dept"
    refined = base + " where x.floor = 2"
    cache.add_view("base", base)
    answer = cache.lookup(refined)
    assert answer.source == "residual" and answer.view == "base"
    assert oracle_mismatch(refined, answer, database) is None
    # Serving from a bogus value must be caught.
    bogus = CacheAnswer(answer.value, "residual", "base", "subsuming")
    wrong = CacheAnswer(
        cache.view("base").value, "residual", "base", "subsuming"
    )
    assert oracle_mismatch(refined, bogus, database) is None
    assert oracle_mismatch(refined, wrong, database) is not None
