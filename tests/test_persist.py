"""The persistent artifact tier: round trips, tiering semantics,
failure degradation, and genuine cross-process warm starts."""

import multiprocessing
import os
import sqlite3
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.engine import ContainmentEngine
from repro.pipeline import ArtifactStore, MISSING, PersistentStore, TieredStore
from repro.pipeline.persist import FORMAT_VERSION

SCHEMA = {"r": ("a", "b"), "s": ("k", "b")}
WIDER = "select [a: x.a, kids: select [b: y.b] from y in s] from x in r"
UNLINKED = (
    "select [a: x.a, kids: select [b: y.b] from y in s where y.k = x.a]"
    " from x in r"
)
FLAT = "select [v: x.a] from x in r"


class TestPersistentStore:
    def test_round_trip_and_miss(self, tmp_path):
        with PersistentStore(str(tmp_path / "a.db")) as store:
            assert store.lookup("prepare", "k1") is MISSING
            store.store("prepare", "k1", {"x": (1, 2)})
            assert store.lookup("prepare", "k1") == {"x": (1, 2)}
            assert store.lookup("prepare", "other") is MISSING
            assert store.lookup("other_kind", "k1") is MISSING
            assert len(store) == 1

    def test_values_survive_reopen(self, tmp_path):
        path = str(tmp_path / "a.db")
        with PersistentStore(path) as store:
            store.store("targets", "t", ["compiled", ("target",)])
        with PersistentStore(path) as store:
            assert store.lookup("targets", "t") == ["compiled", ("target",)]
            assert store.sizes() == {"targets": 1}
            assert store.counters()["targets"]["hits"] == 1
            assert store.hit_rates() == {"targets": 1.0}

    def test_upsert_replaces(self, tmp_path):
        with PersistentStore(str(tmp_path / "a.db")) as store:
            store.store("k", "key", 1)
            store.store("k", "key", 2)
            assert store.lookup("k", "key") == 2
            assert store.sizes() == {"k": 1}

    def test_store_many_one_batch(self, tmp_path):
        with PersistentStore(str(tmp_path / "a.db")) as store:
            store.store_many(
                ("verdicts", "k%d" % i, i) for i in range(10)
            )
            assert store.sizes() == {"verdicts": 10}
            assert store.counters()["verdicts"]["stores"] == 10
            assert [v for __, __, v in store.rows(newest_first=False)] == list(
                range(10)
            )

    def test_non_string_keys_never_persist(self, tmp_path):
        with PersistentStore(str(tmp_path / "a.db")) as store:
            store.store("k", ("tuple", "key"), "value")
            assert store.counters()["k"]["store_errors"] == 1
            assert store.lookup("k", ("tuple", "key")) is MISSING
            assert len(store) == 0

    def test_unpicklable_value_degrades_to_store_error(self, tmp_path):
        with PersistentStore(str(tmp_path / "a.db")) as store:
            store.store("k", "key", lambda: None)
            assert store.counters()["k"]["store_errors"] == 1
            assert store.lookup("k", "key") is MISSING

    def test_delete_and_clear(self, tmp_path):
        with PersistentStore(str(tmp_path / "a.db")) as store:
            store.store_many(
                [("a", "k1", 1), ("a", "k2", 2), ("b", "k1", 3)]
            )
            store.delete("a", "k1")
            assert store.lookup("a", "k1") is MISSING
            store.clear("a")
            assert store.sizes() == {"b": 1}
            store.clear()
            assert store.sizes() == {}

    def test_format_version_bump_clears_stale_artifacts(self, tmp_path):
        path = str(tmp_path / "a.db")
        with PersistentStore(path) as store:
            store.store("prepare", "stale", "old-encoding")
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE meta SET value = ? WHERE name = 'format_version'",
            (str(FORMAT_VERSION - 1),),
        )
        conn.commit()
        conn.close()
        with PersistentStore(path) as store:
            assert store.lookup("prepare", "stale") is MISSING
            assert len(store) == 0
            store.store("prepare", "fresh", "new-encoding")
        with PersistentStore(path) as store:
            assert store.lookup("prepare", "fresh") == "new-encoding"

    def test_corrupted_database_degrades_to_misses(self, tmp_path):
        path = str(tmp_path / "a.db")
        with open(path, "wb") as handle:
            handle.write(b"this is not a sqlite database at all")
        store = PersistentStore(path)
        assert store.broken
        assert store.open_errors == 1
        assert store.lookup("prepare", "k") is MISSING
        store.store("prepare", "k", "value")  # dropped, not raised
        assert store.counters()["prepare"]["store_errors"] == 1
        assert store.sizes() == {}
        assert list(store.rows()) == []
        store.close()

    def test_poisoned_row_is_a_miss_and_evicted(self, tmp_path):
        path = str(tmp_path / "a.db")
        with PersistentStore(path) as store:
            store.store("k", "good", "value")
        conn = sqlite3.connect(path)
        conn.execute(
            "INSERT INTO artifacts (kind, key, value, stored_at)"
            " VALUES ('k', 'bad', ?, 0.0)",
            (b"\x80\x04 truncated garbage",),
        )
        conn.commit()
        conn.close()
        with PersistentStore(path) as store:
            assert store.lookup("k", "bad") is MISSING
            assert store.counters()["k"]["load_errors"] == 1
            # The poisoned row was dropped so a recomputed artifact can
            # take its place; rows() skips nothing that remains.
            assert store.sizes() == {"k": 1}
            assert [key for __, key, __ in store.rows()] == ["good"]

    def test_closed_store_behaves_as_broken(self, tmp_path):
        store = PersistentStore(str(tmp_path / "a.db"))
        store.store("k", "key", 1)
        store.close()
        assert store.broken
        assert store.lookup("k", "key") is MISSING
        store.store("k", "key2", 2)  # dropped silently
        store.close()  # idempotent


class TestTieredStore:
    def test_requires_exactly_one_backing(self, tmp_path):
        with pytest.raises(ValueError):
            TieredStore()
        with pytest.raises(ValueError):
            TieredStore(
                path=str(tmp_path / "a.db"),
                disk=PersistentStore(":memory:"),
            )

    def test_write_back_is_deferred_until_flush(self, tmp_path):
        with TieredStore(path=str(tmp_path / "a.db")) as tiered:
            tiered.store("prepare", "k", "artifact")
            assert tiered.disk.sizes() == {}  # still dirty
            assert tiered.lookup("prepare", "k") == "artifact"
            assert tiered.flush() == 1
            assert tiered.disk.sizes() == {"prepare": 1}
            assert tiered.flush() == 0  # nothing newly dirty

    def test_write_back_threshold_auto_flushes(self, tmp_path):
        with TieredStore(
            path=str(tmp_path / "a.db"), write_back_batch=3
        ) as tiered:
            tiered.store("k", "k1", 1)
            tiered.store("k", "k2", 2)
            assert tiered.disk.sizes() == {}
            tiered.store("k", "k3", 3)
            assert tiered.disk.sizes() == {"k": 3}
            assert tiered.flushes == 1

    def test_close_flushes_dirty_buffer(self, tmp_path):
        path = str(tmp_path / "a.db")
        tiered = TieredStore(path=path)
        tiered.store("k", "key", "value")
        tiered.close()
        with PersistentStore(path) as disk:
            assert disk.lookup("k", "key") == "value"

    def test_read_through_promotes_disk_hits(self, tmp_path):
        path = str(tmp_path / "a.db")
        with PersistentStore(path) as disk:
            disk.store("prepare", "k", "warm-artifact")
        with TieredStore(path=path) as tiered:
            assert tiered.memory.sizes() == {}
            assert tiered.lookup("prepare", "k") == "warm-artifact"
            assert tiered.promotions == 1
            # Promoted: the second lookup is a pure memory hit.
            assert tiered.lookup("prepare", "k") == "warm-artifact"
            assert tiered.memory.counters()["prepare"]["hits"] == 1
            assert tiered.disk.counters()["prepare"]["hits"] == 1

    def test_dirty_buffer_serves_lru_evicted_entries(self, tmp_path):
        memory = ArtifactStore(limits={"k": 1})
        with TieredStore(
            path=str(tmp_path / "a.db"), memory=memory, write_back_batch=100
        ) as tiered:
            tiered.store("k", "k1", "first")
            tiered.store("k", "k2", "second")  # evicts k1 from memory
            assert memory.sizes() == {"k": 1}
            assert tiered.disk.sizes() == {}  # not flushed yet
            # Still a hit: the dirty buffer holds the unflushed value.
            assert tiered.lookup("k", "k1") == "first"

    def test_per_kind_persistence_policy(self, tmp_path):
        with TieredStore(
            path=str(tmp_path / "a.db"), persist_kinds={"prepare"}
        ) as tiered:
            assert tiered.persisted("prepare")
            assert not tiered.persisted("trace")
            tiered.store("prepare", "k", 1)
            tiered.store("trace", "k", 2)
            tiered.flush()
            assert tiered.disk.sizes() == {"prepare": 1}
            # The memory tier serves every kind regardless.
            assert tiered.lookup("trace", "k") == 2

    def test_set_persisted_flips_at_runtime(self, tmp_path):
        with TieredStore(path=str(tmp_path / "a.db")) as tiered:
            tiered.set_persisted("trace", False)
            tiered.store("trace", "k", 1)
            tiered.store("prepare", "k", 2)
            tiered.flush()
            assert tiered.disk.sizes() == {"prepare": 1}
            tiered.set_persisted("trace", True)
            tiered.store("trace", "k2", 3)
            tiered.flush()
            assert tiered.disk.sizes() == {"prepare": 1, "trace": 1}

    def test_preload_warms_memory_newest_first(self, tmp_path):
        path = str(tmp_path / "a.db")
        with PersistentStore(path) as disk:
            disk.store_many(
                [("prepare", "k%d" % i, i) for i in range(5)]
            )
        with TieredStore(path=path) as tiered:
            assert tiered.preload() == 5
            assert tiered.memory.sizes() == {"prepare": 5}
            assert tiered.lookup("prepare", "k3") == 3
            # Served from memory: the disk tier saw no lookups at all.
            assert tiered.disk.counters().get("prepare", {}).get(
                "hits", 0
            ) == 0

    def test_preload_respects_caps_and_kind_filter(self, tmp_path):
        path = str(tmp_path / "a.db")
        with PersistentStore(path) as disk:
            disk.store_many(
                [("a", "k%d" % i, i) for i in range(5)]
                + [("b", "k%d" % i, i) for i in range(5)]
            )
        with TieredStore(path=path) as tiered:
            assert tiered.preload(kinds=["a"], per_kind_limit=2) == 2
            assert tiered.memory.sizes() == {"a": 2}
        memory = ArtifactStore(limits={"a": 3}, default_maxsize=8)
        with TieredStore(path=path, memory=memory) as tiered:
            # No explicit cap: each kind fills to its memory bound.
            assert tiered.preload() == 8
            assert memory.sizes() == {"a": 3, "b": 5}

    def test_clear_hits_every_tier(self, tmp_path):
        with TieredStore(
            path=str(tmp_path / "a.db"), write_back_batch=2
        ) as tiered:
            tiered.store("a", "k1", 1)
            tiered.store("a", "k2", 2)  # flushed
            tiered.store("b", "k1", 3)  # dirty
            tiered.clear("a")
            assert tiered.lookup("a", "k1") is MISSING
            assert tiered.disk.sizes() == {}
            assert tiered.lookup("b", "k1") == 3  # other kind untouched
            tiered.clear()
            assert tiered.lookup("b", "k1") is MISSING

    def test_corrupted_disk_tier_degrades_to_memory_only(self, tmp_path):
        path = str(tmp_path / "a.db")
        with open(path, "wb") as handle:
            handle.write(b"garbage, not sqlite")
        with TieredStore(path=path) as tiered:
            assert tiered.disk.broken
            tiered.store("prepare", "k", "value")
            assert tiered.lookup("prepare", "k") == "value"  # memory works
            assert tiered.lookup("prepare", "cold") is MISSING
            tiered.flush()  # drops, never raises

    def test_combined_accounting(self, tmp_path):
        path = str(tmp_path / "a.db")
        with PersistentStore(path) as disk:
            disk.store("k", "warm", 1)
        with TieredStore(path=path) as tiered:
            tiered.lookup("k", "warm")   # memory miss, disk hit
            tiered.lookup("k", "cold")   # miss in both
            counters = tiered.counters()
            assert counters["k"]["misses"] == 2
            assert counters["k"]["disk_hits"] == 1
            assert tiered.hit_rates() == {"k": 0.5}
            tiered.reset_counters()
            assert tiered.promotions == 0
            assert tiered.counters().get("k", {}).get("disk_hits", 0) == 0


# -- cross-process warm starts ------------------------------------------


def _decide_with_store(path, sup, sub):
    """Run one containment check over the persistent tier (subprocess)."""
    engine = ContainmentEngine(store_path=path)
    verdict = engine.contains(sup, sub, SCHEMA)
    store = engine.store()
    store.flush()
    counters = store.counters()
    rates = store.hit_rates()
    store.close()
    return verdict, counters, rates


class TestCrossProcessWarmStart:
    def test_subprocess_reads_artifacts_written_here(self, tmp_path):
        path = str(tmp_path / "cache.db")
        with TieredStore(path=path) as tiered:
            tiered.store("prepare", "shared-key", {"payload": (1, "two")})
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
            value = pool.submit(_read_one, path, "prepare", "shared-key")
            assert value.result() == {"payload": (1, "two")}

    def test_engine_warm_starts_from_another_process_run(self, tmp_path):
        path = str(tmp_path / "cache.db")
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
            cold = pool.submit(
                _decide_with_store, path, WIDER, UNLINKED
            ).result()
        verdict, counters, rates = cold
        assert verdict is True
        # The cold run computed everything: no disk hits anywhere.
        assert all(
            tally.get("disk_hits", 0) == 0 for tally in counters.values()
        )
        # Same check, fresh process: served from the persistent tier.
        with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
            warm = pool.submit(
                _decide_with_store, path, WIDER, UNLINKED
            ).result()
        verdict, counters, rates = warm
        assert verdict is True
        assert sum(
            tally.get("disk_hits", 0) for tally in counters.values()
        ) > 0
        assert any(rate == 1.0 for rate in rates.values() if rate is not None)

    def test_engine_store_path_round_trip_same_process(self, tmp_path):
        path = str(tmp_path / "cache.db")
        engine = ContainmentEngine(store_path=path)
        assert engine.contains(WIDER, UNLINKED, SCHEMA) is True
        engine.store().close()
        warm = ContainmentEngine(store_path=path)
        assert warm.contains(WIDER, UNLINKED, SCHEMA) is True
        assert warm.store().promotions > 0
        warm.store().close()


def _read_one(path, kind, key):
    with TieredStore(path=path) as tiered:
        return tiered.lookup(kind, key)
