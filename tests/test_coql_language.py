"""Unit tests for COQL: parser, type checker, interpreter, normalizer."""

import pytest

from repro.errors import ParseError, TypeCheckError, EvaluationError
from repro.objects import Database, Record, CSet, RecordType, SetType, ATOM
from repro.coql import (
    parse_coql,
    typecheck,
    evaluate_coql,
    normalize,
    Const,
    VarRef,
    RelRef,
    Proj,
    RecordExpr,
    Singleton,
    EmptySet,
    Flatten,
    Select,
    NFSet,
    NFEmpty,
)

SCHEMA = {
    "r": RecordType({"a": ATOM, "b": ATOM}),
    "s": RecordType({"k": ATOM, "b": ATOM}),
}


def db():
    return Database.from_dict(
        {
            "r": [{"a": 1, "b": 2}, {"a": 2, "b": 2}],
            "s": [{"k": 1, "b": 10}, {"k": 1, "b": 11}, {"k": 3, "b": 30}],
        }
    )


class TestParser:
    def test_select_from_where(self):
        q = parse_coql("select [v: x.a] from x in r where x.b = 2")
        assert isinstance(q, Select)
        assert q.generators[0][0] == "x"
        assert q.conditions == ((Proj(VarRef("x"), "b"), Const(2)),)

    def test_nested_select_in_head(self):
        q = parse_coql(
            "select [v: x.a, inner: select [w: y.b] from y in s where y.k = x.a]"
            " from x in r"
        )
        inner = q.head["inner"]
        assert isinstance(inner, Select)
        # x is resolved as a variable inside the nested head.
        assert inner.conditions[0][1] == Proj(VarRef("x"), "a")

    def test_relation_vs_variable_resolution(self):
        q = parse_coql("select [v: r.a] from r in s")
        # "r" is bound by the generator, so the head projects the variable.
        assert q.head["v"] == Proj(VarRef("r"), "a")

    def test_singleton_and_empty(self):
        assert parse_coql("{3}") == Singleton(Const(3))
        assert parse_coql("{}") == EmptySet()

    def test_flatten(self):
        q = parse_coql("flatten(select {x.a} from x in r)")
        assert isinstance(q, Flatten)

    def test_strings_and_numbers(self):
        q = parse_coql('select [v: "blue", w: 2.5] from x in r')
        assert q.head["v"] == Const("blue")
        assert q.head["w"] == Const(2.5)

    def test_parenthesized(self):
        assert parse_coql("(({3}))") == Singleton(Const(3))

    def test_errors(self):
        with pytest.raises(ParseError):
            parse_coql("select from x in r")
        with pytest.raises(ParseError):
            parse_coql("select [v: x.a] from x in r extra")
        with pytest.raises(ParseError):
            parse_coql("select [v x.a] from x in r")

    def test_free_vars_and_relations(self):
        q = parse_coql("select [v: x.a] from x in r, y in s")
        assert q.free_vars() == frozenset()
        assert q.relations() == frozenset({"r", "s"})


class TestTypecheck:
    def test_flat_query_type(self):
        q = parse_coql("select [v: x.a] from x in r")
        t = typecheck(q, SCHEMA)
        assert t == SetType(RecordType({"v": ATOM}))

    def test_nested_query_type(self):
        q = parse_coql(
            "select [v: x.a, inner: select [w: y.b] from y in s] from x in r"
        )
        t = typecheck(q, SCHEMA)
        assert t.element["inner"] == SetType(RecordType({"w": ATOM}))

    def test_unknown_relation(self):
        with pytest.raises(TypeCheckError):
            typecheck(parse_coql("select [v: x.a] from x in nope"), SCHEMA)

    def test_bad_projection(self):
        with pytest.raises(TypeCheckError):
            typecheck(parse_coql("select [v: x.z] from x in r"), SCHEMA)

    def test_generator_over_atom(self):
        with pytest.raises(TypeCheckError):
            typecheck(parse_coql("select [v: y] from x in r, y in x.a"), SCHEMA)

    def test_condition_must_be_atomic(self):
        q = Select(
            RecordExpr({"v": Proj(VarRef("x"), "a")}),
            (("x", RelRef("r")),),
            ((VarRef("x"), VarRef("x")),),
        )
        with pytest.raises(TypeCheckError):
            typecheck(q, SCHEMA)

    def test_flatten_type(self):
        q = parse_coql("flatten(select {x.a} from x in r)")
        assert typecheck(q, SCHEMA) == SetType(ATOM)

    def test_flatten_of_atoms_rejected(self):
        q = parse_coql("flatten(select x.a from x in r)")
        with pytest.raises(TypeCheckError):
            typecheck(q, SCHEMA)


class TestEvaluate:
    def test_flat_select(self):
        q = parse_coql("select [v: x.a] from x in r where x.b = 2")
        assert evaluate_coql(q, db()) == CSet([Record(v=1), Record(v=2)])

    def test_join(self):
        q = parse_coql(
            "select [v: y.b] from x in r, y in s where y.k = x.a"
        )
        assert evaluate_coql(q, db()) == CSet([Record(v=10), Record(v=11)])

    def test_nested_select_with_empty_groups(self):
        q = parse_coql(
            "select [a: x.a, inner: select [w: y.b] from y in s where y.k = x.a]"
            " from x in r"
        )
        answer = evaluate_coql(q, db())
        assert answer == CSet(
            [
                Record(a=1, inner=CSet([Record(w=10), Record(w=11)])),
                Record(a=2, inner=CSet()),
            ]
        )

    def test_flatten(self):
        q = parse_coql("flatten(select {x.a} from x in r)")
        assert evaluate_coql(q, db()) == CSet([1, 2])

    def test_singleton_and_empty(self):
        assert evaluate_coql(parse_coql("{3}"), db()) == CSet([3])
        assert evaluate_coql(parse_coql("{}"), db()) == CSet()

    def test_constant_false_condition(self):
        q = parse_coql("select [v: x.a] from x in r where 1 = 2")
        assert evaluate_coql(q, db()) == CSet()

    def test_unbound_variable(self):
        with pytest.raises(EvaluationError):
            evaluate_coql(VarRef("zzz"), db())

    def test_set_of_sets_head(self):
        q = parse_coql("select (select {y.b} from y in s where y.k = x.a) from x in r")
        answer = evaluate_coql(q, db())
        # Elements are sets of singleton sets.
        assert CSet([CSet([10]), CSet([11])]) in answer

    def test_generator_over_subquery(self):
        q = parse_coql(
            "select [v: z.w] from z in (select [w: x.a] from x in r)"
        )
        assert evaluate_coql(q, db()) == CSet([Record(v=1), Record(v=2)])


class TestNormalize:
    def test_flat(self):
        nf = normalize(parse_coql("select [v: x.a] from x in r where x.b = 2"))
        assert isinstance(nf, NFSet)
        assert len(nf.gens) == 1 and len(nf.conds) == 1

    def test_generator_inlining(self):
        nf = normalize(
            parse_coql("select [v: z.w] from z in (select [w: x.a] from x in r)")
        )
        assert isinstance(nf, NFSet)
        assert len(nf.gens) == 1
        assert nf.gens[0][1] == "r"

    def test_flatten_fusion(self):
        nf = normalize(
            parse_coql("flatten(select (select {y.b} from y in s) from x in r)")
        )
        assert isinstance(nf, NFSet)
        assert {g[1] for g in nf.gens} == {"r", "s"}

    def test_singleton_inlining(self):
        nf = normalize(parse_coql("select [v: z] from z in {3}"))
        assert isinstance(nf, NFSet)
        assert nf.gens == ()

    def test_empty_source_collapses(self):
        nf = normalize(parse_coql("select [v: x.a] from x in r, z in {}"))
        assert nf == NFEmpty()

    def test_false_condition_collapses(self):
        nf = normalize(parse_coql("select [v: x.a] from x in r where 1 = 2"))
        assert nf == NFEmpty()

    def test_true_condition_dropped(self):
        nf = normalize(parse_coql("select [v: x.a] from x in r where 3 = 3"))
        assert isinstance(nf, NFSet) and nf.conds == ()

    def test_normalization_preserves_semantics(self):
        """Normalized queries evaluate identically (via re-evaluation of
        random samples through the encoder path, see containment tests);
        here: the normal form of a convoluted query matches the direct
        answer by hand."""
        text = (
            "select [v: z.w] from z in "
            "(select [w: y.b] from x in r, y in s where y.k = x.a)"
        )
        nf = normalize(parse_coql(text))
        assert isinstance(nf, NFSet)
        assert len(nf.gens) == 2
