"""Tests for complex objects as graphs and the simulation relation.

Headline property (the paper's [6, 5] remark): the Hoare containment
order coincides with graph simulation.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.objects import Record, CSet, dominated
from repro.objects.graphs import (
    ObjectGraph,
    to_graph,
    graph_simulation,
    value_simulated,
    MEMBER,
)

atoms = st.one_of(st.integers(0, 3), st.sampled_from(["x", "y"]))
values = st.recursive(
    atoms,
    lambda inner: st.one_of(
        st.dictionaries(
            st.sampled_from(["a", "b"]), inner, min_size=1, max_size=2
        ).map(Record),
        st.lists(inner, max_size=3).map(CSet),
    ),
    max_leaves=6,
)


class TestToGraph:
    def test_atom(self):
        g = to_graph(5)
        assert g.labels[g.root] == ("atom", 5)

    def test_record_edges(self):
        g = to_graph(Record(a=1, b=2))
        assert g.labels[g.root][0] == "record"
        (child,) = g.successors(g.root, "a")
        assert g.labels[child] == ("atom", 1)

    def test_set_membership_edges(self):
        g = to_graph(CSet([1, 2]))
        assert len(g.successors(g.root, MEMBER)) == 2

    def test_hash_consing_shares_nodes(self):
        shared = Record(x=1)
        g = to_graph(CSet([Record(a=shared, b=shared)]))
        record_nodes = [
            n for n, lab in g.labels.items() if lab == ("record", ("x",))
        ]
        assert len(record_nodes) == 1

    def test_validation_rejects_bad_graphs(self):
        with pytest.raises(ReproError):
            ObjectGraph("root", {}, {})
        with pytest.raises(ReproError):
            ObjectGraph(
                "r",
                {"r": ("atom", 1), "s": ("set",)},
                {("r", "a"): ("s",)},
            )


class TestGraphSimulation:
    def test_atom_simulation(self):
        assert value_simulated(1, 1)
        assert not value_simulated(1, 2)

    def test_set_simulation(self):
        assert value_simulated(CSet([1]), CSet([1, 2]))
        assert not value_simulated(CSet([1, 2]), CSet([1]))

    def test_nested(self):
        low = CSet([Record(a=1, s=CSet([]))])
        high = CSet([Record(a=1, s=CSet([2]))])
        assert value_simulated(low, high)
        assert not value_simulated(high, low)

    def test_cyclic_graph_simulation(self):
        """A cyclic 'infinite set' simulates its unfolding (and itself)."""
        # loop: set whose member is a record whose 'next' is the set.
        labels = {
            "S": ("set",),
            "R": ("record", ("next",)),
        }
        edges = {("S", MEMBER): ("R",), ("R", "next"): ("S",)}
        loop = ObjectGraph("S", labels, edges)
        relation = graph_simulation(loop, loop)
        assert ("S", "S") in relation and ("R", "R") in relation

    def test_cyclic_vs_finite(self):
        """A finite one-step unfolding with an empty tail is simulated by
        the cyclic graph."""
        labels = {"S": ("set",), "R": ("record", ("next",))}
        edges = {("S", MEMBER): ("R",), ("R", "next"): ("S",)}
        loop = ObjectGraph("S", labels, edges)

        finite = to_graph(CSet([Record(next=CSet())]))
        relation = graph_simulation(finite, loop)
        assert (finite.root, "S") in relation
        # But not the other way: the loop's member requires a non-stub
        # successor forever... actually the empty set simulates nothing's
        # members vacuously, so the loop IS simulated by the finite graph
        # only if R maps to a record whose next simulates S; next of the
        # finite record is {}, which simulates no non-empty set... S has
        # a member, {} has none — so the reverse fails.
        reverse = graph_simulation(loop, finite)
        assert ("S", finite.root) not in reverse


class TestCoincidenceWithHoareOrder:
    """dominated(x, y) ⟺ graph simulation (the paper's remark)."""

    @given(values, values)
    @settings(max_examples=150, deadline=None)
    def test_coincides(self, x, y):
        assert dominated(x, y) == value_simulated(x, y)

    @given(values)
    @settings(max_examples=60, deadline=None)
    def test_reflexive(self, x):
        assert value_simulated(x, x)
