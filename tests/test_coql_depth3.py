"""Depth-3 COQL cross-validation: encoder vs interpreter and
containment vs Hoare semantics at three nesting levels."""

import random


from repro.errors import IncomparableQueriesError
from repro.objects import Database, dominated
from repro.coql import parse_coql, evaluate_coql, contains, weakly_equivalent
from repro.coql.containment import prepare
from repro.coql.encode import reconstruct_value
from repro.grouping.semantics import node_groups
from repro.workloads import random_coql_deep

SCHEMA = {"r": ("a", "b"), "s": ("k", "b")}


def random_named_db(seed, rows=3, domain=2):
    rng = random.Random(seed)
    return Database.from_dict(
        {
            name: [
                {attr: rng.randrange(domain) for attr in attrs}
                for __ in range(rows)
            ]
            for name, attrs in SCHEMA.items()
        }
    )


class TestEncoderDepth3:
    def test_random_queries_match_interpreter(self):
        checked = 0
        for seed in range(20):
            text = random_coql_deep(seed=seed, depth=3)
            encoded = prepare(text, SCHEMA)
            if encoded.is_empty:
                continue
            expr = parse_coql(text)
            for db_seed in range(3):
                db = random_named_db(db_seed)
                direct = evaluate_coql(expr, db)
                rebuilt = reconstruct_value(
                    encoded, node_groups(encoded.query, db)
                )
                assert rebuilt == direct, (text, db_seed)
            checked += 1
        assert checked >= 15

    def test_handwritten_three_levels(self):
        text = (
            "select [a: x.a,"
            " mids: select [k: y.k,"
            "  leaves: select [b: z.b] from z in s where z.k = y.k]"
            " from y in s where y.k = x.a]"
            " from x in r"
        )
        encoded = prepare(text, SCHEMA)
        assert encoded.query.depth() == 3
        db = Database.from_dict(
            {
                "r": [{"a": 1, "b": 0}],
                "s": [{"k": 1, "b": 5}, {"k": 1, "b": 6}],
            }
        )
        direct = evaluate_coql(parse_coql(text), db)
        rebuilt = reconstruct_value(encoded, node_groups(encoded.query, db))
        assert rebuilt == direct


class TestContainmentDepth3:
    def test_self_weak_equivalence(self):
        checked = 0
        for seed in range(8):
            text = random_coql_deep(seed=seed, depth=3)
            try:
                assert weakly_equivalent(text, text, SCHEMA), text
            except IncomparableQueriesError:
                continue
            checked += 1
        assert checked >= 6

    def test_soundness_against_hoare(self):
        positive = 0
        for seed in range(10):
            q1 = random_coql_deep(seed=seed, depth=3)
            q2 = random_coql_deep(seed=seed + 2000, depth=3)
            pairs = [(q1, q2)]
            if seed % 3 == 0:
                pairs.append((q1, q1))
            for sub_text, sup_text in pairs:
                try:
                    if not contains(sup_text, sub_text, SCHEMA):
                        continue
                except IncomparableQueriesError:
                    continue
                positive += 1
                sub_expr, sup_expr = parse_coql(sub_text), parse_coql(sup_text)
                for db_seed in range(3):
                    db = random_named_db(db_seed)
                    assert dominated(
                        evaluate_coql(sub_expr, db),
                        evaluate_coql(sup_expr, db),
                    ), (sub_text, sup_text, db_seed)
        assert positive >= 3

    def test_three_level_link_hierarchy(self):
        """Dropping the innermost link widens the query; dropping the
        middle link widens it further — verified at depth 3."""
        tight = (
            "select [a: x.a,"
            " mids: select [k: y.k,"
            "  leaves: select [b: z.b] from z in s where z.k = y.k]"
            " from y in s where y.k = x.a]"
            " from x in r"
        )
        loose_leaf = (
            "select [a: x.a,"
            " mids: select [k: y.k,"
            "  leaves: select [b: z.b] from z in s]"
            " from y in s where y.k = x.a]"
            " from x in r"
        )
        assert contains(loose_leaf, tight, SCHEMA)
        assert not contains(tight, loose_leaf, SCHEMA)
