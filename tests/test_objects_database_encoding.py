"""Unit tests for databases and the Section-5.1 index encoding."""

import pytest

from repro.errors import SchemaError
from repro.objects import (
    CSet,
    Relation,
    Database,
    RecordType,
    SetType,
    ATOM,
    encode_relation,
    encode_database,
    decode_relation,
)


def nested_relation():
    return Relation.from_rows(
        "emp",
        [
            {"name": "ann", "kids": [{"k": "bo"}, {"k": "cy"}]},
            {"name": "dan", "kids": []},
            {"name": "eve", "kids": [{"k": "bo"}]},
        ],
    )


class TestRelation:
    def test_from_rows_converts(self):
        rel = nested_relation()
        assert len(rel) == 3
        assert not rel.is_flat()

    def test_flat_detection(self):
        rel = Relation.from_rows("r", [{"a": 1}])
        assert rel.is_flat()

    def test_schema_conformance_checked(self):
        with pytest.raises(SchemaError):
            Relation.from_rows("r", [{"a": 1}], RecordType({"a": SetType(ATOM)}))

    def test_empty_relation_needs_type(self):
        with pytest.raises(SchemaError):
            Relation("r", CSet())
        rel = Relation("r", CSet(), RecordType({"a": ATOM}))
        assert len(rel) == 0

    def test_rows_must_be_records(self):
        with pytest.raises(SchemaError):
            Relation("r", CSet([1]))


class TestDatabase:
    def test_from_dict(self):
        db = Database.from_dict({"r": [{"a": 1}], "s": [{"b": 2}]})
        assert db.names() == ("r", "s")
        assert "r" in db and "t" not in db

    def test_missing_relation_raises(self):
        db = Database.from_dict({"r": [{"a": 1}]})
        with pytest.raises(SchemaError):
            db["nope"]

    def test_duplicate_names_rejected(self):
        r = Relation.from_rows("r", [{"a": 1}])
        with pytest.raises(SchemaError):
            Database([r, r])

    def test_require_flat(self):
        db = Database([nested_relation()])
        assert not db.is_flat()
        with pytest.raises(SchemaError):
            db.require_flat()

    def test_active_domain(self):
        db = Database.from_dict({"r": [{"a": 1, "b": "x"}]})
        assert set(db.active_domain()) == {1, "x"}

    def test_active_domain_sees_nested_atoms(self):
        db = Database([nested_relation()])
        assert "bo" in db.active_domain()

    def test_with_relation(self):
        db = Database.from_dict({"r": [{"a": 1}]})
        db2 = db.with_relation(Relation.from_rows("s", [{"b": 2}]))
        assert "s" in db2 and "s" not in db

    def test_empty_relation_via_schema(self):
        db = Database.from_dict({}, schema={"r": RecordType({"a": ATOM})})
        assert len(db["r"]) == 0


class TestIndexEncoding:
    def test_roundtrip(self):
        rel = nested_relation()
        tables = encode_relation(rel)
        assert set(tables) == {"emp", "emp__kids"}
        assert all(t.is_flat() for t in tables.values())
        decoded = decode_relation("emp", tables)
        assert decoded.rows == rel.rows

    def test_equal_inner_sets_share_index(self):
        rel = Relation.from_rows(
            "r", [{"a": 1, "s": [7]}, {"a": 2, "s": [7]}, {"a": 3, "s": [8]}]
        )
        tables = encode_relation(rel)
        indexes = {row["s"] for row in tables["r"]}
        assert len(indexes) == 2

    def test_empty_sets_get_index_with_no_rows(self):
        rel = Relation.from_rows("r", [{"a": 1, "s": []}])
        tables = encode_relation(rel)
        assert len(tables["r__s"]) == 0
        decoded = decode_relation("r", tables)
        assert decoded.rows == rel.rows

    def test_two_level_nesting_roundtrip(self):
        rel = Relation.from_rows(
            "r",
            [
                {"a": 1, "s": [{"b": 2, "t": [{"c": 3}]}, {"b": 4, "t": []}]},
                {"a": 5, "s": []},
            ],
        )
        tables = encode_relation(rel)
        assert set(tables) == {"r", "r__s", "r__s__t"}
        decoded = decode_relation("r", tables)
        assert decoded.rows == rel.rows

    def test_atomic_element_sets(self):
        rel = Relation.from_rows("r", [{"a": 1, "s": [10, 20]}])
        tables = encode_relation(rel)
        decoded = decode_relation("r", tables)
        assert decoded.rows == rel.rows

    def test_encode_database_passes_flat_through(self):
        db = Database.from_dict({"flat": [{"a": 1}]})
        assert encode_database(db)["flat"].rows == db["flat"].rows

    def test_encode_database_flattens_nested(self):
        db = Database([nested_relation()])
        flat = encode_database(db)
        assert flat.is_flat()
        assert "emp__kids" in flat
