"""Property-based tests for the nested relational algebra laws.

The classical nest/unnest identities, checked on random data:

* ``μ_B(ν_B(R)) = R`` — unnest inverts nest;
* ``ν_B(μ_B(ν_B(R))) = ν_B(R)`` — renesting is idempotent;
* nest groups are never empty;
* unnest drops rows with empty set components (so ν∘μ is *not* the
  identity in general — the asymmetry the paper's outernest discussion
  turns on);
* the algebra-to-COQL translation commutes with evaluation.
"""


from hypothesis import given, settings, strategies as st

from repro.objects import Database, CSet
from repro.objects.types import RecordType, ATOM
from repro.coql import evaluate_coql
from repro.algebra import (
    BaseRel,
    Nest,
    Unnest,
    Project,
    SelectEq,
    evaluate_algebra,
    algebra_to_coql,
)

SCHEMA = {"r": RecordType({"a": ATOM, "b": ATOM, "c": ATOM})}

rows_strategy = st.lists(
    st.fixed_dictionaries(
        {
            "a": st.integers(0, 2),
            "b": st.integers(0, 2),
            "c": st.integers(0, 2),
        }
    ),
    min_size=0,
    max_size=6,
)


def _db(rows):
    if not rows:
        return Database.from_dict({}, schema={"r": SCHEMA["r"]})
    return Database.from_dict({"r": rows})


class TestNestUnnestLaws:
    @given(rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_unnest_inverts_nest(self, rows):
        db = _db(rows)
        expr = Unnest(Nest(BaseRel("r"), ("b",), "g"), "g")
        assert evaluate_algebra(expr, db) == CSet(db["r"].rows)

    @given(rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_renest_idempotent(self, rows):
        db = _db(rows)
        once = Nest(BaseRel("r"), ("b", "c"), "g")
        thrice = Nest(
            Unnest(Nest(BaseRel("r"), ("b", "c"), "g"), "g"), ("b", "c"), "g"
        )
        assert evaluate_algebra(once, db) == evaluate_algebra(thrice, db)

    @given(rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_nest_groups_nonempty(self, rows):
        db = _db(rows)
        nested = evaluate_algebra(Nest(BaseRel("r"), ("b",), "g"), db)
        assert all(len(row["g"]) > 0 for row in nested)

    @given(rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_nest_partitions_rows(self, rows):
        """Group sizes sum to the number of distinct (a,c) ... actually to
        the number of distinct rows (nest partitions the projections)."""
        db = _db(rows)
        nested = evaluate_algebra(Nest(BaseRel("r"), ("b",), "g"), db)
        regrouped = sum(len(row["g"]) for row in nested)
        distinct_pairs = {
            (row["a"], row["c"], row["b"]) for row in db["r"]
        }
        assert regrouped == len(distinct_pairs)

    @given(rows_strategy, st.integers(0, 2))
    @settings(max_examples=40, deadline=None)
    def test_selection_commutes_with_nest_on_group_attr(self, rows, value):
        """σ_{a=v} ∘ ν_b = ν_b ∘ σ_{a=v} — selection on a grouping
        attribute commutes with nest (a classical optimizer rule)."""
        db = _db(rows)
        left = SelectEq(Nest(BaseRel("r"), ("b",), "g"), "a", ("const", value))
        right = Nest(SelectEq(BaseRel("r"), "a", ("const", value)), ("b",), "g")
        assert evaluate_algebra(left, db) == evaluate_algebra(right, db)


class TestTranslationCommutes:
    EXPRS = [
        Nest(BaseRel("r"), ("b",), "g"),
        Unnest(Nest(BaseRel("r"), ("c",), "g"), "g"),
        Project(Nest(BaseRel("r"), ("b", "c"), "g"), ("a",)),
        Nest(Project(BaseRel("r"), ("a", "b")), ("b",), "g"),
    ]

    @given(rows_strategy, st.integers(0, len(EXPRS) - 1))
    @settings(max_examples=60, deadline=None)
    def test_translation_commutes_with_evaluation(self, rows, index):
        db = _db(rows)
        expr = self.EXPRS[index]
        direct = evaluate_algebra(expr, db)
        via_coql = evaluate_coql(algebra_to_coql(expr, SCHEMA), db)
        assert direct == via_coql
