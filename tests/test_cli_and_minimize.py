"""Tests for COQL minimization and the command-line interface."""

import json

import pytest

from repro.cli import main, _parse_schema
from repro.errors import ReproError
from repro.coql import minimize_coql, weakly_equivalent, parse_coql
from repro.coql.ast import Select

SCHEMA = {"r": ("a", "b"), "s": ("k", "b")}


class TestMinimize:
    def test_drops_redundant_generator(self):
        query = "select [v: x.a] from x in r, y in r"
        minimized = minimize_coql(query, SCHEMA)
        assert isinstance(minimized, Select)
        assert len(minimized.generators) == 1
        assert weakly_equivalent(minimized, parse_coql(query), SCHEMA)

    def test_keeps_necessary_generator(self):
        query = "select [v: x.a] from x in r, y in s where x.a = y.k"
        minimized = minimize_coql(query, SCHEMA)
        assert len(minimized.generators) == 2

    def test_drops_redundant_condition(self):
        query = "select [v: x.a] from x in r, y in r where y.a = y.a"
        minimized = minimize_coql(query, SCHEMA)
        assert len(minimized.conditions) == 0
        assert len(minimized.generators) == 1

    def test_minimizes_nested_subquery(self):
        query = (
            "select [a: x.a, kids: select [b: y.b] from y in s, z in s"
            " where y.k = x.a] from x in r"
        )
        minimized = minimize_coql(query, SCHEMA)
        inner = minimized.head["kids"]
        assert len(inner.generators) == 1

    def test_already_minimal_unchanged(self):
        query = "select [v: x.a] from x in r"
        minimized = minimize_coql(query, SCHEMA)
        assert minimized == parse_coql(query)

    def test_result_is_weakly_equivalent(self):
        query = (
            "select [a: x.a, kids: select [b: y.b] from y in s where y.k = x.a]"
            " from x in r, w in r"
        )
        minimized = minimize_coql(query, SCHEMA)
        assert weakly_equivalent(minimized, parse_coql(query), SCHEMA)


class TestCli:
    def test_parse_schema(self):
        assert _parse_schema("r:a,b;s:k") == {"r": ("a", "b"), "s": ("k",)}
        with pytest.raises(ReproError):
            _parse_schema("  ")

    def test_contain_positive(self, capsys):
        code = main(
            [
                "contain",
                "--schema",
                "r:a,b",
                "select [v: x.a] from x in r",
                "select [v: x.a] from x in r, y in r where y.a = x.a",
            ]
        )
        assert code == 0
        assert "contained" in capsys.readouterr().out

    def test_contain_negative(self, capsys):
        code = main(
            [
                "contain",
                "--schema",
                "r:a,b;s:k,b",
                "select [v: x.a] from x in r, y in s where x.a = y.k",
                "select [v: x.a] from x in r",
            ]
        )
        assert code == 1
        assert "NOT contained" in capsys.readouterr().out

    def test_equiv_weak(self, capsys):
        code = main(
            [
                "equiv",
                "--weak",
                "--schema",
                "r:a,b",
                "select [v: x.a] from x in r",
                "select [v: z.a] from z in r",
            ]
        )
        assert code == 0

    def test_equiv_strict_raises_on_open_case(self, capsys):
        code = main(
            [
                "equiv",
                "--schema",
                "r:a,b;s:k,b",
                "select [a: x.a, kids: select [b: y.b] from y in s where y.k = x.a] from x in r",
                "select [a: x.a, kids: select [b: y.b] from y in s where y.k = x.a] from x in r",
            ]
        )
        assert code == 2  # UnsupportedQueryError -> error exit

    def test_eval(self, tmp_path, capsys):
        data = tmp_path / "db.json"
        data.write_text(json.dumps({"r": [{"a": 1, "b": 2}]}))
        code = main(
            ["eval", "--data", str(data), "select [v: x.a] from x in r"]
        )
        assert code == 0
        assert "[v: 1]" in capsys.readouterr().out

    def test_minimize(self, capsys):
        code = main(
            [
                "minimize",
                "--schema",
                "r:a,b",
                "select [v: x.a] from x in r, y in r",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "y in r" not in out

    def test_cq_contain(self, capsys):
        code = main(
            ["cq-contain", "q(X) :- r(X, Y)", "q(X) :- r(X, Y), s(Y)"]
        )
        assert code == 0

    def test_bad_schema_reports_error(self, capsys):
        code = main(
            ["contain", "--schema", "", "select [v: x.a] from x in r",
             "select [v: x.a] from x in r"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err
