"""Tests for COQL minimization and the command-line interface."""

import json

import pytest

from repro.cli import main, _parse_schema
from repro.errors import ReproError
from repro.coql import minimize_coql, weakly_equivalent, parse_coql
from repro.coql.ast import Select

SCHEMA = {"r": ("a", "b"), "s": ("k", "b")}


class TestMinimize:
    def test_drops_redundant_generator(self):
        query = "select [v: x.a] from x in r, y in r"
        minimized = minimize_coql(query, SCHEMA)
        assert isinstance(minimized, Select)
        assert len(minimized.generators) == 1
        assert weakly_equivalent(minimized, parse_coql(query), SCHEMA)

    def test_keeps_necessary_generator(self):
        query = "select [v: x.a] from x in r, y in s where x.a = y.k"
        minimized = minimize_coql(query, SCHEMA)
        assert len(minimized.generators) == 2

    def test_drops_redundant_condition(self):
        query = "select [v: x.a] from x in r, y in r where y.a = y.a"
        minimized = minimize_coql(query, SCHEMA)
        assert len(minimized.conditions) == 0
        assert len(minimized.generators) == 1

    def test_minimizes_nested_subquery(self):
        query = (
            "select [a: x.a, kids: select [b: y.b] from y in s, z in s"
            " where y.k = x.a] from x in r"
        )
        minimized = minimize_coql(query, SCHEMA)
        inner = minimized.head["kids"]
        assert len(inner.generators) == 1

    def test_already_minimal_unchanged(self):
        query = "select [v: x.a] from x in r"
        minimized = minimize_coql(query, SCHEMA)
        assert minimized == parse_coql(query)

    def test_result_is_weakly_equivalent(self):
        query = (
            "select [a: x.a, kids: select [b: y.b] from y in s where y.k = x.a]"
            " from x in r, w in r"
        )
        minimized = minimize_coql(query, SCHEMA)
        assert weakly_equivalent(minimized, parse_coql(query), SCHEMA)


class TestCli:
    def test_parse_schema(self):
        assert _parse_schema("r:a,b;s:k") == {"r": ("a", "b"), "s": ("k",)}
        with pytest.raises(ReproError):
            _parse_schema("  ")

    def test_contain_positive(self, capsys):
        code = main(
            [
                "contain",
                "--schema",
                "r:a,b",
                "select [v: x.a] from x in r",
                "select [v: x.a] from x in r, y in r where y.a = x.a",
            ]
        )
        assert code == 0
        assert "contained" in capsys.readouterr().out

    def test_contain_ordering_flag(self, capsys):
        for ordering in ("bitset", "propagating", "cost"):
            code = main(
                [
                    "contain", "--schema", "r:a,b", "--ordering", ordering,
                    "select [v: x.a] from x in r",
                    "select [v: x.a] from x in r where x.b = 1",
                ]
            )
            assert code == 0
            assert "contained" in capsys.readouterr().out

    def test_contain_unknown_ordering_exits_two(self, capsys):
        # argparse rejects values outside ORDERINGS with its usage-error
        # exit code, matching the documented convention.
        with pytest.raises(SystemExit) as info:
            main(
                [
                    "contain", "--schema", "r:a,b", "--ordering", "bogus",
                    "select [v: x.a] from x in r",
                    "select [v: x.a] from x in r",
                ]
            )
        assert info.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_contain_negative(self, capsys):
        code = main(
            [
                "contain",
                "--schema",
                "r:a,b;s:k,b",
                "select [v: x.a] from x in r, y in s where x.a = y.k",
                "select [v: x.a] from x in r",
            ]
        )
        assert code == 1
        assert "NOT contained" in capsys.readouterr().out

    def test_equiv_weak(self, capsys):
        code = main(
            [
                "equiv",
                "--weak",
                "--schema",
                "r:a,b",
                "select [v: x.a] from x in r",
                "select [v: z.a] from z in r",
            ]
        )
        assert code == 0

    def test_equiv_strict_raises_on_open_case(self, capsys):
        code = main(
            [
                "equiv",
                "--schema",
                "r:a,b;s:k,b",
                "select [a: x.a, kids: select [b: y.b] from y in s where y.k = x.a] from x in r",
                "select [a: x.a, kids: select [b: y.b] from y in s where y.k = x.a] from x in r",
            ]
        )
        assert code == 2  # UnsupportedQueryError -> error exit

    def test_eval(self, tmp_path, capsys):
        data = tmp_path / "db.json"
        data.write_text(json.dumps({"r": [{"a": 1, "b": 2}]}))
        code = main(
            ["eval", "--data", str(data), "select [v: x.a] from x in r"]
        )
        assert code == 0
        assert "[v: 1]" in capsys.readouterr().out

    def test_minimize(self, capsys):
        code = main(
            [
                "minimize",
                "--schema",
                "r:a,b",
                "select [v: x.a] from x in r, y in r",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "y in r" not in out

    def test_cq_contain(self, capsys):
        code = main(
            ["cq-contain", "q(X) :- r(X, Y)", "q(X) :- r(X, Y), s(Y)"]
        )
        assert code == 0

    def test_bad_schema_reports_error(self, capsys):
        code = main(
            ["contain", "--schema", "", "select [v: x.a] from x in r",
             "select [v: x.a] from x in r"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestCliExitCodes:
    """The documented convention: 0 positive verdict, 1 negative verdict
    or error-severity findings, 2 usage/parse error (3: UNDECIDED)."""

    CONTAINED = [
        "contain", "--schema", "r:a,b",
        "select [v: x.a] from x in r",
        "select [v: x.a] from x in r where x.b = 1",
    ]

    def test_contain_parse_error_is_usage_error(self, capsys):
        code = main(
            ["contain", "--schema", "r:a,b", "select from x in",
             "select [v: x.a] from x in r"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_equiv_negative_is_one(self, capsys):
        code = main(
            ["equiv", "--weak", "--schema", "r:a,b",
             "select [v: x.a] from x in r",
             "select [v: x.a] from x in r where x.b = 1"]
        )
        assert code == 1

    def test_matrix_fully_decided_is_zero(self, capsys):
        code = main(
            ["matrix", "--schema", "r:a,b", "--jobs", "1",
             "select [v: x.a] from x in r",
             "select [v: x.a] from x in r where x.b = 1"]
        )
        assert code == 0

    def test_matrix_incomparable_cell_is_one(self, capsys):
        code = main(
            ["matrix", "--schema", "r:a,b", "--jobs", "1",
             "select [v: x.a] from x in r",
             "select [w: x.a] from x in r"]
        )
        assert code == 1
        assert "!" in capsys.readouterr().out

    def test_lint_clean_is_zero(self, capsys):
        code = main(
            ["lint", "--schema", "r:a,b", "select [v: x.a] from x in r"]
        )
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_lint_warnings_only_is_zero(self, capsys):
        code = main(
            ["lint", "--schema", "r:a,b", "--no-minimize",
             "select [v: x.a] from x in r, y in r"]
        )
        assert code == 0
        assert "COQL003" in capsys.readouterr().out

    def test_lint_error_findings_are_one(self, capsys):
        code = main(
            ["lint", "--schema", "r:a,b",
             "select [v: x.a] from x in r where x.a = 1 and x.a = 2"]
        )
        assert code == 1
        assert "COQL002" in capsys.readouterr().out

    def test_lint_parse_error_is_a_finding_not_usage_error(self, capsys):
        code = main(["lint", "--schema", "r:a,b", "select from x in"])
        assert code == 1
        assert "COQL000" in capsys.readouterr().out

    def test_lint_unknown_rule_code_is_usage_error(self, capsys):
        code = main(
            ["lint", "--schema", "r:a,b", "--select", "COQL999",
             "select [v: x.a] from x in r"]
        )
        assert code == 2

    def test_lint_missing_schema_is_usage_error(self, capsys):
        code = main(["lint", "select [v: x.a] from x in r"])
        assert code == 2
        assert "no schema" in capsys.readouterr().err


class TestCliLint:
    def test_json_format_is_schema_stable(self, capsys):
        code = main(
            ["lint", "--schema", "r:a,b", "--format", "json",
             "--no-minimize", "select [v: x.a] from x in r, y in r"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 1
        assert set(report["summary"]) == {
            "targets", "errors", "warnings", "infos"}
        assert report["summary"]["targets"] == 1
        assert report["summary"]["warnings"] >= 1
        (entry,) = report["targets"]
        for diagnostic in entry["diagnostics"]:
            assert set(diagnostic) == {
                "code", "severity", "message", "rule", "path", "line",
                "col", "paper",
            }

    def test_coql_file_with_schema_directive(self, tmp_path, capsys):
        target = tmp_path / "query.coql"
        target.write_text(
            "# a comment\n"
            "# schema: person:name,dept\n"
            "select [who: p.name]\n"
            "from p in person, q in person\n"
        )
        code = main(["lint", "--no-minimize", str(target)])
        assert code == 0
        out = capsys.readouterr().out
        assert "COQL003" in out
        # Line numbers refer to the file (comments are blanked, not
        # removed): the select starts on line 3.
        assert "3:1" in out

    def test_select_filter(self, capsys):
        code = main(
            ["lint", "--schema", "r:a,b", "--select", "COQL002",
             "select [v: x.a] from x in r, y in r"]
        )
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_repo_examples_lint_clean_of_errors(self, capsys):
        import glob
        import os

        here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        targets = sorted(glob.glob(os.path.join(here, "examples", "*.coql")))
        assert targets, "examples/*.coql missing"
        code = main(["lint", "--format", "json"] + targets)
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["errors"] == 0
        assert report["summary"]["warnings"] >= 1


class TestCliTraceExport:
    POSITIVE = [
        "contain", "--schema", "r:a,b",
        "select [v: x.a] from x in r",
        "select [v: x.a] from x in r, y in r where y.a = x.a",
    ]

    def test_trace_out_writes_chrome_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        code = main(self.POSITIVE + ["--trace-out", str(path)])
        assert code == 0
        assert "trace written" in capsys.readouterr().err
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert events
        names = {event["name"] for event in events}
        assert "check" in names and "prepare" in names
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0.0

    def test_stats_prints_per_stage_breakdown(self, capsys):
        code = main(self.POSITIVE + ["--stats"])
        assert code == 0
        err = capsys.readouterr().err
        assert "per-stage breakdown" in err
        assert "prepare" in err and "miss" in err

    def test_equiv_trace_out(self, tmp_path, capsys):
        path = tmp_path / "equiv-trace.json"
        code = main([
            "equiv", "--weak", "--schema", "r:a,b",
            "--trace-out", str(path),
            "select [v: x.a] from x in r",
            "select [v: x.a] from x in r",
        ])
        assert code == 0
        assert json.loads(path.read_text())["traceEvents"]


class TestCliExitCodeRegression:
    """The exit-code contract of the decision subcommands is stable:
    0 positive, 1 negative, 2 usage error, 3 UNDECIDED timeout."""

    def test_zero_on_positive_verdict(self, capsys):
        code = main([
            "contain", "--schema", "r:a,b",
            "select [v: x.a] from x in r",
            "select [v: x.a] from x in r, y in r where y.a = x.a",
        ])
        assert code == 0

    def test_one_on_negative_verdict(self, capsys):
        code = main([
            "contain", "--schema", "r:a,b;s:k,b",
            "select [v: x.a] from x in r, y in s where x.a = y.k",
            "select [v: x.a] from x in r",
        ])
        assert code == 1

    def test_two_on_usage_error(self, capsys):
        code = main([
            "contain", "--schema", "r:a,b",
            "select [v: x.a] from x in r",
            "this does not parse",
        ])
        assert code == 2

    def test_three_on_undecided_timeout(self, monkeypatch, capsys):
        from repro.errors import ContainmentTimeout
        import repro.engine.parallel as parallel

        def _always_times_out(engine, kind, pair, schema, witnesses,
                              method, timeout_s, ordering=None):
            return ("timeout", ContainmentTimeout("simulated timeout"))

        monkeypatch.setattr(parallel, "_decide_one", _always_times_out)
        code = main([
            "contain", "--schema", "r:a,b", "--timeout-s", "0.5",
            "select [v: x.a] from x in r",
            "select [v: x.a] from x in r",
        ])
        assert code == 3
        assert "UNDECIDED" in capsys.readouterr().out
