"""Integration tests across subsystems.

These exercise the flows a downstream user would actually run: nested
inputs through the index encoding, algebra pipelines against COQL
deciders, the aggregate layer against the grouping layer, and the
hardness reductions against the decision procedures.
"""

import pytest

from repro.errors import SchemaError, UnsupportedQueryError
from repro.objects import (
    Database,
    Relation,
    Record,
    CSet,
    encode_database,
)
from repro.coql import parse_coql, evaluate_coql, contains, weakly_equivalent
from repro.cq import evaluate as cq_evaluate, contains as cq_contains
from repro.algebra import BaseRel, Nest, Unnest, evaluate_algebra, algebra_to_coql
from repro.grouping import evaluate_grouping, is_simulated
from repro.aggregates import AggregateQuery, aggregate_equivalent
from repro.cq.terms import Var
from repro.cq.parser import parse_atom


class TestNestedInputsViaEncoding:
    """The paper's Section-5.1 workflow: nested inputs are first encoded
    as flat relations with indexes, then queried/decided flat."""

    def nested_db(self):
        return Database(
            [
                Relation.from_rows(
                    "emp",
                    [
                        {"name": "ann", "kids": [{"k": "bo"}, {"k": "cy"}]},
                        {"name": "dan", "kids": []},
                    ],
                )
            ]
        )

    def test_decider_requires_flat_then_accepts_encoded(self):
        db = self.nested_db()
        with pytest.raises(SchemaError):
            db.require_flat()
        flat = encode_database(db)
        flat.require_flat()
        # Query the encoded database with COQL over the flat schema:
        # parents paired with their kid rows through the index column.
        q = (
            "select [n: e.name, kid: c.k] from e in emp, c in emp__kids"
            " where c.__index = e.kids"
        )
        answer = evaluate_coql(parse_coql(q), flat)
        names = {(row["n"], row["kid"]) for row in answer}
        assert names == {("ann", "bo"), ("ann", "cy")}

    def test_containment_over_encoded_schema(self):
        flat = encode_database(self.nested_db())
        schema = flat  # Database works as a schema spec
        wide = "select [n: e.name] from e in emp"
        narrow = (
            "select [n: e.name] from e in emp, c in emp__kids"
            " where c.__index = e.kids"
        )
        assert contains(wide, narrow, schema)
        assert not contains(narrow, wide, schema)


class TestAlgebraAgainstCoqlDeciders:
    SCHEMA = {"r": ("a", "b")}

    def test_translated_pipelines_feed_the_decider(self):
        from repro.objects.types import RecordType, ATOM

        typed = {"r": RecordType({"a": ATOM, "b": ATOM})}
        roundtrip = Unnest(Nest(BaseRel("r"), ("b",), "g"), "g")
        identity = BaseRel("r")
        q1 = algebra_to_coql(roundtrip, typed)
        q2 = algebra_to_coql(identity, typed)
        assert weakly_equivalent(q1, q2, typed)

    def test_verdict_matches_evaluation(self):
        from repro.objects.types import RecordType, ATOM

        typed = {"r": RecordType({"a": ATOM, "b": ATOM})}
        roundtrip = Unnest(Nest(BaseRel("r"), ("b",), "g"), "g")
        db = Database.from_dict(
            {"r": [{"a": 1, "b": 2}, {"a": 1, "b": 3}, {"a": 4, "b": 5}]}
        )
        assert evaluate_algebra(roundtrip, db) == CSet(db["r"].rows)


class TestAggregatesAgainstGrouping:
    def test_single_block_matches_grouping_values(self):
        q1 = AggregateQuery(
            (parse_atom("r(G, V)"),), (Var("G"),), "f", Var("V")
        )
        q2 = AggregateQuery(
            (parse_atom("r(G, V)"), parse_atom("r(G, W)")),
            (Var("G"),),
            "f",
            Var("V"),
        )
        assert aggregate_equivalent(q1, q2)
        g1, g2 = q1.grouping_query(), q2.grouping_query()
        from repro.workloads import random_flat_database

        for seed in range(5):
            db = random_flat_database({"r": 2}, rows=5, domain=3, seed=seed)
            assert evaluate_grouping(g1, db) == evaluate_grouping(g2, db)

    def test_grouping_view_simulation_consistency(self):
        q1 = AggregateQuery(
            (parse_atom("r(G, V)"),), (Var("G"),), "f", Var("V")
        )
        q2 = AggregateQuery(
            (parse_atom("r(G, V)"), parse_atom("s(G)")),
            (Var("G"),),
            "f",
            Var("V"),
        )
        # Not equivalent; the grouping views agree: q2 ⊴ q1, not reverse.
        assert not aggregate_equivalent(q1, q2)
        assert is_simulated(q2.grouping_query(), q1.grouping_query())
        assert not is_simulated(q1.grouping_query(), q2.grouping_query())


class TestFlatWorldConsistency:
    """COQL, grouping, and CQ answers coincide on flat queries."""

    def test_three_way_answers(self):
        from repro.coql.containment import prepare

        schema = {"r": ("a", "b")}
        text = "select [x: t.a, y: t.b] from t in r"
        db = Database.from_dict(
            {"r": [{"a": 1, "b": 2}, {"a": 3, "b": 4}]}
        )
        coql_answer = evaluate_coql(parse_coql(text), db)
        encoded = prepare(text, schema)
        grouping_answer = evaluate_grouping(encoded.query, db)
        assert coql_answer == grouping_answer
        flat_cq = encoded.query.to_flat_cq()
        cq_answer = cq_evaluate(flat_cq, db)
        assert {tuple(r[k] for k in ("x", "y")) for r in coql_answer} == cq_answer


class TestFailureInjection:
    """Malformed inputs fail loudly with the documented error types."""

    def test_unknown_relation(self):
        from repro.errors import TypeCheckError

        with pytest.raises(TypeCheckError):
            contains(
                "select [v: x.a] from x in nope",
                "select [v: x.a] from x in nope",
                {"r": ("a",)},
            )

    def test_nested_source_rejected_by_decider(self):
        from repro.objects.types import RecordType, SetType, ATOM

        nested_schema = {
            "t": RecordType(
                {"a": ATOM, "grp": SetType(RecordType({"b": ATOM}))}
            )
        }
        q = "select [v: y.b] from x in t, y in x.grp"
        with pytest.raises(UnsupportedQueryError):
            contains(q, q, nested_schema)

    def test_outer_gating_condition_rejected(self):
        q = (
            "select [a: x.a, k: select [b: y.b] from y in s where x.a = 1]"
            " from x in r"
        )
        with pytest.raises(UnsupportedQueryError):
            contains(q, q, {"r": ("a",), "s": ("b",)})

    def test_interpreter_still_handles_rejected_queries(self):
        """The fragment restriction is decision-only: evaluation works."""
        q = parse_coql(
            "select [a: x.a, k: select [b: y.b] from y in s where x.a = 1]"
            " from x in r"
        )
        db = Database.from_dict(
            {"r": [{"a": 1}, {"a": 2}], "s": [{"b": 9}]}
        )
        answer = evaluate_coql(q, db)
        assert Record(a=1, k=CSet([Record(b=9)])) in answer
        assert Record(a=2, k=CSet()) in answer


class TestHardnessEndToEnd:
    def test_reduction_through_coql(self):
        """A coloring instance phrased as flat COQL containment."""
        from repro.complexity import coloring_to_containment

        edges = ((0, 1), (1, 2), (0, 2))
        sub, sup = coloring_to_containment(edges)
        assert cq_contains(sup, sub)
