"""Tests for the static analyzer (:mod:`repro.analysis`).

Every rule COQL001 … COQL007 gets at least one positive (fires) and one
negative (stays silent) case, plus the two cross-validations the
analyzer's semantics promise:

* COQL002 reports an *error* exactly for queries that are the constant
  empty set — i.e. exactly when ``contains(sup, q)`` holds for an
  arbitrary superquery;
* COQL004 is silent exactly when
  :meth:`ContainmentEngine.empty_set_free` holds.
"""

import pickle

import pytest

from repro.analysis import (
    ERROR,
    INFO,
    WARNING,
    AnalysisConfig,
    Diagnostic,
    all_rules,
    analyze,
    analyze_truncation,
    get_rule,
    max_severity,
    select_rules,
)
from repro.analysis.registry import Rule, register
from repro.coql.ast import Proj, RecordExpr, RelRef, Select, VarRef
from repro.coql.views import ViewCatalog
from repro.engine import ContainmentEngine
from repro.errors import ReproError, TypeCheckError

SCHEMA = {"r": ("a", "b"), "s": ("k", "b")}

CLEAN = "select [v: x.a] from x in r"
UNSAT = "select [v: x.a] from x in r where x.a = 1 and x.a = 2"
UNSAT_CHAIN = (
    "select [v: x.a] from x in r "
    "where x.a = 1 and x.b = x.a and x.b = 2"
)
UNUSED_GEN = "select [v: x.a] from x in r, y in r"
NESTED_HAZARD = (
    "select [a: x.a, kids: (select [w: y.b] from y in s where y.k = x.a)]"
    " from x in r"
)
NESTED_SAFE = (
    "select [a: x.a, kids: (select [w: y.b] from y in r where y.a = x.a)]"
    " from x in r"
)


def codes(diagnostics):
    return [d.code for d in diagnostics]


# -- COQL001 -----------------------------------------------------------


class TestUnboundOrUnused:
    def test_unbound_variable_fires(self):
        query = Select(
            RecordExpr({"v": Proj(VarRef("z"), "a")}), [("x", RelRef("r"))]
        )
        found = [d for d in analyze(query, SCHEMA) if d.code == "COQL001"]
        unbound = [d for d in found if d.severity == ERROR]
        assert len(unbound) == 1
        assert "z" in unbound[0].message
        assert unbound[0].path.startswith("$.head")

    def test_unused_generator_fires_as_warning(self):
        found = [d for d in analyze(UNUSED_GEN, SCHEMA) if d.code == "COQL001"]
        assert len(found) == 1
        assert found[0].severity == WARNING
        assert "'y'" in found[0].message
        assert found[0].line == 1 and found[0].col is not None

    def test_silent_on_clean_query(self):
        assert "COQL001" not in codes(analyze(CLEAN, SCHEMA))

    def test_generator_used_only_in_condition_counts(self):
        query = "select [v: x.a] from x in r, y in r where y.a = x.a"
        assert "COQL001" not in codes(analyze(query, SCHEMA))


# -- COQL002 -----------------------------------------------------------


class TestUnsatisfiable:
    def test_contradiction_is_error(self):
        found = [d for d in analyze(UNSAT, SCHEMA) if d.code == "COQL002"]
        assert max_severity(found) == ERROR

    def test_transitive_contradiction_is_error(self):
        found = [d for d in analyze(UNSAT_CHAIN, SCHEMA)
                 if d.code == "COQL002"]
        assert max_severity(found) == ERROR

    def test_nested_contradiction_is_warning_only(self):
        query = (
            "select [a: x.a, kids: (select [w: y.b] from y in s"
            " where y.k = 1 and y.k = 2)] from x in r"
        )
        found = [d for d in analyze(query, SCHEMA) if d.code == "COQL002"]
        assert found
        assert max_severity(found) == WARNING

    def test_silent_on_satisfiable_conditions(self):
        query = "select [v: x.a] from x in r where x.a = 1 and x.b = 2"
        assert "COQL002" not in codes(analyze(query, SCHEMA))

    def test_error_iff_contained_in_arbitrary_superquery(self):
        # The error-severity finding must fire exactly when the query is
        # the constant empty set — equivalently, when it is contained in
        # a superquery it shares nothing with (here: over relation s).
        engine = ContainmentEngine()
        arbitrary_sup = "select [v: y.k] from y in s"
        for query in (CLEAN, UNSAT, UNSAT_CHAIN, UNUSED_GEN):
            reported = any(
                d.code == "COQL002" and d.severity == ERROR
                for d in analyze(query, SCHEMA, engine=engine)
            )
            vacuous = engine.contains(arbitrary_sup, query, SCHEMA)
            assert reported == vacuous, query


# -- COQL003 -----------------------------------------------------------


class TestCartesian:
    def test_unjoined_generators_fire(self):
        found = [d for d in analyze(UNUSED_GEN, SCHEMA) if d.code == "COQL003"]
        assert len(found) == 1
        assert found[0].severity == WARNING
        assert "{x}" in found[0].message and "{y}" in found[0].message

    def test_silent_when_joined(self):
        query = "select [v: x.a] from x in r, y in s where x.a = y.k"
        assert "COQL003" not in codes(analyze(query, SCHEMA))

    def test_join_through_shared_constant_counts(self):
        query = "select [v: x.a] from x in r, y in s where x.a = 1 and y.k = 1"
        assert "COQL003" not in codes(analyze(query, SCHEMA))

    def test_three_way_chain_is_connected(self):
        query = (
            "select [v: x.a] from x in r, y in r, z in r"
            " where x.a = y.a and y.b = z.b"
        )
        assert "COQL003" not in codes(analyze(query, SCHEMA))

    def test_single_generator_never_fires(self):
        assert "COQL003" not in codes(analyze(CLEAN, SCHEMA))


# -- COQL004 -----------------------------------------------------------


class TestEmptySetHazard:
    def test_possibly_empty_nested_component_fires(self):
        found = [d for d in analyze(NESTED_HAZARD, SCHEMA)
                 if d.code == "COQL004"]
        assert len(found) == 1
        assert found[0].severity == WARNING
        assert found[0].path == "$/kids"

    def test_always_empty_query_fires(self):
        found = [d for d in analyze(UNSAT, SCHEMA) if d.code == "COQL004"]
        assert found and "always the empty set" in found[0].message

    def test_silent_on_provably_nonempty_nesting(self):
        assert "COQL004" not in codes(analyze(NESTED_SAFE, SCHEMA))

    def test_silent_iff_empty_set_free(self):
        engine = ContainmentEngine()
        for query in (CLEAN, UNSAT, NESTED_HAZARD, NESTED_SAFE, UNUSED_GEN):
            silent = "COQL004" not in codes(
                analyze(query, SCHEMA, engine=engine, select=["COQL004"])
            )
            assert silent == engine.empty_set_free(query, SCHEMA), query


# -- COQL005 -----------------------------------------------------------


class TestRedundant:
    def test_redundant_generator_fires(self):
        found = [d for d in analyze(UNUSED_GEN, SCHEMA) if d.code == "COQL005"]
        assert len(found) == 1
        assert found[0].severity == INFO
        assert "1 fewer generator" in found[0].message

    def test_silent_on_minimal_query(self):
        assert "COQL005" not in codes(analyze(CLEAN, SCHEMA))

    def test_skipped_when_expensive_rules_disabled(self):
        config = AnalysisConfig(expensive=False)
        assert "COQL005" not in codes(
            analyze(UNUSED_GEN, SCHEMA, config=config)
        )
        # ... but the cheap rules still run.
        assert "COQL003" in codes(analyze(UNUSED_GEN, SCHEMA, config=config))


# -- COQL006 -----------------------------------------------------------


class TestTruncationRule:
    def grouping(self):
        return ContainmentEngine().prepare(NESTED_HAZARD, SCHEMA).query

    def test_malformed_patterns_fire(self):
        query = self.grouping()
        found = analyze_truncation(query, [("kids",)])
        assert codes(found) == ["COQL006", "COQL006"]
        assert all(d.severity == ERROR for d in found)
        messages = " / ".join(d.message for d in found)
        assert "root" in messages and "prefix-closed" in messages

    def test_unknown_path_fires(self):
        found = analyze_truncation(self.grouping(), [(), ("nope",)])
        assert codes(found) == ["COQL006"]
        assert "absent from query" in found[0].message
        assert found[0].path == "$/nope"

    def test_silent_on_valid_pattern(self):
        query = self.grouping()
        assert analyze_truncation(query, [()]) == []
        assert analyze_truncation(query, [(), ("kids",)]) == []

    def test_agrees_with_truncate(self):
        query = self.grouping()
        for pattern in ([()], [(), ("kids",)], [("kids",)], [(), ("x",)]):
            problems = analyze_truncation(query, pattern)
            if problems:
                with pytest.raises(ReproError):
                    query.truncate(pattern)
            else:
                query.truncate(pattern)


# -- COQL007 -----------------------------------------------------------


class TestComplexityBudget:
    def test_budget_exceeded_fires(self):
        config = AnalysisConfig(complexity_budget=0, expensive=False)
        found = [d for d in analyze(CLEAN, SCHEMA, config=config)
                 if d.code == "COQL007"]
        assert len(found) == 1
        assert found[0].severity == WARNING
        assert "NP-complete" in found[0].message

    def test_silent_under_default_budget(self):
        assert "COQL007" not in codes(analyze(CLEAN, SCHEMA))

    def test_truncation_patterns_enter_the_estimate(self):
        # Both nested queries have the same body sizes (5 candidate
        # assignments), but NESTED_HAZARD's possibly-empty component
        # doubles its pattern count: estimate 10 vs 5.  A budget between
        # the two separates them.
        config = AnalysisConfig(complexity_budget=6, expensive=False)
        assert "COQL007" in codes(
            analyze(NESTED_HAZARD, SCHEMA, config=config)
        )
        assert "COQL007" not in codes(
            analyze(NESTED_SAFE, SCHEMA, config=config)
        )


# -- COQL000 (front-end failures) --------------------------------------


class TestFrontEnd:
    def test_parse_error_reported_not_raised(self):
        found = analyze("select from x in", SCHEMA)
        assert codes(found) == ["COQL000"]
        assert found[0].severity == ERROR
        assert "ParseError" in found[0].message
        assert found[0].line is not None

    def test_type_error_reported_as_error(self):
        found = [d for d in analyze("select [v: q.a] from x in r", SCHEMA)
                 if d.code == "COQL000"]
        assert found and found[0].severity == ERROR
        assert "unknown relation" in found[0].message

    def test_unsupported_fragment_is_warning(self):
        # A nested condition equating two outer terms is outside the
        # encodable fragment: legal COQL, undecidable here.
        query = (
            "select [a: x.a, kids: (select [w: y.b] from y in s"
            " where x.a = x.b)] from x in r"
        )
        found = [d for d in analyze(query, SCHEMA) if d.code == "COQL000"]
        assert found and found[0].severity == WARNING

    def test_silent_on_good_query(self):
        assert "COQL000" not in codes(analyze(CLEAN, SCHEMA))


# -- registry and API plumbing -----------------------------------------


class TestRegistry:
    def test_all_rules_are_registered_in_order(self):
        assert codes(all_rules())[:8] == [
            "COQL000", "COQL001", "COQL002", "COQL003",
            "COQL004", "COQL005", "COQL006", "COQL007",
        ]

    def test_every_rule_documents_itself(self):
        for rule in all_rules():
            assert rule.summary and rule.paper and rule.name

    def test_unknown_code_raises(self):
        with pytest.raises(ReproError, match="unknown analysis rule"):
            get_rule("COQL999")
        with pytest.raises(ReproError, match="unknown analysis rule"):
            analyze(CLEAN, SCHEMA, select=["COQL999"])

    def test_duplicate_registration_raises(self):
        with pytest.raises(ReproError, match="duplicate"):
            register(Rule("COQL001", "clone", ERROR, "x", paper="y"))

    def test_select_and_ignore(self):
        chosen = select_rules(select=["COQL002", "COQL003"])
        assert codes(chosen) == ["COQL002", "COQL003"]
        remaining = select_rules(ignore=["COQL002"])
        assert "COQL002" not in codes(remaining)
        found = analyze(UNSAT, SCHEMA, select=["COQL002"])
        assert set(codes(found)) == {"COQL002"}
        found = analyze(UNSAT, SCHEMA, ignore=["COQL002", "COQL004"])
        assert "COQL002" not in codes(found)


class TestDiagnosticObject:
    def diagnostic(self):
        return Diagnostic("COQL002", ERROR, "boom", rule="unsat",
                          path="$", span=(3, 7), paper="Section 4")

    def test_immutable(self):
        diagnostic = self.diagnostic()
        with pytest.raises(AttributeError):
            diagnostic.severity = WARNING

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("COQL001", "fatal", "nope")

    def test_as_dict_is_schema_stable(self):
        assert set(self.diagnostic().as_dict()) == {
            "code", "severity", "message", "rule", "path", "line", "col",
            "paper",
        }

    def test_format_and_span(self):
        diagnostic = self.diagnostic()
        assert diagnostic.span == (3, 7)
        assert diagnostic.format() == "3:7 COQL002 error: boom"

    def test_with_target_round_trip(self):
        labelled = self.diagnostic().with_target("q1")
        assert labelled.target == "q1"
        assert labelled.as_dict() == self.diagnostic().as_dict()

    def test_pickles(self):
        diagnostic = self.diagnostic()
        clone = pickle.loads(pickle.dumps(diagnostic))
        assert clone == diagnostic and hash(clone) == hash(diagnostic)

    def test_max_severity(self):
        assert max_severity([]) is None
        assert max_severity([Diagnostic("C", WARNING, "m"),
                             Diagnostic("C", ERROR, "m")]) == ERROR


# -- engine wiring -----------------------------------------------------


class TestEnginePreCheck:
    def test_unsat_sub_short_circuits(self):
        engine = ContainmentEngine(analyze=True)
        assert engine.contains(CLEAN, UNSAT, SCHEMA) is True
        stats = engine.stats()
        assert stats.counter("analysis_runs") == 1
        assert stats.counter("analysis_short_circuits") == 1
        assert {d.target for d in stats.diagnostics} >= {"sub"}
        assert any(d.code == "COQL002" and d.severity == ERROR
                   for d in stats.diagnostics)

    def test_verdicts_match_plain_engine(self):
        plain = ContainmentEngine()
        checked = ContainmentEngine(analyze=True)
        pairs = [(CLEAN, UNUSED_GEN), (UNUSED_GEN, CLEAN), (CLEAN, UNSAT),
                 (NESTED_SAFE, NESTED_SAFE)]
        for sup, sub in pairs:
            assert plain.contains(sup, sub, SCHEMA) == checked.contains(
                sup, sub, SCHEMA
            ), (sup, sub)

    def test_short_circuit_still_validates_superquery(self):
        engine = ContainmentEngine(analyze=True)
        with pytest.raises(TypeCheckError):
            engine.contains("select [v: q.a] from x in r", UNSAT, SCHEMA)

    def test_off_by_default(self):
        engine = ContainmentEngine()
        engine.contains(CLEAN, UNSAT, SCHEMA)
        assert engine.stats().counter("analysis_runs") == 0
        assert engine.stats().diagnostics == []

    def test_diagnostics_survive_stats_merge_and_reset(self):
        from repro.engine.stats import EngineStats

        left, right = EngineStats(), EngineStats()
        right.add_diagnostics([Diagnostic("COQL003", WARNING, "m")])
        left.merge(right)
        assert len(left.diagnostics) == 1
        assert left.as_dict()["analysis_diagnostics"] == 1
        left.reset()
        assert left.diagnostics == []
        assert "analysis_diagnostics" not in left.as_dict()


class TestViewCatalogLint:
    def test_findings_per_view(self):
        catalog = ViewCatalog(
            SCHEMA,
            {"clean": CLEAN, "product": UNUSED_GEN, "broken": UNSAT},
        )
        report = catalog.lint()
        assert set(report) == {"clean", "product", "broken"}
        assert report["clean"] == []
        assert "COQL003" in codes(report["product"])
        assert "COQL002" in codes(report["broken"])
        for name, diagnostics in report.items():
            assert all(d.target == name for d in diagnostics)

    def test_filters_thread_through(self):
        catalog = ViewCatalog(SCHEMA, {"product": UNUSED_GEN})
        report = catalog.lint(select=["COQL003"])
        assert codes(report["product"]) == ["COQL003"]


# -- source spans ------------------------------------------------------


class TestSpans:
    def test_parser_attaches_positions(self):
        from repro.coql.parser import parse_coql

        query = parse_coql("select [v: x.a]\nfrom x in r\nwhere x.b = 3")
        assert query.span == (1, 1)
        left, __ = query.conditions[0]
        # A projection's span is its dot token.
        assert left.span == (3, 8)

    def test_diagnostics_carry_multiline_positions(self):
        text = "select [v: x.a]\nfrom x in r, y in r"
        found = [d for d in analyze(text, SCHEMA) if d.code == "COQL001"]
        assert found[0].span == (2, 19)

    def test_programmatic_queries_have_no_span(self):
        query = Select(RecordExpr({"v": Proj(VarRef("x"), "a")}),
                       [("x", RelRef("r"))])
        assert query.span is None
        found = analyze(query, SCHEMA)
        assert all(d.line is None for d in found)
