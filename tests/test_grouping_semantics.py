"""Unit tests for grouping-query trees and their nested-group semantics."""

import pytest

from repro.errors import ReproError, IncomparableQueriesError
from repro.objects import Database, Record, CSet
from repro.grouping import GroupingQuery, evaluate_grouping, node_groups
from repro.grouping.build import node, grouping_query
from repro.grouping.semantics import reachable_keys


def parent_child_query():
    """select [a: x.a, kids: {[b: y.b] | s(y), y.k = x.a}] from r(x)."""
    return grouping_query(
        node(
            "",
            ["r(Xa)"],
            {"a": "Xa"},
            children=[node("kids", ["s(Xa, Yb)"], {"b": "Yb"}, index=["Xa"])],
        )
    )


def db():
    return Database.from_dict(
        {
            "r": [{"c00": 1}, {"c00": 2}, {"c00": 3}],
            "s": [
                {"c00": 1, "c01": 10},
                {"c00": 1, "c01": 11},
                {"c00": 2, "c01": 20},
            ],
        }
    )


class TestValidation:
    def test_root_must_have_empty_index(self):
        inner = node("", ["r(X)"], {"a": "X"}, index=["X"])
        with pytest.raises(ReproError):
            GroupingQuery(inner)

    def test_index_must_be_in_parent_scope(self):
        with pytest.raises(ReproError):
            grouping_query(
                node(
                    "",
                    ["r(X)"],
                    {"a": "X"},
                    children=[node("c", ["s(Y, Z)"], {"b": "Z"}, index=["Y"])],
                )
            )

    def test_values_must_be_bound(self):
        with pytest.raises(ReproError):
            grouping_query(node("", ["r(X)"], {"a": "Z"}))

    def test_duplicate_child_labels_rejected(self):
        with pytest.raises(ReproError):
            node(
                "",
                ["r(X)"],
                {},
                children=[
                    node("c", ["s(X, Y)"], {"b": "Y"}, index=["X"]),
                    node("c", ["s(X, Z)"], {"b": "Z"}, index=["X"]),
                ],
            )

    def test_shape_comparison(self):
        q1 = parent_child_query()
        q2 = grouping_query(node("", ["r(X)"], {"a": "X"}))
        with pytest.raises(IncomparableQueriesError):
            q1.require_same_shape(q2)

    def test_depth_and_nodes(self):
        q = parent_child_query()
        assert q.depth() == 2
        assert len(q.nodes()) == 2

    def test_truncate_drops_subtree(self):
        q = parent_child_query()
        flat = q.truncate({()})
        assert flat.depth() == 1
        assert flat.root.value_names() == ("a",)


class TestSemantics:
    def test_groups(self):
        groups = node_groups(parent_child_query(), db())
        root = groups[()]
        assert set(root) == {()}
        rows = root[()]
        assert ((1,), ((1,),)) in rows
        kids = groups[("kids",)]
        assert kids[(1,)] == frozenset({((10,), ()), ((11,), ())})
        assert kids[(2,)] == frozenset({((20,), ())})
        assert (3,) not in kids

    def test_evaluate_nested_value(self):
        answer = evaluate_grouping(parent_child_query(), db())
        expected = CSet(
            [
                Record(a=1, kids=CSet([Record(b=10), Record(b=11)])),
                Record(a=2, kids=CSet([Record(b=20)])),
                Record(a=3, kids=CSet()),
            ]
        )
        assert answer == expected

    def test_empty_database(self):
        empty = Database.from_dict({})
        assert evaluate_grouping(parent_child_query(), empty) == CSet()

    def test_reachable_keys(self):
        q = parent_child_query()
        groups = node_groups(q, db())
        reach = reachable_keys(q, groups)
        assert reach[("kids",)] == {(1,), (2,), (3,)}

    def test_flat_query_semantics_match_cq(self):
        from repro.cq import evaluate

        q = grouping_query(node("", ["r(X)"], {"a": "X"}))
        flat = q.to_flat_cq()
        assert {row[0] for row in evaluate(flat, db())} == {1, 2, 3}
        answer = evaluate_grouping(q, db())
        assert answer == CSet([Record(a=1), Record(a=2), Record(a=3)])

    def test_three_level_query(self):
        q = grouping_query(
            node(
                "",
                ["r(X)"],
                {"a": "X"},
                children=[
                    node(
                        "mid",
                        ["s(X, Y)"],
                        {"b": "Y"},
                        index=["X"],
                        children=[
                            node("leaf", ["t(Y, Z)"], {"c": "Z"}, index=["Y"])
                        ],
                    )
                ],
            )
        )
        database = Database.from_dict(
            {
                "r": [{"c00": 1}],
                "s": [{"c00": 1, "c01": 5}],
                "t": [{"c00": 5, "c01": 7}, {"c00": 5, "c01": 8}],
            }
        )
        answer = evaluate_grouping(q, database)
        expected = CSet(
            [
                Record(
                    a=1,
                    mid=CSet(
                        [Record(b=5, leaf=CSet([Record(c=7), Record(c=8)]))]
                    ),
                )
            ]
        )
        assert answer == expected

    def test_group_shared_between_elements(self):
        # Two root rows with the same index share the same inner set.
        q = grouping_query(
            node(
                "",
                ["r(X, K)"],
                {"a": "X"},
                children=[node("c", ["s(K, Y)"], {"b": "Y"}, index=["K"])],
            )
        )
        database = Database.from_dict(
            {
                "r": [{"c00": 1, "c01": 9}, {"c00": 2, "c01": 9}],
                "s": [{"c00": 9, "c01": 4}],
            }
        )
        answer = evaluate_grouping(q, database)
        inner = CSet([Record(b=4)])
        assert answer == CSet([Record(a=1, c=inner), Record(a=2, c=inner)])
