"""Unit tests for the conjunctive-query substrate (parser, evaluation,
homomorphisms, Chandra–Merlin containment, minimization)."""

import pytest

from repro.errors import ParseError, ReproError, IncomparableQueriesError
from repro.objects import Database
from repro.cq import (
    Var,
    Const,
    parse_query,
    parse_atom,
    evaluate,
    contains,
    equivalent,
    minimize,
    containment_mapping,
    find_homomorphism,
    count_homomorphisms,
)
from repro.cq.query import freeze, atoms_to_database
from repro.cq.homomorphism import ground_atoms_of_query


class TestParser:
    def test_simple_rule(self):
        q = parse_query("q(X, Y) :- r(X, Z), s(Z, Y)")
        assert q.name == "q"
        assert q.head == (Var("X"), Var("Y"))
        assert len(q.body) == 2

    def test_constants(self):
        q = parse_query('q(X) :- r(X, 3, "blue", tag)')
        atom = q.body[0]
        assert atom.args[1] == Const(3)
        assert atom.args[2] == Const("blue")
        assert atom.args[3] == Const("tag")

    def test_float_and_negative(self):
        atom = parse_atom("r(-2, 2.5)")
        assert atom.args == (Const(-2), Const(2.5))

    def test_boolean_query(self):
        q = parse_query("q() :- r(X)")
        assert q.head == ()

    def test_underscore_variable(self):
        q = parse_query("q(X) :- r(X, _y)")
        assert Var("_y") in q.body[0].variables()

    def test_bad_syntax_raises(self):
        with pytest.raises(ParseError):
            parse_query("q(X :- r(X)")
        with pytest.raises(ParseError):
            parse_query("q(X) :- r(X),")
        with pytest.raises(ParseError):
            parse_atom("r(X) extra")

    def test_unsafe_query_rejected(self):
        with pytest.raises(ReproError):
            parse_query("q(X) :- r(Y)")


class TestQuery:
    def test_variables_sorted(self):
        q = parse_query("q(B) :- r(B, A), s(C)")
        assert q.variables() == (Var("A"), Var("B"), Var("C"))

    def test_existential_vars(self):
        q = parse_query("q(X) :- r(X, Y)")
        assert q.existential_vars() == (Var("Y"),)

    def test_rename_apart(self):
        q = parse_query("q(X) :- r(X, Y)").rename_apart("_1")
        assert q.head == (Var("X_1"),)

    def test_freeze_builds_canonical_db(self):
        q = parse_query("q(X) :- r(X, Y), s(Y)")
        db, head = freeze(q)
        assert len(db["r"]) == 1 and len(db["s"]) == 1
        assert evaluate(q, db) == frozenset({head})

    def test_atoms_to_database(self):
        db = atoms_to_database([parse_atom("r(1, 2)"), parse_atom("r(1, 3)")])
        assert len(db["r"]) == 2


class TestEvaluate:
    def db(self):
        return Database.from_dict(
            {
                "r": [{"c00": 1, "c01": 2}, {"c00": 2, "c01": 3}, {"c00": 3, "c01": 1}],
                "s": [{"c00": 2}],
            }
        )

    def test_join(self):
        q = parse_query("q(X, Y) :- r(X, Z), r(Z, Y)")
        assert evaluate(q, self.db()) == frozenset({(1, 3), (2, 1), (3, 2)})

    def test_selection_constant(self):
        q = parse_query("q(Y) :- r(1, Y)")
        assert evaluate(q, self.db()) == frozenset({(2,)})

    def test_semijoin(self):
        q = parse_query("q(X) :- r(X, Y), s(Y)")
        assert evaluate(q, self.db()) == frozenset({(1,)})

    def test_missing_relation_is_empty(self):
        q = parse_query("q(X) :- missing(X)")
        assert evaluate(q, self.db()) == frozenset()

    def test_repeated_variable(self):
        db = Database.from_dict({"r": [{"c00": 1, "c01": 1}, {"c00": 1, "c01": 2}]})
        q = parse_query("q(X) :- r(X, X)")
        assert evaluate(q, db) == frozenset({(1,)})

    def test_constant_head(self):
        q = parse_query("q(7) :- s(Y)")
        assert evaluate(q, self.db()) == frozenset({(7,)})

    def test_cycle_query(self):
        q = parse_query("q() :- r(X, Y), r(Y, Z), r(Z, X)")
        assert evaluate(q, self.db()) == frozenset({()})


class TestHomomorphism:
    def test_finds_simple_mapping(self):
        source = [parse_atom("r(X, Y)")]
        target = [parse_atom("r(1, 2)")]
        hom = find_homomorphism(source, target)
        assert hom == {Var("X"): 1, Var("Y"): 2}

    def test_respects_fixed(self):
        source = [parse_atom("r(X, Y)")]
        target = [parse_atom("r(1, 2)"), parse_atom("r(3, 4)")]
        hom = find_homomorphism(source, target, fixed={Var("X"): 3})
        assert hom[Var("Y")] == 4

    def test_respects_allowed(self):
        source = [parse_atom("r(X, Y)")]
        target = [parse_atom("r(1, 2)"), parse_atom("r(3, 4)")]
        hom = find_homomorphism(source, target, allowed={Var("Y"): {2}})
        assert hom[Var("X")] == 1

    def test_counts(self):
        source = [parse_atom("e(X, Y)")]
        target = [parse_atom("e(1, 2)"), parse_atom("e(2, 1)")]
        assert count_homomorphisms(source, target) == 2

    def test_no_mapping(self):
        assert find_homomorphism([parse_atom("r(X, X)")], [parse_atom("r(1, 2)")]) is None

    def test_ground_atoms_of_query(self):
        q = parse_query("q(X) :- r(X, Y)")
        atoms = ground_atoms_of_query(q)
        assert all(not a.variables() for a in atoms)

    def test_rejects_nonground_target(self):
        with pytest.raises(ReproError):
            find_homomorphism([parse_atom("r(X)")], [parse_atom("r(Y)")])


class TestContainment:
    def test_adding_atoms_shrinks(self):
        big = parse_query("q(X) :- r(X, Y)")
        small = parse_query("q(X) :- r(X, Y), s(Y)")
        assert contains(big, small)
        assert not contains(small, big)

    def test_equivalent_reorderings(self):
        q1 = parse_query("q(X) :- r(X, Y), s(Y)")
        q2 = parse_query("q(X) :- s(B), r(X, B)")
        assert equivalent(q1, q2)

    def test_redundant_atom_equivalence(self):
        q1 = parse_query("q(X) :- r(X, Y)")
        q2 = parse_query("q(X) :- r(X, Y), r(X, Z)")
        assert equivalent(q1, q2)

    def test_constants_matter(self):
        q1 = parse_query("q(X) :- r(X, 1)")
        q2 = parse_query("q(X) :- r(X, Y)")
        assert contains(q2, q1)
        assert not contains(q1, q2)

    def test_head_constants(self):
        q1 = parse_query("q(1) :- r(1)")
        q2 = parse_query("q(X) :- r(X)")
        assert contains(q2, q1)
        assert not contains(q1, q2)

    def test_arity_mismatch_raises(self):
        with pytest.raises(IncomparableQueriesError):
            contains(parse_query("q(X) :- r(X)"), parse_query("q(X, Y) :- r(X), r(Y)"))

    def test_path_queries(self):
        # Path of length 3 is contained in path of length 2.
        p2 = parse_query("q(X, Y) :- e(X, Z), e(Z, Y)")
        p3 = parse_query("q(X, Y) :- e(X, A), e(A, B), e(B, Y)")
        assert not contains(p2, p3)
        assert not contains(p3, p2)

    def test_cycle_in_triangle(self):
        # A 6-cycle maps homomorphically onto a triangle.
        triangle = parse_query("q() :- e(X, Y), e(Y, Z), e(Z, X)")
        hexagon = parse_query(
            "q() :- e(A, B), e(B, C), e(C, D), e(D, E), e(E, F), e(F, A)"
        )
        assert contains(hexagon, triangle)
        assert not contains(triangle, hexagon)

    def test_containment_mapping_returned(self):
        big = parse_query("q(X) :- r(X, Y)")
        small = parse_query("q(X) :- r(X, Y), s(Y)")
        mapping = containment_mapping(small, big)
        assert mapping is not None and Var("X") in mapping

    def test_containment_soundness_on_db(self):
        # If Q1 ⊑ Q2 then answers are included on a sample database.
        big = parse_query("q(X) :- r(X, Y)")
        small = parse_query("q(X) :- r(X, Y), s(Y)")
        db = Database.from_dict(
            {"r": [{"c00": 1, "c01": 2}, {"c00": 5, "c01": 6}], "s": [{"c00": 2}]}
        )
        assert evaluate(small, db) <= evaluate(big, db)


class TestMinimize:
    def test_removes_redundant_atom(self):
        q = parse_query("q(X) :- r(X, Y), r(X, Z)")
        assert len(minimize(q).body) == 1

    def test_keeps_core(self):
        q = parse_query("q(X) :- r(X, Y), s(Y)")
        assert len(minimize(q).body) == 2

    def test_minimized_is_equivalent(self):
        q = parse_query("q(X) :- e(X, Y), e(X, Z), e(Z, W)")
        m = minimize(q)
        assert equivalent(q, m)

    def test_triangle_with_pendant(self):
        q = parse_query("q() :- e(X, Y), e(Y, Z), e(Z, X), e(X, W)")
        m = minimize(q)
        assert len(m.body) == 3

    def test_head_vars_protected(self):
        q = parse_query("q(X, Y) :- e(X, Y), e(X, Z)")
        m = minimize(q)
        assert len(m.body) == 1
        assert m.head == (Var("X"), Var("Y"))
