"""Property-based invariants of the artifact-store tiers.

Randomized interleavings of ``lookup`` / ``store`` / ``clear`` /
``reset_counters`` / ``flush`` / ``set_persisted`` are replayed against
executable reference models built from the *documented* semantics
(:mod:`repro.pipeline.store`, :mod:`repro.pipeline.persist`):

* :class:`ArtifactStore` — per-kind LRU bounds (``0`` disables, ``None``
  unbounded), hit/miss/eviction accounting, ``clear`` keeping tallies
  and ``reset_counters`` keeping entries;
* :class:`TieredStore` — read-through with promotion, the write-back
  dirty buffer (including finding an artifact evicted from the memory
  LRU before its flush), per-kind deny-set semantics, and the
  promotions/flushes accounting.

Any divergence between the real store and the model under any
interleaving is a bug in one of them — which is the point.
"""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.pipeline.persist import PersistentStore, TieredStore
from repro.pipeline.store import MISSING, ArtifactStore

LIMITS = {"small": 3, "off": 0, "wide": None}
DEFAULT_MAXSIZE = 2

KINDS = st.sampled_from(["small", "off", "wide", "auto"])
KEYS = st.sampled_from(["k%d" % i for i in range(6)])
VALUES = st.sampled_from([0, 1, 2, None, False, "v"])


class ModelStore:
    """The documented ArtifactStore semantics, executable."""

    def __init__(self, limits, default_maxsize):
        self._default = default_maxsize
        self._limits = dict(limits)
        self._segments = {}
        for kind in limits:
            self._segment(kind)

    def _segment(self, kind):
        if kind not in self._segments:
            self._segments[kind] = {
                "maxsize": self._limits.get(kind, self._default),
                "data": OrderedDict(),
                "hits": 0, "misses": 0, "evictions": 0,
            }
        return self._segments[kind]

    def lookup(self, kind, key):
        seg = self._segment(kind)
        if seg["maxsize"] == 0:
            seg["misses"] += 1
            return MISSING
        if key in seg["data"]:
            seg["hits"] += 1
            seg["data"].move_to_end(key)
            return seg["data"][key]
        seg["misses"] += 1
        return MISSING

    def store(self, kind, key, value):
        seg = self._segment(kind)
        if seg["maxsize"] == 0:
            return
        seg["data"][key] = value
        seg["data"].move_to_end(key)
        if seg["maxsize"] is not None and len(seg["data"]) > seg["maxsize"]:
            seg["data"].popitem(last=False)
            seg["evictions"] += 1

    def clear(self, kind=None):
        targets = (
            [kind] if kind is not None else list(self._segments)
        )
        for name in targets:
            if name in self._segments:
                self._segments[name]["data"].clear()

    def reset_counters(self):
        for seg in self._segments.values():
            seg["hits"] = seg["misses"] = seg["evictions"] = 0

    def sizes(self):
        return {
            kind: len(seg["data"])
            for kind, seg in sorted(self._segments.items())
        }

    def counters(self):
        return {
            kind: {
                "hits": seg["hits"],
                "misses": seg["misses"],
                "evictions": seg["evictions"],
            }
            for kind, seg in sorted(self._segments.items())
        }


ARTIFACT_OPS = st.one_of(
    st.tuples(st.just("store"), KINDS, KEYS, VALUES),
    st.tuples(st.just("lookup"), KINDS, KEYS),
    st.tuples(st.just("clear"), st.one_of(st.none(), KINDS)),
    st.tuples(st.just("reset")),
)


@settings(max_examples=80, deadline=None)
@given(st.lists(ARTIFACT_OPS, max_size=60))
def test_artifact_store_matches_model(ops):
    real = ArtifactStore(limits=dict(LIMITS), default_maxsize=DEFAULT_MAXSIZE)
    model = ModelStore(LIMITS, DEFAULT_MAXSIZE)
    lookups = {}
    for op in ops:
        if op[0] == "store":
            __, kind, key, value = op
            real.store(kind, key, value)
            model.store(kind, key, value)
        elif op[0] == "lookup":
            __, kind, key = op
            assert real.lookup(kind, key) is model.lookup(kind, key)
            lookups[kind] = lookups.get(kind, 0) + 1
        elif op[0] == "clear":
            real.clear(op[1])
            model.clear(op[1])
        else:
            real.reset_counters()
            model.reset_counters()
            lookups.clear()
        assert real.sizes() == model.sizes()
        assert real.counters() == model.counters()
        # Bounds: never above maxsize; the disabled kind never stores.
        for kind, size in real.sizes().items():
            limit = real.limit(kind)
            if limit is not None:
                assert size <= limit
        # Accounting closes: hits + misses == lookups since last reset.
        for kind, tally in real.counters().items():
            assert tally["hits"] + tally["misses"] == lookups.get(kind, 0)
    assert len(real) == sum(model.sizes().values())


class ModelTiered:
    """The documented TieredStore semantics over a ModelStore memory
    tier and plain-dict dirty/disk tiers."""

    def __init__(self, limits, default_maxsize, batch):
        self.memory = ModelStore(limits, default_maxsize)
        self.dirty = {}
        self.disk = {}
        self.deny = set()
        self.batch = batch
        self.promotions = 0
        self.flushes = 0

    def persisted(self, kind):
        return kind not in self.deny

    def set_persisted(self, kind, enabled):
        if enabled:
            self.deny.discard(kind)
        else:
            self.deny.add(kind)

    def lookup(self, kind, key):
        value = self.memory.lookup(kind, key)
        if value is not MISSING:
            return value
        if not self.persisted(kind):
            return MISSING
        if (kind, key) in self.dirty:
            value = self.dirty[(kind, key)]
            self.memory.store(kind, key, value)
            return value
        if (kind, key) in self.disk:
            value = self.disk[(kind, key)]
            self.memory.store(kind, key, value)
            self.promotions += 1
            return value
        return MISSING

    def store(self, kind, key, value):
        self.memory.store(kind, key, value)
        if not self.persisted(kind):
            return
        self.dirty[(kind, key)] = value
        if len(self.dirty) >= self.batch:
            self.flush()

    def flush(self):
        if not self.dirty:
            return
        self.disk.update(self.dirty)
        self.dirty.clear()
        self.flushes += 1

    def clear(self, kind=None):
        self.memory.clear(kind)
        for tier in (self.dirty, self.disk):
            for entry_kind, key in list(tier):
                if kind is None or entry_kind == kind:
                    del tier[(entry_kind, key)]

    def disk_sizes(self):
        sizes = {}
        for kind, __ in self.disk:
            sizes[kind] = sizes.get(kind, 0) + 1
        return dict(sorted(sizes.items()))


TIERED_OPS = st.one_of(
    st.tuples(st.just("store"), KINDS, KEYS, VALUES),
    st.tuples(st.just("lookup"), KINDS, KEYS),
    st.tuples(st.just("flush")),
    st.tuples(st.just("persist"), KINDS, st.booleans()),
    st.tuples(st.just("clear"), st.one_of(st.none(), KINDS)),
)


@settings(max_examples=60, deadline=None)
@given(st.lists(TIERED_OPS, max_size=50))
def test_tiered_store_matches_model(ops):
    batch = 4
    with PersistentStore(":memory:") as disk:
        real = TieredStore(
            disk=disk, limits=dict(LIMITS),
            default_maxsize=DEFAULT_MAXSIZE, write_back_batch=batch,
        )
        model = ModelTiered(LIMITS, DEFAULT_MAXSIZE, batch)
        for op in ops:
            if op[0] == "store":
                __, kind, key, value = op
                real.store(kind, key, value)
                model.store(kind, key, value)
            elif op[0] == "lookup":
                __, kind, key = op
                got = real.lookup(kind, key)
                want = model.lookup(kind, key)
                assert (got is MISSING) == (want is MISSING)
                if want is not MISSING:
                    assert got == want
            elif op[0] == "flush":
                real.flush()
                model.flush()
            elif op[0] == "persist":
                __, kind, enabled = op
                real.set_persisted(kind, enabled)
                model.set_persisted(kind, enabled)
            else:
                real.clear(op[1])
                model.clear(op[1])
            # Memory tier: exact sizes and accounting agree.
            assert real.sizes() == model.memory.sizes()
            assert real.memory.counters() == model.memory.counters()
            assert real.promotions == model.promotions
            assert real.flushes == model.flushes
        # The persisted footprint agrees once write-backs settle.
        real.flush()
        model.flush()
        assert real.disk.sizes() == model.disk_sizes()
        # A denied kind never reaches disk after the deny.
        real.set_persisted("wide", False)
        model.set_persisted("wide", False)
        before = real.disk.sizes().get("wide", 0)
        real.store("wide", "denied", 9)
        model.store("wide", "denied", 9)
        real.flush()
        model.flush()
        assert real.disk.sizes().get("wide", 0) == before
        assert real.lookup("wide", "denied") == 9  # memory still serves


def test_dirty_buffer_survives_memory_eviction():
    """An unflushed write-back evicted from the tiny memory LRU is
    still found (via the dirty buffer), and re-promoted."""
    with PersistentStore(":memory:") as disk:
        store = TieredStore(disk=disk, limits={"k": 1},
                            write_back_batch=100)
        store.store("k", "first", 1)
        store.store("k", "second", 2)  # evicts "first" from memory
        assert store.memory.lookup("k", "first") is MISSING
        assert store.disk.sizes() == {}  # nothing flushed yet
        assert store.lookup("k", "first") == 1
        assert store.flushes == 0
