"""Property-based tests (hypothesis) for the core invariants.

* the Hoare order is a preorder with the right algebraic laws;
* the index encoding is lossless;
* conjunctive-query evaluation is monotone and containment verdicts
  respect it;
* minimization preserves equivalence;
* simulation is reflexive and transitive;
* the COQL pipeline (normalize + encode) agrees with the interpreter.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.objects import (
    Record,
    CSet,
    Relation,
    Database,
    dominated,
    encode_relation,
    decode_relation,
)
from repro.cq import contains, equivalent, minimize, evaluate
from repro.grouping import is_simulated
from repro.workloads import (
    random_cq,
    random_flat_database,
    random_grouping_query,
    random_coql,
)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

atoms = st.one_of(st.integers(0, 5), st.sampled_from(["x", "y", "z"]))


def _values(max_depth=3):
    return st.recursive(
        atoms,
        lambda inner: st.one_of(
            st.dictionaries(
                st.sampled_from(["a", "b"]), inner, min_size=1, max_size=2
            ).map(Record),
            st.lists(inner, max_size=3).map(CSet),
        ),
        max_leaves=8,
    )


values = _values()

#: Rows of a small nested relation: records over a fixed attribute set.
nested_rows = st.lists(
    st.fixed_dictionaries(
        {
            "k": st.integers(0, 3),
            "s": st.lists(
                st.fixed_dictionaries({"v": st.integers(0, 3)}).map(Record),
                max_size=3,
            ).map(CSet),
        }
    ).map(Record),
    min_size=0,
    max_size=5,
)


# ---------------------------------------------------------------------------
# Hoare order laws
# ---------------------------------------------------------------------------


class TestHoareOrderProperties:
    @given(values)
    @settings(max_examples=80, deadline=None)
    def test_reflexive(self, value):
        assert dominated(value, value)

    @given(st.lists(values, min_size=3, max_size=3))
    @settings(max_examples=80, deadline=None)
    def test_transitive_when_applicable(self, triple):
        a, b, c = triple
        if dominated(a, b) and dominated(b, c):
            assert dominated(a, c)

    @given(st.lists(values, max_size=4), st.lists(values, max_size=4))
    @settings(max_examples=80, deadline=None)
    def test_union_is_upper_bound(self, left, right):
        try:
            ls, rs = CSet(left), CSet(right)
        except Exception:
            return
        union = ls | rs
        assert dominated(ls, union)
        assert dominated(rs, union)

    @given(st.lists(values, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_empty_set_is_bottom(self, elements):
        assert dominated(CSet(), CSet(elements))

    @given(st.lists(values, max_size=3), st.lists(values, max_size=3))
    @settings(max_examples=80, deadline=None)
    def test_subset_implies_domination(self, left, extra):
        ls = CSet(left)
        bigger = ls | CSet(extra)
        assert dominated(ls, bigger)


# ---------------------------------------------------------------------------
# Index encoding
# ---------------------------------------------------------------------------


class TestEncodingProperties:
    @given(nested_rows)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, rows):
        if not rows:
            return
        relation = Relation("t", CSet(rows))
        tables = encode_relation(relation)
        assert all(rel.is_flat() for rel in tables.values())
        decoded = decode_relation("t", tables)
        assert decoded.rows == relation.rows

    @given(nested_rows)
    @settings(max_examples=40, deadline=None)
    def test_value_based_indexing_is_functional(self, rows):
        """Equal inner sets must share an index (so row counts match the
        number of distinct rows after encoding)."""
        if not rows:
            return
        relation = Relation("t", CSet(rows))
        tables = encode_relation(relation)
        index_of = {}
        for row in tables["t"]:
            index_of.setdefault(row["s"], set())
        assert len(index_of) <= len({row["s"] for row in relation.rows})


# ---------------------------------------------------------------------------
# Conjunctive queries
# ---------------------------------------------------------------------------

SCHEMA = {"r": 2, "s": 1}


class TestCQProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_contains_reflexive(self, seed):
        q = random_cq(SCHEMA, atoms=3, variables=3, head_arity=1, seed=seed)
        assert contains(q, q)

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_minimize_preserves_equivalence(self, seed):
        q = random_cq(SCHEMA, atoms=4, variables=3, head_arity=1, seed=seed)
        assert equivalent(q, minimize(q))

    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_containment_implies_answer_inclusion(self, seed, db_seed):
        q1 = random_cq(SCHEMA, atoms=3, variables=3, head_arity=1, seed=seed)
        q2 = random_cq(SCHEMA, atoms=2, variables=3, head_arity=1, seed=seed + 1)
        if len(q1.head) != len(q2.head) or not contains(q2, q1):
            return
        db = random_flat_database(SCHEMA, rows=4, domain=3, seed=db_seed)
        assert evaluate(q1, db) <= evaluate(q2, db)

    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_evaluation_monotone(self, seed, db_seed):
        q = random_cq(SCHEMA, atoms=3, variables=3, head_arity=1, seed=seed)
        small = random_flat_database(SCHEMA, rows=3, domain=3, seed=db_seed)
        rng = random.Random(db_seed + 1)
        big = small
        extra = random_flat_database(SCHEMA, rows=2, domain=3, seed=db_seed + 7)
        merged = {}
        for name in SCHEMA:
            merged[name] = Relation(
                name, CSet(list(small[name].rows) + list(extra[name].rows))
            )
        big = Database(merged.values())
        assert evaluate(q, small) <= evaluate(q, big)

    @given(st.integers(0, 5_000))
    @settings(max_examples=25, deadline=None)
    def test_containment_transitive(self, seed):
        qs = [
            random_cq(SCHEMA, atoms=2 + i, variables=3, head_arity=1,
                      seed=seed + i)
            for i in range(3)
        ]
        a, b, c = qs
        if len({len(q.head) for q in qs}) != 1:
            return
        if contains(b, a) and contains(c, b):
            assert contains(c, a)


# ---------------------------------------------------------------------------
# Simulation
# ---------------------------------------------------------------------------

GSCHEMA = {"r": 2, "s": 2}


class TestSimulationProperties:
    @given(st.integers(0, 5_000))
    @settings(max_examples=20, deadline=None)
    def test_reflexive(self, seed):
        q = random_grouping_query(GSCHEMA, seed=seed, depth=2)
        assert is_simulated(q, q)

    @given(st.integers(0, 5_000))
    @settings(max_examples=20, deadline=None)
    def test_invariant_under_renaming(self, seed):
        q = random_grouping_query(GSCHEMA, seed=seed, depth=2)
        renamed = q.rename_apart("_z")
        assert is_simulated(q, renamed)
        assert is_simulated(renamed, q)

    @given(st.integers(0, 2_000))
    @settings(max_examples=10, deadline=None)
    def test_transitive(self, seed):
        qs = [
            random_grouping_query(GSCHEMA, seed=seed + i * 1000, depth=2)
            for i in range(3)
        ]
        a, b, c = qs
        if a.shape() != b.shape() or b.shape() != c.shape():
            return
        if is_simulated(a, b) and is_simulated(b, c):
            assert is_simulated(a, c)


# ---------------------------------------------------------------------------
# COQL pipeline
# ---------------------------------------------------------------------------


class TestCoqlPipelineProperties:
    @given(st.integers(0, 5_000), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_encoder_matches_interpreter(self, seed, db_seed):
        from repro.coql import parse_coql, evaluate_coql
        from repro.coql.containment import prepare
        from repro.coql.encode import reconstruct_value
        from repro.grouping.semantics import node_groups

        schema = {"r": ("a", "b"), "s": ("k", "b")}
        text = random_coql(seed=seed, depth=2)
        encoded = prepare(text, schema)
        if encoded.is_empty:
            return
        rng = random.Random(db_seed)
        db = Database.from_dict(
            {
                name: [
                    {attr: rng.randrange(3) for attr in attrs}
                    for __ in range(4)
                ]
                for name, attrs in schema.items()
            }
        )
        direct = evaluate_coql(parse_coql(text), db)
        rebuilt = reconstruct_value(encoded, node_groups(encoded.query, db))
        assert rebuilt == direct
