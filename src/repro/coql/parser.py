"""Parser for a concrete COQL syntax.

Grammar (OQL-flavoured)::

    expr     := operand ("union" operand)*
    operand  := select | flatten | primary
    select   := "select" operand "from" gen ("," gen)*
                ["where" cond ("and" cond)*]
    gen      := IDENT "in" operand
    flatten  := "flatten" "(" expr ")"
    primary  := record | setlit | path | const | "(" expr ")"
    record   := "[" IDENT ":" operand ("," IDENT ":" operand)* "]"
    setlit   := "{" [operand] "}"
    path     := IDENT ("." IDENT)*
    cond     := operand "=" operand

``union`` binds loosest: ``select h from x in r union select h from y
in s`` is a union of two selects; parenthesize (``x in (a union b)``)
to range a generator over a union.  A leading identifier is a variable
when bound by an enclosing generator and an input-relation name
otherwise.

>>> q = parse_coql("select [a: x.a] from x in r where x.b = 3")
"""

import re

from repro.errors import ParseError
from repro.coql.ast import (
    Const,
    VarRef,
    RelRef,
    Proj,
    RecordExpr,
    Singleton,
    EmptySet,
    Flatten,
    Select,
    UnionBody,
)

__all__ = ["parse_coql"]

_KEYWORDS = {"select", "from", "where", "in", "and", "flatten", "union"}

_TOKEN_RE = re.compile(
    r"""
    \s*(
        [(){}\[\],.=:]              |
        -?\d+\.\d+                  |
        -?\d+                       |
        "(?:[^"\\]|\\.)*"          |
        '(?:[^'\\]|\\.)*'          |
        [A-Za-z_][A-Za-z_0-9]*
    )
    """,
    re.VERBOSE,
)


def _line_col(text, offset):
    """1-based ``(line, column)`` of a character *offset* into *text*."""
    line = text.count("\n", 0, offset) + 1
    col = offset - (text.rfind("\n", 0, offset) + 1) + 1
    return (line, col)


def _tokenize(text):
    tokens = []
    positions = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            rest = text[pos:]
            if not rest.strip():
                break
            bad = pos + (len(rest) - len(rest.lstrip()))
            where = _line_col(text, bad)
            raise ParseError(
                "cannot tokenize COQL at %r (line %d, col %d)"
                % ((rest.strip()[:25],) + where),
                span=where,
            )
        tokens.append(match.group(1))
        positions.append(_line_col(text, match.start(1)))
        pos = match.end()
    return tokens, positions


class _Parser:
    def __init__(self, text):
        self.text = text
        self.tokens, self.positions = _tokenize(text)
        self.index = 0

    def span_at(self, index=None):
        """``(line, col)`` of the token at *index* (default: current)."""
        if index is None:
            index = self.index
        if index < len(self.positions):
            return self.positions[index]
        return self.positions[-1] if self.positions else (1, 1)

    def peek(self):
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self):
        token = self.peek()
        if token is None:
            raise ParseError(
                "unexpected end of COQL input in %r" % self.text,
                span=self.span_at(),
            )
        self.index += 1
        return token

    def expect(self, token):
        at = self.index
        got = self.next()
        if got != token:
            raise ParseError(
                "expected %r, got %r (in %r)" % (token, got, self.text),
                span=self.span_at(at),
            )

    def done(self):
        return self.index >= len(self.tokens)

    # -- grammar -----------------------------------------------------------

    def expr(self, bound):
        start = self.span_at()
        branch = self.operand(bound)
        if self.peek() != "union":
            return branch
        branches = [branch]
        while self.peek() == "union":
            self.next()
            branches.append(self.operand(bound))
        return UnionBody(branches).with_span(start)

    def operand(self, bound):
        token = self.peek()
        if token == "select":
            return self.select(bound)
        if token == "flatten":
            start = self.span_at()
            self.next()
            self.expect("(")
            inner = self.expr(bound)
            self.expect(")")
            return Flatten(inner).with_span(start)
        return self.primary(bound)

    def select(self, bound):
        select_span = self.span_at()
        self.expect("select")
        head_start = self.index
        # First pass over the head: variable-vs-relation resolution never
        # affects the token structure, so parsing with the outer bound set
        # just locates the head's extent; the head is re-parsed below once
        # the generator variables are known.
        self.operand(bound)
        self.expect("from")
        generators = []
        inner_bound = set(bound)
        while True:
            var_at = self.index
            var = self.next()
            if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", var) or var in _KEYWORDS:
                raise ParseError(
                    "bad generator variable %r" % var,
                    span=self.span_at(var_at),
                )
            self.expect("in")
            source = self.operand(frozenset(inner_bound))
            generators.append((var, source))
            inner_bound.add(var)
            if self.peek() == ",":
                self.next()
                continue
            break
        conditions = []
        if self.peek() == "where":
            self.next()
            while True:
                left = self.operand(frozenset(inner_bound))
                self.expect("=")
                right = self.operand(frozenset(inner_bound))
                conditions.append((left, right))
                if self.peek() == "and":
                    self.next()
                    continue
                break
        # Re-parse the head now that generator variables are known.
        end = self.index
        self.index = head_start
        head = self.operand(frozenset(inner_bound))
        if self.peek() != "from":
            raise ParseError(
                "malformed select head in %r" % self.text, span=select_span
            )
        self.index = end
        return Select(head, generators, conditions).with_span(select_span)

    def primary(self, bound):
        start = self.span_at()
        token = self.next()
        if token == "(":
            inner = self.expr(bound)
            self.expect(")")
            return inner
        if token == "[":
            fields = {}
            while True:
                name = self.next()
                self.expect(":")
                fields[name] = self.operand(bound)
                nxt_at = self.index
                nxt = self.next()
                if nxt == "]":
                    return RecordExpr(fields).with_span(start)
                if nxt != ",":
                    raise ParseError(
                        "expected ',' or ']' in record, got %r" % nxt,
                        span=self.span_at(nxt_at),
                    )
        if token == "{":
            if self.peek() == "}":
                self.next()
                return EmptySet().with_span(start)
            inner = self.operand(bound)
            self.expect("}")
            return Singleton(inner).with_span(start)
        if token.startswith(("'", '"')):
            value = token[1:-1].replace('\\"', '"').replace("\\'", "'")
            return Const(value).with_span(start)
        if re.fullmatch(r"-?\d+", token):
            return Const(int(token)).with_span(start)
        if re.fullmatch(r"-?\d+\.\d+", token):
            return Const(float(token)).with_span(start)
        if re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", token) and token not in _KEYWORDS:
            base = VarRef(token) if token in bound else RelRef(token)
            return self._path(base.with_span(start))
        raise ParseError(
            "unexpected token %r in %r" % (token, self.text), span=start
        )

    def _path(self, base):
        expr = base
        while self.peek() == ".":
            dot_span = self.span_at()
            self.next()
            attr_at = self.index
            attr = self.next()
            if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", attr):
                raise ParseError(
                    "bad attribute name %r" % attr, span=self.span_at(attr_at)
                )
            expr = Proj(expr, attr).with_span(dot_span)
        return expr


def parse_coql(text):
    """Parse a COQL expression from its concrete syntax.

    Every AST node carries the ``(line, column)`` of its first token in
    its :attr:`~repro.coql.ast.Expr.span`, and :class:`ParseError`\\ s
    carry the failure position in their ``span`` attribute — both are
    1-based and used by :mod:`repro.analysis` to point diagnostics at
    real source locations.
    """
    parser = _Parser(text)
    expr = parser.expr(frozenset())
    if not parser.done():
        raise ParseError(
            "trailing tokens %r in %r" % (parser.tokens[parser.index:], text),
            span=parser.span_at(),
        )
    return expr
