"""Pretty-printer for COQL expressions.

``to_text`` renders an AST back into the concrete syntax accepted by
:func:`repro.coql.parser.parse_coql`; the round-trip
``parse(to_text(e)) == e`` holds for every expression (property-tested).
"""

from repro.errors import ReproError
from repro.coql.ast import (
    Const,
    VarRef,
    RelRef,
    Proj,
    RecordExpr,
    Singleton,
    EmptySet,
    Flatten,
    Select,
    UnionBody,
)

__all__ = ["to_text"]


def to_text(expr):
    """Render a COQL expression as parseable concrete syntax."""
    return _render(expr, top=True)


def _render(expr, top=False):
    if isinstance(expr, Const):
        return _const(expr.value)
    if isinstance(expr, (VarRef, RelRef)):
        return expr.name
    if isinstance(expr, Proj):
        base = _render(expr.expr)
        if isinstance(expr.expr, (Select, Flatten)):
            base = "(%s)" % base
        return "%s.%s" % (base, expr.attr)
    if isinstance(expr, RecordExpr):
        inner = ", ".join(
            "%s: %s" % (name, _render(component))
            for name, component in expr.fields
        )
        return "[%s]" % inner
    if isinstance(expr, Singleton):
        return "{%s}" % _render(expr.expr)
    if isinstance(expr, EmptySet):
        return "{}"
    if isinstance(expr, Flatten):
        return "flatten(%s)" % _render(expr.expr)
    if isinstance(expr, Select):
        head = _render(expr.head)
        if isinstance(expr.head, Select):
            head = "(%s)" % head
        generators = ", ".join(
            "%s in %s" % (var, _paren_source(source))
            for var, source in expr.generators
        )
        text = "select %s from %s" % (head, generators)
        if expr.conditions:
            text += " where " + " and ".join(
                "%s = %s" % (_render(left), _render(right))
                for left, right in expr.conditions
            )
        return text if top else "(%s)" % text
    if isinstance(expr, UnionBody):
        # `union` binds loosest, so branches (selects included) need no
        # parentheses of their own; a union in operand position does.
        text = " union ".join(
            _render(branch, top=True) for branch in expr.branches
        )
        return text if top else "(%s)" % text
    raise ReproError("unknown COQL expression %r" % (expr,))


def _paren_source(source):
    rendered = _render(source)
    if isinstance(source, Select):
        return rendered  # already parenthesized by _render
    return rendered


def _const(value):
    if isinstance(value, bool):
        raise ReproError(
            "boolean constants have no concrete syntax; use 0/1"
        )
    if isinstance(value, str):
        return '"%s"' % value.replace('"', '\\"')
    return repr(value)
