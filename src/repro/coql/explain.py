"""Explanations for containment verdicts: witnesses and counterexamples.

``contains`` answers yes/no; this module answers *why*:

* for a **negative** verdict, :func:`explain_containment` searches the
  canonical database family of the failing obligation for a concrete
  counterexample database on which the Hoare domination fails, and
  returns it together with both evaluated answers (so the user can see
  the undominated element);
* for a **positive** verdict it returns the simulation certificates
  (one per truncation obligation) — the paper's extended containment
  mappings, made inspectable.

The counterexample search is complete relative to the procedure: a
failing simulation obligation fails semantically on some member of the
canonical family (that is the completeness direction of the certificate
construction), except for elements whose inner sets are empty, where the
canonical family is augmented with its sub-databases.
"""

from repro.errors import IncomparableQueriesError
from repro.objects.values import CSet
from repro.objects.order import dominated
from repro.coql.containment import prepare, _obligation_patterns, as_schema
from repro.coql.encode import paired_encoding, reconstruct_value, shapes_compatible
from repro.grouping.simulation import simulation_certificate
from repro.grouping.bruteforce import canonical_databases
from repro.grouping.semantics import node_groups

__all__ = ["explain_containment", "ContainmentExplanation"]


class ContainmentExplanation:
    """The result of :func:`explain_containment`.

    Attributes:
        holds: the containment verdict.
        certificates: ``{pattern: SimulationCertificate}`` for positive
            verdicts (one per truncation obligation).
        failing_pattern: the truncation obligation that failed (negative
            verdicts).
        counterexample: a :class:`Database` on which domination fails,
            or None when the canonical search found none (the verdict is
            still negative — the refuting database can require the
            truncation semantics the canonical family approximates).
        sub_answer / sup_answer: both answers on the counterexample.
    """

    __slots__ = (
        "holds",
        "certificates",
        "failing_pattern",
        "counterexample",
        "sub_answer",
        "sup_answer",
    )

    def __init__(self, holds, certificates=None, failing_pattern=None,
                 counterexample=None, sub_answer=None, sup_answer=None):
        self.holds = holds
        self.certificates = certificates or {}
        self.failing_pattern = failing_pattern
        self.counterexample = counterexample
        self.sub_answer = sub_answer
        self.sup_answer = sup_answer

    def __repr__(self):
        if self.holds:
            return "ContainmentExplanation(holds=True, obligations=%d)" % len(
                self.certificates
            )
        return (
            "ContainmentExplanation(holds=False, failing_pattern=%r, "
            "counterexample=%s)"
            % (
                sorted(self.failing_pattern or ()),
                "found" if self.counterexample is not None else "not-found",
            )
        )


def explain_containment(sup, sub, schema, witnesses=None):
    """Like ``coql.contains(sup, sub, schema)`` but with evidence.

    :returns: a :class:`ContainmentExplanation`.
    """
    schema = as_schema(schema)
    sub_encoded = prepare(sub, schema, "sub")
    sup_encoded = prepare(sup, schema, "sup")
    if not sub_encoded.is_empty and not sup_encoded.is_empty:
        if not shapes_compatible(sub_encoded.shape, sup_encoded.shape):
            raise IncomparableQueriesError(
                "queries have different output shapes"
            )
    sub_query, sup_query, verdict = paired_encoding(sub_encoded, sup_encoded)
    if verdict is not None:
        return ContainmentExplanation(holds=verdict)
    _schema = schema

    certificates = {}
    for pattern in _obligation_patterns(sub_query):
        sub_t = sub_query.truncate(pattern)
        sup_t = sup_query.truncate(pattern)
        certificate = simulation_certificate(sub_t, sup_t, witnesses=witnesses)
        if certificate is not None:
            certificates[pattern] = certificate
            continue
        counterexample, sub_ans, sup_ans = _find_counterexample(
            sub_encoded, sup_encoded, sub_t, sup_t, witnesses, _schema
        )
        return ContainmentExplanation(
            holds=False,
            failing_pattern=pattern,
            counterexample=counterexample,
            sub_answer=sub_ans,
            sup_answer=sup_ans,
        )
    return ContainmentExplanation(holds=True, certificates=certificates)


def _find_counterexample(sub_encoded, sup_encoded, sub_t, sup_t, witnesses,
                         schema):
    """Search the canonical family of the failing obligation (and its
    sub-databases) for a database where domination fails."""
    for __, database in canonical_databases(sub_t, sup_t, witnesses):
        named = _rename_to_schema(database, schema)
        for candidate in _with_subdatabases(named):
            sub_ans = _answer(sub_encoded, candidate)
            sup_ans = _answer(sup_encoded, candidate)
            if not dominated(sub_ans, sup_ans):
                return candidate, sub_ans, sup_ans
    return None, None, None


def _rename_to_schema(database, schema):
    """Rename canonical positional columns to the schema's attribute
    names (sorted order on both sides, matching the encoding), so the
    counterexample is directly usable with the COQL interpreter."""
    from repro.objects.database import Database, Relation
    from repro.objects.values import Record

    relations = []
    for name in database.names():
        rel = database[name]
        if name not in schema:
            relations.append(rel)
            continue
        attrs = schema[name].keys()
        cols = rel.attributes()
        if len(cols) != len(attrs):
            relations.append(rel)
            continue
        mapping = dict(zip(cols, attrs))
        rows = [
            Record({mapping[c]: row[c] for c in cols}) for row in rel
        ]
        relations.append(Relation(name, CSet(rows)))
    # Complete the database: schema relations absent from the canonical
    # database are empty (the interpreter needs them to exist).
    present = {rel.name for rel in relations}
    for name, row_type in schema.items():
        if name not in present:
            relations.append(Relation(name, CSet(), row_type))
    return Database(relations)


def _with_subdatabases(database):
    """The database itself plus its single-relation-restricted variants
    (cheap witnesses for the truncated obligations: removing a child
    relation empties the corresponding groups)."""
    from repro.objects.database import Database, Relation

    yield database
    names = database.names()
    for dropped in names:
        relations = []
        for name in names:
            rel = database[name]
            if name == dropped:
                relations.append(Relation(name, CSet(), rel.row_type))
            else:
                relations.append(rel)
        yield Database(relations)


def _answer(encoded, database):
    groups = node_groups(encoded.query, database)
    return reconstruct_value(encoded, groups)
