"""Encoding normalized COQL queries as grouping-query trees (Section 5).

A normalized query (``NFSet``) over *flat* input relations becomes a
tree of conjunctive queries with index variables:

* every generator ``g ∈ R`` contributes the atom ``R(g.a1, …, g.ak)``
  (one CQ variable per attribute, in sorted attribute order);
* conditions are compiled away by unification (substituting one side
  into the atoms), preferring outer variables and constants as
  representatives;
* every nested ``NFSet`` in the head becomes a child node whose *index*
  is the tuple of outer CQ variables the child's subtree mentions —
  exactly the fresh "index" value of the paper's flat encoding of
  complex objects;
* nested records in the head are flattened to dotted value names
  (``a.b``), which preserves equality of elements;
* always-empty components (``NFEmpty``) are recorded separately — they
  need no conjunctive query, but the containment test must know where
  they are.

Restrictions (documented in DESIGN.md): input relations must be flat
(apply ``objects.encoding.encode_database`` first, as the paper assumes
in Section 5.1), and a condition *insidely nested* subquery may not
equate two outer paths or an outer path with a constant — such
conditions gate the inner set on the outer binding in a way plain
conjunctive bodies cannot express; :class:`UnsupportedQueryError` is
raised rather than risking a wrong verdict.
"""

from repro.errors import UnsupportedQueryError, TypeCheckError, SchemaError
from repro.cq.terms import Var, Const, Atom
from repro.grouping.query import GroupingNode, GroupingQuery
from repro.coql.normalize import NFConst, NFPath, NFRecord, NFEmpty, NFSet

__all__ = ["EncodedQuery", "encode_query", "paired_encoding", "reconstruct_value"]

#: Template node kinds used to rebuild nested record values from the
#: flattened (dotted) element representation.
VALUE, CHILD, RECORD, EMPTY = "value", "child", "record", "empty"


class EncodedQuery:
    """The result of encoding a normalized COQL query.

    Attributes:
        query: the :class:`GroupingQuery` (None when the whole query is
            always empty).
        templates: ``{path: template}`` describing how a node's element
            records rebuild the original (possibly record-nested) head
            values.  A template is a tuple tree over the kinds
            ``value`` (flat value-column name), ``child`` (child node
            label), ``record`` ({attr: template}), ``empty``.
        empty_paths: paths (in the *full* shape) of always-empty set
            components.
        shape: the full output shape including empty components, used to
            decide comparability.
    """

    __slots__ = ("query", "templates", "empty_paths", "shape")

    def __init__(self, query, templates, empty_paths, shape):
        self.query = query
        self.templates = templates
        self.empty_paths = frozenset(empty_paths)
        self.shape = shape

    @property
    def is_empty(self):
        return self.query is None

    def __repr__(self):
        return "EncodedQuery(empty=%s, empty_paths=%r)" % (
            self.is_empty,
            sorted(self.empty_paths),
        )


def encode_query(nf, schema, name="q"):
    """Encode a normal-form query over a flat *schema*.

    :param nf: an :class:`NFSet` or :class:`NFEmpty`.
    :param schema: ``{relation name: RecordType}`` with atomic attributes.
    :returns: an :class:`EncodedQuery`.
    """
    if isinstance(nf, NFEmpty):
        return EncodedQuery(None, {}, {()}, ("empty",))
    if not isinstance(nf, NFSet):
        raise TypeCheckError("queries must be set-valued, got %r" % (nf,))
    builder = _Builder(schema)
    root, templates, empty_paths, shape = builder.build_root(nf)
    if root is None:
        return EncodedQuery(None, {}, {()}, ("empty",))
    return EncodedQuery(GroupingQuery(root, name), templates, empty_paths, shape)


class _Unsat(Exception):
    """A node's conditions are unsatisfiable: the set is always empty."""


class _Builder:
    def __init__(self, schema):
        self.schema = schema

    def build_root(self, nf):
        templates = {}
        empty_paths = set()
        try:
            root, shape = self._node(nf, "", (), {}, set(), templates, empty_paths)
        except _Unsat:
            return None, {}, {()}, ("empty",)
        return root, templates, empty_paths, shape

    # -- one set node --------------------------------------------------

    def _node(self, nf, label, path, outer_columns, outer_vars, templates,
              empty_paths):
        """Build the GroupingNode for *nf* at *path*.

        :param outer_columns: ``{nf var: {attr: CQ Var}}`` for ancestor
            generators.
        :param outer_vars: set of CQ variables bound by ancestors.
        """
        columns = dict(outer_columns)
        atoms = []
        for var, source in nf.gens:
            if not isinstance(source, str):
                raise UnsupportedQueryError(
                    "generator over nested value %r: encode the input "
                    "database first (objects.encoding.encode_database)"
                    % (source,)
                )
            if source not in self.schema:
                raise SchemaError("unknown relation %s" % source)
            row_type = self.schema[source]
            attrs = row_type.keys()
            for attr in attrs:
                from repro.objects.types import AtomType

                if not isinstance(row_type[attr], AtomType):
                    raise UnsupportedQueryError(
                        "relation %s is nested; apply the Section-5.1 index "
                        "encoding first" % source
                    )
            columns[var] = {a: Var("%s.%s" % (var, a)) for a in attrs}
            atoms.append(Atom(source, tuple(columns[var][a] for a in attrs)))

        substitution = self._unify(nf.conds, columns, outer_vars)
        atoms = [atom.substitute(substitution) for atom in atoms]
        # Propagate the unification into the column map so that head
        # terms and descendant nodes see the representatives.
        columns = {
            var: {a: _substituted(t, substitution) for a, t in splay.items()}
            for var, splay in columns.items()
        }

        values = {}
        children = []
        template, child_nodes = self._head(
            nf.head, path, columns, substitution, outer_vars, values,
            templates, empty_paths,
        )
        templates[path] = template

        # Children: compute index = outer CQ variables the subtree uses.
        own_vars = {v for atom in atoms for v in atom.variables()}
        bound_here = outer_vars | own_vars
        built_children = []
        child_shapes = {}
        for child_label, child_nf in child_nodes:
            child_path = path + (child_label,)
            try:
                child, child_shape = self._node(
                    child_nf, child_label, child_path, columns,
                    bound_here, templates, empty_paths,
                )
            except _Unsat:
                empty_paths.add(child_path)
                templates.setdefault(child_path, (EMPTY,))
                child_shapes[child_label] = (EMPTY,)
                continue
            child_shapes[child_label] = child_shape
            subtree_vars = _subtree_variables(child)
            index = tuple(sorted(v for v in subtree_vars if v in bound_here))
            child = GroupingNode(
                child.label, child.own_atoms, dict(child.values), index,
                child.children,
            )
            built_children.append(child)

        node = GroupingNode(label, atoms, values, (), tuple(built_children))
        shape = _shape_of(template, child_shapes)
        return node, shape

    def _head(self, head, path, columns, substitution, outer_vars, values,
              templates, empty_paths):
        """Flatten the head into value columns, child sets, a template.

        Returns ``(template, [(child label, child NFSet)])``.
        """
        child_nodes = []

        def walk(nf_value, prefix):
            if isinstance(nf_value, NFPath) and not nf_value.attrs:
                # A bare row variable: splay it into its record structure
                # (elements of a flat relation are records of atoms).
                if nf_value.var not in columns:
                    raise TypeCheckError("unbound variable %s" % nf_value.var)
                splay = columns[nf_value.var]
                expanded = NFRecord(
                    {attr: NFPath(nf_value.var, (attr,)) for attr in splay}
                )
                return walk(expanded, prefix)
            if isinstance(nf_value, (NFConst, NFPath)):
                name = ".".join(prefix) if prefix else "__value"
                term = self._term(nf_value, columns)
                values[name] = _substituted(term, substitution)
                return (VALUE, name)
            if isinstance(nf_value, NFRecord):
                fields = {}
                for attr, component in nf_value.fields:
                    fields[attr] = walk(component, prefix + (attr,))
                return (RECORD, tuple(sorted(fields.items())))
            if isinstance(nf_value, NFEmpty):
                label = ".".join(prefix) if prefix else "__set"
                empty_paths.add(path + (label,))
                templates[path + (label,)] = (EMPTY,)
                return (CHILD, label)
            if isinstance(nf_value, NFSet):
                label = ".".join(prefix) if prefix else "__set"
                child_nodes.append((label, nf_value))
                return (CHILD, label)
            raise TypeCheckError("unexpected head value %r" % (nf_value,))

        template = walk(head, ())
        return template, child_nodes

    def _term(self, nf_value, columns):
        if isinstance(nf_value, NFConst):
            return Const(nf_value.value)
        if isinstance(nf_value, NFPath):
            if nf_value.var not in columns:
                raise TypeCheckError("unbound variable %s" % nf_value.var)
            if len(nf_value.attrs) != 1:
                raise UnsupportedQueryError(
                    "path %r does not address an atomic column of a flat "
                    "relation" % (nf_value,)
                )
            attr = nf_value.attrs[0]
            splay = columns[nf_value.var]
            if attr not in splay:
                raise TypeCheckError(
                    "relation row for %s has no attribute %s"
                    % (nf_value.var, attr)
                )
            return splay[attr]
        raise TypeCheckError("not an atomic term: %r" % (nf_value,))

    def _unify(self, conds, columns, outer_vars):
        """Turn equality conditions into a substitution.

        Raises :class:`_Unsat` when two distinct constants must be equal
        and :class:`UnsupportedQueryError` when a condition relates two
        outer terms (see module docstring).
        """
        parent = {}

        def find(term):
            while term in parent:
                term = parent[term]
            return term

        def rank(term):
            # Higher rank wins as representative.
            if isinstance(term, Const):
                return 2
            return 1 if term in outer_vars else 0

        for left, right in conds:
            left_term = find(self._term(left, columns))
            right_term = find(self._term(right, columns))
            if left_term == right_term:
                continue
            if isinstance(left_term, Const) and isinstance(right_term, Const):
                raise _Unsat()
            if rank(left_term) < rank(right_term):
                left_term, right_term = right_term, left_term
            # left_term is the representative.
            if rank(right_term) >= 1:
                # Both sides are outer terms (or outer/constant): the
                # condition gates the inner set on the outer binding.
                raise UnsupportedQueryError(
                    "condition equates two outer terms (%r = %r) inside a "
                    "nested subquery; outside the implemented fragment"
                    % (left_term, right_term)
                )
            parent[right_term] = left_term

        return _Resolved(parent)


class _Resolved(dict):
    """A substitution that follows union-find parent chains lazily."""

    def __init__(self, parent):
        super().__init__()
        self._parent = parent

    def get(self, term, default=None):
        if term not in self._parent:
            return default
        while term in self._parent:
            term = self._parent[term]
        return term


def _substituted(term, substitution):
    if isinstance(term, Var):
        return substitution.get(term, term)
    return term


def _subtree_variables(node):
    out = set()

    def walk(n):
        for atom in n.own_atoms:
            out.update(atom.variables())
        out.update(t for __, t in n.values if isinstance(t, Var))
        out.update(n.index)
        for child in n.children:
            walk(child)

    walk(node)
    return out


def _shape_of(template, child_shapes):
    kind = template[0]
    if kind == VALUE:
        return ("value", template[1])
    if kind == RECORD:
        return ("record", tuple((k, _shape_of(t, child_shapes))
                                for k, t in template[1]))
    if kind == CHILD:
        return ("set", template[1], child_shapes.get(template[1], (EMPTY,)))
    if kind == EMPTY:
        return (EMPTY,)
    raise TypeCheckError("bad template %r" % (template,))


def shapes_compatible(left, right):
    """Structural comparability of two output shapes.

    An always-empty set component is compatible with any set component —
    the empty set conforms to every set type.
    """
    if left[0] == EMPTY or right[0] == EMPTY:
        # "empty" stands for an always-empty set's (unknown) element
        # shape; it is compatible with anything.
        return True
    if left[0] != right[0]:
        return False
    if left[0] == "value":
        return left[1] == right[1]
    if left[0] == "record":
        if tuple(k for k, __ in left[1]) != tuple(k for k, __ in right[1]):
            return False
        return all(
            shapes_compatible(ls, rs)
            for (__, ls), (___, rs) in zip(left[1], right[1])
        )
    if left[0] == "set":
        return left[1] == right[1] and shapes_compatible(left[2], right[2])
    return False


def paired_encoding(sub_encoded, sup_encoded):
    """Align two encoded queries for containment testing.

    Returns ``(sub_query, sup_query, verdict)``: when *verdict* is not
    None the containment question is already settled (e.g. one side is
    always empty, or the superquery has an always-empty component where
    the subquery does not); otherwise the two returned grouping queries
    have matching shapes, with the subquery's always-empty components
    pruned from both sides.
    """
    if sub_encoded.is_empty:
        return None, None, True  # {} ⊑ anything
    if sup_encoded.is_empty:
        return None, None, False  # a satisfiable body is non-empty somewhere

    sub_query, sup_query = sub_encoded.query, sup_encoded.query
    sub_paths = set(sub_query.paths())
    sup_paths = set(sup_query.paths())

    # Sup-side empty components: sub must be empty there too.
    for path in sup_encoded.empty_paths:
        if path in sub_encoded.empty_paths:
            continue
        if path in sub_paths:
            return None, None, False
        # Component below a sub-side empty component: unreachable, fine.

    # Prune sub-side empty components (and anything below them) from sup.
    keep_sup = {
        p
        for p in sup_paths
        if not any(
            p[: len(e)] == e
            for e in sub_encoded.empty_paths | sup_encoded.empty_paths
        )
    }
    keep_sub = {
        p
        for p in sub_paths
        if not any(p[: len(e)] == e for e in sub_encoded.empty_paths)
    }
    if keep_sub != keep_sup:
        # Shapes disagree beyond empty components.
        return None, None, None if keep_sub <= keep_sup else False
    sub_query = sub_query.truncate(keep_sub)
    sup_query = sup_query.truncate(keep_sup)
    return sub_query, sup_query, None


def reconstruct_value(encoded, groups, path=(), key=()):
    """Rebuild the nested complex-object answer from evaluated groups.

    Inverse of the flattening the encoder performs; used to validate the
    encoder against the direct interpreter.
    """
    from repro.objects.values import Record, CSet

    if encoded.is_empty:
        return CSet()
    query_paths = encoded.query.paths()

    def build_set(p, k):
        node = query_paths[p]
        elements = []
        for values, child_keys in groups[p].get(k, ()):
            named = dict(zip(node.value_names(), values))
            child_key_of = dict(zip(node.child_labels(), child_keys))
            elements.append(build_template(encoded.templates[p], p, named,
                                           child_key_of))
        return CSet(elements)

    def build_template(template, p, named, child_key_of):
        kind = template[0]
        if kind == VALUE:
            return named[template[1]]
        if kind == RECORD:
            return Record(
                {
                    attr: build_template(t, p, named, child_key_of)
                    for attr, t in template[1]
                }
            )
        if kind == CHILD:
            label = template[1]
            child_path = p + (label,)
            if child_path in encoded.empty_paths:
                return CSet()
            return build_set(child_path, child_key_of[label])
        raise TypeCheckError("bad template %r" % (template,))

    return build_set(path, key)
