"""View catalogues: answering nested queries from materialized views.

The paper's introduction motivates containment with "rewriting queries
using views [12, 27]".  This module provides the planner-facing side: a
:class:`ViewCatalog` of named COQL views, and an analysis that reports,
for a query Q, which views V satisfy ``Q ⊑ V`` (V's answer dominates
Q's on every database, so a rewriting only needs to refine V), which are
weakly equivalent to Q (V answers Q exactly, up to the Hoare preorder),
and which are unusable — with counterexample evidence on request.
"""

from repro.errors import ReproError
from repro.coql.containment import as_schema
from repro.coql.explain import explain_containment

__all__ = ["ViewCatalog", "ViewReport"]


class ViewReport:
    """The usability analysis of one view for one query.

    Attributes:
        view: the view name.
        usable: True when ``query ⊑ view``.
        exact: True when additionally ``view ⊑ query`` (weakly
            equivalent — the view answers the query up to the Hoare
            preorder).
        comparable: False when the output shapes differ (then *usable*
            is False and the remaining fields are meaningless).
        counterexample: when requested and usable is False, a database
            witnessing the failure (or None when the search found none).
    """

    __slots__ = ("view", "usable", "exact", "comparable", "counterexample")

    def __init__(self, view, usable, exact, comparable, counterexample=None):
        self.view = view
        self.usable = usable
        self.exact = exact
        self.comparable = comparable
        self.counterexample = counterexample

    def __repr__(self):
        if not self.comparable:
            return "ViewReport(%s: incomparable)" % self.view
        status = "exact" if self.exact else ("usable" if self.usable else "unusable")
        return "ViewReport(%s: %s)" % (self.view, status)


class ViewCatalog:
    """A named collection of COQL views over one flat schema.

    Each catalog owns a :class:`repro.engine.ContainmentEngine` (or
    shares the one passed as *engine*): views are parsed and encoded
    once no matter how many queries are analyzed, and simulation
    obligations shared across queries are decided once.

    Pass *store* (a :class:`repro.pipeline.ArtifactStore`) to attach the
    catalog's engine to a shared artifact store instead — every prepare,
    verdict, and compiled simulation target is then shared with whatever
    else uses that store (other catalogs, the linter, ad-hoc engines).
    *store* is ignored when *engine* is given (the engine brings its
    own).

    Pass *constraints* (a tuple of
    :class:`repro.constraints.InclusionDependency`) to analyze every
    query under the declared dependencies: usability and classification
    then hold on databases satisfying them (None inherits the engine's
    own default constraints).
    """

    def __init__(self, schema, views=None, engine=None, store=None,
                 constraints=None):
        if engine is None:
            from repro.engine import ContainmentEngine

            engine = ContainmentEngine(
                store=store, constraints=tuple(constraints or ())
            )
        self._engine = engine
        if constraints is None:
            constraints = getattr(engine, "_constraints", ())
        self._constraints = tuple(constraints)
        self._schema = as_schema(schema)
        self._views = {}
        for name, text in (views or {}).items():
            self.add(name, text)

    def add(self, name, query):
        """Register a view (text or Expr)."""
        self._views[name] = query

    def remove(self, name):
        """Deregister a view; True when it was present.

        Cached artifacts about the view (its prepared encoding, its
        classification against past queries) stay in the engine's store
        — they are keyed by content, so re-adding the same view text
        warm-starts, and they can never be confused with another view's.
        """
        return self._views.pop(name, None) is not None

    def names(self):
        return tuple(sorted(self._views))

    def schema(self):
        return dict(self._schema)

    def engine(self):
        """The catalog's containment engine (for stats and cache control)."""
        return self._engine

    def lint(self, select=None, ignore=None, config=None):
        """Run the static analyzer over every registered view.

        A catalog full of views is exactly where lint findings pay off:
        an unsatisfiable view is unusable for every query (it is the
        constant empty set), a cartesian-product view makes every
        ``analyze``/matrix call against it slow, and empty-set hazards
        decide whether :meth:`ViewReport.exact` can ever be trusted as
        true equivalence.  Shares the catalog's engine, so linting warms
        the same caches :meth:`analyze` uses.

        :param select / ignore: rule-code filters, as in
            :func:`repro.analysis.analyze`.
        :param config: an :class:`repro.analysis.AnalysisConfig`.
        :returns: ``{view name: [Diagnostic, ...]}`` with each finding's
            ``target`` set to the view name; views with no findings map
            to empty lists.
        """
        from repro.analysis import analyze as analyze_query

        out = {}
        for name in self.names():
            out[name] = [
                diagnostic.with_target(name)
                for diagnostic in analyze_query(
                    self._views[name], self._schema, engine=self._engine,
                    config=config, select=select, ignore=ignore,
                )
            ]
        return out

    def analyze(self, query, with_counterexamples=False, witnesses=None):
        """Report every view's usability for *query*.

        :returns: ``{view name: ViewReport}``.
        """
        names = self.names()
        usable_verdicts = self._engine.contains_many(
            [(self._views[name], query) for name in names],
            self._schema,
            witnesses=witnesses,
            on_error="capture",
            constraints=self._constraints,
        )
        reports = {}
        for name, usable in zip(names, usable_verdicts):
            if isinstance(usable, ReproError):
                reports[name] = ViewReport(name, False, False, False)
                continue
            exact = False
            if usable:
                exact = self._engine.contains(
                    query, self._views[name], self._schema, witnesses,
                    constraints=self._constraints,
                )
            counterexample = None
            if not usable and with_counterexamples:
                explanation = explain_containment(
                    self._views[name], query, self._schema, witnesses
                )
                counterexample = explanation.counterexample
            reports[name] = ViewReport(name, usable, exact, True, counterexample)
        return reports

    def containment_matrix(self, witnesses=None, jobs=None, timeout_s=None):
        """The pairwise containment matrix of the registered views.

        :param jobs: when given (> 1), shard the matrix across a
            :class:`repro.engine.ParallelContainmentEngine` worker pool
            (sharing this catalog's engine for in-process work and
            stats); *timeout_s* bounds each check, and timed-out entries
            appear as :data:`repro.engine.UNDECIDED`.
        :returns: ``(names, matrix)`` with ``matrix[i][j]`` True iff
            ``views[names[j]] ⊑ views[names[i]]`` (None when the pair is
            incomparable or outside the decidable fragment).
        """
        names = self.names()
        queries = [self._views[name] for name in names]
        if jobs is not None or timeout_s is not None:
            from repro.engine import ParallelContainmentEngine

            with ParallelContainmentEngine(
                jobs=jobs, timeout_s=timeout_s, engine=self._engine,
                constraints=self._constraints,
            ) as parallel:
                matrix = parallel.pairwise_matrix(
                    queries, self._schema, witnesses=witnesses
                )
        else:
            matrix = self._engine.pairwise_matrix(
                queries, self._schema, witnesses=witnesses,
                constraints=self._constraints,
            )
        return names, matrix

    def classify(self, query, witnesses=None, jobs=None, timeout_s=None):
        """Classify every registered view against *query*.

        The semantic-cache entry point: each view is labelled with one
        of :data:`repro.engine.CLASSIFICATIONS` (``equivalent`` /
        ``subsuming`` / ``contained`` / ``irrelevant``) via the engine's
        batched, label-cached
        :meth:`~repro.engine.ContainmentEngine.classify_many`.

        :param jobs: when given (> 1), shard across a
            :class:`repro.engine.ParallelContainmentEngine` sharing this
            catalog's engine; *timeout_s* bounds each direction, and a
            timed-out direction can only demote a label (an UNDECIDED
            check never classifies as ``subsuming``).
        :returns: ``{view name: label}``.
        """
        names = self.names()
        queries = [self._views[name] for name in names]
        if jobs is not None or timeout_s is not None:
            from repro.engine import ParallelContainmentEngine

            with ParallelContainmentEngine(
                jobs=jobs, timeout_s=timeout_s, engine=self._engine,
                constraints=self._constraints,
            ) as parallel:
                labels = parallel.classify_many(
                    query, queries, self._schema, witnesses=witnesses
                )
        else:
            labels = self._engine.classify_many(
                query, queries, self._schema, witnesses=witnesses,
                constraints=self._constraints,
            )
        return dict(zip(names, labels))

    def usable_views(self, query, witnesses=None):
        """The names of views that can answer *query*, sorted."""
        return tuple(
            name
            for name, report in sorted(self.analyze(query, witnesses=witnesses).items())
            if report.usable
        )

    def best_views(self, query, witnesses=None):
        """Usable views, exact ones first (the cheapest rewritings)."""
        reports = self.analyze(query, witnesses=witnesses)
        exact = [n for n, r in sorted(reports.items()) if r.exact]
        merely_usable = [
            n for n, r in sorted(reports.items()) if r.usable and not r.exact
        ]
        return tuple(exact + merely_usable)
