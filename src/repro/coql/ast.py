"""The COQL expression AST.

Expressions (paper, Appendix A — the conjunctive idealized OQL):

* ``Const(d)`` — an atomic constant;
* ``VarRef(x)`` — a variable bound by an enclosing ``Select`` generator;
* ``RelRef(R)`` — an input relation;
* ``Proj(e, A)`` — record projection ``e.A``;
* ``RecordExpr([A1: e1, …])`` — record construction;
* ``Singleton(e)`` — ``{e}``;
* ``EmptySet()`` — ``{}``;
* ``Flatten(e)`` — union of a set of sets;
* ``Select(head, generators, conditions)`` — ``select head from x1 in
  e1, … where a1 = b1 and …``; conditions compare *atomic* expressions
  only (allowing set equality would express set difference [7], leaving
  the conjunctive fragment).
* ``UnionBody([e1, …, ek])`` — ``e1 union … union ek``, the UCQ
  extension: a set-valued query body that is the union of its branches.
  The paper's COQL deliberately omits union from the *conjunctive*
  fragment; we admit it only at *linear* positions (top level,
  ``flatten`` arguments, generator sources), where
  :mod:`repro.coql.family` distributes it to the top and the decision
  procedure reduces to Sagiv–Yannakakis over the branch family.

All nodes are immutable and hashable.
"""

from repro.errors import ReproError
from repro.objects.values import is_atom
from repro.pickling import PicklableSlots

__all__ = [
    "Expr",
    "Const",
    "VarRef",
    "RelRef",
    "Proj",
    "RecordExpr",
    "Singleton",
    "EmptySet",
    "Flatten",
    "Select",
    "UnionBody",
]


class Expr(PicklableSlots):
    """Base class for COQL expressions."""

    __slots__ = ("_span",)

    def __setattr__(self, name, value):
        raise AttributeError("%s is immutable" % type(self).__name__)

    @property
    def span(self):
        """``(line, column)`` of the expression's first token (1-based).

        Only the parser fills this in; programmatically built nodes
        report None.  The span never participates in equality or
        hashing, so positioned and unpositioned copies of one query
        share caches.
        """
        try:
            return object.__getattribute__(self, "_span")
        except AttributeError:
            return None

    def with_span(self, span):
        """Attach a ``(line, column)`` source position; returns ``self``.

        Used by :mod:`repro.coql.parser`; safe on the otherwise
        immutable nodes because the span is metadata, invisible to
        ``__eq__``/``__hash__``.
        """
        object.__setattr__(self, "_span", span)
        return self

    def children(self):
        """Immediate sub-expressions (for generic traversals)."""
        return ()

    def free_vars(self):
        """Names of free variables of the expression."""
        out = set()
        _free_vars(self, out, set())
        return frozenset(out)

    def relations(self):
        """Names of input relations mentioned anywhere."""
        out = set()

        def walk(expr):
            if isinstance(expr, RelRef):
                out.add(expr.name)
            for child in expr.children():
                walk(child)

        walk(self)
        return frozenset(out)


def _free_vars(expr, out, bound):
    if isinstance(expr, VarRef):
        if expr.name not in bound:
            out.add(expr.name)
        return
    if isinstance(expr, Select):
        inner_bound = set(bound)
        for var, source in expr.generators:
            _free_vars(source, out, inner_bound)
            inner_bound.add(var)
        for left, right in expr.conditions:
            _free_vars(left, out, inner_bound)
            _free_vars(right, out, inner_bound)
        _free_vars(expr.head, out, inner_bound)
        return
    for child in expr.children():
        _free_vars(child, out, bound)


class Const(Expr):
    """An atomic constant."""

    __slots__ = ("value",)

    def __init__(self, value):
        if not is_atom(value):
            raise ReproError("COQL constants must be atomic, got %r" % (value,))
        object.__setattr__(self, "value", value)

    def __eq__(self, other):
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self):
        return hash(("coql.Const", self.value))

    def __repr__(self):
        return repr(self.value)


class VarRef(Expr):
    """A bound variable occurrence."""

    __slots__ = ("name",)

    def __init__(self, name):
        object.__setattr__(self, "name", name)

    def __eq__(self, other):
        return isinstance(other, VarRef) and other.name == self.name

    def __hash__(self):
        return hash(("coql.VarRef", self.name))

    def __repr__(self):
        return self.name


class RelRef(Expr):
    """A reference to an input relation."""

    __slots__ = ("name",)

    def __init__(self, name):
        object.__setattr__(self, "name", name)

    def __eq__(self, other):
        return isinstance(other, RelRef) and other.name == self.name

    def __hash__(self):
        return hash(("coql.RelRef", self.name))

    def __repr__(self):
        return self.name


class Proj(Expr):
    """Record projection ``e.A``."""

    __slots__ = ("expr", "attr")

    def __init__(self, expr, attr):
        object.__setattr__(self, "expr", expr)
        object.__setattr__(self, "attr", attr)

    def children(self):
        return (self.expr,)

    def __eq__(self, other):
        return (
            isinstance(other, Proj)
            and other.expr == self.expr
            and other.attr == self.attr
        )

    def __hash__(self):
        return hash(("coql.Proj", self.expr, self.attr))

    def __repr__(self):
        return "%r.%s" % (self.expr, self.attr)


class RecordExpr(Expr):
    """Record construction ``[A1: e1, ..., Ak: ek]``."""

    __slots__ = ("fields",)

    def __init__(self, fields):
        object.__setattr__(self, "fields", tuple(sorted(dict(fields).items())))

    def children(self):
        return tuple(e for __, e in self.fields)

    def keys(self):
        return tuple(k for k, __ in self.fields)

    def __getitem__(self, name):
        for key, value in self.fields:
            if key == name:
                return value
        raise KeyError(name)

    def __eq__(self, other):
        return isinstance(other, RecordExpr) and other.fields == self.fields

    def __hash__(self):
        return hash(("coql.RecordExpr", self.fields))

    def __repr__(self):
        return "[%s]" % ", ".join("%s: %r" % (k, v) for k, v in self.fields)


class Singleton(Expr):
    """``{e}``."""

    __slots__ = ("expr",)

    def __init__(self, expr):
        object.__setattr__(self, "expr", expr)

    def children(self):
        return (self.expr,)

    def __eq__(self, other):
        return isinstance(other, Singleton) and other.expr == self.expr

    def __hash__(self):
        return hash(("coql.Singleton", self.expr))

    def __repr__(self):
        return "{%r}" % (self.expr,)


class EmptySet(Expr):
    """``{}``."""

    __slots__ = ()

    def __eq__(self, other):
        return isinstance(other, EmptySet)

    def __hash__(self):
        return hash("coql.EmptySet")

    def __repr__(self):
        return "{}"


class Flatten(Expr):
    """``flatten(e)`` — union of a set of sets."""

    __slots__ = ("expr",)

    def __init__(self, expr):
        object.__setattr__(self, "expr", expr)

    def children(self):
        return (self.expr,)

    def __eq__(self, other):
        return isinstance(other, Flatten) and other.expr == self.expr

    def __hash__(self):
        return hash(("coql.Flatten", self.expr))

    def __repr__(self):
        return "flatten(%r)" % (self.expr,)


class Select(Expr):
    """``select head from x1 in e1, … where l1 = r1 and …``."""

    __slots__ = ("head", "generators", "conditions")

    def __init__(self, head, generators, conditions=()):
        generators = tuple((str(v), e) for v, e in generators)
        conditions = tuple(conditions)
        names = [v for v, __ in generators]
        if len(set(names)) != len(names):
            raise ReproError("duplicate generator variables: %r" % (names,))
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "generators", generators)
        object.__setattr__(self, "conditions", conditions)

    def children(self):
        out = [e for __, e in self.generators]
        for left, right in self.conditions:
            out.extend((left, right))
        out.append(self.head)
        return tuple(out)

    def __eq__(self, other):
        return (
            isinstance(other, Select)
            and other.head == self.head
            and other.generators == self.generators
            and other.conditions == self.conditions
        )

    def __hash__(self):
        return hash(("coql.Select", self.head, self.generators, self.conditions))

    def __repr__(self):
        gens = ", ".join("%s in %r" % (v, e) for v, e in self.generators)
        conds = " and ".join(
            "%r = %r" % (lhs, rhs) for lhs, rhs in self.conditions
        )
        text = "select %r from %s" % (self.head, gens)
        if conds:
            text += " where " + conds
        return "(%s)" % text


class UnionBody(Expr):
    """``e1 union … union ek`` — a union of set-valued branches.

    Union is associative, so nested :class:`UnionBody` branches are
    spliced flat at construction: ``UnionBody([UnionBody([a, b]), c])``
    equals ``UnionBody([a, b, c])``, which is what makes the
    pretty-printer round-trip (``a union b union c`` parses flat) hold
    for programmatically nested unions too.  Branch order is preserved —
    it is the deterministic decision order of the Sagiv–Yannakakis
    reduction — and duplicates are kept (COQL012 flags redundancy; the
    constructor must not silently change what the user wrote).
    """

    __slots__ = ("branches",)

    def __init__(self, branches):
        spliced = []
        for branch in branches:
            if isinstance(branch, UnionBody):
                spliced.extend(branch.branches)
            else:
                spliced.append(branch)
        if len(spliced) < 2:
            raise ReproError(
                "a union body needs at least two branches, got %d"
                % len(spliced)
            )
        object.__setattr__(self, "branches", tuple(spliced))

    def children(self):
        return self.branches

    def __eq__(self, other):
        return isinstance(other, UnionBody) and other.branches == self.branches

    def __hash__(self):
        return hash(("coql.UnionBody", self.branches))

    def __repr__(self):
        return "(%s)" % " union ".join(repr(b) for b in self.branches)
