"""COQL — conjunctive idealized OQL (paper, Section 3).

COQL is the paper's conjunctive query language for complex objects: the
fragment of OQL with ``select … from … where``, ``flatten``, the
singleton ``{E}`` and the empty set ``{}``, where the ``where`` clause is
a conjunction of equalities between *atomic* expressions.  It is
equivalent to the NRC core calculus of [7] with constants and atomic
equality, is a conservative extension of conjunctive queries [43], and
corresponds to the product/flatten/select/map/singleton fragment of the
Abiteboul–Beeri algebra and to the Thomas–Fischer fragment
``{π, σ, ×, outernest, unnest}``.

The package provides:

* :mod:`repro.coql.ast` / :mod:`repro.coql.parser` — expressions and a
  concrete OQL-flavoured syntax;
* :mod:`repro.coql.typecheck` — schema-directed type inference;
* :mod:`repro.coql.eval` — the direct interpreter over nested databases;
* :mod:`repro.coql.normalize` — reduction to comprehension normal form
  (the rewriting of [43] specialised to COQL);
* :mod:`repro.coql.encode` — the Section-5 encoding of a normalized
  query as a tree of conjunctive queries with index variables;
* :mod:`repro.coql.containment` — the paper's decision procedures:
  :func:`contains` (Theorem 4.1), :func:`weakly_equivalent`, and
  :func:`equivalent` (exact for queries that provably produce no empty
  sets — the case where the paper shows equivalence and weak
  equivalence coincide).
"""

from repro.coql.ast import (
    Expr,
    Const,
    VarRef,
    RelRef,
    Proj,
    RecordExpr,
    Singleton,
    EmptySet,
    Flatten,
    Select,
    UnionBody,
)
from repro.coql.family import QueryFamily, family_of, union_branches
from repro.coql.parser import parse_coql
from repro.coql.typecheck import typecheck
from repro.coql.eval import evaluate_coql
from repro.coql.normalize import normalize, NFSet, NFEmpty, NFRecord, NFPath, NFConst
from repro.coql.encode import encode_query, paired_encoding
from repro.coql.containment import (
    contains,
    weakly_equivalent,
    equivalent,
    empty_set_free,
)
from repro.coql.minimize import minimize_coql
from repro.coql.explain import explain_containment, ContainmentExplanation
from repro.coql.views import ViewCatalog, ViewReport

__all__ = [
    "Expr",
    "Const",
    "VarRef",
    "RelRef",
    "Proj",
    "RecordExpr",
    "Singleton",
    "EmptySet",
    "Flatten",
    "Select",
    "UnionBody",
    "QueryFamily",
    "family_of",
    "union_branches",
    "parse_coql",
    "typecheck",
    "evaluate_coql",
    "normalize",
    "NFSet",
    "NFEmpty",
    "NFRecord",
    "NFPath",
    "NFConst",
    "encode_query",
    "paired_encoding",
    "contains",
    "weakly_equivalent",
    "equivalent",
    "empty_set_free",
    "minimize_coql",
    "explain_containment",
    "ContainmentExplanation",
    "ViewCatalog",
    "ViewReport",
]
