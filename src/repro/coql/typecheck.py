"""Schema-directed type checking for COQL.

A schema maps relation names to row types (:class:`RecordType`); a
relation itself has type ``SetType(row type)``.  :func:`typecheck`
returns the type of the expression or raises :class:`TypeCheckError`.

Checks enforced (per the language definition in the paper's Appendix A):
generators range over set-typed expressions; projections apply to
records with the named attribute; ``where`` compares atomic expressions
only; ``flatten`` applies to sets of sets.
"""

from repro.errors import TypeCheckError, union_arity_mismatch
from repro.objects.types import (
    ATOM,
    AtomType,
    RecordType,
    SetType,
    EmptySetType,
    EMPTY_SET,
    join_types,
)
from repro.coql.ast import (
    Const,
    VarRef,
    RelRef,
    Proj,
    RecordExpr,
    Singleton,
    EmptySet,
    Flatten,
    Select,
    UnionBody,
)

__all__ = ["typecheck"]


def _at(expr):
    """`` (line L, col C)`` suffix for parsed nodes, else empty."""
    span = expr.span
    if span is None:
        return ""
    return " (line %d, col %d)" % span


def typecheck(expr, schema, env=None):
    """Infer the type of *expr* under *schema* (``{rel: RecordType}``).

    :param env: optional ``{var name: type}`` for free variables.
    """
    return _infer(expr, schema, dict(env or {}))


def _infer(expr, schema, env):
    if isinstance(expr, Const):
        return ATOM
    if isinstance(expr, VarRef):
        if expr.name not in env:
            raise TypeCheckError(
                "unbound variable %s%s" % (expr.name, _at(expr)),
                span=expr.span,
            )
        return env[expr.name]
    if isinstance(expr, RelRef):
        if expr.name not in schema:
            raise TypeCheckError(
                "unknown relation %s%s" % (expr.name, _at(expr)),
                span=expr.span,
            )
        row = schema[expr.name]
        if not isinstance(row, RecordType):
            raise TypeCheckError(
                "schema entry for %s must be a RecordType, got %r"
                % (expr.name, row)
            )
        return SetType(row)
    if isinstance(expr, Proj):
        base = _infer(expr.expr, schema, env)
        if not isinstance(base, RecordType):
            raise TypeCheckError(
                "projection .%s applied to non-record type %r%s"
                % (expr.attr, base, _at(expr)),
                span=expr.span,
            )
        if expr.attr not in base:
            raise TypeCheckError(
                "record type %r has no attribute %s%s"
                % (base, expr.attr, _at(expr)),
                span=expr.span,
            )
        return base[expr.attr]
    if isinstance(expr, RecordExpr):
        return RecordType({k: _infer(e, schema, env) for k, e in expr.fields})
    if isinstance(expr, Singleton):
        return SetType(_infer(expr.expr, schema, env))
    if isinstance(expr, EmptySet):
        return EMPTY_SET
    if isinstance(expr, Flatten):
        outer = _infer(expr.expr, schema, env)
        if isinstance(outer, EmptySetType):
            return EMPTY_SET
        if not isinstance(outer, SetType):
            raise TypeCheckError(
                "flatten applied to non-set type %r%s" % (outer, _at(expr)),
                span=expr.span,
            )
        inner = outer.element
        if isinstance(inner, EmptySetType):
            return EMPTY_SET
        if not isinstance(inner, SetType):
            raise TypeCheckError(
                "flatten applied to a set of non-sets (%r)%s"
                % (outer, _at(expr)),
                span=expr.span,
            )
        return inner
    if isinstance(expr, Select):
        scope = dict(env)
        for var, source in expr.generators:
            source_type = _infer(source, schema, scope)
            if isinstance(source_type, EmptySetType):
                element = EMPTY_SET  # vacuous: the loop body never runs
            elif isinstance(source_type, SetType):
                element = source_type.element
            else:
                raise TypeCheckError(
                    "generator %s ranges over non-set type %r%s"
                    % (var, source_type, _at(source)),
                    span=source.span,
                )
            scope[var] = element
        for left, right in expr.conditions:
            for side in (left, right):
                side_type = _infer(side, schema, scope)
                if not isinstance(side_type, AtomType):
                    raise TypeCheckError(
                        "COQL conditions compare atomic expressions only; "
                        "%r has type %r%s" % (side, side_type, _at(side)),
                        span=side.span,
                    )
        return SetType(_infer(expr.head, schema, scope))
    if isinstance(expr, UnionBody):
        return _infer_union(expr, schema, env)
    raise TypeCheckError("unknown COQL expression %r" % (expr,))


def _record_arity(branch_type):
    """Head arity of a set-of-records branch type, else None."""
    if isinstance(branch_type, SetType) and isinstance(
        branch_type.element, RecordType
    ):
        return len(branch_type.element.keys())
    return None


def _infer_union(expr, schema, env):
    """Branch types joined via :func:`join_types`; every mismatch is a
    spanned diagnostic pointing at the offending branch (COQL013 lints
    on exactly this failure)."""
    joined = None
    for branch in expr.branches:
        branch_type = _infer(branch, schema, env)
        if not isinstance(branch_type, (SetType, EmptySetType)):
            raise TypeCheckError(
                "union branch has non-set type %r%s"
                % (branch_type, _at(branch)),
                span=branch.span or expr.span,
            )
        if joined is None:
            joined = branch_type
            continue
        try:
            joined = join_types(joined, branch_type)
        except TypeCheckError as exc:
            arities = [_record_arity(joined), _record_arity(branch_type)]
            if None not in arities and arities[0] != arities[1]:
                message = union_arity_mismatch(arities)
            else:
                message = "union branch shapes do not join: %s" % (exc,)
            raise TypeCheckError(
                message + _at(branch), span=branch.span or expr.span
            )
    return joined
