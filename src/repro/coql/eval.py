"""Direct interpreter for COQL over (possibly nested) databases.

The reference semantics (following [7]): ``Select`` iterates generator
bindings left to right, filters with the atomic equalities, and collects
the head values into a set.  This interpreter is the ground truth the
decision procedures are validated against.
"""

from repro.errors import EvaluationError
from repro.objects.values import Record, CSet, is_atom
from repro.coql.ast import (
    Const,
    VarRef,
    RelRef,
    Proj,
    RecordExpr,
    Singleton,
    EmptySet,
    Flatten,
    Select,
    UnionBody,
)

__all__ = ["evaluate_coql"]


def evaluate_coql(expr, database, env=None):
    """Evaluate a COQL expression against *database*.

    :param env: optional ``{var name: value}`` for free variables.
    :returns: a complex-object value.
    """
    return _eval(expr, database, dict(env or {}))


def _eval(expr, database, env):
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, VarRef):
        if expr.name not in env:
            raise EvaluationError("unbound variable %s" % expr.name)
        return env[expr.name]
    if isinstance(expr, RelRef):
        return CSet(database[expr.name].rows)
    if isinstance(expr, Proj):
        record = _eval(expr.expr, database, env)
        if not isinstance(record, Record):
            raise EvaluationError(
                "projection .%s applied to non-record %r" % (expr.attr, record)
            )
        try:
            return record[expr.attr]
        except KeyError:
            raise EvaluationError("record %r has no attribute %s" % (record, expr.attr))
    if isinstance(expr, RecordExpr):
        return Record({k: _eval(e, database, env) for k, e in expr.fields})
    if isinstance(expr, Singleton):
        return CSet([_eval(expr.expr, database, env)])
    if isinstance(expr, EmptySet):
        return CSet()
    if isinstance(expr, Flatten):
        outer = _eval(expr.expr, database, env)
        if not isinstance(outer, CSet):
            raise EvaluationError("flatten applied to non-set %r" % (outer,))
        members = []
        for inner in outer:
            if not isinstance(inner, CSet):
                raise EvaluationError(
                    "flatten: element %r is not a set" % (inner,)
                )
            members.extend(inner)
        return CSet(members)
    if isinstance(expr, Select):
        return CSet(_select(expr, database, env))
    if isinstance(expr, UnionBody):
        members = []
        for branch in expr.branches:
            value = _eval(branch, database, env)
            if not isinstance(value, CSet):
                raise EvaluationError(
                    "union branch evaluated to non-set %r" % (value,)
                )
            members.extend(value)
        return CSet(members)
    raise EvaluationError("unknown COQL expression %r" % (expr,))


def _select(expr, database, env):
    out = []

    def loop(position, scope):
        if position == len(expr.generators):
            for left, right in expr.conditions:
                lv = _eval(left, database, scope)
                rv = _eval(right, database, scope)
                if not is_atom(lv) or not is_atom(rv):
                    raise EvaluationError(
                        "COQL conditions compare atomic values only, got "
                        "%r = %r" % (lv, rv)
                    )
                if lv != rv:
                    return
            out.append(_eval(expr.head, database, scope))
            return
        var, source = expr.generators[position]
        collection = _eval(source, database, scope)
        if not isinstance(collection, CSet):
            raise EvaluationError(
                "generator %s ranges over non-set %r" % (var, collection)
            )
        for member in collection:
            scope[var] = member
            loop(position + 1, scope)
        scope.pop(var, None)

    loop(0, dict(env))
    return out
