"""Normalization of COQL to comprehension normal form.

Using the rewriting techniques of Wong [43] (specialised to COQL), every
COQL expression of set type reduces to a *union-free comprehension
normal form*:

    NFSet(gens, conds, head)   ≡   { head | x1 ∈ s1, …, xn ∈ sn, conds }

where each generator source ``si`` is an input relation (or, for nested
inputs, a set-valued path into an earlier variable), each condition
equates two atomic paths/constants, and the head is built from atomic
paths, constants, records, the always-empty set :class:`NFEmpty`, and
nested :class:`NFSet` (which may reference outer generator variables —
those references become the *index* of the Section-5 encoding).

The rewrite rules applied (all standard NRC equations):

* ``x ∈ {e}``            — inline ``e`` for ``x``;
* ``x ∈ {}``             — the comprehension is empty;
* ``x ∈ {h | G, C}``     — merge ``G``, ``C`` into the outer comprehension
  and bind ``x`` to ``h`` (sets are duplicate-free, so this is exact);
* ``flatten {h | G, C}`` — fuse: ``{h' | G, G', C, C'}`` when
  ``h = {h' | G', C'}``;
* constant conditions    — ``c = c`` is dropped, ``c = d`` (c ≠ d)
  collapses the comprehension to empty.

Generator variables of the normal form are freshly numbered (``g0``,
``g1``, …), so inlined sub-comprehensions can never capture variables.
"""

import itertools

from repro.errors import TypeCheckError, UnsupportedQueryError
from repro.coql.ast import (
    Const,
    VarRef,
    RelRef,
    Proj,
    RecordExpr,
    Singleton,
    EmptySet,
    Flatten,
    Select,
    UnionBody,
)

__all__ = ["normalize", "NFConst", "NFPath", "NFRecord", "NFEmpty", "NFSet"]


class NFValue:
    """Base class for normal-form values."""

    __slots__ = ()

    def __setattr__(self, name, value):
        raise AttributeError("%s is immutable" % type(self).__name__)


class NFConst(NFValue):
    """An atomic constant."""

    __slots__ = ("value",)

    def __init__(self, value):
        object.__setattr__(self, "value", value)

    def __eq__(self, other):
        return isinstance(other, NFConst) and other.value == self.value

    def __hash__(self):
        return hash(("NFConst", self.value))

    def __repr__(self):
        return repr(self.value)


class NFPath(NFValue):
    """A path ``var.a1.….ak`` into a generator variable."""

    __slots__ = ("var", "attrs")

    def __init__(self, var, attrs=()):
        object.__setattr__(self, "var", var)
        object.__setattr__(self, "attrs", tuple(attrs))

    def extend(self, attr):
        return NFPath(self.var, self.attrs + (attr,))

    def __eq__(self, other):
        return (
            isinstance(other, NFPath)
            and other.var == self.var
            and other.attrs == self.attrs
        )

    def __hash__(self):
        return hash(("NFPath", self.var, self.attrs))

    def __repr__(self):
        return ".".join((self.var,) + self.attrs)


class NFRecord(NFValue):
    """A record of normal-form values."""

    __slots__ = ("fields",)

    def __init__(self, fields):
        object.__setattr__(self, "fields", tuple(sorted(dict(fields).items())))

    def keys(self):
        return tuple(k for k, __ in self.fields)

    def __getitem__(self, name):
        for key, value in self.fields:
            if key == name:
                return value
        raise KeyError(name)

    def __eq__(self, other):
        return isinstance(other, NFRecord) and other.fields == self.fields

    def __hash__(self):
        return hash(("NFRecord", self.fields))

    def __repr__(self):
        return "[%s]" % ", ".join("%s: %r" % (k, v) for k, v in self.fields)


class NFEmpty(NFValue):
    """The always-empty set."""

    __slots__ = ()

    def __eq__(self, other):
        return isinstance(other, NFEmpty)

    def __hash__(self):
        return hash("NFEmpty")

    def __repr__(self):
        return "{}"


class NFSet(NFValue):
    """A union-free comprehension ``{head | gens, conds}``.

    ``gens`` is a tuple of ``(variable, source)`` where *source* is an
    input-relation name (str) or a set-valued :class:`NFPath`;
    ``conds`` a tuple of ``(left, right)`` with atomic sides.
    """

    __slots__ = ("gens", "conds", "head")

    def __init__(self, gens, conds, head):
        object.__setattr__(self, "gens", tuple(gens))
        object.__setattr__(self, "conds", tuple(conds))
        object.__setattr__(self, "head", head)

    def __eq__(self, other):
        return (
            isinstance(other, NFSet)
            and other.gens == self.gens
            and other.conds == self.conds
            and other.head == self.head
        )

    def __hash__(self):
        return hash(("NFSet", self.gens, self.conds, self.head))

    def bound_vars(self):
        return tuple(v for v, __ in self.gens)

    def __repr__(self):
        gens = ", ".join(
            "%s in %s" % (v, s if isinstance(s, str) else repr(s))
            for v, s in self.gens
        )
        conds = ", ".join("%r = %r" % (lhs, rhs) for lhs, rhs in self.conds)
        parts = ", ".join(p for p in (gens, conds) if p)
        return "{%r | %s}" % (self.head, parts)


def normalize(expr):
    """Reduce a COQL expression to normal form.

    Returns an :class:`NFValue`; for well-typed set-valued queries this
    is an :class:`NFSet` or :class:`NFEmpty`.
    """
    counter = itertools.count()

    def fresh():
        return "g%d" % next(counter)

    return _norm(expr, {}, fresh)


def _norm(expr, env, fresh):
    if isinstance(expr, Const):
        return NFConst(expr.value)
    if isinstance(expr, VarRef):
        if expr.name not in env:
            raise TypeCheckError("unbound variable %s" % expr.name)
        return env[expr.name]
    if isinstance(expr, RelRef):
        var = fresh()
        return NFSet(((var, expr.name),), (), NFPath(var))
    if isinstance(expr, Proj):
        base = _norm(expr.expr, env, fresh)
        if isinstance(base, NFPath):
            return base.extend(expr.attr)
        if isinstance(base, NFRecord):
            try:
                return base[expr.attr]
            except KeyError:
                raise TypeCheckError(
                    "record %r has no attribute %s" % (base, expr.attr)
                )
        raise TypeCheckError("projection .%s on non-record %r" % (expr.attr, base))
    if isinstance(expr, RecordExpr):
        return NFRecord({k: _norm(e, env, fresh) for k, e in expr.fields})
    if isinstance(expr, Singleton):
        return NFSet((), (), _norm(expr.expr, env, fresh))
    if isinstance(expr, EmptySet):
        return NFEmpty()
    if isinstance(expr, Flatten):
        return _flatten(_norm(expr.expr, env, fresh), fresh)
    if isinstance(expr, Select):
        return _select(expr, env, fresh)
    if isinstance(expr, UnionBody):
        # The normal form is *union-free*: union bodies are distributed
        # to the top by repro.coql.family.union_branches and each branch
        # normalizes separately (one NFSet per branch of the family).
        raise UnsupportedQueryError(
            "union bodies normalize per branch; expand with "
            "repro.coql.family.union_branches (or decide through the "
            "engine, which does) before normalizing",
            span=expr.span,
        )
    raise TypeCheckError("unknown COQL expression %r" % (expr,))


def _flatten(nf, fresh):
    if isinstance(nf, NFEmpty):
        return NFEmpty()
    if isinstance(nf, NFPath):
        # A set-of-sets path (nested input): expand one generator level.
        var = fresh()
        return _flatten(NFSet(((var, nf),), (), NFPath(var)), fresh)
    if not isinstance(nf, NFSet):
        raise TypeCheckError("flatten applied to non-set %r" % (nf,))
    head = nf.head
    if isinstance(head, NFEmpty):
        return NFEmpty()
    if isinstance(head, NFSet):
        return NFSet(
            nf.gens + head.gens, nf.conds + head.conds, head.head
        )
    if isinstance(head, NFPath):
        var = fresh()
        return NFSet(nf.gens + ((var, head),), nf.conds, NFPath(var))
    raise TypeCheckError("flatten over a set of non-sets (%r)" % (head,))


def _select(expr, env, fresh):
    scope = dict(env)
    gens = []
    conds = []
    for var, source in expr.generators:
        source_nf = _norm(source, scope, fresh)
        if isinstance(source_nf, NFEmpty):
            return NFEmpty()
        if isinstance(source_nf, NFPath):
            bound = fresh()
            gens.append((bound, source_nf))
            scope[var] = NFPath(bound)
            continue
        if isinstance(source_nf, NFSet):
            gens.extend(source_nf.gens)
            conds.extend(source_nf.conds)
            scope[var] = source_nf.head
            continue
        raise TypeCheckError(
            "generator %s ranges over non-set %r" % (var, source_nf)
        )
    for left, right in expr.conditions:
        left_nf = _norm(left, scope, fresh)
        right_nf = _norm(right, scope, fresh)
        for side in (left_nf, right_nf):
            if not isinstance(side, (NFConst, NFPath)):
                raise UnsupportedQueryError(
                    "COQL conditions compare atomic expressions only, "
                    "got %r" % (side,)
                )
        if isinstance(left_nf, NFConst) and isinstance(right_nf, NFConst):
            if left_nf.value == right_nf.value:
                continue  # trivially true
            return NFEmpty()  # trivially false: the comprehension is empty
        if left_nf == right_nf:
            continue
        conds.append((left_nf, right_nf))
    head = _norm(expr.head, scope, fresh)
    return NFSet(tuple(gens), tuple(conds), head)
