"""Query families: distributing COQL union bodies to the top.

The decision procedure works on *union-free* grouping-query trees, so a
COQL query with ``union`` bodies is first rewritten into a **family of
union-free branches** whose union it equals.  Containment then reduces
to the Sagiv–Yannakakis condition over the family (see
:mod:`repro.cq.unions` for the flat baseline): ``⋃ᵢ Qᵢ ⊑ ⋃ⱼ Q'ⱼ`` holds
whenever every branch ``Qᵢ`` is contained in *some* branch ``Q'ⱼ``.
For the Hoare order this all/any reduction is always *sound* (each
``Q'ⱼ`` is dominated by the union); for flat single-level unions it is
also complete [36] — completeness for the nested case is not claimed
(DESIGN.md §7).

Union distributes out of exactly the *linear* positions — those where
the surrounding context is a homomorphism of sets:

* the top level: ``a union b`` is already a family;
* ``flatten``: ``flatten(a union b) = flatten(a) union flatten(b)``;
* generator sources: ``select h from x in (a union b), …`` is the union
  over the branch choices (one branch combination per family member,
  the cross product when several generators carry unions) — sets are
  duplicate-free, so the rewrite is exact.

A union anywhere else (a select head, a singleton, a record field, a
condition side) changes *element-level* values, not the outer set, and
cannot be distributed; :func:`union_branches` raises a spanned
:class:`UnsupportedQueryError` for those rather than risking a wrong
verdict.
"""

import itertools

from repro.errors import UnsupportedQueryError
from repro.coql.ast import (
    Flatten,
    Select,
    UnionBody,
)

__all__ = ["QueryFamily", "union_branches", "family_of", "contains_union"]


def contains_union(expr):
    """True when *expr* mentions a ``union`` anywhere."""
    if isinstance(expr, UnionBody):
        return True
    return any(contains_union(child) for child in expr.children())


def _reject_nonlinear(expr, where):
    """Raise (spanned) on the first union in a non-distributable spot."""
    if isinstance(expr, UnionBody):
        raise UnsupportedQueryError(
            "union in a %s is not distributable: it changes element-level "
            "set values, not the outer union of branches; only top-level "
            "unions, flatten arguments, and generator sources are "
            "supported" % where,
            span=expr.span,
        )
    for child in expr.children():
        _reject_nonlinear(child, where)


def union_branches(expr):
    """The union-free branches whose union equals *expr*, in
    deterministic (source) order, duplicates removed first-wins.

    Union-free queries expand to the one-element family ``(expr,)`` —
    the same object, so the singleton path through the engine prepares
    and caches exactly what it did before families existed.
    """
    branches = _expand(expr)
    seen = set()
    out = []
    for branch in branches:
        if branch in seen:
            continue
        seen.add(branch)
        out.append(branch)
    return tuple(out)


def _expand(expr):
    if isinstance(expr, UnionBody):
        out = []
        for branch in expr.branches:
            out.extend(_expand(branch))
        return out
    if isinstance(expr, Flatten):
        inner = _expand(expr.expr)
        if len(inner) == 1 and inner[0] is expr.expr:
            return [expr]
        return [Flatten(branch).with_span(expr.span) for branch in inner]
    if isinstance(expr, Select):
        _reject_nonlinear(expr.head, "select head")
        for left, right in expr.conditions:
            _reject_nonlinear(left, "condition")
            _reject_nonlinear(right, "condition")
        alternatives = []
        changed = False
        for var, source in expr.generators:
            choices = _expand(source)
            if len(choices) != 1 or choices[0] is not source:
                changed = True
            alternatives.append([(var, choice) for choice in choices])
        if not changed:
            return [expr]
        return [
            Select(expr.head, combination, expr.conditions).with_span(
                expr.span
            )
            for combination in itertools.product(*alternatives)
        ]
    # Leaves and element-level constructors: any union below here is
    # non-distributable.
    for child in expr.children():
        _reject_nonlinear(child, "nested value position")
    return [expr]


class QueryFamily:
    """One COQL query as a family of union-free branch ASTs.

    Attributes:
        source: the original :class:`~repro.coql.ast.Expr`.
        branches: the union-free branches, in deterministic expansion
            order (the branch-decision order of the engines — sequential
            and parallel agree because both read this tuple).
    """

    __slots__ = ("source", "branches")

    def __init__(self, source, branches):
        self.source = source
        self.branches = tuple(branches)

    @property
    def is_singleton(self):
        return len(self.branches) == 1

    def __len__(self):
        return len(self.branches)

    def __iter__(self):
        return iter(self.branches)

    def __repr__(self):
        return "QueryFamily(%d branch(es))" % len(self.branches)


def family_of(expr):
    """The :class:`QueryFamily` of *expr* (singleton when union-free)."""
    return QueryFamily(expr, union_branches(expr))
