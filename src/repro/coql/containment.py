"""Containment and equivalence of COQL queries (Theorems 4.1 and 4.2).

Containment ``Q ⊑ Q'`` is the Hoare order on answers, on every database:
``Q(D) ⊑ Q'(D)`` where ``S ⊑ S' iff ∀x∈S ∃y∈S'. x ⊑ y`` recursively.

The decision procedure (Section 5):

1. normalize both queries and encode them as grouping-query trees;
2. an element whose inner set is empty is dominated by any element with
   a matching atomic part, so each *truncation pattern* (a prefix-closed
   pruning of the subquery's set nodes) yields one simulation
   obligation: ``sub.truncate(P) ⊴ sup.truncate(P)``;
3. containment holds iff every obligation does.  Patterns that prune a
   *provably non-empty* component are implied by larger patterns and are
   skipped — for queries that provably produce no empty sets only the
   unpruned obligation remains, which is the paper's observation that
   the exponential component disappears in that case.

``weak equivalence`` is containment both ways; by the paper's theorem it
coincides with equivalence whenever both queries are empty-set free,
which is what :func:`equivalent` decides (the general equivalence
question is the open problem the paper answers only partially).

The module-level entry points delegate to the process-wide
:class:`repro.engine.ContainmentEngine` (see :mod:`repro.engine`), which
memoizes prepared queries and simulation verdicts; the uncached
reference pipeline (:func:`prepare`, :func:`_contains_encoded`) is kept
here both as the specification the engine must agree with and for
callers that need a cold path.
"""

import itertools

from repro.errors import (
    IncomparableQueriesError,
    UnsupportedQueryError,
)
from repro.objects.types import RecordType, ATOM
from repro.cq.homomorphism import find_homomorphism, ground_atoms_of_query
from repro.cq.query import frozen_constant, ConjunctiveQuery
from repro.grouping.simulation import is_simulated
from repro.coql.encode import paired_encoding, shapes_compatible

__all__ = [
    "contains",
    "weakly_equivalent",
    "equivalent",
    "empty_set_free",
    "prepare",
    "as_schema",
]


def as_schema(schema):
    """Normalize schema specs: ``{name: RecordType}`` or ``{name:
    iterable of attribute names}`` (attributes then atomic) or a
    Database (its schema is used)."""
    from repro.objects.database import Database

    if isinstance(schema, Database):
        return schema.schema()
    out = {}
    for name, spec in schema.items():
        if isinstance(spec, RecordType):
            out[name] = spec
        else:
            out[name] = RecordType({attr: ATOM for attr in spec})
    return out


def prepare(query, schema, name="q"):
    """Parse (if textual), type-check, normalize, and encode a query.

    The *uncached reference run* of the staged pipeline: one
    :class:`repro.pipeline.Pipeline` invocation with no artifact store,
    so every stage recomputes.  The engine's memoized ``prepare`` drives
    the very same stage code over a store — there is exactly one
    implementation of the front half, and it lives in
    :mod:`repro.pipeline.stages`.
    """
    from repro.pipeline.stages import Pipeline

    return Pipeline(store=None).prepare(query, schema, name)


def contains(sup, sub, schema, witnesses=None, method="certificate"):
    """True iff ``sub ⊑ sup`` on every database (Theorem 4.1).

    :param sup: the containing query (text or :class:`Expr`).
    :param sub: the contained query.
    :param schema: flat input schema (``{name: attrs}``/RecordTypes/DB).
    :param method: ``"certificate"`` (the NP certificate search, default)
        or ``"canonical"`` (semantic evaluation of the simulation
        condition over the canonical database family — an independent
        implementation kept for cross-validation and pedagogy; slower).
    """
    from repro.engine import default_engine

    return default_engine().contains(
        sup, sub, schema, witnesses=witnesses, method=method
    )


def _contains_encoded(sup_encoded, sub_encoded, witnesses=None,
                      method="certificate"):
    if not sub_encoded.is_empty and not sup_encoded.is_empty:
        if not shapes_compatible(sub_encoded.shape, sup_encoded.shape):
            raise IncomparableQueriesError(
                "queries have different output shapes: %r vs %r"
                % (sub_encoded.shape, sup_encoded.shape)
            )
    sub_query, sup_query, verdict = paired_encoding(sub_encoded, sup_encoded)
    if verdict is not None:
        return verdict
    if sub_query is None:
        raise IncomparableQueriesError(
            "queries have incompatible nested structure"
        )
    if method == "certificate":
        def decide(a, b):
            return is_simulated(a, b, witnesses=witnesses)
    elif method == "canonical":
        from repro.grouping.bruteforce import check_simulation_on_canonical

        def decide(a, b):
            return check_simulation_on_canonical(a, b, max_witnesses=witnesses)
    else:
        raise UnsupportedQueryError("unknown method %r" % (method,))
    # After paired_encoding the two queries have identical path sets, so
    # patterns derived from sub_query are valid truncations of sup_query
    # as well; GroupingQuery.truncate rejects any pattern that is not.
    for pattern in _obligation_patterns(sub_query):
        sub_t = sub_query.truncate(pattern)
        sup_t = sup_query.truncate(pattern)
        if not decide(sub_t, sup_t):
            return False
    return True


def _obligation_patterns(query, is_nonempty=None):
    """Yield the truncation patterns whose simulation obligations are not
    implied by a larger pattern.

    A pattern may prune a set node only when the node is *not* provably
    non-empty (pruning a provably non-empty node is implied by keeping
    it).  Patterns are prefix-closed path sets containing the root.

    :param is_nonempty: optional ``(query, path) -> bool`` replacing
        :func:`_provably_nonempty` (the engine injects its memoized
        version here).
    """
    if is_nonempty is None:
        is_nonempty = _provably_nonempty
    paths = [p for p in query.paths() if p]
    optional = [p for p in paths if not is_nonempty(query, p)]
    all_paths = set(query.paths())
    seen = set()
    for pruned in _subsets(optional):
        pruned_closure = {
            p for p in all_paths if any(p[: len(q)] == q for q in pruned)
        }
        kept = frozenset(all_paths - pruned_closure)
        if kept in seen:
            continue
        seen.add(kept)
        yield kept


def _subsets(items):
    for size in range(len(items) + 1):
        yield from itertools.combinations(items, size)


def _provably_nonempty(query, path):
    """True when the group at *path* is non-empty for every parent row.

    Sufficient syntactic test: a homomorphism from the node's full body
    into the parent's full body that fixes every parent variable — then
    any parent assignment extends to a child assignment.
    """
    parent_body = query.full_body(path[:-1])
    child_body = query.full_body(path)
    parent_vars = {v for atom in parent_body for v in atom.variables()}
    carrier = ConjunctiveQuery((), parent_body, "parent")
    target = ground_atoms_of_query(carrier)
    fixed = {v: frozen_constant(v) for v in parent_vars}
    return find_homomorphism(child_body, target, fixed=fixed) is not None


def weakly_equivalent(q1, q2, schema, witnesses=None, method="certificate"):
    """True iff ``Q1 ⊑ Q2`` and ``Q2 ⊑ Q1`` (decidable in general).

    *method* selects the decision procedure for **both** directions,
    exactly as in :func:`contains`.
    """
    from repro.engine import default_engine

    return default_engine().weakly_equivalent(
        q1, q2, schema, witnesses=witnesses, method=method
    )


def empty_set_free(query, schema):
    """True when the query provably never produces an empty set.

    Sufficient syntactic condition: no always-empty components, and every
    nested set node is provably non-empty for each parent row.
    """
    from repro.engine import default_engine

    return default_engine().empty_set_free(query, schema)


def equivalent(q1, q2, schema, witnesses=None, method="certificate"):
    """Decide equivalence for empty-set-free queries.

    By the paper's theorem, weak equivalence coincides with equivalence
    when both queries are guaranteed not to produce empty sets (e.g. all
    ``nest``/``unnest`` pipelines).  For queries without that guarantee
    the general equivalence question is the open problem the paper
    answers only partially, and this function raises
    :class:`UnsupportedQueryError` — use :func:`weakly_equivalent`.

    *method* is threaded through to both containment directions.
    """
    from repro.engine import default_engine

    return default_engine().equivalent(
        q1, q2, schema, witnesses=witnesses, method=method
    )
