"""Minimization of COQL queries (redundant-subgoal elimination).

The paper's introduction motivates containment with exactly this: "query
containment can be used to find redundant subgoals in a query and to
test whether two formulations of a query are equivalent."  This module
lifts classical conjunctive-query minimization to COQL: drop a generator
(together with the conditions that mention only its variable) or drop a
condition, keep the result when it is *weakly equivalent* to the
original, repeat to a fixed point.

Weak equivalence is the right invariant here: it is the decidable notion
the paper provides in general, and for empty-set-free queries it
coincides with equivalence.
"""

from repro.errors import ReproError, UnsupportedQueryError, IncomparableQueriesError
from repro.coql.ast import Select, Expr
from repro.coql.parser import parse_coql
from repro.coql.containment import weakly_equivalent, as_schema

__all__ = ["minimize_coql"]


def minimize_coql(query, schema, witnesses=None, engine=None):
    """Return a weakly equivalent query with redundant parts removed.

    Greedy fixpoint: repeatedly try to drop one generator or one
    condition of any ``Select`` (outer or nested); a candidate is kept
    when it parses, type-checks, and is weakly equivalent to the current
    query.  The result is not guaranteed to be a globally minimum core,
    but no single generator/condition of it is removable.

    :param query: COQL text or :class:`Expr`.
    :param engine: a :class:`repro.engine.ContainmentEngine` to decide
        the candidate equivalences on (default: the process-wide
        engine).  The fixpoint re-checks heavily overlapping queries, so
        a warm artifact store makes minimization incremental — the
        analyzer's COQL005 rule and :meth:`ContainmentEngine.minimize`
        pass their own engine for exactly this reason.
    :returns: the minimized :class:`Expr`.
    """
    schema = as_schema(schema)
    if isinstance(query, str):
        query = parse_coql(query)
    if not isinstance(query, Expr):
        raise ReproError("not a COQL query: %r" % (query,))

    current = query
    changed = True
    while changed:
        changed = False
        for candidate in _candidates(current):
            if _equivalent_safely(
                current, candidate, schema, witnesses, engine
            ):
                current = candidate
                changed = True
                break
    return current


def _equivalent_safely(original, candidate, schema, witnesses, engine=None):
    decide = (
        engine.weakly_equivalent if engine is not None else weakly_equivalent
    )
    try:
        return decide(original, candidate, schema, witnesses)
    except (UnsupportedQueryError, IncomparableQueriesError, ReproError):
        return False


def _candidates(expr):
    """Yield copies of *expr* with one generator or condition removed
    from some Select node (anywhere in the tree)."""
    yield from _rewrite(expr, _select_variants)


def _select_variants(select):
    # Drop one condition.
    for index in range(len(select.conditions)):
        conditions = (
            select.conditions[:index] + select.conditions[index + 1:]
        )
        yield Select(select.head, select.generators, conditions)
    # Drop one generator (only when its variable is unused elsewhere,
    # otherwise the candidate would not even type-check).
    for index in range(len(select.generators)):
        var, __ = select.generators[index]
        generators = (
            select.generators[:index] + select.generators[index + 1:]
        )
        if not generators:
            continue  # a Select needs at least one generator
        candidate = Select(select.head, generators, select.conditions)
        if var in candidate.free_vars():
            continue
        yield candidate


def _rewrite(expr, variants):
    """Yield copies of *expr* with one node replaced by a variant."""
    from repro.coql.ast import (
        Proj,
        RecordExpr,
        Singleton,
        Flatten,
        Select,
    )

    if isinstance(expr, Select):
        for variant in variants(expr):
            yield variant
        for i, (var, source) in enumerate(expr.generators):
            for replaced in _rewrite(source, variants):
                generators = (
                    expr.generators[:i]
                    + ((var, replaced),)
                    + expr.generators[i + 1:]
                )
                yield Select(expr.head, generators, expr.conditions)
        for replaced in _rewrite(expr.head, variants):
            yield Select(replaced, expr.generators, expr.conditions)
        return
    if isinstance(expr, Proj):
        for replaced in _rewrite(expr.expr, variants):
            yield Proj(replaced, expr.attr)
        return
    if isinstance(expr, RecordExpr):
        for name, component in expr.fields:
            for replaced in _rewrite(component, variants):
                fields = dict(expr.fields)
                fields[name] = replaced
                yield RecordExpr(fields)
        return
    if isinstance(expr, Singleton):
        for replaced in _rewrite(expr.expr, variants):
            yield Singleton(replaced)
        return
    if isinstance(expr, Flatten):
        for replaced in _rewrite(expr.expr, variants):
            yield Flatten(replaced)
        return
    # Leaves: no variants.
    return
