"""Parallel sharded batch containment.

Simulation of grouping queries is NP-complete (Theorem 5.1), so a batch
of containment checks — a view catalog's N×N matrix, a workload sweep —
can contain individual checks that are pathologically slow while the
rest are milliseconds.  :class:`ParallelContainmentEngine` scales the
batch entry points of :class:`repro.engine.core.ContainmentEngine`
across a :class:`concurrent.futures.ProcessPoolExecutor` and bounds
every check with a wall-clock budget:

* **sharding** — a batch is split into index-tagged chunks (size
  configurable via *chunk_size*; by default ~4 chunks per worker so
  slow chunks rebalance), dispatched to the pool, and reassembled in
  submission order, so results are **deterministic**: the verdict list
  is identical to the sequential engine's regardless of scheduling;
* **per-check timeouts** — inside a worker each check runs under a
  ``SIGALRM`` deadline of *timeout_s* seconds; a check that exceeds it
  is abandoned and reported per *on_timeout* policy (the
  :data:`UNDECIDED` verdict by default, or a raised
  :class:`repro.errors.ContainmentTimeout`), instead of hanging the
  whole batch;
* **worker-side memo tables** — every worker process owns a full
  :class:`ContainmentEngine`, so prepared queries, obligation verdicts
  and compiled simulation targets are cached *within* a worker for the
  lifetime of the pool (warm across chunks and across batches; shards
  sharing a subquery reuse its compiled target); each chunk's
  :class:`EngineStats` delta is shipped back and folded into the
  parent's stats via :meth:`EngineStats.merge`, with batch-level
  counters on top (``tasks_dispatched``, ``chunks_dispatched``,
  ``timeouts``, ``worker_cache_hits``, ``pool_failures``);
* **graceful degradation** — with ``jobs=1``, on platforms without
  ``SIGALRM``-capable process pools, or after a pool failure
  (:class:`BrokenProcessPool`), batches fall back to the in-process
  sequential engine with the same timeout semantics, so callers never
  need a platform case-split.

Pickling constraints: queries cross the process boundary, so inputs
must be query *text*, :class:`repro.coql.ast.Expr` trees, or (for
:meth:`simulated_many`) :class:`repro.grouping.query.GroupingQuery`
objects — all picklable via :class:`repro.pickling.PicklableSlots`.
Timeout enforcement needs ``signal.SIGALRM`` (POSIX); elsewhere checks
run to completion and *timeout_s* is advisory only.
"""

import os
import signal
import threading
from time import monotonic
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager, nullcontext

from repro.errors import (
    ContainmentTimeout,
    IncomparableQueriesError,
    UnsupportedQueryError,
)
from repro.cq.propagation import ORDERINGS, use_ordering
from repro.engine.core import ContainmentEngine
from repro.engine.stats import EngineStats

__all__ = ["ParallelContainmentEngine", "UNDECIDED", "Undecided"]


class Undecided:
    """The verdict of a timed-out check (singleton :data:`UNDECIDED`).

    Falsy — treating it as a boolean errs on the safe side (containment
    *not proven*) — but distinguishable from False with an identity
    test, and from None (the pairwise-matrix marker for incomparable
    pairs).
    """

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __bool__(self):
        return False

    def __repr__(self):
        return "UNDECIDED"

    def __reduce__(self):
        return (Undecided, ())


#: The singleton verdict reported for checks that hit their timeout.
UNDECIDED = Undecided()


@contextmanager
def _deadline(seconds):
    """Raise :class:`ContainmentTimeout` after *seconds* of wall time.

    Enforcement uses ``SIGALRM`` and therefore only works on POSIX and
    in a process's main thread (true for pool workers, which execute
    tasks in their main thread).  Where unavailable the body simply runs
    to completion.

    Deadlines nest: entering a deadline while an ``ITIMER_REAL`` is
    already armed (an outer batch deadline around a per-check one) runs
    the body under the *tighter* of the two budgets, and on exit
    re-arms the outer timer with its remaining time minus what the body
    consumed — an outer deadline is never silently cancelled, only
    deferred to its original expiry.  An outer timer that should have
    fired mid-body fires immediately on exit.
    """
    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expire(signum, frame):
        raise ContainmentTimeout(
            "containment check exceeded %gs" % (seconds,)
        )

    previous = signal.signal(signal.SIGALRM, _expire)
    # setitimer returns the time the pre-existing timer had left; an
    # outer deadline tighter than ours bounds the body instead of ours.
    budget = seconds
    outer_remaining, _ = signal.setitimer(signal.ITIMER_REAL, budget)
    if outer_remaining and outer_remaining < budget:
        budget = outer_remaining
        signal.setitimer(signal.ITIMER_REAL, budget)
    started = monotonic()
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if outer_remaining:
            # Restore the outer deadline where it would have been: its
            # remaining time minus the body's elapsed time, clamped to
            # "fire now" when the body overran it (setitimer(0) would
            # disarm, so the floor must stay positive).
            left = outer_remaining - (monotonic() - started)
            signal.setitimer(signal.ITIMER_REAL, max(left, 1e-6))


# -- worker side -------------------------------------------------------
#
# Each pool worker holds one module-global ContainmentEngine whose memo
# tables persist for the pool's lifetime.  A chunk resets the worker's
# stats, decides its pairs, and returns (index, outcomes, stats delta);
# outcomes are ("ok", verdict) / ("error", exc) / ("timeout", exc)
# tuples so every policy decision stays in the parent.

_worker_engine = None


def _init_worker(engine_options):
    global _worker_engine
    options = dict(engine_options)
    # Pool workers are long-lived; they feed the per-stage timers but
    # must never accumulate per-check trace trees.
    options.setdefault("retain_trace", False)
    # A store_path gives every worker its own TieredStore over the one
    # shared SQLite database: artifacts prepared by any worker (or by
    # the parent, or by an earlier process) are read through, and each
    # chunk's write-back buffer is flushed when the chunk returns.
    _worker_engine = ContainmentEngine(**options)


def _flush_store(engine):
    store = engine.store()
    flush = getattr(store, "flush", None)
    if flush is not None:
        flush()


def _decide_one(engine, kind, pair, schema, witnesses, method, timeout_s,
                ordering=None):
    swap = use_ordering(ordering) if ordering is not None else nullcontext()
    try:
        with _deadline(timeout_s), swap:
            if kind == "contains":
                sup, sub = pair
                return (
                    "ok",
                    engine.contains(
                        sup, sub, schema, witnesses=witnesses, method=method
                    ),
                )
            sub, sup = pair  # kind == "simulate": grouping queries
            return ("ok", engine.simulated(sub, sup, witnesses=witnesses))
    except ContainmentTimeout as exc:
        return ("timeout", exc)
    except (IncomparableQueriesError, UnsupportedQueryError) as exc:
        return ("error", exc)


def _run_chunk(chunk_index, kind, pairs, schema, witnesses, method, timeout_s,
               ordering=None):
    engine = _worker_engine
    if engine is None:  # pool built without initializer (executor=)
        _init_worker({})
        engine = _worker_engine
    engine.reset_stats()
    engine.clear_trace()
    outcomes = [
        _decide_one(engine, kind, pair, schema, witnesses, method, timeout_s,
                    ordering)
        for pair in pairs
    ]
    _flush_store(engine)
    return chunk_index, outcomes, engine.stats()


# -- parent side -------------------------------------------------------

_UNSET = object()


class ParallelContainmentEngine:
    """Batch containment sharded across worker processes.

    Drop-in for the batch/check API of :class:`ContainmentEngine`
    (``contains``, ``contains_many``, ``pairwise_matrix`` — same
    arguments, same verdict ordering) plus per-check timeouts and the
    grouping-level :meth:`simulated_many`.  Single checks and fallback
    paths run on an in-process sequential engine (pass *engine* to share
    one, e.g. a :class:`repro.coql.views.ViewCatalog`'s).

    :param jobs: worker processes (None = ``os.cpu_count()``; ``1``
        never forks and runs everything in-process).
    :param timeout_s: default per-check wall-clock budget in seconds
        (None = unbounded).
    :param chunk_size: pairs per dispatched chunk (None = automatic,
        ~4 chunks per worker).
    :param on_timeout: ``"undecided"`` (default) reports timed-out
        checks as :data:`UNDECIDED`; ``"raise"`` propagates
        :class:`ContainmentTimeout` after the batch completes.
    :param witnesses, method: as for :class:`ContainmentEngine`.
    :param ordering: homomorphism-search strategy applied to every
        check (one of :data:`repro.cq.propagation.ORDERINGS`; None =
        the process default, normally ``"bitset"``).  Threaded to pool
        workers per chunk, so kernel ablations work without in-process
        ``use_ordering()`` hacks.
    :param engine: the in-process sequential engine to use for single
        checks, degraded batches, and stats aggregation (a fresh one is
        created otherwise).  Worker engines are configured with the same
        *witnesses*/*method* defaults and cache sizes.
    :param executor: inject a pre-built executor (tests); the engine
        then never shuts it down.
    :param store: a shared store for the in-process engine (see
        :class:`ContainmentEngine`); worker processes cannot share an
        in-memory store — use *store_path* for that.
    :param store_path: SQLite path for the persistent cross-process
        tier: the in-process engine *and every pool worker* layer their
        memory LRU over this one database
        (:class:`repro.pipeline.persist.TieredStore`), so prepared
        encodings and verdicts flow between workers, across batches,
        and across process restarts.  Workers flush their write-back
        buffers at the end of every chunk.
    :param constraints: default tuple of
        :class:`repro.constraints.InclusionDependency` declarations,
        applied by the in-process engine *and* shipped to every pool
        worker (they are picklable value objects), so sequential and
        parallel runs decide under identical dependencies — and, since
        chase artifacts are content-addressed, share them through a
        *store_path* tier.
    """

    def __init__(self, jobs=None, timeout_s=None, chunk_size=None,
                 witnesses=None, method="certificate",
                 on_timeout="undecided", engine=None, executor=None,
                 prepare_cache_size=512, verdict_cache_size=8192,
                 target_cache_size=1024, store=None, store_path=None,
                 ordering=None, constraints=()):
        if on_timeout not in ("undecided", "raise"):
            raise UnsupportedQueryError(
                "on_timeout must be 'undecided' or 'raise', got %r"
                % (on_timeout,)
            )
        if ordering is not None and ordering not in ORDERINGS:
            raise UnsupportedQueryError(
                "unknown ordering %r (expected one of %s)"
                % (ordering, ", ".join(ORDERINGS))
            )
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise UnsupportedQueryError("jobs must be >= 1, got %r" % (jobs,))
        if chunk_size is not None and chunk_size < 1:
            raise UnsupportedQueryError(
                "chunk_size must be >= 1, got %r" % (chunk_size,)
            )
        self._jobs = jobs
        self._timeout_s = timeout_s
        self._chunk_size = chunk_size
        self._on_timeout = on_timeout
        self._ordering = ordering
        self._worker_options = {
            "witnesses": witnesses,
            "method": method,
            "prepare_cache_size": prepare_cache_size,
            "verdict_cache_size": verdict_cache_size,
            "target_cache_size": target_cache_size,
            "constraints": tuple(constraints),
        }
        if store_path is not None:
            self._worker_options["store_path"] = store_path
        if engine is None:
            engine = ContainmentEngine(
                witnesses=witnesses,
                method=method,
                prepare_cache_size=prepare_cache_size,
                verdict_cache_size=verdict_cache_size,
                target_cache_size=target_cache_size,
                store=store,
                store_path=store_path,
                constraints=constraints,
            )
        self._engine = engine
        self._executor = executor
        self._owns_executor = executor is None
        self._pool_broken = False

    # -- lifecycle -----------------------------------------------------

    @property
    def jobs(self):
        """Configured worker-process count."""
        return self._jobs

    def engine(self):
        """The in-process sequential engine (single checks, fallback)."""
        return self._engine

    def stats(self):
        """Aggregated :class:`EngineStats`: local work plus every merged
        worker delta plus the batch-level parallel counters."""
        return self._engine.stats()

    def tracer(self):
        """The in-process engine's :class:`repro.pipeline.trace.Tracer`.

        Only locally decided checks appear in it (worker processes run
        with trace retention off and ship back stats, not spans) — but
        worker time still lands in the merged per-stage timers."""
        return self._engine.tracer()

    def reset_stats(self):
        self._engine.reset_stats()

    def close(self):
        """Shut down the worker pool (idempotent; the engine remains
        usable — the next batch degrades to in-process execution unless
        a new pool can be created).  A persistent-tier write-back
        buffer on the in-process engine is flushed."""
        if self._executor is not None and self._owns_executor:
            self._executor.shutdown(wait=True)
        self._executor = None
        _flush_store(self._engine)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self):
        return "ParallelContainmentEngine(jobs=%d, timeout_s=%r, pool=%s)" % (
            self._jobs,
            self._timeout_s,
            "broken" if self._pool_broken
            else ("up" if self._executor is not None else "idle"),
        )

    def _pool(self):
        if self._jobs <= 1 or self._pool_broken:
            return None
        if self._executor is None:
            try:
                self._executor = ProcessPoolExecutor(
                    max_workers=self._jobs,
                    initializer=_init_worker,
                    initargs=(self._worker_options,),
                )
            except (OSError, ValueError):
                self._mark_pool_broken()
        return self._executor

    def _mark_pool_broken(self):
        self.stats().tally("pool_failures")
        self._pool_broken = True
        if self._executor is not None and self._owns_executor:
            self._executor.shutdown(wait=False, cancel_futures=True)
        self._executor = None

    # -- batch machinery -----------------------------------------------

    def _chunks(self, count):
        if self._chunk_size is not None:
            size = self._chunk_size
        else:
            size = max(1, -(-count // (self._jobs * 4)))
        return [(start, min(start + size, count))
                for start in range(0, count, size)]

    def _merge_worker_stats(self, worker_stats):
        if not isinstance(worker_stats, EngineStats):  # defensive: wire data
            return
        hits = (
            worker_stats.counter("prepare_hits")
            + worker_stats.counter("obligation_cache_hits")
            + worker_stats.counter("nonempty_hits")
            + worker_stats.counter("target_cache_hits")
        )
        stats = self.stats()
        stats.merge(worker_stats)
        stats.tally("worker_cache_hits", hits)

    def _run_batch(self, kind, pairs, schema, witnesses, method, timeout_s,
                   ordering=None):
        """Decide every pair; returns outcome tuples in input order."""
        stats = self.stats()
        stats.tally("batch_calls")
        stats.tally("tasks_dispatched", len(pairs))
        spans = self._chunks(len(pairs))
        stats.tally("chunks_dispatched", len(spans))
        pool = self._pool()
        if pool is not None:
            try:
                futures = [
                    pool.submit(
                        _run_chunk, index, kind, pairs[start:stop],
                        schema, witnesses, method, timeout_s, ordering,
                    )
                    for index, (start, stop) in enumerate(spans)
                ]
                by_index = {}
                for future in futures:
                    index, outcomes, worker_stats = future.result()
                    by_index[index] = outcomes
                    self._merge_worker_stats(worker_stats)
                return [
                    outcome
                    for index in range(len(spans))
                    for outcome in by_index[index]
                ]
            except BrokenProcessPool:
                self._mark_pool_broken()  # fall through: decide in-process
        outcomes = [
            _decide_one(
                self._engine, kind, pair, schema, witnesses, method,
                timeout_s, ordering,
            )
            for pair in pairs
        ]
        _flush_store(self._engine)
        return outcomes

    def _resolve(self, outcomes, on_error, on_timeout):
        """Apply the error/timeout policies, in deterministic pair order."""
        results = []
        for tag, value in outcomes:
            if tag == "ok":
                results.append(value)
            elif tag == "timeout":
                self.stats().tally("timeouts")
                if on_timeout == "raise":
                    raise value
                results.append(UNDECIDED)
            else:  # tag == "error"
                if on_error == "raise":
                    raise value
                results.append(value)
        return results

    def _defaults(self, witnesses, method, timeout_s, on_timeout,
                  ordering=None):
        if witnesses is None:
            witnesses = self._worker_options["witnesses"]
        if method is None:
            method = self._worker_options["method"]
        if timeout_s is _UNSET:
            timeout_s = self._timeout_s
        if on_timeout is None:
            on_timeout = self._on_timeout
        if ordering is None:
            ordering = self._ordering
        elif ordering not in ORDERINGS:
            raise UnsupportedQueryError(
                "unknown ordering %r (expected one of %s)"
                % (ordering, ", ".join(ORDERINGS))
            )
        return witnesses, method, timeout_s, on_timeout, ordering

    # -- public decisions ----------------------------------------------

    def contains(self, sup, sub, schema, witnesses=None, method=None,
                 timeout_s=_UNSET, on_timeout=None, ordering=None):
        """``sub ⊑ sup``, decided in-process under the timeout budget.

        A single check never pays pool dispatch; it runs on the local
        engine (sharing its caches) with the same timeout semantics as
        the batch paths.
        """
        witnesses, method, timeout_s, on_timeout, ordering = self._defaults(
            witnesses, method, timeout_s, on_timeout, ordering
        )
        outcome = _decide_one(
            self._engine, "contains", (sup, sub), schema,
            witnesses, method, timeout_s, ordering,
        )
        return self._resolve([outcome], "raise", on_timeout)[0]

    def contains_many(self, pairs, schema, witnesses=None, method=None,
                      on_error="raise", timeout_s=_UNSET, on_timeout=None,
                      ordering=None):
        """Decide ``sub ⊑ sup`` for every ``(sup, sub)`` pair, sharded.

        Same contract as :meth:`ContainmentEngine.contains_many` — in
        particular the result list order matches the input order exactly
        — plus the timeout policy: timed-out entries become
        :data:`UNDECIDED` (or raise, per *on_timeout*).  Under
        ``on_error="raise"`` the earliest failing pair's exception is
        raised, after the batch has been fully decided.
        """
        if on_error not in ("raise", "capture"):
            raise UnsupportedQueryError(
                "on_error must be 'raise' or 'capture', got %r" % (on_error,)
            )
        witnesses, method, timeout_s, on_timeout, ordering = self._defaults(
            witnesses, method, timeout_s, on_timeout, ordering
        )
        outcomes = self._run_batch(
            "contains", list(pairs), schema, witnesses, method, timeout_s,
            ordering,
        )
        return self._resolve(outcomes, on_error, on_timeout)

    def pairwise_matrix(self, queries, schema, witnesses=None, method=None,
                        timeout_s=_UNSET, on_timeout=None, ordering=None):
        """The N×N containment matrix of *queries*, sharded.

        ``matrix[i][j]`` is True iff ``queries[j] ⊑ queries[i]``, None
        when the pair is incomparable or outside the decidable fragment,
        and :data:`UNDECIDED` when the check timed out (under the
        default policy).
        """
        queries = list(queries)
        witnesses, method, timeout_s, on_timeout, ordering = self._defaults(
            witnesses, method, timeout_s, on_timeout, ordering
        )
        pairs = [(sup, sub) for sup in queries for sub in queries]
        outcomes = self._run_batch(
            "contains", pairs, schema, witnesses, method, timeout_s, ordering
        )
        flat = []
        for tag, value in outcomes:
            if tag == "ok":
                flat.append(value)
            elif tag == "timeout":
                self.stats().tally("timeouts")
                if on_timeout == "raise":
                    raise value
                flat.append(UNDECIDED)
            else:
                flat.append(None)
        size = len(queries)
        return [flat[row * size:(row + 1) * size] for row in range(size)]

    def classify_many(self, query, candidates, schema, witnesses=None,
                      method=None, timeout_s=_UNSET, on_timeout=None,
                      ordering=None):
        """Label every candidate view's usability for *query*, sharded.

        Same contract and label caching as
        :meth:`ContainmentEngine.classify_many`, with the parallel
        engine's timeout semantics on the underlying checks: a timed-out
        direction is :data:`UNDECIDED`, which
        :func:`repro.engine.core.classification_of` never counts as
        proven — an undecided pair degrades to ``contained`` or
        ``irrelevant``, never to ``subsuming``/``equivalent``, and a
        label derived from any undecided direction is *not* cached (the
        next, possibly luckier, run re-decides it).
        """
        from repro.engine.core import resolve_classifications

        witnesses, method, timeout_s, on_timeout, ordering = self._defaults(
            witnesses, method, timeout_s, on_timeout, ordering
        )
        self.stats().tally("classify_calls")
        return resolve_classifications(
            self._engine.pipeline(), query, list(candidates), schema,
            witnesses, method,
            lambda pairs: self.contains_many(
                pairs, schema, witnesses=witnesses, method=method,
                on_error="capture", timeout_s=timeout_s,
                on_timeout=on_timeout, ordering=ordering,
            ),
        )

    def simulated_many(self, pairs, witnesses=None, on_error="raise",
                       timeout_s=_UNSET, on_timeout=None, ordering=None):
        """Batch grouping-query simulation: one verdict per ``(sub,
        sup)`` :class:`GroupingQuery` pair (Theorem 5.1's relation,
        ``sub ≼ sup``), sharded with the same chunking, ordering, and
        timeout machinery as :meth:`contains_many`.

        This is the engine's lowest decision layer, exposed for
        differential testing against :func:`repro.grouping.simulation.\
is_simulated` and the brute-force canonical-database check.
        """
        if on_error not in ("raise", "capture"):
            raise UnsupportedQueryError(
                "on_error must be 'raise' or 'capture', got %r" % (on_error,)
            )
        witnesses, method, timeout_s, on_timeout, ordering = self._defaults(
            witnesses, None, timeout_s, on_timeout, ordering
        )
        outcomes = self._run_batch(
            "simulate", list(pairs), None, witnesses, method, timeout_s,
            ordering,
        )
        return self._resolve(outcomes, on_error, on_timeout)
