"""Instrumentation for the containment engine.

:class:`EngineStats` aggregates everything a :class:`repro.engine.core.\
ContainmentEngine` observes while deciding containment questions:

* **cache counters** — ``prepare_hits``/``prepare_misses``,
  ``obligation_cache_hits``/``obligation_cache_misses``,
  ``nonempty_hits``/``nonempty_misses``;
* **obligation counters** — ``obligations_checked`` (simulation
  subproblems actually decided) and ``obligations_skipped_implied``
  (truncation patterns never materialized because they prune a provably
  non-empty node and are therefore implied by a larger pattern);
* **search effort** — homomorphism search nodes, backtracks, domain
  wipeouts and components solved, reported by
  :class:`repro.cq.homomorphism.SearchCounters`, plus
  ``certificate_searches``, ``witness_escalations`` and
  ``target_cache_hits``/``target_cache_misses`` (compiled
  simulation-target reuse) from :mod:`repro.grouping.simulation`;
* **per-stage wall time** — seconds spent in ``parse``, ``typecheck``,
  ``normalize``, ``encode``, ``obligations`` (pattern enumeration,
  including the provably-non-empty tests) and ``simulation``.

The per-stage timers are a **view over the pipeline trace**: the only
writer of :meth:`add_time` in the library is
:class:`repro.pipeline.trace.Tracer`, which adds each closing span's
duration to the timer of the same stage name.  Summing a tracer's span
durations per stage therefore reconciles exactly with these timers —
there is no second, separately maintained timing path to drift.

The object is cheap, mutable, and additive: engines keep one for their
lifetime; :meth:`snapshot` / :meth:`as_dict` produce plain dictionaries
for logging, the CLI ``--stats`` flag, and the benchmark harness.
Aggregation is exhaustive by construction: the homomorphism tallies are
folded via :func:`dataclasses.fields` introspection of
:class:`SearchCounters`, so a counter field added there is merged and
reported without touching this module (the round-trip test in
``tests/test_engine.py`` pins this).
"""

from dataclasses import fields

from repro.cq.homomorphism import SearchCounters

__all__ = ["EngineStats"]


class EngineStats:
    """Counters and timers accumulated by a containment engine."""

    __slots__ = ("counters", "timers", "search", "diagnostics")

    def __init__(self):
        self.counters = {}
        self.timers = {}
        self.search = SearchCounters()
        self.diagnostics = []

    # -- recording -----------------------------------------------------

    def tally(self, name, amount=1):
        """Add *amount* to the counter *name* (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def add_time(self, stage, seconds):
        """Add wall time to the *stage* timer."""
        self.timers[stage] = self.timers.get(stage, 0.0) + seconds

    def add_diagnostics(self, diagnostics):
        """Record :class:`repro.analysis.Diagnostic` findings.

        The engine's opt-in pre-check (``ContainmentEngine(analyze=
        True)``) attaches what the analyzer found to the stats, so batch
        callers can collect lint findings alongside verdicts without a
        second pass over the queries.
        """
        self.diagnostics.extend(diagnostics)

    def reset(self):
        """Zero every counter and timer (the engine's caches survive)."""
        self.counters.clear()
        self.timers.clear()
        self.search.reset()
        del self.diagnostics[:]

    def merge(self, other):
        """Add every tally of *other* into this object; return ``self``.

        Counters and search tallies add; timers add (they are cumulative
        wall time, so merging worker stats yields total CPU-seconds
        across processes, which can exceed elapsed wall time).  Used by
        the parallel engine to fold worker-side stats back into the
        parent's — additive on every field, so no counter introduced by
        a worker is ever silently dropped.
        """
        if not isinstance(other, EngineStats):
            raise TypeError(
                "can only merge EngineStats, got %r" % (type(other).__name__,)
            )
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for stage, seconds in other.timers.items():
            self.timers[stage] = self.timers.get(stage, 0.0) + seconds
        self.search.merge(other.search)
        self.diagnostics.extend(other.diagnostics)
        return self

    # -- reading -------------------------------------------------------

    def counter(self, name):
        """The current value of counter *name* (0 when never tallied)."""
        return self.counters.get(name, 0)

    def time(self, stage):
        """Accumulated seconds in *stage* (0.0 when never timed)."""
        return self.timers.get(stage, 0.0)

    def as_dict(self):
        """Everything as one flat ``{name: number}`` dictionary.

        Timers are prefixed ``time_``; the homomorphism tallies appear
        as ``homomorphism_nodes``, ``homomorphism_backtracks``,
        ``homomorphism_domain_wipeouts`` and
        ``homomorphism_components_solved``.
        """
        out = dict(self.counters)
        for field in fields(SearchCounters):
            out["homomorphism_" + field.name] = getattr(
                self.search, field.name
            )
        if self.diagnostics:
            out["analysis_diagnostics"] = len(self.diagnostics)
        for stage in sorted(self.timers):
            out["time_" + stage] = self.timers[stage]
        return out

    snapshot = as_dict

    def format(self):
        """A human-readable multi-line report (used by ``--stats``)."""
        lines = []
        data = self.as_dict()
        width = max((len(k) for k in data), default=0)
        for name in sorted(data):
            value = data[name]
            if isinstance(value, float):
                lines.append("%-*s  %.6fs" % (width, name, value))
            else:
                lines.append("%-*s  %d" % (width, name, value))
        return "\n".join(lines)

    def __repr__(self):
        return (
            "EngineStats(obligations_checked=%d, cache_hits=%d, "
            "hom_nodes=%d)"
            % (
                self.counter("obligations_checked"),
                self.counter("obligation_cache_hits"),
                self.search.nodes,
            )
        )
