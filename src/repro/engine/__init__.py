"""The containment engine: memoized, instrumented decision services.

:class:`ContainmentEngine` wraps the COQL containment pipeline
(:mod:`repro.coql.containment`) with memoization of prepared queries,
simulation-obligation verdicts, and provably-non-empty tests, plus an
:class:`EngineStats` instrumentation layer (cache hits, obligation
counts, homomorphism search effort, per-stage wall time).

:class:`ParallelContainmentEngine` (:mod:`repro.engine.parallel`)
shards the batch entry points across a process pool with per-check
timeouts; timed-out checks report the :data:`UNDECIDED` verdict.

The module-level functions :func:`repro.coql.contains`,
:func:`repro.coql.weakly_equivalent`, :func:`repro.coql.equivalent`,
and :func:`repro.coql.empty_set_free` delegate to a process-wide
:func:`default_engine`, so every caller shares its caches; construct a
private :class:`ContainmentEngine` for isolated caching or stats.
"""

from repro.engine.core import (
    CLASSIFICATIONS,
    ContainmentEngine,
    classification_of,
)
from repro.engine.stats import EngineStats
from repro.engine.parallel import ParallelContainmentEngine, UNDECIDED

__all__ = [
    "CLASSIFICATIONS",
    "ContainmentEngine",
    "EngineStats",
    "ParallelContainmentEngine",
    "UNDECIDED",
    "classification_of",
    "default_engine",
    "reset_default_engine",
]

_default = None


def default_engine():
    """The process-wide engine behind the :mod:`repro.coql` functions."""
    global _default
    if _default is None:
        _default = ContainmentEngine()
    return _default


def reset_default_engine():
    """Replace the process-wide engine with a fresh one (for tests)."""
    global _default
    _default = None
