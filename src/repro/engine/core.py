"""The containment engine: a memoized, instrumented decision pipeline.

Every module-level call to :func:`repro.coql.contains` re-parses,
re-typechecks, re-normalizes and re-encodes both queries, and the
exponential truncation-obligation loop re-decides identical simulation
subproblems.  :class:`ContainmentEngine` drives the staged pipeline of
:mod:`repro.pipeline` over one content-addressed
:class:`repro.pipeline.store.ArtifactStore`, putting a caching layer at
exactly those boundaries:

* ``prepare`` artifacts (parse → typecheck → encode → build_grouping)
  are memoized per *(canonical query AST, schema, role)* — textual
  queries are parsed first, so a query text and its parsed AST share
  one entry;
* simulation verdicts (``obligation_verdicts``) are memoized per
  truncated *(sub, sup)* obligation pair (plus witnesses and method),
  so obligations shared across truncation patterns — and across both
  directions of an equivalence check, or across the N×N matrix of a
  view catalog — are decided once;
* the provably-non-empty test (``nonempty``) is memoized per *(grouping
  query, path)*, shared between obligation enumeration and
  :meth:`empty_set_free`;
* compiled simulation targets (``targets``, the witness-augmented
  canonical database plus its inverted index, see
  :class:`repro.grouping.simulation.SimulationTarget`) are memoized per
  *(grouping query, witnesses)* — witness escalation, repeated checks
  against one side, ``pairwise_matrix`` rows and the weak-equivalence
  truncation sweep all reuse the compiled target instead of rebuilding
  and re-indexing it.

Keys are content hashes (:mod:`repro.pipeline.fingerprint`), not object
identities: the same query text and schema name the same artifact in
every process, which is what lets the parallel engine's workers and the
parent agree on cache entries, and what makes the store shareable
between engines (pass ``store=`` to share one across a
:class:`repro.coql.views.ViewCatalog`, the linter, and ad-hoc checks).

Memoization safety: every cached object (:class:`Expr`,
:class:`EncodedQuery`'s :class:`GroupingQuery`, verdict booleans) is
immutable, so cached results may be returned to any number of callers.

Every stage run is traced (:class:`repro.pipeline.trace.Tracer`): each
public decision opens a ``check`` span whose children are the stage
spans it caused, giving a per-check trace tree exportable as Chrome
``trace_event`` JSON (the CLI's ``--trace-out``).  The
:class:`repro.engine.stats.EngineStats` per-stage timers are maintained
by that tracer — a view over the trace, never a second timing path.

Batch entry points (:meth:`contains_many`, :meth:`pairwise_matrix`) feed
the view-reuse analysis and the workload scenarios; everything the
engine does is tallied in an :class:`EngineStats` available via
:meth:`stats`.
"""

from contextlib import contextmanager

from repro.errors import (
    IncomparableQueriesError,
    UnsupportedQueryError,
)
from repro.coql.parser import parse_coql
from repro.coql.encode import paired_encoding, shapes_compatible
from repro.coql.family import contains_union, union_branches
from repro.grouping.simulation import is_simulated
from repro.cq import homomorphism
from repro.engine.stats import EngineStats
from repro.pipeline.fingerprint import artifact_key
from repro.pipeline.stages import Pipeline
from repro.pipeline.store import MISSING, ArtifactStore
from repro.pipeline.trace import Tracer

__all__ = ["ContainmentEngine", "CLASSIFICATIONS", "classification_of"]

#: The view-usability labels of :meth:`ContainmentEngine.classify_many`,
#: most useful first.  For a query Q and a candidate view V:
#:
#: * ``equivalent`` — ``Q ⊑ V`` and ``V ⊑ Q`` (weakly equivalent);
#: * ``subsuming``  — ``Q ⊑ V`` only: V's answer dominates Q's, so Q can
#:   be served from V's materialization by evaluating a residual;
#: * ``contained``  — ``V ⊑ Q`` only: V is a partial answer (a prefetch
#:   hint, never a serving source);
#: * ``irrelevant`` — neither direction is *proven* (this includes
#:   incomparable pairs, fragment errors, and timed-out checks).
CLASSIFICATIONS = ("equivalent", "subsuming", "contained", "irrelevant")


def classification_of(forward, backward):
    """The label for one (query, view) pair from its two verdicts.

    :param forward: the verdict of ``query ⊑ view``.
    :param backward: the verdict of ``view ⊑ query``.

    Only a literal True counts as proven: ``UNDECIDED`` (falsy, a timed
    out check), captured exceptions, and False all fail the identity
    test, so an undecided direction can never produce ``subsuming`` or
    ``equivalent`` — serving from an unproven view would be unsound,
    while demoting to ``contained``/``irrelevant`` merely loses a cache
    hit.
    """
    forward_proven = forward is True
    backward_proven = backward is True
    if forward_proven and backward_proven:
        return "equivalent"
    if forward_proven:
        return "subsuming"
    if backward_proven:
        return "contained"
    return "irrelevant"


def _verdict_is_stable(verdict):
    """True when a verdict may back a cached classification label.

    Booleans and domain exceptions are deterministic; anything else
    (the parallel engine's UNDECIDED) depends on a wall clock and must
    be re-decided next time instead of poisoning the cache.
    """
    return verdict is True or verdict is False or isinstance(
        verdict, Exception
    )


def resolve_classifications(pipeline, query, candidates, schema,
                            witnesses, method, decide_pairs,
                            constraints=()):
    """Label every candidate view against *query*, cache-first.

    The shared machinery behind :meth:`ContainmentEngine.classify_many`
    and :meth:`repro.engine.parallel.ParallelContainmentEngine.\
classify_many`: labels are cached in the pipeline's store under the
    ``classification`` artifact kind (content-keyed on both ASTs, the
    schema, and the decision knobs, so they flow through a
    :class:`~repro.pipeline.persist.TieredStore` to other processes),
    and only the missing pairs reach *decide_pairs* — one batch of
    interleaved ``(candidate, query), (query, candidate)`` containment
    checks with errors captured.
    """
    from repro.coql.containment import as_schema

    schema = as_schema(schema)
    if isinstance(query, str):
        query = pipeline.parse(query)
    candidates = [
        pipeline.parse(candidate) if isinstance(candidate, str) else candidate
        for candidate in candidates
    ]
    schema_items = tuple(sorted(schema.items()))
    store = pipeline.store
    labels = [None] * len(candidates)
    keys = [None] * len(candidates)
    missing = []
    constraints = tuple(constraints)
    for index, candidate in enumerate(candidates):
        if store is not None:
            if constraints:
                keys[index] = artifact_key(
                    "classification", query, candidate, schema_items,
                    witnesses, method, constraints,
                )
            else:
                keys[index] = artifact_key(
                    "classification", query, candidate, schema_items,
                    witnesses, method,
                )
            cached = store.lookup("classification", keys[index])
            if cached is not MISSING:
                pipeline._tally("classification_hits")
                labels[index] = cached
                continue
            pipeline._tally("classification_misses")
        missing.append(index)
    if missing:
        pairs = []
        for index in missing:
            pairs.append((candidates[index], query))  # query ⊑ candidate
            pairs.append((query, candidates[index]))  # candidate ⊑ query
        verdicts = decide_pairs(pairs)
        for slot, index in enumerate(missing):
            forward = verdicts[2 * slot]
            backward = verdicts[2 * slot + 1]
            labels[index] = classification_of(forward, backward)
            if (
                store is not None
                and _verdict_is_stable(forward)
                and _verdict_is_stable(backward)
            ):
                store.store("classification", keys[index], labels[index])
    return labels

#: Legacy cache names, mapped onto the store's artifact kinds, in the
#: order :meth:`ContainmentEngine.cache_sizes` reports them.
_CACHE_KINDS = (
    ("prepare", "prepare"),
    ("obligation_verdicts", "obligation_verdicts"),
    ("nonempty", "nonempty"),
    ("targets", "targets"),
    ("cost_certificate", "cost_certificate"),
    ("branch_verdict", "branch_verdict"),
    ("chase", "chase"),
)


class ContainmentEngine:
    """Memoized containment, equivalence, and emptiness decisions.

    Drop-in superset of the module-level API of
    :mod:`repro.coql.containment` (which delegates to a process-wide
    default instance): same arguments, same verdicts, same exceptions —
    plus caching across calls, :meth:`stats`, and :meth:`tracer`.

    :param witnesses: default witness-copy count for simulation searches
        (None = the incremental strategy).
    :param method: default decision method, ``"certificate"`` or
        ``"canonical"``.
    :param prepare_cache_size: entries in the ``prepare`` artifact
        segment (0 disables, None unbounded).
    :param verdict_cache_size: entries in the ``obligation_verdicts``
        and ``nonempty`` segments (0 disables, None unbounded).
    :param target_cache_size: entries in the compiled
        simulation-target segment (0 disables, None unbounded).
    :param store: a shared :class:`ArtifactStore` (or any object with
        its ``lookup``/``store`` interface, e.g. a
        :class:`repro.pipeline.persist.TieredStore`) to use instead of
        building a private one (the ``*_cache_size`` knobs are then
        ignored — the store's own limits apply).  Sharing a store shares
        every artifact kind across the engines attached to it.
    :param store_path: convenience for the cross-process tier: build a
        :class:`~repro.pipeline.persist.TieredStore` over the SQLite
        database at this path (the ``*_cache_size`` knobs bound its
        memory tier).  Mutually exclusive with *store*.  Artifacts
        prepared by any process pointed at the same path are reused;
        call ``engine.store().flush()`` (or close the store) to push
        this process's write-back buffer to disk.
    :param retain_trace: keep per-check trace trees for export (True);
        the parallel engine's workers pass False so a long-lived pool
        only feeds the timers and never accumulates trace memory.
    :param analyze: opt-in static-analysis pre-check: every
        :meth:`contains` call first runs :func:`repro.analysis.analyze`
        over both queries (cheap rules only, sharing this engine's
        store), attaches the findings to :meth:`stats` (labelled
        ``sub`` / ``sup``), and short-circuits to True when the
        subquery's body is unsatisfiable (a constant-empty subquery is
        contained in everything).
    :param analysis_config: the :class:`repro.analysis.AnalysisConfig`
        the pre-check uses (default: stock knobs with expensive rules
        off).
    :param constraints: default tuple of
        :class:`repro.constraints.InclusionDependency` declarations —
        every ``certificate``-method decision then holds on databases
        *satisfying the dependencies* (the sub-side canonical witnesses
        are saturated by the memoized ``chase`` stage before the
        simulation search).  Per-call ``constraints=`` overrides the
        default; the ``canonical`` method rejects constraints.
    """

    def __init__(self, witnesses=None, method="certificate",
                 prepare_cache_size=512, verdict_cache_size=8192,
                 target_cache_size=1024, store=None, store_path=None,
                 retain_trace=True, analyze=False, analysis_config=None,
                 constraints=()):
        self._default_witnesses = witnesses
        self._default_method = method
        self._constraints = tuple(constraints)
        if store is not None and store_path is not None:
            raise UnsupportedQueryError(
                "pass store= or store_path=, not both"
            )
        if store is None:
            limits = {
                "prepare": prepare_cache_size,
                "obligation_verdicts": verdict_cache_size,
                "nonempty": verdict_cache_size,
                "targets": target_cache_size,
                "classification": verdict_cache_size,
                "cost_certificate": target_cache_size,
                "branch_verdict": verdict_cache_size,
                "chase": target_cache_size,
            }
            if store_path is not None:
                from repro.pipeline.persist import TieredStore

                store = TieredStore(path=store_path, limits=limits)
            else:
                store = ArtifactStore(limits=limits)
        self._stats = EngineStats()
        self._tracer = Tracer(self._stats, retain=retain_trace)
        self._pipeline = Pipeline(
            store=store, stats=self._stats, tracer=self._tracer
        )
        self._analyze = bool(analyze)
        self._analysis_config = analysis_config

    # -- instrumentation ----------------------------------------------

    def stats(self):
        """The engine's :class:`EngineStats` (live, cumulative)."""
        return self._stats

    def tracer(self):
        """The engine's :class:`repro.pipeline.trace.Tracer` — one
        retained root span (``check``) per public decision, with the
        stage spans it caused as children."""
        return self._tracer

    def pipeline(self):
        """The engine's :class:`repro.pipeline.Pipeline` pass manager."""
        return self._pipeline

    def store(self):
        """The engine's :class:`repro.pipeline.store.ArtifactStore`."""
        return self._pipeline.store

    def reset_stats(self):
        """Zero all counters, timers, and store hit-rate tallies; cached
        artifacts are kept."""
        self._stats.reset()
        self._pipeline.store.reset_counters()

    def clear_trace(self):
        """Drop every retained per-check trace tree (stats are kept)."""
        self._tracer.clear()

    def clear_caches(self):
        """Drop every memoized artifact (stats and hit tallies kept)."""
        self._pipeline.store.clear()

    def cache_sizes(self):
        """Current entry counts: ``{cache name: entries}``."""
        sizes = self._pipeline.store.sizes()
        return {name: sizes.get(kind, 0) for name, kind in _CACHE_KINDS}

    @contextmanager
    def _instrumented(self):
        previous = homomorphism.install_search_counters(self._stats.search)
        try:
            yield
        finally:
            homomorphism.install_search_counters(previous)

    @contextmanager
    def _check(self, kind):
        """One public decision: a root ``check`` trace span plus search
        counter installation."""
        with self._instrumented():
            with self._tracer.span("check", label=kind):
                yield

    # -- the pipeline --------------------------------------------------

    def prepare(self, query, schema, name="q"):
        """Parse, type-check, normalize, and encode *query* — memoized.

        One pipeline invocation (stages ``parse`` →  ``typecheck`` →
        ``encode`` → ``build_grouping``), cached under the content hash
        of the parsed AST (so equal texts and equal :class:`Expr` trees
        share one entry), the normalized schema, and the role *name*
        given to the resulting grouping query.
        """
        return self._pipeline.prepare(query, schema, name)

    def _provably_nonempty(self, query, path):
        return self._pipeline.provably_nonempty(query, path)

    def _resolve_constraints(self, constraints):
        """The effective dependency tuple for one decision."""
        if constraints is None:
            return self._constraints
        return tuple(constraints)

    def _chase_hook(self, constraints, schema):
        """The memoized saturation hook for *constraints*, or None."""
        if not constraints:
            return None
        from repro.coql.containment import as_schema

        schema = as_schema(schema)
        pipeline = self._pipeline
        return lambda atoms: pipeline.chase(atoms, constraints, schema)

    def _decider(self, method, witnesses, constraints=(), schema=None):
        if method == "certificate":
            cache = self._pipeline.target_cache()
            chase = self._chase_hook(constraints, schema)
            chase_key = tuple(constraints) if constraints else None
            return lambda a, b: is_simulated(
                a, b, witnesses=witnesses, stats=self._stats, cache=cache,
                chase=chase, chase_key=chase_key,
            )
        if method == "canonical":
            if constraints:
                raise UnsupportedQueryError(
                    "the canonical (brute-force) method does not support "
                    "inclusion dependencies; use method='certificate'"
                )
            from repro.grouping.bruteforce import check_simulation_on_canonical

            return lambda a, b: check_simulation_on_canonical(
                a, b, max_witnesses=witnesses
            )
        raise UnsupportedQueryError("unknown method %r" % (method,))

    def _contains_encoded(self, sup_encoded, sub_encoded, witnesses, method,
                          constraints=(), schema=None):
        if not sub_encoded.is_empty and not sup_encoded.is_empty:
            if not shapes_compatible(sub_encoded.shape, sup_encoded.shape):
                raise IncomparableQueriesError(
                    "queries have different output shapes: %r vs %r"
                    % (sub_encoded.shape, sup_encoded.shape)
                )
        sub_query, sup_query, verdict = paired_encoding(
            sub_encoded, sup_encoded
        )
        if verdict is not None:
            return verdict
        if sub_query is None:
            raise IncomparableQueriesError(
                "queries have incompatible nested structure"
            )
        decide = self._decider(
            method, witnesses, constraints=constraints, schema=schema
        )
        patterns = self._pipeline.enumerate_obligations(sub_query)
        for pattern in patterns:
            if not self._pipeline.decide_obligation(
                sub_query, sup_query, pattern, witnesses, method, decide,
                constraints=constraints,
            ):
                return False
        return True

    # -- public decisions ----------------------------------------------

    def _pre_analyze(self, sup, sub, schema):
        """The opt-in lint pre-check; returns ``(verdict, sup, sub)``.

        Runs the cheap analysis rules over both queries against this
        engine's store, labels the findings ``sub``/``sup``, and
        records them on :meth:`stats`.  When the subquery is found to
        be the constant empty set (error-severity COQL002) the
        containment verdict is True regardless of the superquery's
        content — the superquery is still prepared first so malformed
        superqueries raise exactly as without the pre-check.

        Query texts are parsed once here and the parsed forms are
        returned, so :meth:`contains` does not parse a second time and
        the pre-check's marginal cost is the rule passes alone.
        """
        from repro.analysis import ERROR, AnalysisConfig, analyze

        config = self._analysis_config
        if config is None:
            config = AnalysisConfig(expensive=False)
        if isinstance(sup, str):
            with self._tracer.span("parse"):
                sup = parse_coql(sup)
        if isinstance(sub, str):
            with self._tracer.span("parse"):
                sub = parse_coql(sub)
        if contains_union(sup) or contains_union(sub):
            # Per-branch analysis happens through the family reduction;
            # whole-query rules assume union-free normal forms.
            return None, sup, sub
        found = []
        with self._tracer.span("analysis"):
            for role, query in (("sub", sub), ("sup", sup)):
                found.extend(
                    d.with_target(role)
                    for d in analyze(query, schema, engine=self, config=config)
                )
        self._stats.tally("analysis_runs")
        self._stats.add_diagnostics(found)
        sub_is_empty = any(
            d.code == "COQL002" and d.severity == ERROR and d.target == "sub"
            for d in found
        )
        if sub_is_empty:
            self.prepare(sup, schema)
            self._stats.tally("analysis_short_circuits")
            return True, sup, sub
        return None, sup, sub

    def _family(self, query):
        """Parse (via the memoized parse stage) and expand to union-free
        branches; union-free queries come back as the one-element tuple
        holding the *same* AST object, so the singleton path prepares
        and caches exactly what it did before families existed."""
        if isinstance(query, str):
            query = self._pipeline.parse(query)
        return union_branches(query)

    def _branch_verdict(self, sup_branch, sub_branch, schema, schema_items,
                        witnesses, method, constraints):
        """One ``sub_branch ⊑ sup_branch`` verdict of the Sagiv–
        Yannakakis reduction, memoized under kind ``branch_verdict``.

        Captured :class:`IncomparableQueriesError` instances are
        verdicts too (a sub branch may be incomparable with one sup
        branch yet covered by another) and are cached like booleans —
        both are deterministic.  UNDECIDED never reaches this layer
        (the sequential engine has no timeouts).
        """
        store = self._pipeline.store
        key = None
        if store is not None:
            key = artifact_key(
                "branch_verdict", sub_branch, sup_branch, schema_items,
                witnesses, method, constraints,
            )
            cached = store.lookup("branch_verdict", key)
            if cached is not MISSING:
                self._stats.tally("branch_verdict_hits")
                return cached
            self._stats.tally("branch_verdict_misses")
        try:
            verdict = self._contains_encoded(
                self.prepare(sup_branch, schema),
                self.prepare(sub_branch, schema),
                witnesses, method,
                constraints=constraints, schema=schema,
            )
        except IncomparableQueriesError as exc:
            verdict = exc
        self._stats.tally("union_branches_decided")
        if store is not None and _verdict_is_stable(verdict):
            store.store("branch_verdict", key, verdict)
        return verdict

    def _contains_family(self, sup_branches, sub_branches, schema,
                         witnesses, method, constraints):
        """The Sagiv–Yannakakis all/any reduction over two families.

        ``⋃ᵢ subᵢ ⊑ ⋃ⱼ supⱼ`` holds when every sub branch is contained
        in *some* sup branch — sound for the Hoare order, complete for
        flat single-level unions [36].  Branches are visited in family
        (source) order and the inner loop short-circuits on the first
        covering sup branch, so sequential and parallel engines decide
        the same branch pairs in the same order.  A sub branch that is
        incomparable with *every* sup branch re-raises the first
        incomparability; one that is merely not contained returns
        False.
        """
        from repro.coql.containment import as_schema

        schema_items = tuple(sorted(as_schema(schema).items()))
        with self.tracer().span(
            "reduce_union", sub_branches=len(sub_branches),
            sup_branches=len(sup_branches),
        ):
            for sub_branch in sub_branches:
                covered = False
                errors = []
                for sup_branch in sup_branches:
                    verdict = self._branch_verdict(
                        sup_branch, sub_branch, schema, schema_items,
                        witnesses, method, constraints,
                    )
                    if isinstance(verdict, Exception):
                        errors.append(verdict)
                        continue
                    if verdict is True:
                        covered = True
                        break
                if not covered:
                    if len(errors) == len(sup_branches):
                        raise errors[0]
                    return False
            return True

    def contains(self, sup, sub, schema, witnesses=None, method=None,
                 constraints=None):
        """True iff ``sub ⊑ sup`` on every database (Theorem 4.1).

        Union bodies are expanded to query families and decided by the
        Sagiv–Yannakakis all/any reduction; *constraints* (inclusion
        dependencies, default the engine's) make the verdict relative
        to databases satisfying them.
        """
        if witnesses is None:
            witnesses = self._default_witnesses
        if method is None:
            method = self._default_method
        constraints = self._resolve_constraints(constraints)
        with self._check("contains"):
            self._stats.tally("contains_calls")
            if self._analyze:
                verdict, sup, sub = self._pre_analyze(sup, sub, schema)
                if verdict is not None:
                    return verdict
            sub_branches = self._family(sub)
            sup_branches = self._family(sup)
            if len(sub_branches) == 1 and len(sup_branches) == 1:
                sub_encoded = self.prepare(sub_branches[0], schema)
                sup_encoded = self.prepare(sup_branches[0], schema)
                return self._contains_encoded(
                    sup_encoded, sub_encoded, witnesses, method,
                    constraints=constraints, schema=schema,
                )
            return self._contains_family(
                sup_branches, sub_branches, schema, witnesses, method,
                constraints,
            )

    def weakly_equivalent(self, q1, q2, schema, witnesses=None, method=None,
                          constraints=None):
        """True iff ``Q1 ⊑ Q2`` and ``Q2 ⊑ Q1`` (decidable in general).

        Both directions use the same *method* and share the engine's
        obligation cache, so a self-equivalence check decides each
        obligation once.  Union queries compare family-wise (both
        directions of the Sagiv–Yannakakis reduction).
        """
        if witnesses is None:
            witnesses = self._default_witnesses
        if method is None:
            method = self._default_method
        constraints = self._resolve_constraints(constraints)
        with self._check("weakly_equivalent"):
            self._stats.tally("equivalence_calls")
            first_branches = self._family(q1)
            second_branches = self._family(q2)
            if len(first_branches) == 1 and len(second_branches) == 1:
                first = self.prepare(first_branches[0], schema)
                second = self.prepare(second_branches[0], schema)
                return self._contains_encoded(
                    second, first, witnesses, method,
                    constraints=constraints, schema=schema,
                ) and self._contains_encoded(
                    first, second, witnesses, method,
                    constraints=constraints, schema=schema,
                )
            return self._contains_family(
                second_branches, first_branches, schema, witnesses, method,
                constraints,
            ) and self._contains_family(
                first_branches, second_branches, schema, witnesses, method,
                constraints,
            )

    def empty_set_free(self, query, schema):
        """True when the query provably never produces an empty set."""
        with self._check("empty_set_free"):
            encoded = self.prepare(query, schema)
            if encoded.is_empty:
                return False
            if encoded.empty_paths:
                return False
            with self._tracer.span("obligations"):
                return all(
                    self._provably_nonempty(encoded.query, p)
                    for p in encoded.query.paths()
                    if p
                )

    def provably_nonempty(self, query, path):
        """True when the group at *path* is non-empty for every parent row.

        Memoized public wrapper over the sufficient syntactic test of
        :func:`repro.coql.containment._provably_nonempty`; *query* is a
        :class:`GroupingQuery` (e.g. ``prepare(...).query``).  Shared
        with obligation enumeration, :meth:`empty_set_free`, and the
        COQL004/COQL007 analysis rules, so asking never repeats work.
        """
        return self._provably_nonempty(query, path)

    def simulated(self, sub, sup, witnesses=None):
        """True iff ``sub ⊴ sup`` for :class:`GroupingQuery` arguments.

        An instrumented, target-cached wrapper over
        :func:`repro.grouping.simulation.is_simulated`: search effort
        lands in :meth:`stats` and the compiled simulation target for
        *sub* is reused across calls (and across witness escalation).
        The parallel engine's workers decide their shards through this
        entry point so every shard sharing a subquery compiles its
        target once.
        """
        if witnesses is None:
            witnesses = self._default_witnesses
        with self._check("simulated"):
            with self._tracer.span("simulation"):
                return is_simulated(
                    sub, sup, witnesses=witnesses, stats=self._stats,
                    cache=self._pipeline.target_cache(),
                )

    def cq_contains(self, sup, sub, ordering=None):
        """Chandra–Merlin containment for flat conjunctive queries.

        ``cq_contains(Q2, Q1)`` is True iff ``Q1 ⊑ Q2`` for
        :class:`repro.cq.query.ConjunctiveQuery` arguments — the same
        verdict as :func:`repro.cq.containment.contains`, but
        instrumented (search effort lands in :meth:`stats`) and
        memoized under the ``branch_verdict`` artifact kind, which is
        what :func:`repro.cq.unions.union_contains` and
        :meth:`repro.cq.unions.UnionQuery.minimize` route through.

        :param ordering: homomorphism search ordering
            (:data:`repro.cq.propagation.ORDERINGS`, e.g. ``"bitset"``);
            None keeps the ambient default.  The ordering changes the
            search, never the verdict, so it is not part of the cache
            key.
        """
        from repro.cq.containment import containment_mapping
        from repro.cq.propagation import use_ordering

        with self._check("cq_contains"):
            self._stats.tally("cq_contains_calls")
            store = self._pipeline.store
            key = None
            if store is not None:
                key = artifact_key("branch_verdict", "cq", sub, sup)
                cached = store.lookup("branch_verdict", key)
                if cached is not MISSING:
                    self._stats.tally("branch_verdict_hits")
                    return cached
                self._stats.tally("branch_verdict_misses")
            with self._tracer.span("simulation"):
                if ordering is None:
                    verdict = containment_mapping(sub, sup) is not None
                else:
                    with use_ordering(ordering):
                        verdict = containment_mapping(sub, sup) is not None
            if store is not None:
                store.store("branch_verdict", key, verdict)
            return verdict

    def cost_certificate(self, query, schema, against=None, witnesses=None,
                         stats=None):
        """The static :class:`repro.analysis.interp.CostCertificate` for
        checking *query* against *against* (default: itself).

        One traced ``check`` span of kind ``analyze_cost``; the core
        pair certificate is cached under the ``cost_certificate``
        artifact kind, and the certificate's non-emptiness tests share
        this engine's memoized ``nonempty`` cache — so a later
        :meth:`contains` on the same pair replays them for free.
        *stats* is an optional
        :class:`repro.analysis.interp.DatabaseStatistics` sharpening the
        AST-level cardinality facts.
        """
        from repro.analysis.interp import cost_certificate

        if witnesses is None:
            witnesses = self._default_witnesses
        with self._check("analyze_cost"):
            self._stats.tally("analyze_cost_calls")
            return cost_certificate(
                query, schema, against=against, engine=self,
                witnesses=witnesses, stats=stats,
            )

    def minimize(self, query, schema, witnesses=None):
        """Remove redundant generators/conditions (weak-equivalence
        preserving), deciding candidate equivalences on this engine.

        A traced ``minimize`` stage over
        :func:`repro.coql.minimize.minimize_coql`; every candidate's
        weak-equivalence checks share this engine's store, so repeated
        minimization of similar queries is incremental.
        """
        from repro.coql.minimize import minimize_coql

        with self._tracer.span("minimize"):
            return minimize_coql(
                query, schema, witnesses=witnesses, engine=self
            )

    def equivalent(self, q1, q2, schema, witnesses=None, method=None):
        """Decide equivalence for empty-set-free queries (else raise)."""
        if not self.empty_set_free(q1, schema) or not self.empty_set_free(
            q2, schema
        ):
            raise UnsupportedQueryError(
                "equivalence is decided for empty-set-free queries only "
                "(weak equivalence is decidable in general: use "
                "weakly_equivalent)"
            )
        return self.weakly_equivalent(
            q1, q2, schema, witnesses=witnesses, method=method
        )

    # -- batch entry points --------------------------------------------

    def contains_many(self, pairs, schema, witnesses=None, method=None,
                      on_error="raise", constraints=None):
        """Decide ``sub ⊑ sup`` for every ``(sup, sub)`` pair.

        :param pairs: iterable of ``(sup, sub)`` queries.
        :param on_error: ``"raise"`` propagates
            :class:`IncomparableQueriesError` /
            :class:`UnsupportedQueryError`; ``"capture"`` places the
            exception instance in the result list instead, so one bad
            pair does not abort the batch.
        :returns: a list of verdicts (and, under ``"capture"``,
            exception instances), one per pair, in order.
        """
        if on_error not in ("raise", "capture"):
            raise UnsupportedQueryError(
                "on_error must be 'raise' or 'capture', got %r" % (on_error,)
            )
        self._stats.tally("batch_calls")
        out = []
        for sup, sub in pairs:
            try:
                out.append(
                    self.contains(
                        sup, sub, schema, witnesses=witnesses, method=method,
                        constraints=constraints,
                    )
                )
            except (IncomparableQueriesError, UnsupportedQueryError) as exc:
                if on_error == "raise":
                    raise
                out.append(exc)
        return out

    def classify_many(self, query, candidates, schema, witnesses=None,
                      method=None, constraints=None):
        """Label every candidate view's usability for *query*.

        For each candidate V the pair of checks ``query ⊑ V`` and
        ``V ⊑ query`` is decided (errors captured, so one incomparable
        view cannot abort the batch) and folded into one of the
        :data:`CLASSIFICATIONS` labels by :func:`classification_of`.
        Labels are memoized under the ``classification`` artifact kind,
        so a warm lookup answers without touching the decision procedure
        at all — this is the semantic cache's admission fast path.

        :returns: a list of labels, one per candidate, in order.
        """
        if witnesses is None:
            witnesses = self._default_witnesses
        if method is None:
            method = self._default_method
        constraints = self._resolve_constraints(constraints)
        self._stats.tally("classify_calls")
        return resolve_classifications(
            self._pipeline, query, list(candidates), schema,
            witnesses, method,
            lambda pairs: self.contains_many(
                pairs, schema, witnesses=witnesses, method=method,
                on_error="capture", constraints=constraints,
            ),
            constraints=constraints,
        )

    def pairwise_matrix(self, queries, schema, witnesses=None, method=None,
                        constraints=None):
        """The N×N containment matrix of *queries*.

        ``matrix[i][j]`` is True iff ``queries[j] ⊑ queries[i]``, and
        None when the pair is incomparable or outside the decidable
        fragment.  Thanks to the prepare and obligation caches each
        query is encoded once and shared obligations are decided once
        across the whole matrix.
        """
        queries = list(queries)
        self._stats.tally("batch_calls")
        matrix = []
        for sup in queries:
            row = []
            for sub in queries:
                try:
                    row.append(
                        self.contains(
                            sup, sub, schema,
                            witnesses=witnesses, method=method,
                            constraints=constraints,
                        )
                    )
                except (IncomparableQueriesError, UnsupportedQueryError):
                    row.append(None)
            matrix.append(row)
        return matrix

    def __repr__(self):
        sizes = self.cache_sizes()
        return (
            "ContainmentEngine(prepared=%d, verdicts=%d, nonempty=%d, "
            "targets=%d)"
            % (
                sizes["prepare"],
                sizes["obligation_verdicts"],
                sizes["nonempty"],
                sizes["targets"],
            )
        )
