"""The containment engine: a memoized, instrumented decision pipeline.

Every module-level call to :func:`repro.coql.contains` re-parses,
re-typechecks, re-normalizes and re-encodes both queries, and the
exponential truncation-obligation loop re-decides identical simulation
subproblems.  :class:`ContainmentEngine` puts a caching layer at exactly
those boundaries:

* :meth:`prepare` results are memoized per *(canonical query AST,
  schema, role)* — textual queries are parsed first, so a query text and
  its parsed AST share one cache entry;
* simulation verdicts are memoized per truncated *(sub, sup)* obligation
  pair (plus witnesses and method), so obligations shared across
  truncation patterns — and across both directions of an equivalence
  check, or across the N×N matrix of a view catalog — are decided once;
* the provably-non-empty test is memoized per *(grouping query, path)*,
  shared between obligation enumeration and :meth:`empty_set_free`;
* compiled simulation targets (the witness-augmented canonical database
  plus its inverted index, see
  :class:`repro.grouping.simulation.SimulationTarget`) are memoized per
  *(grouping query, witnesses)* — witness escalation, repeated checks
  against one side, ``pairwise_matrix`` rows and the weak-equivalence
  truncation sweep all reuse the compiled target instead of rebuilding
  and re-indexing it.

Memoization safety: every cached object (:class:`Expr`,
:class:`EncodedQuery`'s :class:`GroupingQuery`, verdict booleans) is
immutable, so cached results may be returned to any number of callers.

Batch entry points (:meth:`contains_many`, :meth:`pairwise_matrix`) feed
the view-reuse analysis and the workload scenarios; everything the
engine does is tallied in an :class:`repro.engine.stats.EngineStats`
available via :meth:`stats`.
"""

from collections import OrderedDict
from contextlib import contextmanager
from time import perf_counter

from repro.errors import (
    IncomparableQueriesError,
    UnsupportedQueryError,
    TypeCheckError,
)
from repro.coql.ast import Expr
from repro.coql.parser import parse_coql
from repro.coql.typecheck import typecheck
from repro.coql.normalize import normalize
from repro.coql.encode import encode_query, paired_encoding, shapes_compatible
from repro.coql.containment import (
    as_schema,
    _obligation_patterns,
    _provably_nonempty,
)
from repro.grouping.simulation import is_simulated
from repro.cq import homomorphism
from repro.engine.stats import EngineStats

__all__ = ["ContainmentEngine"]


_MISSING = object()


class _LRUCache:
    """A bounded mapping with least-recently-used eviction.

    ``maxsize=0`` disables the cache entirely (every lookup misses and
    nothing is stored) — used by the benchmarks to measure the engine
    with caching off.  ``maxsize=None`` means unbounded.
    """

    __slots__ = ("maxsize", "_data")

    def __init__(self, maxsize):
        self.maxsize = maxsize
        self._data = OrderedDict()

    def lookup(self, key):
        if self.maxsize == 0:
            return _MISSING
        value = self._data.get(key, _MISSING)
        if value is not _MISSING:
            self._data.move_to_end(key)
        return value

    def store(self, key, value):
        if self.maxsize == 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        if self.maxsize is not None and len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self):
        self._data.clear()

    def __len__(self):
        return len(self._data)

    # Mapping-style access, so the cache can be handed to helpers that
    # expect a plain dict (e.g. the simulation-target cache protocol).

    def get(self, key, default=None):
        value = self.lookup(key)
        return default if value is _MISSING else value

    def __setitem__(self, key, value):
        self.store(key, value)


class ContainmentEngine:
    """Memoized containment, equivalence, and emptiness decisions.

    Drop-in superset of the module-level API of
    :mod:`repro.coql.containment` (which delegates to a process-wide
    default instance): same arguments, same verdicts, same exceptions —
    plus caching across calls and :meth:`stats`.

    :param witnesses: default witness-copy count for simulation searches
        (None = the incremental strategy).
    :param method: default decision method, ``"certificate"`` or
        ``"canonical"``.
    :param prepare_cache_size: entries in the prepared-query cache
        (0 disables, None unbounded).
    :param verdict_cache_size: entries in the obligation-verdict and
        provably-non-empty caches (0 disables, None unbounded).
    :param target_cache_size: entries in the compiled simulation-target
        cache (0 disables, None unbounded).
    :param analyze: opt-in static-analysis pre-check: every
        :meth:`contains` call first runs :func:`repro.analysis.analyze`
        over both queries (cheap rules only, sharing this engine's
        caches), attaches the findings to :meth:`stats` (labelled
        ``sub`` / ``sup``), and short-circuits to True when the
        subquery's body is unsatisfiable (a constant-empty subquery is
        contained in everything).
    :param analysis_config: the :class:`repro.analysis.AnalysisConfig`
        the pre-check uses (default: stock knobs with expensive rules
        off).
    """

    def __init__(self, witnesses=None, method="certificate",
                 prepare_cache_size=512, verdict_cache_size=8192,
                 target_cache_size=1024, analyze=False, analysis_config=None):
        self._default_witnesses = witnesses
        self._default_method = method
        self._prepare_cache = _LRUCache(prepare_cache_size)
        self._verdict_cache = _LRUCache(verdict_cache_size)
        self._nonempty_cache = _LRUCache(verdict_cache_size)
        self._target_cache = _LRUCache(target_cache_size)
        self._stats = EngineStats()
        self._analyze = bool(analyze)
        self._analysis_config = analysis_config

    # -- instrumentation ----------------------------------------------

    def stats(self):
        """The engine's :class:`EngineStats` (live, cumulative)."""
        return self._stats

    def reset_stats(self):
        """Zero all counters and timers; caches are kept."""
        self._stats.reset()

    def clear_caches(self):
        """Drop every memoized result (stats are kept)."""
        self._prepare_cache.clear()
        self._verdict_cache.clear()
        self._nonempty_cache.clear()
        self._target_cache.clear()

    def cache_sizes(self):
        """Current entry counts: ``{cache name: entries}``."""
        return {
            "prepare": len(self._prepare_cache),
            "obligation_verdicts": len(self._verdict_cache),
            "nonempty": len(self._nonempty_cache),
            "targets": len(self._target_cache),
        }

    @contextmanager
    def _stage(self, name):
        start = perf_counter()
        try:
            yield
        finally:
            self._stats.add_time(name, perf_counter() - start)

    @contextmanager
    def _instrumented(self):
        previous = homomorphism.install_search_counters(self._stats.search)
        try:
            yield
        finally:
            homomorphism.install_search_counters(previous)

    # -- the pipeline --------------------------------------------------

    def prepare(self, query, schema, name="q"):
        """Parse, type-check, normalize, and encode *query* — memoized.

        The cache key is the parsed AST (so equal texts and equal
        :class:`Expr` trees share one entry), the normalized schema, and
        the role *name* given to the resulting grouping query.
        """
        schema = as_schema(schema)
        if isinstance(query, str):
            with self._stage("parse"):
                query = parse_coql(query)
        if not isinstance(query, Expr):
            raise TypeCheckError("not a COQL query: %r" % (query,))
        key = (query, tuple(sorted(schema.items())), name)
        cached = self._prepare_cache.lookup(key)
        if cached is not _MISSING:
            self._stats.tally("prepare_hits")
            return cached
        self._stats.tally("prepare_misses")
        with self._stage("typecheck"):
            typecheck(query, schema)
        with self._stage("normalize"):
            nf = normalize(query)
        with self._stage("encode"):
            encoded = encode_query(nf, schema, name)
        self._prepare_cache.store(key, encoded)
        return encoded

    def _provably_nonempty(self, query, path):
        key = (query, path)
        cached = self._nonempty_cache.lookup(key)
        if cached is not _MISSING:
            self._stats.tally("nonempty_hits")
            return cached
        self._stats.tally("nonempty_misses")
        verdict = _provably_nonempty(query, path)
        self._nonempty_cache.store(key, verdict)
        return verdict

    def _decider(self, method, witnesses):
        if method == "certificate":
            return lambda a, b: is_simulated(
                a, b, witnesses=witnesses, stats=self._stats,
                cache=self._target_cache,
            )
        if method == "canonical":
            from repro.grouping.bruteforce import check_simulation_on_canonical

            return lambda a, b: check_simulation_on_canonical(
                a, b, max_witnesses=witnesses
            )
        raise UnsupportedQueryError("unknown method %r" % (method,))

    def _decide_obligation(self, sub_query, sup_query, pattern, witnesses,
                           method, decide):
        sub_t = sub_query.truncate(pattern)
        sup_t = sup_query.truncate(pattern)
        key = (sub_t, sup_t, witnesses, method)
        cached = self._verdict_cache.lookup(key)
        if cached is not _MISSING:
            self._stats.tally("obligation_cache_hits")
            return cached
        self._stats.tally("obligation_cache_misses")
        with self._stage("simulation"):
            verdict = decide(sub_t, sup_t)
        self._stats.tally("obligations_checked")
        self._verdict_cache.store(key, verdict)
        return verdict

    def _contains_encoded(self, sup_encoded, sub_encoded, witnesses, method):
        if not sub_encoded.is_empty and not sup_encoded.is_empty:
            if not shapes_compatible(sub_encoded.shape, sup_encoded.shape):
                raise IncomparableQueriesError(
                    "queries have different output shapes: %r vs %r"
                    % (sub_encoded.shape, sup_encoded.shape)
                )
        sub_query, sup_query, verdict = paired_encoding(
            sub_encoded, sup_encoded
        )
        if verdict is not None:
            return verdict
        if sub_query is None:
            raise IncomparableQueriesError(
                "queries have incompatible nested structure"
            )
        decide = self._decider(method, witnesses)
        with self._stage("obligations"):
            patterns = list(
                _obligation_patterns(
                    sub_query, is_nonempty=self._provably_nonempty
                )
            )
        nonroot = sum(1 for p in sub_query.paths() if p)
        self._stats.tally(
            "obligations_skipped_implied", 2 ** nonroot - len(patterns)
        )
        for pattern in patterns:
            if not self._decide_obligation(
                sub_query, sup_query, pattern, witnesses, method, decide
            ):
                return False
        return True

    # -- public decisions ----------------------------------------------

    def _pre_analyze(self, sup, sub, schema):
        """The opt-in lint pre-check; returns ``(verdict, sup, sub)``.

        Runs the cheap analysis rules over both queries against this
        engine's caches, labels the findings ``sub``/``sup``, and
        records them on :meth:`stats`.  When the subquery is found to
        be the constant empty set (error-severity COQL002) the
        containment verdict is True regardless of the superquery's
        content — the superquery is still prepared first so malformed
        superqueries raise exactly as without the pre-check.

        Query texts are parsed once here and the parsed forms are
        returned, so :meth:`contains` does not parse a second time and
        the pre-check's marginal cost is the rule passes alone.
        """
        from repro.analysis import ERROR, AnalysisConfig, analyze

        config = self._analysis_config
        if config is None:
            config = AnalysisConfig(expensive=False)
        if isinstance(sup, str):
            with self._stage("parse"):
                sup = parse_coql(sup)
        if isinstance(sub, str):
            with self._stage("parse"):
                sub = parse_coql(sub)
        found = []
        with self._stage("analysis"):
            for role, query in (("sub", sub), ("sup", sup)):
                found.extend(
                    d.with_target(role)
                    for d in analyze(query, schema, engine=self, config=config)
                )
        self._stats.tally("analysis_runs")
        self._stats.add_diagnostics(found)
        sub_is_empty = any(
            d.code == "COQL002" and d.severity == ERROR and d.target == "sub"
            for d in found
        )
        if sub_is_empty:
            self.prepare(sup, schema)
            self._stats.tally("analysis_short_circuits")
            return True, sup, sub
        return None, sup, sub

    def contains(self, sup, sub, schema, witnesses=None, method=None):
        """True iff ``sub ⊑ sup`` on every database (Theorem 4.1)."""
        if witnesses is None:
            witnesses = self._default_witnesses
        if method is None:
            method = self._default_method
        with self._instrumented():
            self._stats.tally("contains_calls")
            if self._analyze:
                verdict, sup, sub = self._pre_analyze(sup, sub, schema)
                if verdict is not None:
                    return verdict
            sub_encoded = self.prepare(sub, schema)
            sup_encoded = self.prepare(sup, schema)
            return self._contains_encoded(
                sup_encoded, sub_encoded, witnesses, method
            )

    def weakly_equivalent(self, q1, q2, schema, witnesses=None, method=None):
        """True iff ``Q1 ⊑ Q2`` and ``Q2 ⊑ Q1`` (decidable in general).

        Both directions use the same *method* and share the engine's
        obligation cache, so a self-equivalence check decides each
        obligation once.
        """
        if witnesses is None:
            witnesses = self._default_witnesses
        if method is None:
            method = self._default_method
        with self._instrumented():
            self._stats.tally("equivalence_calls")
            first = self.prepare(q1, schema)
            second = self.prepare(q2, schema)
            return self._contains_encoded(
                second, first, witnesses, method
            ) and self._contains_encoded(first, second, witnesses, method)

    def empty_set_free(self, query, schema):
        """True when the query provably never produces an empty set."""
        with self._instrumented():
            encoded = self.prepare(query, schema)
            if encoded.is_empty:
                return False
            if encoded.empty_paths:
                return False
            with self._stage("obligations"):
                return all(
                    self._provably_nonempty(encoded.query, p)
                    for p in encoded.query.paths()
                    if p
                )

    def provably_nonempty(self, query, path):
        """True when the group at *path* is non-empty for every parent row.

        Memoized public wrapper over the sufficient syntactic test of
        :func:`repro.coql.containment._provably_nonempty`; *query* is a
        :class:`GroupingQuery` (e.g. ``prepare(...).query``).  Shared
        with obligation enumeration, :meth:`empty_set_free`, and the
        COQL004/COQL007 analysis rules, so asking never repeats work.
        """
        return self._provably_nonempty(query, path)

    def simulated(self, sub, sup, witnesses=None):
        """True iff ``sub ⊴ sup`` for :class:`GroupingQuery` arguments.

        An instrumented, target-cached wrapper over
        :func:`repro.grouping.simulation.is_simulated`: search effort
        lands in :meth:`stats` and the compiled simulation target for
        *sub* is reused across calls (and across witness escalation).
        The parallel engine's workers decide their shards through this
        entry point so every shard sharing a subquery compiles its
        target once.
        """
        if witnesses is None:
            witnesses = self._default_witnesses
        with self._instrumented():
            with self._stage("simulation"):
                return is_simulated(
                    sub, sup, witnesses=witnesses, stats=self._stats,
                    cache=self._target_cache,
                )

    def equivalent(self, q1, q2, schema, witnesses=None, method=None):
        """Decide equivalence for empty-set-free queries (else raise)."""
        if not self.empty_set_free(q1, schema) or not self.empty_set_free(
            q2, schema
        ):
            raise UnsupportedQueryError(
                "equivalence is decided for empty-set-free queries only "
                "(weak equivalence is decidable in general: use "
                "weakly_equivalent)"
            )
        return self.weakly_equivalent(
            q1, q2, schema, witnesses=witnesses, method=method
        )

    # -- batch entry points --------------------------------------------

    def contains_many(self, pairs, schema, witnesses=None, method=None,
                      on_error="raise"):
        """Decide ``sub ⊑ sup`` for every ``(sup, sub)`` pair.

        :param pairs: iterable of ``(sup, sub)`` queries.
        :param on_error: ``"raise"`` propagates
            :class:`IncomparableQueriesError` /
            :class:`UnsupportedQueryError`; ``"capture"`` places the
            exception instance in the result list instead, so one bad
            pair does not abort the batch.
        :returns: a list of verdicts (and, under ``"capture"``,
            exception instances), one per pair, in order.
        """
        if on_error not in ("raise", "capture"):
            raise UnsupportedQueryError(
                "on_error must be 'raise' or 'capture', got %r" % (on_error,)
            )
        self._stats.tally("batch_calls")
        out = []
        for sup, sub in pairs:
            try:
                out.append(
                    self.contains(
                        sup, sub, schema, witnesses=witnesses, method=method
                    )
                )
            except (IncomparableQueriesError, UnsupportedQueryError) as exc:
                if on_error == "raise":
                    raise
                out.append(exc)
        return out

    def pairwise_matrix(self, queries, schema, witnesses=None, method=None):
        """The N×N containment matrix of *queries*.

        ``matrix[i][j]`` is True iff ``queries[j] ⊑ queries[i]``, and
        None when the pair is incomparable or outside the decidable
        fragment.  Thanks to the prepare and obligation caches each
        query is encoded once and shared obligations are decided once
        across the whole matrix.
        """
        queries = list(queries)
        self._stats.tally("batch_calls")
        matrix = []
        for sup in queries:
            row = []
            for sub in queries:
                try:
                    row.append(
                        self.contains(
                            sup, sub, schema,
                            witnesses=witnesses, method=method,
                        )
                    )
                except (IncomparableQueriesError, UnsupportedQueryError):
                    row.append(None)
            matrix.append(row)
        return matrix

    def __repr__(self):
        sizes = self.cache_sizes()
        return (
            "ContainmentEngine(prepared=%d, verdicts=%d, nonempty=%d, "
            "targets=%d)"
            % (
                sizes["prepare"],
                sizes["obligation_verdicts"],
                sizes["nonempty"],
                sizes["targets"],
            )
        )
