"""Command-line interface.

Usage::

    python -m repro contain  --schema 'r:a,b;s:k,b' SUP SUB [--jobs N --timeout-s T --stats --trace-out trace.json]
    python -m repro matrix   --schema 'r:a,b' Q1 Q2 Q3 [--jobs N --timeout-s T]
    python -m repro equiv    --schema 'r:a,b' Q1 Q2 [--weak]
    python -m repro lint     --schema 'r:a,b' QUERY_OR_FILE... [--format json --explain COQLNNN]
    python -m repro analyze  --schema 'r:a,b' QUERY_OR_FILE... [--against Q --witnesses N --budget B --data db.json --format json]
    python -m repro eval     --schema 'r:a,b' --data db.json QUERY
    python -m repro minimize --schema 'r:a,b' QUERY
    python -m repro cq-contain 'q(X) :- r(X,Y)' 'q(X) :- r(X,Y), s(Y)'
    python -m repro serve    --store-path cache.db [--host H --port P --jobs N --timeout-s T]
    python -m repro semcache --scenario company --steps 200 --seed 7 [--zipf S --churn P --oracle --json]

Schemas are written ``name:attr,attr;name:attr`` (attributes atomic).
Databases for ``eval`` are JSON files ``{"relation": [{"attr": value}]}``.
``lint`` targets are inline queries or ``.coql`` files (``#`` comments;
a ``# schema: r:a,b`` directive overrides ``--schema``, and
``# constraint: r[a] -> s[b]`` directives declare inclusion
dependencies for that file).

Inclusion dependencies (``repro.constraints``) enter through
``--constraints DEP_OR_FILE`` (repeatable) on ``contain`` / ``matrix``
/ ``equiv`` / ``lint`` / ``serve``: each value is either an inline
dependency ``r[a,b] -> s[x,y]`` or a path to a file of one dependency
per line (``#`` comments allowed).  Declared dependencies feed the
chase stage — the sub-side's canonical witnesses are saturated before
the simulation search, so verdicts hold over databases satisfying the
dependencies.

Exit codes, uniform across the decision subcommands (see docs/API.md):

* **0** — positive verdict: contained / equivalent / every matrix cell
  decided / no error-severity lint findings;
* **1** — negative verdict: not contained / not equivalent / an
  undecided or incomparable matrix cell / error-severity lint findings;
* **2** — usage error: bad flags, bad schema, a query that does not
  parse (``lint`` reports parse errors as COQL000 findings instead).
  An unknown ``--ordering`` value is a usage error: argparse rejects
  anything outside ``repro.cq.propagation.ORDERINGS`` and exits 2;
* **3** — UNDECIDED: a ``contain --timeout-s`` check timed out.
"""

import argparse
import json
import sys

from repro.errors import ReproError

__all__ = ["main"]


def _parse_schema(text):
    schema = {}
    for entry in text.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        name, __, attrs = entry.partition(":")
        schema[name.strip()] = tuple(
            a.strip() for a in attrs.split(",") if a.strip()
        )
    if not schema:
        raise ReproError("empty schema (expected 'name:attr,attr;...')")
    return schema


def _load_constraints(values):
    """``--constraints`` values → a tuple of InclusionDependency.

    Each value is either an inline dependency (``r[a] -> s[b]``) or a
    path to a file of one dependency per line (blank lines and ``#``
    comments skipped).  Malformed dependencies raise
    :class:`~repro.errors.ReproError` — a usage error (exit 2).
    """
    import os

    from repro.constraints import parse_constraint, parse_constraints

    dependencies = []
    for value in values or ():
        if os.path.exists(value):
            with open(value) as handle:
                dependencies.extend(
                    parse_constraints(handle.read().splitlines())
                )
        else:
            dependencies.append(parse_constraint(value))
    return tuple(dependencies)


def _print_stats(engine):
    print("--- engine stats ---", file=sys.stderr)
    print(engine.stats().format(), file=sys.stderr)
    summary = engine.tracer().stage_summary()
    if summary:
        print("--- per-stage breakdown ---", file=sys.stderr)
        width = max(len(stage) for stage in summary)
        for stage in sorted(summary):
            entry = summary[stage]
            line = "%-*s  %4d run(s)  %10.6fs" % (
                width, stage, entry["runs"], entry["seconds"],
            )
            if entry["hits"] or entry["misses"]:
                line += "  (%d hit(s), %d miss(es))" % (
                    entry["hits"], entry["misses"],
                )
            print(line, file=sys.stderr)


def _write_trace(engine, path):
    """Export the engine's trace as Chrome ``trace_event`` JSON.

    Load the file at ``chrome://tracing`` / https://ui.perfetto.dev, or
    post-process it — the format is one JSON object with a
    ``traceEvents`` list of complete (``ph: "X"``) events.
    """
    engine.tracer().write_chrome_trace(path)
    print("trace written to %s" % path, file=sys.stderr)


def _ordering_context(ordering):
    """``use_ordering(ordering)``, or a no-op context for None."""
    from contextlib import nullcontext

    from repro.cq.propagation import use_ordering

    return use_ordering(ordering) if ordering else nullcontext()


def _cmd_contain(args):
    from repro.engine import UNDECIDED, ContainmentEngine, ParallelContainmentEngine

    schema = _parse_schema(args.schema)
    constraints = _load_constraints(args.constraints)
    if args.jobs is not None or args.timeout_s is not None:
        engine = ParallelContainmentEngine(
            jobs=args.jobs, timeout_s=args.timeout_s, method=args.method,
            store_path=args.store_path, ordering=args.ordering,
            constraints=constraints,
        )
        with engine:
            verdict = engine.contains(args.sup, args.sub, schema)
    else:
        engine = ContainmentEngine(
            store_path=args.store_path, constraints=constraints
        )
        with _ordering_context(args.ordering):
            verdict = engine.contains(
                args.sup, args.sub, schema, method=args.method
            )
        store = engine.store()
        if hasattr(store, "flush"):
            store.flush()
    if verdict is UNDECIDED:
        print("UNDECIDED (timed out after %gs)" % args.timeout_s)
    else:
        print("contained" if verdict else "NOT contained")
    if args.stats:
        _print_stats(engine)
    if args.trace_out:
        _write_trace(engine, args.trace_out)
    if verdict is UNDECIDED:
        return 3
    return 0 if verdict else 1


_MATRIX_CELLS = {True: "+", False: "-", None: "!"}


def _cmd_matrix(args):
    from repro.engine import ParallelContainmentEngine

    schema = _parse_schema(args.schema)
    engine = ParallelContainmentEngine(
        jobs=args.jobs, timeout_s=args.timeout_s, method=args.method,
        ordering=args.ordering, constraints=_load_constraints(args.constraints),
    )
    with engine:
        matrix = engine.pairwise_matrix(args.queries, schema)
    names = ["q%d" % i for i in range(len(args.queries))]
    width = max(len(n) for n in names)
    print("%*s  %s" % (width, "", " ".join("%*s" % (width, n) for n in names)))
    for name, row in zip(names, matrix):
        cells = (_MATRIX_CELLS.get(v, "?") for v in row)
        print("%*s  %s" % (width, name,
                           " ".join("%*s" % (width, c) for c in cells)))
    print("(+ contained  - not contained  ! incomparable  ? timed out;"
          " cell [i][j]: qj ⊑ qi)")
    if args.stats:
        _print_stats(engine)
    if args.trace_out:
        _write_trace(engine, args.trace_out)
    # 0 only when every cell was decided; an incomparable (None) or
    # timed-out (UNDECIDED) cell is a negative outcome, like exit 1 of
    # `contain`/`equiv` — scripts can trust a zero exit to mean a fully
    # decided matrix.
    decided = all(cell is True or cell is False for row in matrix for cell in row)
    return 0 if decided else 1


def _cmd_equiv(args):
    from repro.engine import ContainmentEngine

    schema = _parse_schema(args.schema)
    engine = ContainmentEngine(constraints=_load_constraints(args.constraints))
    if args.weak:
        verdict = engine.weakly_equivalent(
            args.q1, args.q2, schema, method=args.method
        )
        print("weakly equivalent" if verdict else "NOT weakly equivalent")
    else:
        verdict = engine.equivalent(args.q1, args.q2, schema, method=args.method)
        print("equivalent" if verdict else "NOT equivalent")
    if args.stats:
        _print_stats(engine)
    if args.trace_out:
        _write_trace(engine, args.trace_out)
    return 0 if verdict else 1


def _codes(text):
    if text is None:
        return None
    return tuple(code.strip() for code in text.split(",") if code.strip())


def _read_coql_file(text):
    """Split a ``.coql`` file into (query text, schema, constraints).

    ``#`` lines are comments; a ``# schema: r:a,b;s:k`` directive names
    the schema the file is linted against, and each
    ``# constraint: r[a] -> s[b]`` directive declares an inclusion
    dependency the file's checks hold under.  Comment lines are
    blanked, not removed, so diagnostic line numbers match the file.
    """
    from repro.constraints import parse_constraint

    schema = None
    constraints = []
    lines = []
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("#"):
            directive = stripped.lstrip("#").strip()
            if directive.lower().startswith("schema:"):
                schema = _parse_schema(directive[len("schema:"):])
            elif directive.lower().startswith("constraint:"):
                constraints.append(
                    parse_constraint(directive[len("constraint:"):])
                )
            lines.append("")
            continue
        lines.append(line)
    return "\n".join(lines), schema, tuple(constraints)


def _explain_rule(code):
    from repro.analysis import get_rule

    rule = get_rule(code)  # unknown codes raise ReproError -> exit 2
    print("%s (%s)" % (rule.code, rule.name))
    print("severity: %s%s" % (rule.severity,
                              "  [expensive]" if rule.expensive else ""))
    print("paper: %s" % rule.paper)
    print("kind: %s" % rule.kind)
    print()
    print(rule.summary)
    doc = rule.check.__doc__ if rule.check is not None else None
    if doc:
        import inspect

        print()
        print(inspect.cleandoc(doc))
    return 0


def _cmd_lint(args):
    import os

    from repro.analysis import ERROR, AnalysisConfig, analyze
    from repro.engine import ContainmentEngine

    if args.explain:
        return _explain_rule(args.explain)
    if not args.targets:
        raise ReproError("no targets (pass queries/.coql files, or "
                         "--explain CODE)")

    engine = ContainmentEngine()
    base_constraints = _load_constraints(args.constraints)
    base_schema = _parse_schema(args.schema) if args.schema else None
    results = []
    counts = {"error": 0, "warning": 0, "info": 0}
    for target in args.targets:
        if target.endswith(".coql") or os.path.exists(target):
            with open(target) as handle:
                query, schema, file_constraints = _read_coql_file(
                    handle.read()
                )
            schema = schema or base_schema
        else:
            query, schema = target, base_schema
            file_constraints = ()
        if schema is None:
            raise ReproError(
                "no schema for %r: pass --schema or a '# schema: ...' "
                "directive" % (target,)
            )
        config = AnalysisConfig(
            complexity_budget=args.budget, expensive=not args.no_minimize,
            constraints=base_constraints + file_constraints,
        )
        diagnostics = [
            d.with_target(target)
            for d in analyze(
                query, schema, engine=engine, config=config,
                select=_codes(args.select), ignore=_codes(args.ignore),
            )
        ]
        for diagnostic in diagnostics:
            counts[diagnostic.severity] += 1
        results.append((target, diagnostics))

    if args.format == "json":
        payload = {
            "version": 1,
            "targets": [
                {"target": target,
                 "diagnostics": [d.as_dict() for d in diagnostics]}
                for target, diagnostics in results
            ],
            "summary": {
                "targets": len(results),
                "errors": counts["error"],
                "warnings": counts["warning"],
                "infos": counts["info"],
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for target, diagnostics in results:
            if not diagnostics:
                print("%s: ok" % target)
                continue
            for diagnostic in diagnostics:
                print("%s: %s" % (target, diagnostic.format()))
        print(
            "%d target(s): %d error(s), %d warning(s), %d info(s)"
            % (len(results), counts["error"], counts["warning"],
               counts["info"])
        )
    if args.stats:
        _print_stats(engine)
    return 1 if counts[ERROR] else 0


def _analyze_stats(path):
    from repro.analysis import DatabaseStatistics
    from repro.objects import Database

    with open(path) as handle:
        tables = json.load(handle)
    return DatabaseStatistics.sample(Database.from_dict(tables))


def _cmd_analyze(args):
    import os

    from repro.engine import ContainmentEngine

    engine = ContainmentEngine()
    base_schema = _parse_schema(args.schema) if args.schema else None
    stats = _analyze_stats(args.data) if args.data else None
    over_budget = 0
    reports = []
    for target in args.targets:
        if target.endswith(".coql") or os.path.exists(target):
            with open(target) as handle:
                query, schema, __ = _read_coql_file(handle.read())
            schema = schema or base_schema
        else:
            query, schema = target, base_schema
        if schema is None:
            raise ReproError(
                "no schema for %r: pass --schema or a '# schema: ...' "
                "directive" % (target,)
            )
        with _ordering_context(args.ordering):
            certificate = engine.cost_certificate(
                query, schema, against=args.against, witnesses=args.witnesses,
                stats=stats,
            )
        if args.budget is not None and certificate.total_bound > args.budget:
            over_budget += 1
        reports.append((target, certificate))

    if args.format == "json":
        payload = {
            "version": 1,
            "targets": [
                {
                    "target": target,
                    "certificate": certificate.as_dict(),
                    "facts": (
                        certificate.facts.as_dict()
                        if certificate.facts is not None else None
                    ),
                }
                for target, certificate in reports
            ],
            "summary": {
                "targets": len(reports),
                "over_budget": over_budget,
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for target, certificate in reports:
            print("%s:" % target)
            for line in certificate.explain().splitlines():
                print("  " + line)
            if (args.budget is not None
                    and certificate.total_bound > args.budget):
                print("  OVER BUDGET (%d > %d)"
                      % (certificate.total_bound, args.budget))
    if args.stats:
        _print_stats(engine)
    if args.trace_out:
        _write_trace(engine, args.trace_out)
    return 1 if over_budget else 0


def _cmd_eval(args):
    from repro.objects import Database
    from repro.coql import parse_coql, evaluate_coql

    with open(args.data) as handle:
        tables = json.load(handle)
    db = Database.from_dict(tables)
    answer = evaluate_coql(parse_coql(args.query), db)
    for element in answer:
        print(element)
    return 0


def _cmd_minimize(args):
    from repro.coql import minimize_coql

    schema = _parse_schema(args.schema)
    print(repr(minimize_coql(args.query, schema)))
    return 0


def _cmd_serve(args):
    import asyncio

    from repro.service import ContainmentService

    service = ContainmentService(
        host=args.host,
        port=args.port,
        store_path=args.store_path,
        jobs=args.jobs,
        timeout_s=args.timeout_s,
        batch_window_s=args.batch_window_ms / 1000.0,
        max_batch=args.max_batch,
        default_schema=_parse_schema(args.schema) if args.schema else None,
        preload=args.preload,
        constraints=_load_constraints(args.constraints),
    )

    async def run():
        await service.start()
        print("serving on http://%s:%d" % (service.host, service.port),
              file=sys.stderr)
        if args.preload:
            print("preloaded %d artifact(s) from %s"
                  % (service.preloaded, args.store_path), file=sys.stderr)
        await service.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_semcache(args):
    from repro.workloads import WorkloadSimulator, scenario_by_name

    scenario = scenario_by_name(args.scenario, seed=args.seed)
    simulator = WorkloadSimulator(
        scenario,
        steps=args.steps,
        seed=args.seed,
        scale=args.scale,
        zipf_s=args.zipf,
        churn=args.churn,
        max_views=args.max_views,
        oracle=args.oracle,
        jobs=args.jobs,
        timeout_s=args.timeout_s,
    )
    summary = simulator.run()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        sources = summary["sources"]
        print("scenario %s: %d step(s), seed %d, pool of %d quer(ies)"
              % (summary["scenario"], summary["steps"], summary["seed"],
                 summary["pool"]))
        print("  exact %d  residual %d  miss %d" % (
            sources["exact"], sources["residual"], sources["miss"]))
        print("  hit rate %.3f (warm %.3f)  p50 %.3fms  p99 %.3fms" % (
            summary["hit_rate"], summary["warm_hit_rate"],
            summary["p50_ms"], summary["p99_ms"]))
        print("  admitted %d  evicted %d (churn %d)  prefetch hints %d  "
              "views now %d" % (
                  summary["admitted"], summary["evicted"],
                  summary["churn_evictions"], summary["prefetch_hints"],
                  summary["views"]))
    if summary["mismatches"]:
        for mismatch in summary["mismatches"]:
            print("ORACLE MISMATCH at step %d (%s via %s, %s): %s"
                  % (mismatch["step"], mismatch["query_name"],
                     mismatch["view"], mismatch["verdict"],
                     mismatch["query"]), file=sys.stderr)
        return 1
    if args.stats:
        _print_stats(simulator.cache.engine())
    return 0


def _cmd_cq_contain(args):
    from repro.cq import parse_query, contains

    sup = parse_query(args.sup)
    sub = parse_query(args.sub)
    verdict = contains(sup, sub)
    print("contained" if verdict else "NOT contained")
    return 0 if verdict else 1


def _add_constraints_flag(p):
    p.add_argument("--constraints", action="append", default=None,
                   metavar="DEP_OR_FILE",
                   help="inclusion dependency 'r[a] -> s[b]' or a file "
                        "of one dependency per line (repeatable); "
                        "declared dependencies saturate the sub-side's "
                        "canonical witnesses via the chase before the "
                        "simulation search")


def _add_ordering_flag(p):
    from repro.cq.propagation import ORDERINGS

    p.add_argument("--ordering", choices=ORDERINGS, default=None,
                   help="homomorphism-search kernel for every check "
                        "(default: the engine default, bitset); values "
                        "outside the choices are a usage error (exit 2)")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Containment and equivalence for complex-object queries "
        "(Levy & Suciu, PODS 1997).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("contain", help="decide SUB ⊑ SUP for COQL queries")
    p.add_argument("--schema", required=True)
    p.add_argument("--method", choices=("certificate", "canonical"),
                   default="certificate",
                   help="decision procedure (canonical: the slow "
                        "cross-validation path)")
    p.add_argument("--stats", action="store_true",
                   help="print engine statistics (cache hits, obligation "
                        "and homomorphism-search counts, stage times) to "
                        "stderr")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for the parallel engine "
                        "(default: in-process)")
    p.add_argument("--timeout-s", type=float, default=None, dest="timeout_s",
                   help="per-check wall-clock budget in seconds; a "
                        "timed-out check prints UNDECIDED and exits 3")
    p.add_argument("--trace-out", default=None, dest="trace_out",
                   metavar="FILE",
                   help="write the per-stage trace as Chrome trace_event "
                        "JSON (open at chrome://tracing or perfetto.dev)")
    p.add_argument("--store-path", default=None, dest="store_path",
                   metavar="FILE",
                   help="SQLite artifact store: reuse cached pipeline "
                        "artifacts across runs and persist new ones")
    _add_ordering_flag(p)
    _add_constraints_flag(p)
    p.add_argument("sup", help="the containing query")
    p.add_argument("sub", help="the contained query")
    p.set_defaults(func=_cmd_contain)

    p = sub.add_parser("matrix",
                       help="pairwise containment matrix of COQL queries, "
                            "sharded across worker processes")
    p.add_argument("--schema", required=True)
    p.add_argument("--method", choices=("certificate", "canonical"),
                   default="certificate")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: one per CPU)")
    p.add_argument("--timeout-s", type=float, default=None, dest="timeout_s",
                   help="per-check wall-clock budget in seconds; "
                        "timed-out cells print '?'")
    p.add_argument("--stats", action="store_true",
                   help="print engine statistics to stderr")
    p.add_argument("--trace-out", default=None, dest="trace_out",
                   metavar="FILE",
                   help="write the per-stage trace (locally decided "
                        "checks only) as Chrome trace_event JSON")
    _add_ordering_flag(p)
    _add_constraints_flag(p)
    p.add_argument("queries", nargs="+", help="two or more COQL queries")
    p.set_defaults(func=_cmd_matrix)

    p = sub.add_parser("equiv", help="decide equivalence of COQL queries")
    p.add_argument("--schema", required=True)
    p.add_argument("--weak", action="store_true",
                   help="decide weak equivalence (always decidable)")
    p.add_argument("--method", choices=("certificate", "canonical"),
                   default="certificate",
                   help="decision procedure for both directions")
    p.add_argument("--stats", action="store_true",
                   help="print engine statistics to stderr")
    p.add_argument("--trace-out", default=None, dest="trace_out",
                   metavar="FILE",
                   help="write the per-stage trace as Chrome trace_event "
                        "JSON")
    _add_constraints_flag(p)
    p.add_argument("q1")
    p.add_argument("q2")
    p.set_defaults(func=_cmd_equiv)

    p = sub.add_parser(
        "lint",
        help="static-analysis lint of COQL queries (rules COQL001-COQL013)",
    )
    p.add_argument("--schema", default=None,
                   help="schema for targets without a '# schema:' directive")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="output format (json is schema-stable: "
                        "{version, targets, summary})")
    p.add_argument("--select", default=None, metavar="CODES",
                   help="comma-separated rule codes to run exclusively "
                        "(e.g. COQL002,COQL004)")
    p.add_argument("--ignore", default=None, metavar="CODES",
                   help="comma-separated rule codes to skip")
    p.add_argument("--budget", type=int, default=10**8,
                   help="COQL007 search-space budget "
                        "(default: %(default)s)")
    p.add_argument("--no-minimize", action="store_true",
                   help="skip the expensive COQL005 minimization rule")
    p.add_argument("--stats", action="store_true",
                   help="print engine statistics to stderr")
    p.add_argument("--explain", default=None, metavar="CODE",
                   help="print a rule's documentation (severity, paper "
                        "section, full docstring) and exit")
    _add_constraints_flag(p)
    p.add_argument("targets", nargs="*", metavar="QUERY_OR_FILE",
                   help="COQL query text, or a .coql file (# comments; "
                        "'# schema: r:a,b' directive)")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "analyze",
        help="abstract-interpretation cost certificates: sound search "
             "bounds, fan-out/cardinality facts, ordering plan",
    )
    p.add_argument("--schema", default=None,
                   help="schema for targets without a '# schema:' directive")
    p.add_argument("--against", default=None, metavar="QUERY",
                   help="superquery to certify the check against "
                        "(default: the query itself)")
    p.add_argument("--witnesses", type=int, default=None,
                   help="pin the witness-copy stage (default: model the "
                        "engine's 1-then-escalate schedule)")
    p.add_argument("--budget", type=int, default=None,
                   help="exit 1 when a certificate's total node bound "
                        "exceeds this")
    p.add_argument("--data", default=None, metavar="FILE",
                   help="JSON database to sample DatabaseStatistics from "
                        "(sharpens cardinality intervals)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="output format (json is schema-stable: "
                        "{version, targets, summary})")
    p.add_argument("--stats", action="store_true",
                   help="print engine statistics to stderr")
    p.add_argument("--trace-out", default=None, dest="trace_out",
                   metavar="FILE",
                   help="write the per-stage trace as Chrome trace_event "
                        "JSON")
    _add_ordering_flag(p)
    p.add_argument("targets", nargs="+", metavar="QUERY_OR_FILE",
                   help="COQL query text, or a .coql file (# comments; "
                        "'# schema: r:a,b' directive)")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("eval", help="evaluate a COQL query over a JSON db")
    p.add_argument("--schema", required=False, default="")
    p.add_argument("--data", required=True)
    p.add_argument("query")
    p.set_defaults(func=_cmd_eval)

    p = sub.add_parser("minimize", help="remove redundant COQL subgoals")
    p.add_argument("--schema", required=True)
    p.add_argument("query")
    p.set_defaults(func=_cmd_minimize)

    p = sub.add_parser(
        "serve",
        help="run the containment service (JSON over HTTP, persistent "
             "artifact cache, micro-batched checks)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: %(default)s)")
    p.add_argument("--port", type=int, default=8977,
                   help="bind port; 0 picks an ephemeral port "
                        "(default: %(default)s)")
    p.add_argument("--store-path", default=None, dest="store_path",
                   metavar="FILE",
                   help="SQLite artifact store backing the cache; restarts "
                        "warm-start from it (default: memory only)")
    p.add_argument("--schema", default=None,
                   help="default schema for requests that omit one")
    p.add_argument("--jobs", type=int, default=1,
                   help="engine worker processes (default: %(default)s, "
                        "in-process)")
    p.add_argument("--timeout-s", type=float, default=None, dest="timeout_s",
                   help="default per-check deadline; timed-out checks "
                        "answer \"undecided\"")
    p.add_argument("--batch-window-ms", type=float, default=2.0,
                   dest="batch_window_ms",
                   help="micro-batching window in milliseconds "
                        "(default: %(default)s)")
    p.add_argument("--max-batch", type=int, default=64, dest="max_batch",
                   help="dispatch a batch at this many queued checks "
                        "(default: %(default)s)")
    p.add_argument("--preload", action="store_true",
                   help="warm the in-memory cache from --store-path at "
                        "startup")
    _add_constraints_flag(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "semcache",
        help="replay a seeded Zipf workload through the semantic "
             "view-cache and report hit-rate/latency",
    )
    p.add_argument("--scenario", required=True,
                   help="a registered scenario name (company, orders)")
    p.add_argument("--steps", type=int, default=200,
                   help="lookups to replay (default: %(default)s)")
    p.add_argument("--seed", type=int, default=0,
                   help="master seed: database generation, pool shuffle, "
                        "Zipf draws, churn (default: %(default)s)")
    p.add_argument("--scale", type=int, default=1,
                   help="database scale factor (default: %(default)s)")
    p.add_argument("--zipf", type=float, default=1.1,
                   help="Zipf popularity exponent (default: %(default)s)")
    p.add_argument("--churn", type=float, default=0.0,
                   help="per-step probability of evicting a random view "
                        "(default: %(default)s)")
    p.add_argument("--max-views", type=int, default=32, dest="max_views",
                   help="cache admission budget (default: %(default)s)")
    p.add_argument("--jobs", type=int, default=None,
                   help="shard classification across worker processes")
    p.add_argument("--timeout-s", type=float, default=None, dest="timeout_s",
                   help="per-containment-check deadline; undecided checks "
                        "only demote labels")
    p.add_argument("--oracle", action="store_true",
                   help="compare every served answer against direct "
                        "evaluation; mismatches print to stderr and exit 1")
    p.add_argument("--json", action="store_true",
                   help="print the full JSON summary (trajectory included)")
    p.add_argument("--stats", action="store_true",
                   help="print engine statistics to stderr")
    p.set_defaults(func=_cmd_semcache)

    p = sub.add_parser("cq-contain",
                       help="classical conjunctive-query containment")
    p.add_argument("sup")
    p.add_argument("sub")
    p.set_defaults(func=_cmd_cq_contain)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
