"""Sound residual plans: answering a query from a materialized view.

The containment engine proves ``Q ⊑ V`` (the view *subsumes* the
query), but a verdict alone is not a rewriting — and for nested outputs
even weak *equivalence* does not license serving V's materialized value
verbatim: the Hoare preorder on nested sets is coarser than equality
(Section 5 of the paper), so two weakly equivalent queries can
materialize different values.  The semantic cache therefore serves only
through plans whose exactness is syntactically certain:

* **NF identity** — normalization (:mod:`repro.coql.normalize`) is an
  exact NRC rewriting with canonically numbered variables, so two
  queries with *equal* normal forms are the same query (alpha-renaming,
  generator inlining, and condition simplification all wash out).  The
  cache handles this case itself (a dict keyed by normal form); this
  module handles the two value-level plans below.
* **Equivalent, set-free output** — for set-free elements Hoare
  domination degenerates to equality, so mutual containment of queries
  with set-free heads forces literal set equality:
  :func:`head_is_set_free` is the guard.
* **Refinement residual** — when Q and V have *identical generator
  lists* (the canonical numbering makes this a plain tuple comparison),
  V's conditions are a subset of Q's, and V's head *exposes* (as
  record-field paths to atoms) every path Q's extra conditions and head
  consult, then Q's answer is computed from V's materialized rows by
  filtering with the extra conditions and rebuilding Q's head
  (:func:`residual_plan`).

Soundness of the residual (why per-row evaluation is exact even though
V's output is a *set*, i.e. deduplicated): Q's satisfying assignments
are a subset of V's (same generators, more conditions).  Every exposed
path value is recorded in the row a V-assignment produces, so all
V-assignments collapsing into one materialized row agree on every value
the extra conditions and Q's head consult — the row passes the filter
iff each of those assignments satisfies Q, and then Q's head value is a
function of the row alone.  Hence {rebuilt head | surviving row} equals
{Q's head | Q-satisfying assignment} exactly.  When Q's head *is* V's
head (any nesting), rebuilding is the identity and the same argument
applies to pure filtering.
"""

from repro.coql.normalize import NFConst, NFPath, NFRecord, NFSet
from repro.objects.values import CSet, Record

__all__ = [
    "ResidualPlan",
    "residual_plan",
    "head_is_set_free",
    "exposed_paths",
]


def head_is_set_free(head):
    """True when a normal-form head contains no set constructor.

    Set-free heads produce atomic or flat-record elements, for which
    the Hoare preorder is equality — the guard that lets mutual
    containment license verbatim serving.
    """
    if isinstance(head, (NFConst, NFPath)):
        return True
    if isinstance(head, NFRecord):
        return all(head_is_set_free(value) for __, value in head.fields)
    return False  # NFSet / NFEmpty


def exposed_paths(head, route=()):
    """``{NFPath: record-field route}`` of the paths a head records.

    Only paths reachable through record fields count — a path consulted
    inside a nested :class:`NFSet` is evaluated per inner assignment,
    not recorded per row, so it cannot be read back from a materialized
    value.
    """
    out = {}
    if isinstance(head, NFPath):
        out.setdefault(head, route)
    elif isinstance(head, NFRecord):
        for name, value in head.fields:
            for path, inner in exposed_paths(value, route + (name,)).items():
                out.setdefault(path, inner)
    return out


def _canon(cond):
    """An order-insensitive key for one equality condition."""
    left, right = cond
    return tuple(sorted((repr(left), repr(right))))


class ResidualPlan:
    """Evaluate a query over a subsuming view's materialized rows.

    :param extra_conds: the query's conditions absent from the view
        (normal-form ``(left, right)`` equalities over exposed paths
        and constants).
    :param exposed: ``{NFPath: record-field route}`` into each
        materialized row (see :func:`exposed_paths`).
    :param head: the query's normal-form head to rebuild per surviving
        row, or None to emit rows unchanged (identical heads).
    """

    __slots__ = ("extra_conds", "exposed", "head")

    def __init__(self, extra_conds, exposed, head):
        self.extra_conds = tuple(extra_conds)
        self.exposed = dict(exposed)
        self.head = head

    def _atom(self, row, side):
        if isinstance(side, NFConst):
            return side.value
        value = row
        for attr in self.exposed[side]:
            value = value[attr]
        return value

    def _build(self, row, head):
        if isinstance(head, NFConst):
            return head.value
        if isinstance(head, NFPath):
            return self._atom(row, head)
        return Record(
            {name: self._build(row, value) for name, value in head.fields}
        )

    def evaluate(self, materialized):
        """The query's answer, computed from the view's value."""
        out = []
        for row in materialized:
            if all(
                self._atom(row, left) == self._atom(row, right)
                for left, right in self.extra_conds
            ):
                out.append(
                    row if self.head is None else self._build(row, self.head)
                )
        return CSet(out)

    def __repr__(self):
        return "ResidualPlan(extra_conds=%d, exposed=%d%s)" % (
            len(self.extra_conds), len(self.exposed),
            ", identity head" if self.head is None else "",
        )


def residual_plan(query_nf, view_nf):
    """A :class:`ResidualPlan` computing *query_nf* from *view_nf*'s
    materialization, or None when the refinement fragment does not
    apply.

    The preconditions (checked syntactically on the canonical normal
    forms; see the module docstring for why they suffice):

    1. identical generator tuples;
    2. the view's conditions are a subset of the query's (as unordered
       equalities);
    3. every path consulted by the extra conditions is exposed by the
       view's head;
    4. the query's head is either set-free with every path exposed
       (rebuilt per row) or literally equal to the view's head (rows
       pass through the filter unchanged).
    """
    if not isinstance(query_nf, NFSet) or not isinstance(view_nf, NFSet):
        return None
    if query_nf.gens != view_nf.gens:
        return None
    view_conds = {_canon(cond) for cond in view_nf.conds}
    query_conds = {_canon(cond) for cond in query_nf.conds}
    if not view_conds <= query_conds:
        return None
    extra = [
        cond for cond in query_nf.conds if _canon(cond) not in view_conds
    ]
    exposed = exposed_paths(view_nf.head)
    needed = {
        side
        for cond in extra
        for side in cond
        if isinstance(side, NFPath)
    }
    if query_nf.head == view_nf.head:
        if needed <= set(exposed):
            return ResidualPlan(extra, exposed, None)
        return None
    if not head_is_set_free(query_nf.head):
        return None
    needed |= set(exposed_paths(query_nf.head))
    if not needed <= set(exposed):
        return None
    return ResidualPlan(extra, exposed, query_nf.head)
