"""The semantic view-cache: containment-driven answering from views.

:class:`SemanticCache` is the flagship use of the decision procedure —
answering queries using views in the sense of the paper's introduction
("rewriting queries using views"): each incoming COQL query is checked
against a :class:`repro.coql.views.ViewCatalog` of materialized views,
every view is classified (``equivalent`` / ``subsuming`` / ``contained``
/ ``irrelevant``, see :data:`repro.engine.CLASSIFICATIONS`), and the
answer is served from the best usable view:

* **exact** — the query's normal form is literally a registered view's
  (O(1), no containment work at all: normalization canonicalizes
  alpha-renaming and generator inlining), or the query is weakly
  equivalent to a view with a set-free output (where mutual Hoare
  domination forces value equality);
* **residual** — a subsuming (or equivalent) view admits a
  :class:`repro.semcache.residual.ResidualPlan`: the answer is computed
  from the view's materialized rows by filtering and head-rebuilding,
  never touching the base database;
* **miss** — no sound plan exists: the query is evaluated directly
  (:func:`repro.coql.eval.evaluate_coql`) and *admitted* as a new
  materialized view (LRU-bounded by *max_views*), so the next
  equivalent or refining query hits.

Views classified ``contained`` are reported as *prefetch hints* (their
materializations are partial answers), never used for serving.

Union queries (top-level ``union`` bodies) are first-class but serve
only through **provably exact** plans: the normal-form identity key is
the *set* of branch normal forms (order- and duplicate-insensitive),
and the weak-equivalence shortcut requires every branch head to be
set-free.  Residual plans are per-conjunctive-branch machinery and are
never attempted when either side is a union — a filter over one
branch's rows would silently drop the other branches' answers.

Classification verdicts flow through the engine's artifact store under
the ``classification`` kind — attach the cache to a
:class:`repro.pipeline.persist.TieredStore` (``store=``) and warm
traffic skips the decision procedure across process restarts too.
"""

from collections import OrderedDict

from repro.coql.eval import evaluate_coql
from repro.coql.normalize import NFEmpty, normalize
from repro.objects.values import CSet
from repro.semcache.residual import head_is_set_free, residual_plan

__all__ = ["SemanticCache", "CacheAnswer", "MaterializedView"]


class MaterializedView:
    """One registered view: query, normal form, and materialized value."""

    __slots__ = ("name", "ast", "nf", "value", "pinned")

    def __init__(self, name, ast, nf, value, pinned=False):
        self.name = name
        self.ast = ast
        self.nf = nf
        self.value = value
        self.pinned = pinned

    def __repr__(self):
        return "MaterializedView(%s, %d row(s)%s)" % (
            self.name, len(self.value), ", pinned" if self.pinned else "",
        )


class CacheAnswer:
    """One :meth:`SemanticCache.lookup` result.

    Attributes:
        value: the query's answer (a :class:`repro.objects.values.CSet`).
        source: ``"exact"`` (served verbatim), ``"residual"`` (computed
            from a subsuming view's rows), or ``"miss"`` (evaluated on
            the base database).
        view: the serving view's name (for a miss: the name the query
            was admitted under, or None when admission is disabled).
        classification: the serving view's label (None on a miss).
        prefetch: names of views classified ``contained`` — partial
            answers worth prefetching, never serving sources.
    """

    __slots__ = ("value", "source", "view", "classification", "prefetch")

    def __init__(self, value, source, view, classification, prefetch=()):
        self.value = value
        self.source = source
        self.view = view
        self.classification = classification
        self.prefetch = tuple(prefetch)

    @property
    def hit(self):
        return self.source != "miss"

    def __repr__(self):
        return "CacheAnswer(%s%s, %d row(s))" % (
            self.source,
            " via %s" % self.view if self.view else "",
            len(self.value),
        )


class SemanticCache:
    """A containment-driven cache over one base database.

    :param schema: the flat schema (as for the engines).
    :param database: the base :class:`repro.objects.database.Database`
        misses are evaluated against.
    :param engine: a :class:`repro.engine.ContainmentEngine` to share
        (one is created otherwise; *store* as for
        :class:`~repro.coql.views.ViewCatalog`).
    :param max_views: bound on registered views; admission beyond it
        evicts the least recently *used* unpinned view (0 disables
        admission entirely — the cache then serves only preloaded
        views).
    :param witnesses: witness knob for the containment checks.
    :param jobs, timeout_s: when given, classification batches shard
        across a :class:`repro.engine.ParallelContainmentEngine`
        (sharing the cache's engine) with per-check deadlines; an
        undecided check can only demote a view's label, never promote
        it to a serving source.
    """

    def __init__(self, schema, database, engine=None, store=None,
                 max_views=32, witnesses=None, jobs=None, timeout_s=None):
        from repro.coql.views import ViewCatalog

        self._catalog = ViewCatalog(schema, engine=engine, store=store)
        self._engine = self._catalog.engine()
        self._database = database
        self._max_views = max_views
        self._witnesses = witnesses
        self._jobs = jobs
        self._timeout_s = timeout_s
        self._views = OrderedDict()
        self._by_nf = {}
        self._admitted_count = 0
        self.counters = {
            "lookups": 0,
            "exact_hits": 0,
            "residual_hits": 0,
            "misses": 0,
            "admitted": 0,
            "evicted": 0,
            "prefetch_hints": 0,
        }

    # -- catalog management --------------------------------------------

    def engine(self):
        """The underlying containment engine (stats, caches)."""
        return self._engine

    def catalog(self):
        """The underlying :class:`~repro.coql.views.ViewCatalog`."""
        return self._catalog

    def views(self):
        """Registered view names, in recency order (oldest first)."""
        return tuple(self._views)

    def view(self, name):
        """The :class:`MaterializedView` registered under *name*."""
        return self._views[name]

    def _parse(self, query):
        if isinstance(query, str):
            return self._engine.pipeline().parse(query)
        return query

    @staticmethod
    def _query_nf(ast):
        """The NF-identity key: a branch NF, or a frozenset for unions.

        A union keys on the *set* of its branches' normal forms, so
        branch order and duplicates never split identical queries;
        always-empty branches contribute nothing and are dropped (a
        union that collapses to one live branch keys exactly like that
        branch written without ``union``).
        """
        from repro.coql.family import union_branches

        branches = union_branches(ast)
        if len(branches) == 1:
            return normalize(ast)
        live = frozenset(
            nf for nf in (normalize(branch) for branch in branches)
            if not isinstance(nf, NFEmpty)
        )
        if not live:
            return normalize(branches[0])  # the constant empty set
        if len(live) == 1:
            return next(iter(live))
        return live

    @staticmethod
    def _set_free(nf):
        """Every head (all branches, for a union key) is set-free."""
        if isinstance(nf, frozenset):
            return all(head_is_set_free(branch.head) for branch in nf)
        return head_is_set_free(nf.head)

    def add_view(self, name, query, pinned=False):
        """Register and materialize a view over the base database.

        Pinned views survive LRU eviction (catalog staples); unpinned
        ones compete with admitted queries for the *max_views* budget.
        """
        ast = self._parse(query)
        nf = self._query_nf(ast)
        value = evaluate_coql(ast, self._database)
        self._register(MaterializedView(name, ast, nf, value, pinned))
        return name

    def _register(self, view):
        if view.name in self._views:
            self.evict(view.name)
        self._views[view.name] = view
        self._views.move_to_end(view.name)
        self._by_nf.setdefault(view.nf, view.name)
        self._catalog.add(view.name, view.ast)
        self._shrink()

    def evict(self, name):
        """Drop one view from every structure; True when present."""
        view = self._views.pop(name, None)
        if view is None:
            return False
        if self._by_nf.get(view.nf) == name:
            del self._by_nf[view.nf]
            # A surviving duplicate (same normal form under another
            # name) inherits the NF-identity fast path.
            for other, candidate in self._views.items():
                if candidate.nf == view.nf:
                    self._by_nf[view.nf] = other
                    break
        self._catalog.remove(name)
        self.counters["evicted"] += 1
        return True

    def _shrink(self):
        if self._max_views is None:
            return
        while len(self._views) > max(self._max_views, 0):
            for name in self._views:  # oldest unpinned first
                if not self._views[name].pinned:
                    self.evict(name)
                    break
            else:
                return  # everything pinned: nothing evictable

    def _touch(self, name):
        self._views.move_to_end(name)
        return self._views[name]

    # -- the lookup path -----------------------------------------------

    def classify(self, query):
        """``{view name: label}`` for *query* over the current catalog."""
        return self._catalog.classify(
            self._parse(query), witnesses=self._witnesses,
            jobs=self._jobs, timeout_s=self._timeout_s,
        )

    def lookup(self, query):
        """Answer *query*, preferring the cache (see the module doc).

        :returns: a :class:`CacheAnswer`.
        """
        self.counters["lookups"] += 1
        ast = self._parse(query)
        nf = self._query_nf(ast)
        if isinstance(nf, NFEmpty):
            # The constant empty set: nothing to cache or admit.
            return CacheAnswer(CSet(), "exact", None, "equivalent")

        name = self._by_nf.get(nf)
        if name is not None and name in self._views:
            view = self._touch(name)
            self.counters["exact_hits"] += 1
            return CacheAnswer(view.value, "exact", name, "equivalent")

        labels = self.classify(ast) if self._views else {}
        prefetch = tuple(sorted(
            vname for vname, label in labels.items() if label == "contained"
        ))
        self.counters["prefetch_hints"] += len(prefetch)

        union_query = isinstance(nf, frozenset)
        for vname in self._serving_order(labels, self._views):
            view = self._views.get(vname)
            if view is None:
                continue
            label = labels.get(vname)
            if label == "equivalent" and self._set_free(nf):
                # Weak equivalence + set-free output forces equality
                # (for a union: every branch head must be set-free).
                self._touch(vname)
                self.counters["exact_hits"] += 1
                return CacheAnswer(view.value, "exact", vname, label,
                                   prefetch)
            if union_query or isinstance(view.nf, frozenset):
                # Union heads serve only through provably exact plans;
                # a residual filter over one branch would drop the rest.
                continue
            plan = residual_plan(nf, view.nf)
            if plan is not None:
                # The plan's preconditions prove Q ⊑ V syntactically,
                # so a view the engine could not compare (a narrower
                # head makes the pair incomparable, hence "irrelevant")
                # still serves soundly through the residual.
                self._touch(vname)
                self.counters["residual_hits"] += 1
                if label not in ("equivalent", "subsuming"):
                    label = "subsuming"
                return CacheAnswer(plan.evaluate(view.value), "residual",
                                   vname, label, prefetch)

        value = evaluate_coql(ast, self._database)
        self.counters["misses"] += 1
        admitted = self._admit(ast, nf, value)
        return CacheAnswer(value, "miss", admitted, None, prefetch)

    @staticmethod
    def _serving_order(labels, views):
        """Equivalent views first, then subsuming, then the rest (a
        shape-incomparable view can still carry a syntactic residual
        plan); sorted for determinism within each class."""
        equivalent = sorted(n for n, l in labels.items() if l == "equivalent")
        subsuming = sorted(n for n, l in labels.items() if l == "subsuming")
        ranked = set(equivalent) | set(subsuming)
        rest = sorted(n for n in views if n not in ranked)
        return equivalent + subsuming + rest

    def _admit(self, ast, nf, value):
        if not self._max_views:
            return None
        name = "~q%d" % self._admitted_count
        self._admitted_count += 1
        self._register(MaterializedView(name, ast, nf, value, pinned=False))
        self.counters["admitted"] += 1
        return name

    # -- maintenance ----------------------------------------------------

    def minimize(self, witnesses=None):
        """Prune mutually redundant views via
        :class:`repro.semcache.minimize.CatalogMinimizer`; evicted
        views' materializations are dropped (their kept equivalent
        keeps serving through the sound plans).

        :returns: the minimizer's report.
        """
        from repro.semcache.minimize import CatalogMinimizer

        report = CatalogMinimizer(self._catalog).plan(
            witnesses=witnesses if witnesses is not None
            else self._witnesses,
            jobs=self._jobs, timeout_s=self._timeout_s,
        )
        for name in report.removed:
            self.evict(name)
        return report

    def hit_rate(self):
        """Served-from-cache fraction of all lookups (None before any)."""
        lookups = self.counters["lookups"]
        if not lookups:
            return None
        hits = self.counters["exact_hits"] + self.counters["residual_hits"]
        return hits / lookups

    def __repr__(self):
        return "SemanticCache(views=%d, lookups=%d, hit_rate=%s)" % (
            len(self._views), self.counters["lookups"],
            "%.2f" % self.hit_rate() if self.counters["lookups"] else "-",
        )
