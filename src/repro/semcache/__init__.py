"""Semantic view-caching on top of the containment engine.

See :mod:`repro.semcache.cache` for the serving rules and
:mod:`repro.semcache.residual` for the soundness argument behind them.
"""

from repro.semcache.cache import CacheAnswer, MaterializedView, SemanticCache
from repro.semcache.minimize import CatalogMinimizer, MinimizationReport
from repro.semcache.residual import (
    ResidualPlan,
    exposed_paths,
    head_is_set_free,
    residual_plan,
)

__all__ = [
    "CacheAnswer",
    "CatalogMinimizer",
    "MaterializedView",
    "MinimizationReport",
    "ResidualPlan",
    "SemanticCache",
    "exposed_paths",
    "head_is_set_free",
    "residual_plan",
]
