"""Catalog minimization: pruning mutually redundant views.

A catalog that grows by admitting every missed query accumulates
duplicates — alpha-renamed copies, re-derivable refinements registered
under fresh names.  :class:`CatalogMinimizer` drives the catalog's
pairwise containment matrix (:meth:`ViewCatalog.containment_matrix`)
and drops every view that is *weakly equivalent* to an earlier kept one
(``matrix[i][j] is True and matrix[j][i] is True`` — identity tests, so
an :data:`repro.engine.UNDECIDED` cell can never prove redundancy).

Dropping only mutually contained views is the conservative choice: a
merely contained view still materializes rows its container does not
expose per-row (e.g. after head rebuilding), so it may be the only
sound serving source for some refinement.
"""

__all__ = ["CatalogMinimizer", "MinimizationReport"]


class MinimizationReport:
    """The outcome of one minimization pass.

    Attributes:
        kept: view names retained, in catalog (sorted-name) order.
        removed: ``{dropped name: kept name it is equivalent to}``.
        undecided: pairs ``(i_name, j_name)`` whose matrix cells were
            not both decided (timeouts / fragment limits) — candidates a
            longer-deadline pass might still prune.
    """

    __slots__ = ("kept", "removed", "undecided")

    def __init__(self, kept, removed, undecided):
        self.kept = tuple(kept)
        self.removed = dict(removed)
        self.undecided = tuple(undecided)

    def __repr__(self):
        return "MinimizationReport(kept=%d, removed=%d, undecided=%d)" % (
            len(self.kept), len(self.removed), len(self.undecided),
        )


class CatalogMinimizer:
    """Plan and apply redundant-view pruning for one
    :class:`repro.coql.views.ViewCatalog`."""

    def __init__(self, catalog):
        self._catalog = catalog

    def plan(self, witnesses=None, jobs=None, timeout_s=None):
        """Compute a :class:`MinimizationReport` without mutating the
        catalog.

        Earlier names (catalog order is sorted) win ties, so the report
        is deterministic for a given catalog.
        """
        names, matrix = self._catalog.containment_matrix(
            witnesses=witnesses, jobs=jobs, timeout_s=timeout_s
        )
        kept = []
        kept_indices = []
        removed = {}
        undecided = []
        for j, name in enumerate(names):
            duplicate_of = None
            for i in kept_indices:
                forward = matrix[i][j]   # views[j] ⊑ views[i]
                backward = matrix[j][i]  # views[i] ⊑ views[j]
                if forward is True and backward is True:
                    duplicate_of = names[i]
                    break
                if not (forward is True or forward is False) or not (
                    backward is True or backward is False
                ):
                    undecided.append((names[i], name))
            if duplicate_of is None:
                kept.append(name)
                kept_indices.append(j)
            else:
                removed[name] = duplicate_of
        return MinimizationReport(kept, removed, undecided)

    def minimize(self, witnesses=None, jobs=None, timeout_s=None):
        """Apply :meth:`plan`: remove every redundant view from the
        catalog and return the report."""
        report = self.plan(witnesses=witnesses, jobs=jobs,
                           timeout_s=timeout_s)
        for name in report.removed:
            self._catalog.remove(name)
        return report
