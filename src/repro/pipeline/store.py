"""The unified, content-addressed artifact store.

One :class:`ArtifactStore` replaces the four hand-rolled LRU tables the
containment engine used to carry (``_prepare_cache``, ``_verdict_cache``,
``_nonempty_cache``, ``_target_cache``).  Artifacts are grouped by
*kind* — one bounded LRU segment per kind, so a flood of cheap verdict
entries can never evict the expensive prepared encodings — and keyed by
the content digests of :mod:`repro.pipeline.fingerprint`, so the same
inputs name the same artifact in every process.

Size semantics per kind (inherited from the legacy ``_LRUCache``, and
pinned by tests):

* ``maxsize=0`` disables the segment — every lookup misses, nothing is
  stored (benchmarks measure the cold pipeline this way);
* ``maxsize=None`` means unbounded;
* otherwise least-recently-used entries are evicted beyond *maxsize*.

Accounting is per kind: :meth:`sizes` reports entry counts,
:meth:`counters` hit/miss tallies, :meth:`hit_rates` the derived rates.
:meth:`clear` drops entries but keeps the tallies (mirroring the
engine's ``clear_caches``); :meth:`reset_counters` zeroes the tallies
but keeps the entries (mirroring ``reset_stats``).
"""

from collections import OrderedDict

__all__ = ["ArtifactStore", "KindView", "MISSING"]


class _Missing:
    __slots__ = ()

    def __repr__(self):
        return "MISSING"


#: Sentinel returned by :meth:`ArtifactStore.lookup` on a miss, so that
#: None (and False) remain storable artifact values.
MISSING = _Missing()


class _Segment:
    __slots__ = ("maxsize", "data", "hits", "misses", "evictions")

    def __init__(self, maxsize):
        self.maxsize = maxsize
        self.data = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class ArtifactStore:
    """Bounded, per-kind-accounted storage for pipeline artifacts.

    :param limits: ``{kind: maxsize}`` per-kind bounds (0 disables, None
        unbounded).  Kinds not listed use *default_maxsize*; unknown
        kinds are created on first use, so the store never needs a
        registration step.
    :param default_maxsize: bound for kinds absent from *limits*.
    """

    def __init__(self, limits=None, default_maxsize=1024):
        self._default_maxsize = default_maxsize
        self._segments = {}
        for kind, maxsize in (limits or {}).items():
            self._segments[kind] = _Segment(maxsize)

    def _segment(self, kind):
        segment = self._segments.get(kind)
        if segment is None:
            segment = self._segments[kind] = _Segment(self._default_maxsize)
        return segment

    def limit(self, kind):
        """The configured maxsize of *kind* (0 disabled, None unbounded).

        Read-only: never materializes a segment, so asking about a kind
        that has not stored or looked up anything leaves ``sizes()`` /
        ``counters()`` / ``hit_rates()`` untouched.
        """
        segment = self._segments.get(kind)
        if segment is None:
            return self._default_maxsize
        return segment.maxsize

    # -- storage -------------------------------------------------------

    def lookup(self, kind, key):
        """The artifact stored under (*kind*, *key*), or :data:`MISSING`.

        A hit refreshes the entry's recency; every call tallies into the
        kind's hit/miss counters.
        """
        segment = self._segment(kind)
        if segment.maxsize == 0:
            segment.misses += 1
            return MISSING
        value = segment.data.get(key, MISSING)
        if value is MISSING:
            segment.misses += 1
        else:
            segment.hits += 1
            segment.data.move_to_end(key)
        return value

    def store(self, kind, key, value):
        """Store *value* under (*kind*, *key*), evicting LRU entries."""
        segment = self._segment(kind)
        if segment.maxsize == 0:
            return
        segment.data[key] = value
        segment.data.move_to_end(key)
        if segment.maxsize is not None and len(segment.data) > segment.maxsize:
            segment.data.popitem(last=False)
            segment.evictions += 1

    def clear(self, kind=None):
        """Drop stored artifacts (all kinds, or just *kind*).

        Hit/miss tallies survive — clearing answers "what is cached",
        not "how well did caching work".  Clearing a never-used kind is
        a no-op, not a segment materialization: accounting keeps
        reporting only kinds that stored or looked up something.
        """
        if kind is not None:
            segment = self._segments.get(kind)
            if segment is not None:
                segment.data.clear()
            return
        for segment in self._segments.values():
            segment.data.clear()

    # -- accounting ----------------------------------------------------

    def sizes(self):
        """Current entry counts: ``{kind: entries}``."""
        return {
            kind: len(segment.data)
            for kind, segment in sorted(self._segments.items())
        }

    def counters(self):
        """Per-kind tallies: ``{kind: {hits, misses, evictions}}``."""
        return {
            kind: {
                "hits": segment.hits,
                "misses": segment.misses,
                "evictions": segment.evictions,
            }
            for kind, segment in sorted(self._segments.items())
        }

    def hit_rates(self):
        """``{kind: hits / (hits + misses)}`` (None before any lookup)."""
        out = {}
        for kind, segment in sorted(self._segments.items()):
            total = segment.hits + segment.misses
            out[kind] = segment.hits / total if total else None
        return out

    def reset_counters(self):
        """Zero every hit/miss/eviction tally (entries survive)."""
        for segment in self._segments.values():
            segment.hits = 0
            segment.misses = 0
            segment.evictions = 0

    def __len__(self):
        return sum(len(segment.data) for segment in self._segments.values())

    def __repr__(self):
        sizes = self.sizes()
        return "ArtifactStore(%s)" % (
            ", ".join("%s=%d" % item for item in sizes.items()) or "empty",
        )


class KindView:
    """A mapping-protocol view of one artifact kind.

    Adapts the store to the ``get``/``__setitem__`` cache protocol of
    helpers like :func:`repro.grouping.simulation.simulation_target`,
    fingerprinting the caller's structural keys on the way in so every
    entry stays content-addressed.
    """

    __slots__ = ("_store", "_kind")

    def __init__(self, store, kind):
        self._store = store
        self._kind = kind

    def get(self, key, default=None):
        from repro.pipeline.fingerprint import artifact_key

        value = self._store.lookup(self._kind, artifact_key(self._kind, key))
        return default if value is MISSING else value

    def __setitem__(self, key, value):
        from repro.pipeline.fingerprint import artifact_key

        self._store.store(self._kind, artifact_key(self._kind, key), value)

    def __len__(self):
        return self._store.sizes().get(self._kind, 0)

    def __repr__(self):
        return "KindView(%r, entries=%d)" % (self._kind, len(self))
