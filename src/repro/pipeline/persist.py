"""The persistent, cross-process artifact tier.

:class:`repro.pipeline.store.ArtifactStore` made artifacts
content-addressed — the same query text, schema, and knobs name the same
SHA-256 key in every process — but its entries die with the process.
This module adds the tier that design anticipated:

* :class:`PersistentStore` — a SQLite-backed store behind the same
  ``lookup(kind, key)`` / ``store(kind, key, value)`` interface, keyed
  by the store's hex digests and holding pickled artifact values.  One
  database file can be shared by many processes (WAL journaling, busy
  timeout), which is what lets a restarted service — or a parallel
  worker pool — warm-start from artifacts another process prepared.
* :class:`TieredStore` — the in-memory LRU layered over disk:
  **read-through** (a memory miss falls through to disk; a disk hit is
  promoted into the memory tier), **write-back** (stores land in memory
  immediately and are flushed to disk in batched transactions — on a
  dirty-buffer threshold, an explicit :meth:`TieredStore.flush`, or
  :meth:`TieredStore.close`), with per-kind persistence enable/disable.

Failure policy, pinned by tests: the persistent tier must never turn a
cache problem into a decision problem.  A corrupt database file, a row
whose pickle no longer loads, an unwritable path — every such failure
degrades to a cache *miss* (tallied under ``load_errors`` /
``store_errors`` / ``open_errors``), and the decision procedure
recomputes.  A format-version bump clears the artifact table rather
than serving artifacts encoded under an older fingerprint scheme.

Trust model: artifact values are pickles.  Loading a pickle executes
code, so a store file is a trusted local artifact (like a ``.pyc``),
not an interchange format — point the tier only at paths you control.
"""

import os
import pickle
import sqlite3
import threading
from time import time

from repro.pipeline.store import MISSING, ArtifactStore

__all__ = ["PersistentStore", "TieredStore", "FORMAT_VERSION"]

#: Bumped whenever the fingerprint scheme or the value encoding changes
#: incompatibly; a store created under another version is cleared on
#: open instead of serving stale artifacts.
FORMAT_VERSION = 2


class _Tally:
    __slots__ = ("hits", "misses", "stores", "load_errors", "store_errors")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.load_errors = 0
        self.store_errors = 0

    def as_dict(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "load_errors": self.load_errors,
            "store_errors": self.store_errors,
        }


class PersistentStore:
    """SQLite-backed artifact storage, same interface as the LRU store.

    :param path: database file path (created, with parent directories,
        on first open).  ``":memory:"`` gives a private in-memory
        database — useful in tests, though it obviously persists
        nothing across processes.
    :param timeout_s: SQLite busy timeout for cross-process contention.

    Thread-safe (one connection guarded by a lock — artifact payloads
    are small and the engine serializes its own hot path, so connection
    pooling would buy nothing).  All failures degrade to misses; the
    :attr:`broken` flag reports a store that could not be opened at all.
    """

    def __init__(self, path, timeout_s=5.0):
        self._path = path
        self._timeout_s = timeout_s
        self._lock = threading.RLock()
        self._conn = None
        self._tallies = {}
        self.open_errors = 0
        self._open()

    # -- lifecycle -----------------------------------------------------

    def _open(self):
        try:
            directory = os.path.dirname(self._path)
            if directory and self._path != ":memory:":
                os.makedirs(directory, exist_ok=True)
            conn = sqlite3.connect(
                self._path, timeout=self._timeout_s, check_same_thread=False
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS artifacts ("
                " kind TEXT NOT NULL, key TEXT NOT NULL,"
                " value BLOB NOT NULL, stored_at REAL NOT NULL,"
                " PRIMARY KEY (kind, key))"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                " name TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            row = conn.execute(
                "SELECT value FROM meta WHERE name = 'format_version'"
            ).fetchone()
            if row is None or int(row[0]) != FORMAT_VERSION:
                # Another format's artifacts are unusable (different
                # keys or value encoding): start clean.
                conn.execute("DELETE FROM artifacts")
                conn.execute(
                    "INSERT OR REPLACE INTO meta (name, value)"
                    " VALUES ('format_version', ?)",
                    (str(FORMAT_VERSION),),
                )
            conn.commit()
            self._conn = conn
        except (sqlite3.Error, OSError, ValueError):
            self.open_errors += 1
            self._conn = None

    @property
    def path(self):
        """The database file path."""
        return self._path

    @property
    def broken(self):
        """True when the database could not be opened (every lookup
        misses, every store is dropped)."""
        return self._conn is None

    def close(self):
        """Close the connection (idempotent; the store then behaves as
        broken: misses and dropped stores, never an error)."""
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:  # pragma: no cover - close race
                    pass
                self._conn = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    # -- storage -------------------------------------------------------

    def _tally(self, kind):
        tally = self._tallies.get(kind)
        if tally is None:
            tally = self._tallies[kind] = _Tally()
        return tally

    def lookup(self, kind, key):
        """The artifact stored under (*kind*, *key*), or :data:`MISSING`.

        Any failure — no database, a read error, a pickle that no
        longer loads — is a miss (``load_errors`` tallies the abnormal
        ones), so a corrupted store degrades to recomputation, never to
        a raised exception on the decision path.
        """
        tally = self._tally(kind)
        if self._conn is None or not isinstance(key, str):
            tally.misses += 1
            return MISSING
        try:
            with self._lock:
                row = self._conn.execute(
                    "SELECT value FROM artifacts WHERE kind = ? AND key = ?",
                    (kind, key),
                ).fetchone()
        except sqlite3.Error:
            tally.misses += 1
            tally.load_errors += 1
            return MISSING
        if row is None:
            tally.misses += 1
            return MISSING
        try:
            value = pickle.loads(row[0])
        except Exception:
            # A truncated or stale pickle: drop the poisoned row so the
            # recomputed artifact can take its place.
            tally.misses += 1
            tally.load_errors += 1
            self.delete(kind, key)
            return MISSING
        tally.hits += 1
        return value

    def store(self, kind, key, value):
        """Persist *value* under (*kind*, *key*) (upsert).

        Unpicklable values and write failures are dropped and tallied
        (``store_errors``); only string keys (the store's hex digests)
        are persisted.
        """
        self.store_many(((kind, key, value),))

    def store_many(self, items):
        """Persist many ``(kind, key, value)`` rows in one transaction.

        The write-back flush path of :class:`TieredStore`: one
        transaction per batch instead of one per artifact.
        """
        rows = []
        for kind, key, value in items:
            tally = self._tally(kind)
            if self._conn is None or not isinstance(key, str):
                tally.store_errors += 1
                continue
            try:
                payload = pickle.dumps(value, pickle.HIGHEST_PROTOCOL)
            except Exception:
                tally.store_errors += 1
                continue
            rows.append((kind, key, payload))
            tally.stores += 1
        if not rows or self._conn is None:
            return
        stamp = time()
        try:
            with self._lock:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO artifacts"
                    " (kind, key, value, stored_at) VALUES (?, ?, ?, ?)",
                    [(kind, key, payload, stamp)
                     for kind, key, payload in rows],
                )
                self._conn.commit()
        except sqlite3.Error:
            for kind, __, ___ in rows:
                tally = self._tally(kind)
                tally.stores -= 1
                tally.store_errors += 1

    def delete(self, kind, key):
        """Drop one row (used to evict rows whose pickle is poisoned)."""
        if self._conn is None:
            return
        try:
            with self._lock:
                self._conn.execute(
                    "DELETE FROM artifacts WHERE kind = ? AND key = ?",
                    (kind, key),
                )
                self._conn.commit()
        except sqlite3.Error:  # pragma: no cover - delete is best-effort
            pass

    def clear(self, kind=None):
        """Drop persisted artifacts (all kinds, or just *kind*)."""
        if self._conn is None:
            return
        try:
            with self._lock:
                if kind is None:
                    self._conn.execute("DELETE FROM artifacts")
                else:
                    self._conn.execute(
                        "DELETE FROM artifacts WHERE kind = ?", (kind,)
                    )
                self._conn.commit()
        except sqlite3.Error:  # pragma: no cover - clear is best-effort
            pass

    def rows(self, kind=None, newest_first=True):
        """Iterate persisted ``(kind, key, value)`` rows (checkpoint
        order by default) — the :meth:`TieredStore.preload` feed.  Rows
        that no longer unpickle are skipped and tallied."""
        if self._conn is None:
            return
        query = "SELECT kind, key, value FROM artifacts"
        params = ()
        if kind is not None:
            query += " WHERE kind = ?"
            params = (kind,)
        query += " ORDER BY stored_at %s" % ("DESC" if newest_first else "ASC")
        try:
            with self._lock:
                fetched = self._conn.execute(query, params).fetchall()
        except sqlite3.Error:
            return
        for row_kind, key, payload in fetched:
            try:
                value = pickle.loads(payload)
            except Exception:
                self._tally(row_kind).load_errors += 1
                continue
            yield row_kind, key, value

    # -- accounting ----------------------------------------------------

    def sizes(self):
        """Persisted entry counts: ``{kind: rows}``."""
        if self._conn is None:
            return {}
        try:
            with self._lock:
                fetched = self._conn.execute(
                    "SELECT kind, COUNT(*) FROM artifacts GROUP BY kind"
                ).fetchall()
        except sqlite3.Error:
            return {}
        return {kind: count for kind, count in sorted(fetched)}

    def counters(self):
        """Per-kind tallies: ``{kind: {hits, misses, stores,
        load_errors, store_errors}}``."""
        return {
            kind: tally.as_dict()
            for kind, tally in sorted(self._tallies.items())
        }

    def hit_rates(self):
        """``{kind: hits / (hits + misses)}`` (None before any lookup)."""
        out = {}
        for kind, tally in sorted(self._tallies.items()):
            total = tally.hits + tally.misses
            out[kind] = tally.hits / total if total else None
        return out

    def reset_counters(self):
        """Zero every tally (persisted rows survive)."""
        self._tallies.clear()

    def __len__(self):
        return sum(self.sizes().values())

    def __repr__(self):
        return "PersistentStore(%r%s, rows=%d)" % (
            self._path, ", broken" if self.broken else "", len(self),
        )


class TieredStore:
    """The in-memory LRU layered over a persistent backing store.

    Same ``lookup``/``store`` interface as :class:`ArtifactStore`, so an
    engine (or a :class:`~repro.pipeline.store.KindView`) uses a tiered
    store unchanged via ``ContainmentEngine(store=...)``.

    * **read-through** — a memory miss falls through to the disk tier;
      a disk hit is promoted into the memory LRU (tallied as a
      ``promotions``) and returned.
    * **write-back** — :meth:`store` lands in the memory tier and a
      dirty buffer; the buffer is flushed to disk in one transaction
      when it reaches *write_back_batch* entries, on :meth:`flush`, or
      on :meth:`close`.  Lookups consult the dirty buffer, so an
      unflushed artifact evicted from the memory LRU is still found.
    * **per-kind enable/disable** — only kinds in *persist_kinds* (all
      kinds when None) touch disk; :meth:`set_persisted` flips a kind
      at runtime.  The memory tier always serves every kind.

    :param path: database file for a store-owned :class:`PersistentStore`
        (mutually exclusive with *disk*).
    :param disk: an existing persistent tier to layer over.
    :param memory: an existing :class:`ArtifactStore` (one is built from
        *limits* / *default_maxsize* otherwise).
    :param persist_kinds: iterable of kinds to persist (None = all).
    :param write_back_batch: dirty-buffer size that triggers a flush.
    """

    def __init__(self, path=None, disk=None, memory=None, limits=None,
                 default_maxsize=1024, persist_kinds=None,
                 write_back_batch=128):
        if (path is None) == (disk is None):
            raise ValueError("pass exactly one of path= or disk=")
        if disk is None:
            disk = PersistentStore(path)
            self._owns_disk = True
        else:
            self._owns_disk = False
        if memory is None:
            memory = ArtifactStore(
                limits=limits, default_maxsize=default_maxsize
            )
        self.memory = memory
        self.disk = disk
        self._persist_kinds = (
            None if persist_kinds is None else set(persist_kinds)
        )
        self._deny_kinds = set()
        self._write_back_batch = max(1, write_back_batch)
        self._dirty = {}
        self._lock = threading.RLock()
        self.promotions = 0
        self.flushes = 0

    # -- persistence policy --------------------------------------------

    def persisted(self, kind):
        """True when *kind* is written through to (and read from) disk."""
        if kind in self._deny_kinds:
            return False
        return self._persist_kinds is None or kind in self._persist_kinds

    def set_persisted(self, kind, enabled):
        """Enable or disable the disk tier for *kind* at runtime.

        Disabling flushes nothing retroactively; already-persisted rows
        simply stop being consulted.  Kinds outside an explicit
        *persist_kinds* allow-list stay disabled either way.
        """
        with self._lock:
            if enabled:
                self._deny_kinds.discard(kind)
                if self._persist_kinds is not None:
                    self._persist_kinds.add(kind)
            else:
                self._deny_kinds.add(kind)

    # -- storage -------------------------------------------------------

    def lookup(self, kind, key):
        """Read-through lookup: memory, then dirty buffer, then disk."""
        value = self.memory.lookup(kind, key)
        if value is not MISSING:
            return value
        if not self.persisted(kind):
            return MISSING
        with self._lock:
            entry = self._dirty.get((kind, key), MISSING)
        if entry is not MISSING:
            # Written back not yet flushed, and already evicted from the
            # memory LRU: still a hit, and worth re-promoting.
            self.memory.store(kind, key, entry)
            return entry
        value = self.disk.lookup(kind, key)
        if value is MISSING:
            return MISSING
        self.memory.store(kind, key, value)
        self.promotions += 1
        return value

    def store(self, kind, key, value):
        """Write-back store: memory now, disk on the next flush."""
        self.memory.store(kind, key, value)
        if not self.persisted(kind):
            return
        with self._lock:
            self._dirty[(kind, key)] = value
            needs_flush = len(self._dirty) >= self._write_back_batch
        if needs_flush:
            self.flush()

    def flush(self):
        """Write the dirty buffer to disk in one transaction."""
        with self._lock:
            if not self._dirty:
                return 0
            batch = list(self._dirty.items())
            self._dirty.clear()
        self.disk.store_many(
            (kind, key, value) for (kind, key), value in batch
        )
        self.flushes += 1
        return len(batch)

    def preload(self, kinds=None, per_kind_limit=None):
        """Warm the memory tier from disk (newest artifacts first).

        :param kinds: iterable of kinds to load (None = every persisted
            kind on disk).
        :param per_kind_limit: cap per kind (None = up to each memory
            segment's own LRU bound).
        :returns: number of artifacts loaded.
        """
        wanted = None if kinds is None else set(kinds)
        loaded = {}
        for kind, key, value in self.disk.rows(newest_first=True):
            if wanted is not None and kind not in wanted:
                continue
            if not self.persisted(kind):
                continue
            count = loaded.get(kind, 0)
            cap = per_kind_limit
            if cap is None:
                cap = self.memory.limit(kind)
            if cap is not None and count >= cap:
                continue
            self.memory.store(kind, key, value)
            loaded[kind] = count + 1
        return sum(loaded.values())

    def clear(self, kind=None):
        """Drop entries from every tier (memory, dirty buffer, disk)."""
        self.memory.clear(kind)
        with self._lock:
            if kind is None:
                self._dirty.clear()
            else:
                for dirty_kind, key in list(self._dirty):
                    if dirty_kind == kind:
                        del self._dirty[(dirty_kind, key)]
        self.disk.clear(kind)

    def close(self):
        """Flush the dirty buffer; close the disk tier if owned here."""
        self.flush()
        if self._owns_disk:
            self.disk.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    # -- accounting ----------------------------------------------------

    def limit(self, kind):
        """The memory tier's configured bound for *kind*."""
        return self.memory.limit(kind)

    def sizes(self):
        """Memory-resident entry counts (the engine's working set);
        see ``disk.sizes()`` for the persisted footprint."""
        return self.memory.sizes()

    def counters(self):
        """Per-kind tallies of both tiers: the memory tier's
        hits/misses/evictions plus the disk tier's counters under
        ``disk_``-prefixed keys."""
        merged = {
            kind: dict(tally) for kind, tally in self.memory.counters().items()
        }
        for kind, tally in self.disk.counters().items():
            entry = merged.setdefault(
                kind, {"hits": 0, "misses": 0, "evictions": 0}
            )
            for name, value in tally.items():
                entry["disk_" + name] = value
        return merged

    def hit_rates(self):
        """Effective per-kind hit rate across both tiers.

        A disk hit answered a memory miss, so the combined rate is
        ``(memory hits + disk hits) / memory lookups`` — the fraction
        of lookups the tiers answered without recomputation.
        """
        out = {}
        disk = {
            kind: tally for kind, tally in self.disk.counters().items()
        }
        for kind, tally in self.memory.counters().items():
            lookups = tally["hits"] + tally["misses"]
            if not lookups:
                out[kind] = None
                continue
            hits = tally["hits"] + disk.get(kind, {}).get("hits", 0)
            out[kind] = min(1.0, hits / lookups)
        return out

    def reset_counters(self):
        """Zero both tiers' tallies (entries and rows survive)."""
        self.memory.reset_counters()
        self.disk.reset_counters()
        self.promotions = 0
        self.flushes = 0

    def __len__(self):
        return len(self.memory)

    def __repr__(self):
        return "TieredStore(memory=%r, disk=%r, dirty=%d)" % (
            self.memory, self.disk, len(self._dirty),
        )
