"""``repro.pipeline`` — the staged compilation pipeline.

The decision procedure as an explicit DAG of typed stages
(:data:`STAGES`), driven by a :class:`Pipeline` pass manager over one
content-addressed :class:`ArtifactStore`, with per-stage structured
tracing (:class:`Tracer` / :class:`TraceEvent`, exportable as Chrome
``trace_event`` JSON).

Layering: this package sits between the COQL front end
(:mod:`repro.coql`) and the engine (:mod:`repro.engine`).  The engine,
the parallel workers, view catalogs, the static analyzer's pre-check,
and the CLI all obtain artifacts through a :class:`Pipeline`; none of
them carry private memo tables.
"""

from repro.pipeline.fingerprint import artifact_key, fingerprint
from repro.pipeline.persist import PersistentStore, TieredStore
from repro.pipeline.stages import (
    DEFAULT_LIMITS,
    Pipeline,
    Stage,
    STAGES,
    stage_table,
)
from repro.pipeline.store import ArtifactStore, KindView, MISSING
from repro.pipeline.trace import TIMED_STAGES, TraceEvent, Tracer

__all__ = [
    "ArtifactStore",
    "DEFAULT_LIMITS",
    "KindView",
    "MISSING",
    "PersistentStore",
    "Pipeline",
    "STAGES",
    "Stage",
    "TIMED_STAGES",
    "TieredStore",
    "TraceEvent",
    "Tracer",
    "artifact_key",
    "fingerprint",
    "stage_table",
]
