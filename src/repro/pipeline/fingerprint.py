"""Deterministic, process-portable content fingerprints.

The artifact store (:mod:`repro.pipeline.store`) is content-addressed:
a cached artifact is keyed by a SHA-256 digest of its *inputs*, not by
Python object identity or ``hash()``.  That buys two properties the
old per-engine ``_LRUCache`` tables could not offer:

* **process portability** — ``hash(str)`` is salted per process
  (``PYTHONHASHSEED``), so identity/hash-based keys computed in a
  parallel worker never match the parent's.  A content digest of the
  same query text, schema, and knobs is bit-identical everywhere, which
  is what lets the parent and its pool workers speak about the same
  artifact (and what a future on-disk or cross-run cache would key on).
* **canonical equality** — two structurally equal ASTs produced by
  different code paths (parsed text vs. programmatic construction, with
  or without parser source spans) map to one digest, so they share one
  cache entry by construction.

The encoding is a tagged, length-prefixed serialization fed to one
incremental hasher: primitives carry a type tag (tuples ``T`` and lists
``L`` are distinct — same contents in a different sequence type is a
different key), sequences their length, and unordered containers
(dicts, sets) are ordered by the digests of their elements so iteration
order never leaks into the key.  Float policy: digests see a canonical
IEEE bit pattern — ``-0.0`` folds into ``+0.0`` (they compare equal
everywhere queries compare values) and every NaN payload folds into one
canonical NaN (so NaN-carrying inputs still key deterministically);
ints and floats keep distinct tags, so ``1`` and ``1.0`` never collide.  Immutable
``__slots__`` value objects (AST nodes, terms, grouping queries, types)
are encoded as their class name plus slot values — skipping the
``_hash`` memo slots and the parser-attached ``_span`` metadata, which
by design never participate in equality.
"""

import hashlib
import struct

__all__ = ["fingerprint", "artifact_key"]

#: Slot names that are memoization / provenance metadata, never content.
_METADATA_SLOTS = frozenset({"_hash", "_span"})

#: Digest memo for the immutable ``__slots__`` value objects.  Keyed by
#: ``id(obj)`` with a strong reference to the object stored alongside,
#: which makes the id-key safe: the object cannot be collected while its
#: entry exists, so the id cannot be recycled onto a different object.
#: Bounded by wholesale clearing — entries are tiny and the working set
#: (atoms, terms, grouping nodes of live queries) is small, so a rare
#: full rebuild beats per-entry eviction bookkeeping.  This is what
#: keeps warm store lookups cheap: a cached query fingerprints in
#: near-constant time instead of re-walking its whole object graph.
_DIGEST_MEMO = {}
_DIGEST_MEMO_LIMIT = 16384


def _slot_names(klass):
    seen = set()
    names = []
    for base in klass.__mro__:
        for name in getattr(base, "__slots__", ()):
            if name in seen or name in _METADATA_SLOTS:
                continue
            seen.add(name)
            names.append(name)
    return names


def _feed(hasher, obj):
    if obj is None:
        hasher.update(b"N")
    elif obj is True:
        hasher.update(b"B1")
    elif obj is False:
        hasher.update(b"B0")
    elif isinstance(obj, int):
        data = repr(obj).encode("ascii")
        hasher.update(b"I" + struct.pack(">I", len(data)) + data)
    elif isinstance(obj, float):
        # Structurally equal floats must share a digest (the store keys
        # on structure, and -0.0 == 0.0 in every query comparison), and
        # NaN must key deterministically even though NaN != NaN.  So the
        # digest sees a canonical bit pattern: -0.0 is folded into +0.0
        # and every NaN payload into one canonical NaN.
        if obj != obj:  # NaN (any payload, any sign)
            hasher.update(b"F" + struct.pack(">d", float("nan")))
        else:
            hasher.update(b"F" + struct.pack(">d", obj + 0.0))
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        hasher.update(b"S" + struct.pack(">I", len(data)) + data)
    elif isinstance(obj, bytes):
        hasher.update(b"Y" + struct.pack(">I", len(obj)) + obj)
    elif isinstance(obj, tuple):
        hasher.update(b"T" + struct.pack(">I", len(obj)))
        for item in obj:
            _feed(hasher, item)
    elif isinstance(obj, list):
        # A distinct tag from tuples: ("a",) and ["a"] are different
        # structures, and sharing the T tag let one artifact alias
        # across kinds whose keys differ only in sequence type.
        hasher.update(b"L" + struct.pack(">I", len(obj)))
        for item in obj:
            _feed(hasher, item)
    elif isinstance(obj, (set, frozenset)):
        hasher.update(b"E" + struct.pack(">I", len(obj)))
        for digest in sorted(_digest(item) for item in obj):
            hasher.update(digest)
    elif isinstance(obj, dict):
        hasher.update(b"D" + struct.pack(">I", len(obj)))
        for digest in sorted(
            _digest((key, value)) for key, value in obj.items()
        ):
            hasher.update(digest)
    elif hasattr(type(obj), "__slots__"):
        hasher.update(_slots_digest(obj))
    else:
        raise TypeError(
            "cannot fingerprint %r (no canonical encoding for %s)"
            % (obj, type(obj).__name__)
        )


def _slots_digest(obj):
    entry = _DIGEST_MEMO.get(id(obj))
    if entry is not None and entry[0] is obj:
        return entry[1]
    hasher = hashlib.sha256()
    name = "%s.%s" % (type(obj).__module__, type(obj).__qualname__)
    data = name.encode("utf-8")
    hasher.update(b"O" + struct.pack(">I", len(data)) + data)
    for slot in _slot_names(type(obj)):
        # Optional slots may never have been filled in.
        if hasattr(obj, slot):
            _feed(hasher, slot)
            _feed(hasher, getattr(obj, slot))
    digest = hasher.digest()
    if len(_DIGEST_MEMO) >= _DIGEST_MEMO_LIMIT:
        _DIGEST_MEMO.clear()
    _DIGEST_MEMO[id(obj)] = (obj, digest)
    return digest


def _digest(obj):
    hasher = hashlib.sha256()
    _feed(hasher, obj)
    return hasher.digest()


def fingerprint(obj):
    """The hex SHA-256 content digest of *obj*.

    Deterministic across processes, machines, and hash seeds; equal for
    structurally equal objects regardless of how they were built.
    Accepts primitives, (nested) tuples/lists/dicts/sets, and the
    library's immutable ``__slots__`` value classes (AST expressions,
    terms, atoms, grouping queries, record types, ...).
    """
    return _digest(obj).hex()


def artifact_key(kind, *parts):
    """The content-addressed store key for an artifact of *kind*.

    The *kind* participates in the digest, so equal inputs cached under
    different artifact kinds can never collide.
    """
    return fingerprint((kind,) + parts)
