"""The staged decision pipeline (pass manager).

The paper's decision procedure is inherently staged: parse COQL,
typecheck against the flat schema (Section 3), rewrite to comprehension
normal form and encode as a grouping-query tree (Section 5), enumerate
truncation obligations, and decide each by the simulation certificate
(Theorem 4.1).  :class:`Pipeline` makes that structure explicit: each
stage declares what it consumes and produces (:data:`STAGES`), every
run is traced (:mod:`repro.pipeline.trace`), and every cacheable
artifact lives in one content-addressed
:class:`repro.pipeline.store.ArtifactStore` under a deterministic,
process-portable key (:mod:`repro.pipeline.fingerprint`).

The same pipeline serves every entry point: the sequential
:class:`repro.engine.ContainmentEngine`, the parallel engine's worker
processes, :class:`repro.coql.views.ViewCatalog`, the static analyzer's
pre-check, and the CLI all construct (or share) a pipeline rather than
carrying private memo tables.  A pipeline with ``store=None`` is the
uncached reference path — :func:`repro.coql.containment.prepare` runs
exactly this, so the module-level and engine prepare paths can never
drift again.
"""

from repro.errors import TypeCheckError, UnsupportedQueryError
from repro.pipeline.fingerprint import artifact_key
from repro.pipeline.store import MISSING, ArtifactStore, KindView
from repro.pipeline.trace import Tracer

__all__ = ["Stage", "STAGES", "Pipeline", "stage_table"]


class Stage:
    """One declared stage of the decision DAG.

    Attributes:
        name: the stage name (the DAG vertex).
        consumes / produces: artifact type names (documentation of the
            DAG edges; the driver enforces them by construction).
        cache_kind: the :class:`ArtifactStore` segment the stage's
            artifact is cached under (None = never cached).
        cache_key: human description of the content-hash key.
        spans: the :class:`TraceEvent` stage names this stage emits.
        paper: the paper section the stage implements.
    """

    __slots__ = ("name", "consumes", "produces", "cache_kind", "cache_key",
                 "spans", "paper")

    def __init__(self, name, consumes, produces, cache_kind=None,
                 cache_key=None, spans=(), paper=""):
        self.name = name
        self.consumes = tuple(consumes)
        self.produces = produces
        self.cache_kind = cache_kind
        self.cache_key = cache_key
        self.spans = tuple(spans) or (name,)
        self.paper = paper

    def __repr__(self):
        return "Stage(%s: %s -> %s%s)" % (
            self.name, " x ".join(self.consumes), self.produces,
            ", cached=%s" % self.cache_kind if self.cache_kind else "",
        )


#: The decision procedure as an explicit DAG of typed stages.  The
#: ``prepare`` artifact covers parse → typecheck → encode →
#: build_grouping (one cache entry for the whole front half, keyed on
#: the parsed AST so re-preparing a query replays nothing).
STAGES = (
    Stage("parse", ("coql_text",), "coql_ast", cache_kind="parse",
          cache_key="sha256(coql_text)",
          spans=("parse",), paper="Sec. 3 (COQL syntax)"),
    Stage("typecheck", ("coql_ast", "schema"), "output_type",
          spans=("typecheck",), paper="Sec. 3 (type system)"),
    Stage("analyze", ("coql_ast", "schema"), "diagnostics",
          spans=("analysis",), paper="Sec. 3/5 (optional pre-check)"),
    Stage("encode", ("coql_ast",), "normal_form",
          spans=("normalize",), paper="Sec. 5.1 (normal form)"),
    Stage("build_grouping", ("normal_form", "schema", "role"),
          "encoded_query", cache_kind="prepare",
          cache_key="sha256(coql_ast, schema, role)",
          spans=("encode",), paper="Sec. 5.1 (grouping encoding)"),
    Stage("minimize", ("coql_ast", "schema"), "coql_ast",
          spans=("minimize",), paper="Sec. 1 (redundant subgoals)"),
    Stage("expand_family", ("coql_ast",), "query_family",
          spans=("family",),
          paper="Sagiv–Yannakakis [36] (union distribution)"),
    Stage("chase", ("simulation_target", "constraints"), "chased_atoms",
          cache_kind="chase",
          cache_key="sha256(atoms, constraints, schema)",
          spans=("chase",),
          paper="inclusion dependencies (chase saturation)"),
    Stage("enumerate_obligations", ("grouping_query",),
          "truncation_patterns", cache_kind="nonempty",
          cache_key="sha256(grouping_query, path) per non-empty test",
          spans=("obligations",), paper="Sec. 5 (truncation patterns)"),
    Stage("compile_target", ("grouping_query", "witnesses"),
          "simulation_target", cache_kind="targets",
          cache_key="sha256(grouping_query, witnesses)",
          spans=("simulation",), paper="Thm. 4.1 (canonical database)"),
    Stage("decide", ("obligation", "witnesses", "method"), "verdict",
          cache_kind="obligation_verdicts",
          cache_key="sha256(sub_t, sup_t, witnesses, method, constraints)",
          spans=("decide", "simulation"), paper="Thm. 4.1 (simulation)"),
    Stage("reduce_union", ("query_family", "query_family"), "verdict",
          cache_kind="branch_verdict",
          cache_key="sha256(sub_branch, sup_branch, schema, witnesses, "
                    "method, constraints)",
          spans=("reduce_union",),
          paper="Sagiv–Yannakakis [36] (all/any reduction)"),
    Stage("analyze_cost", ("grouping_query", "grouping_query", "witnesses"),
          "cost_certificate", cache_kind="cost_certificate",
          cache_key="sha256(sub_query, sup_query, witnesses)",
          spans=("analyze_cost",),
          paper="Thm. 5.1 (search-space bound)"),
)


def stage_table():
    """``{stage name: Stage}`` for the declared DAG."""
    return {stage.name: stage for stage in STAGES}


#: Default per-kind bounds when a pipeline builds its own store.  The
#: ``classification`` kind holds the view-vs-query labels of
#: :meth:`repro.engine.ContainmentEngine.classify_many` — derived from
#: two containment verdicts, so it sits above the stage DAG but shares
#: the store (and the persistent tier) like any other artifact.
DEFAULT_LIMITS = {
    "parse": 1024,
    "prepare": 512,
    "obligation_verdicts": 8192,
    "nonempty": 8192,
    "targets": 1024,
    "classification": 8192,
    "cost_certificate": 1024,
    "branch_verdict": 8192,
    "chase": 1024,
}


class Pipeline:
    """Drives the staged decision procedure over one artifact store.

    :param store: the shared :class:`ArtifactStore` (None = uncached
        reference run: every stage recomputes, nothing is stored).
    :param stats: optional :class:`repro.engine.stats.EngineStats`; the
        pipeline tallies the cache counters (``prepare_hits``, ...) and
        its tracer maintains the per-stage timers.
    :param tracer: optional :class:`Tracer` to record spans into (a
        fresh one bound to *stats* is created otherwise).
    """

    def __init__(self, store=None, stats=None, tracer=None):
        self.store = store
        self.stats = stats
        self.tracer = tracer if tracer is not None else Tracer(stats)

    @classmethod
    def with_default_store(cls, stats=None, tracer=None, limits=None):
        """A pipeline over a fresh store with the stock per-kind bounds."""
        bounds = dict(DEFAULT_LIMITS)
        bounds.update(limits or {})
        return cls(ArtifactStore(limits=bounds), stats=stats, tracer=tracer)

    def _tally(self, name, amount=1):
        if self.stats is not None:
            self.stats.tally(name, amount)

    def _lookup(self, kind, key):
        if self.store is None or key is None:
            return MISSING
        return self.store.lookup(kind, key)

    def _store(self, kind, key, value):
        if self.store is not None and key is not None:
            self.store.store(kind, key, value)

    # -- front half: parse .. build_grouping ---------------------------

    def parse(self, text):
        """Stage ``parse``: COQL text → AST.

        Cached under the digest of the raw text (kind ``parse``) —
        cheap to key, and a hit returns the *same* AST object every
        time, so downstream content hashing of the tree is memoized by
        identity too.  Safe to share: ASTs are immutable.
        """
        from repro.coql.parser import parse_coql

        key = None
        if self.store is not None:
            key = artifact_key("parse", text)
            cached = self._lookup("parse", key)
            if cached is not MISSING:
                return cached
        with self.tracer.span("parse", chars=len(text)):
            ast = parse_coql(text)
        self._store("parse", key, ast)
        return ast

    def prepare_key(self, query, schema, name="q"):
        """The content-addressed store key of a ``prepare`` artifact.

        Deterministic across processes: the parallel engine's workers
        compute bit-identical keys for the pairs the parent dispatched.
        *query* may be text (parsed here, untraced) or an AST.
        """
        from repro.coql.ast import Expr
        from repro.coql.containment import as_schema
        from repro.coql.parser import parse_coql

        schema = as_schema(schema)
        if isinstance(query, str):
            query = parse_coql(query)
        if not isinstance(query, Expr):
            raise TypeCheckError("not a COQL query: %r" % (query,))
        return artifact_key(
            "prepare", query, tuple(sorted(schema.items())), name
        )

    def prepare(self, query, schema, name="q"):
        """Stages ``parse → typecheck → encode → build_grouping``.

        Returns the :class:`repro.coql.encode.EncodedQuery` artifact,
        cached under kind ``prepare`` when the pipeline has a store.
        """
        from repro.coql.ast import Expr
        from repro.coql.containment import as_schema
        from repro.coql.encode import encode_query
        from repro.coql.normalize import normalize
        from repro.coql.typecheck import typecheck

        schema = as_schema(schema)
        with self.tracer.span("prepare", label=name) as span:
            if isinstance(query, str):
                query = self.parse(query)
            if not isinstance(query, Expr):
                raise TypeCheckError("not a COQL query: %r" % (query,))
            key = None
            if self.store is not None:
                key = artifact_key(
                    "prepare", query, tuple(sorted(schema.items())), name
                )
                cached = self._lookup("prepare", key)
                if cached is not MISSING:
                    self._tally("prepare_hits")
                    span.annotate(cache="hit")
                    return cached
                self._tally("prepare_misses")
                span.annotate(cache="miss")
            with self.tracer.span("typecheck"):
                typecheck(query, schema)
            with self.tracer.span("normalize"):
                nf = normalize(query)
            with self.tracer.span("encode"):
                encoded = encode_query(nf, schema, name)
            span.annotate(
                paths=0 if encoded.is_empty else len(encoded.query.paths()),
            )
            self._store("prepare", key, encoded)
            return encoded

    # -- obligation half: enumerate .. decide --------------------------

    def provably_nonempty(self, query, path):
        """The memoized provably-non-empty test (cache kind ``nonempty``)."""
        from repro.coql.containment import _provably_nonempty

        key = None
        if self.store is not None:
            key = artifact_key("nonempty", query, path)
            cached = self._lookup("nonempty", key)
            if cached is not MISSING:
                self._tally("nonempty_hits")
                return cached
            self._tally("nonempty_misses")
        verdict = _provably_nonempty(query, path)
        self._store("nonempty", key, verdict)
        return verdict

    def enumerate_obligations(self, sub_query):
        """Stage ``enumerate_obligations``: the non-implied truncation
        patterns of *sub_query*, with the skipped-as-implied tally."""
        from repro.coql.containment import _obligation_patterns

        with self.tracer.span("obligations") as span:
            patterns = list(
                _obligation_patterns(
                    sub_query, is_nonempty=self.provably_nonempty
                )
            )
            nonroot = sum(1 for p in sub_query.paths() if p)
            skipped = 2 ** nonroot - len(patterns)
            self._tally("obligations_skipped_implied", skipped)
            span.annotate(patterns=len(patterns), skipped_implied=skipped)
        return patterns

    def decide_obligation(self, sub_query, sup_query, pattern, witnesses,
                          method, decide, constraints=()):
        """Stage ``decide``: one truncation obligation's verdict.

        Cached under kind ``obligation_verdicts`` keyed on the truncated
        pair plus the decision knobs; *decide* runs the simulation
        search on a miss.  A non-empty *constraints* tuple (inclusion
        dependencies the verdict was decided under) joins the key —
        unconstrained keys are unchanged, so persisted verdicts from
        constraint-free runs stay valid.
        """
        sub_t = sub_query.truncate(pattern)
        sup_t = sup_query.truncate(pattern)
        with self.tracer.span(
            "decide", paths=len(pattern), method=method
        ) as span:
            key = None
            if self.store is not None:
                if constraints:
                    key = artifact_key(
                        "obligation_verdicts", sub_t, sup_t, witnesses,
                        method, tuple(constraints),
                    )
                else:
                    key = artifact_key(
                        "obligation_verdicts", sub_t, sup_t, witnesses,
                        method,
                    )
                cached = self._lookup("obligation_verdicts", key)
                if cached is not MISSING:
                    self._tally("obligation_cache_hits")
                    span.annotate(cache="hit", verdict=cached)
                    return cached
                self._tally("obligation_cache_misses")
                span.annotate(cache="miss")
            with self.tracer.span("simulation"):
                verdict = decide(sub_t, sup_t)
            self._tally("obligations_checked")
            span.annotate(verdict=verdict)
            self._store("obligation_verdicts", key, verdict)
            return verdict

    # -- static analysis: cost certificates ----------------------------

    def analyze_cost(self, sub_query, sup_query, witnesses=None):
        """Stage ``analyze_cost``: the pair's :class:`CostCertificate`.

        Cached under kind ``cost_certificate`` keyed on the aligned
        grouping pair and the witness knob.  The certificate's own
        non-emptiness tests go through :meth:`provably_nonempty`, so the
        enumerated obligation patterns are exactly the ones
        :meth:`enumerate_obligations` would produce for the same pair.
        """
        from repro.analysis.interp import pair_certificate

        with self.tracer.span("analyze_cost") as span:
            key = None
            if self.store is not None:
                key = artifact_key(
                    "cost_certificate", sub_query, sup_query, witnesses
                )
                cached = self._lookup("cost_certificate", key)
                if cached is not MISSING:
                    self._tally("cost_certificate_hits")
                    span.annotate(cache="hit")
                    return cached
                self._tally("cost_certificate_misses")
                span.annotate(cache="miss")
            certificate = pair_certificate(
                sub_query, sup_query, witnesses=witnesses,
                is_nonempty=self.provably_nonempty,
            )
            span.annotate(
                patterns=certificate.patterns,
                total_bound=str(certificate.total_bound),
            )
            self._store("cost_certificate", key, certificate)
            return certificate

    # -- schema constraints: the chase ---------------------------------

    def chase(self, atoms, constraints, schema):
        """Stage ``chase``: saturate ground *atoms* under the linear
        inclusion dependencies *constraints* declared on *schema*.

        Returns a :class:`repro.constraints.chase.ChaseResult`, cached
        under kind ``chase`` keyed on the atoms, the dependency tuple,
        and the schema (which fixes the attribute→position layout of
        the flat encoding).  The key is content-addressed, so the
        Ontop-style memoization extends across engines, worker
        processes, and the persistent store tier.
        """
        from repro.constraints.chase import chase_atoms, resolve_dependencies

        atoms = tuple(atoms)
        constraints = tuple(constraints)
        schema_items = tuple(sorted(schema.items()))
        with self.tracer.span("chase", deps=len(constraints)) as span:
            key = None
            if self.store is not None:
                key = artifact_key("chase", atoms, constraints, schema_items)
                cached = self._lookup("chase", key)
                if cached is not MISSING:
                    self._tally("chase_hits")
                    span.annotate(cache="hit", added=len(cached.added))
                    return cached
                self._tally("chase_misses")
                span.annotate(cache="miss")
            resolved = resolve_dependencies(constraints, schema)
            result = chase_atoms(atoms, resolved)
            if result.truncated:
                self._tally("chase_truncations")
            span.annotate(
                added=len(result.added), rounds=result.rounds,
                truncated=result.truncated,
            )
            self._store("chase", key, result)
            return result

    # -- back half: compiled simulation targets ------------------------

    def target_cache(self):
        """Stage ``compile_target``'s cache: a content-addressed view of
        kind ``targets``, in the ``get``/``__setitem__`` protocol of
        :func:`repro.grouping.simulation.simulation_target` (None when
        the pipeline is uncached)."""
        if self.store is None:
            return None
        return KindView(self.store, "targets")

    def __repr__(self):
        return "Pipeline(store=%r)" % (self.store,)


def check_method(method):
    """Validate a decision-method name (shared by engine layers)."""
    if method not in ("certificate", "canonical"):
        raise UnsupportedQueryError("unknown method %r" % (method,))
