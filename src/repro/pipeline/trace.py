"""Structured per-stage tracing for the decision pipeline.

Every stage run — a parse, an encode, one simulation obligation — is
recorded as a :class:`TraceEvent` carrying the stage name, wall time,
cache outcome, and free-form metadata (artifact sizes, search-counter
deltas).  Events nest: a ``check`` span opened by
:meth:`ContainmentEngine.contains` holds the prepare/obligation/
simulation spans it caused, giving a per-check trace *tree*.

The :class:`Tracer` is also the **single writer of the engine's
per-stage timers**: when a span closes, its duration is added to the
bound :class:`repro.engine.stats.EngineStats` timer of the same name
(for the stages in :data:`TIMED_STAGES`).  ``EngineStats.timers`` is
therefore a view over the trace — the two can never disagree, and the
reconciliation ``sum of span durations per stage == stats.time(stage)``
holds by construction.

Exports: :meth:`Tracer.as_dict` (plain JSON tree) and
:meth:`Tracer.chrome_trace` — the Chrome ``trace_event`` format
(``chrome://tracing`` / Perfetto ``X`` complete events), written by the
CLI's ``--trace-out``.

Retention is optional: a ``Tracer(retain=False)`` still feeds the stats
timers but keeps no event objects, which is what parallel workers use so
a long-lived pool never accumulates trace memory.
"""

import json
import os
from contextlib import contextmanager
from time import perf_counter

__all__ = ["TraceEvent", "Tracer", "TIMED_STAGES"]

#: Stage names whose span durations feed ``EngineStats`` timers.  The
#: top-level ``check`` span is excluded: it *contains* the stage spans,
#: so timing it too would double-count every second.
TIMED_STAGES = frozenset({
    "parse",
    "typecheck",
    "normalize",
    "encode",
    "obligations",
    "simulation",
    "analysis",
    "minimize",
})


class TraceEvent:
    """One stage run (a span) in the trace tree.

    Attributes:
        stage: the stage name (``parse``, ``simulation``, ``check``, ...).
        label: optional human label (e.g. the query role).
        start: ``perf_counter`` timestamp at span entry.
        duration: wall seconds (filled when the span closes).
        cache: ``"hit"``, ``"miss"``, or None for uncached stages.
        meta: free-form ``{str: json-able}`` metadata.
        children: nested spans, in start order.
    """

    __slots__ = ("stage", "label", "start", "duration", "cache", "meta",
                 "children")

    def __init__(self, stage, label=None):
        self.stage = stage
        self.label = label
        self.start = perf_counter()
        self.duration = 0.0
        self.cache = None
        self.meta = {}
        self.children = []

    def annotate(self, cache=None, **meta):
        """Attach a cache outcome and/or metadata to the span."""
        if cache is not None:
            self.cache = cache
        self.meta.update(meta)
        return self

    def walk(self):
        """This event and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def as_dict(self):
        out = {"stage": self.stage, "duration_s": self.duration}
        if self.label is not None:
            out["label"] = self.label
        if self.cache is not None:
            out["cache"] = self.cache
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.children:
            out["children"] = [child.as_dict() for child in self.children]
        return out

    def __repr__(self):
        extra = " cache=%s" % self.cache if self.cache else ""
        return "TraceEvent(%s, %.6fs, children=%d%s)" % (
            self.stage, self.duration, len(self.children), extra)


class Tracer:
    """Collects a forest of :class:`TraceEvent` spans.

    :param stats: the :class:`EngineStats` whose per-stage timers this
        tracer maintains (None = trace only).
    :param retain: keep event objects for export (True) or feed the
        timers and drop them (False, the parallel workers' mode).
    """

    def __init__(self, stats=None, retain=True):
        self._stats = stats
        self._retain = retain
        self._roots = []
        self._stack = []
        self._epoch = perf_counter()

    @contextmanager
    def span(self, stage, label=None, **meta):
        """Open a span; yields the :class:`TraceEvent` for annotation."""
        event = TraceEvent(stage, label)
        if meta:
            event.meta.update(meta)
        if self._retain:
            if self._stack:
                self._stack[-1].children.append(event)
            else:
                self._roots.append(event)
        self._stack.append(event)
        try:
            yield event
        finally:
            self._stack.pop()
            event.duration = perf_counter() - event.start
            if self._stats is not None and stage in TIMED_STAGES:
                self._stats.add_time(stage, event.duration)

    def bind_stats(self, stats):
        """Re-point the timer sink (used when stats objects are swapped)."""
        self._stats = stats

    # -- reading -------------------------------------------------------

    def roots(self):
        """The retained top-level spans (per-check trace trees)."""
        return tuple(self._roots)

    def events(self):
        """Every retained span, pre-order across all roots."""
        for root in self._roots:
            yield from root.walk()

    def clear(self):
        """Drop every retained span (open spans keep recording)."""
        del self._roots[:]

    def stage_summary(self):
        """Per-stage rollup: ``{stage: {runs, seconds, hits, misses}}``.

        The per-stage breakdown behind the CLI's ``--stats`` report;
        ``seconds`` sums span durations, so for the stages of
        :data:`TIMED_STAGES` it reconciles exactly with the
        ``EngineStats`` timers this tracer maintains.
        """
        summary = {}
        for event in self.events():
            row = summary.setdefault(
                event.stage, {"runs": 0, "seconds": 0.0, "hits": 0,
                              "misses": 0},
            )
            row["runs"] += 1
            row["seconds"] += event.duration
            if event.cache == "hit":
                row["hits"] += 1
            elif event.cache == "miss":
                row["misses"] += 1
        return summary

    # -- exports -------------------------------------------------------

    def as_dict(self):
        """The trace forest as a plain JSON-able dictionary."""
        return {"version": 1, "checks": [r.as_dict() for r in self._roots]}

    def chrome_trace(self):
        """The trace in Chrome ``trace_event`` JSON (complete events).

        Load the written file in ``chrome://tracing`` or Perfetto.  One
        ``X`` (complete) event per span: ``ts``/``dur`` in microseconds
        relative to the tracer's creation, cache outcome and metadata
        under ``args``.
        """
        trace_events = []
        pid = os.getpid()
        for event in self.events():
            args = dict(event.meta)
            if event.label is not None:
                args["label"] = event.label
            if event.cache is not None:
                args["cache"] = event.cache
            trace_events.append({
                "name": event.stage,
                "cat": "pipeline",
                "ph": "X",
                "ts": (event.start - self._epoch) * 1e6,
                "dur": event.duration * 1e6,
                "pid": pid,
                "tid": 0,
                "args": args,
            })
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path):
        """Write :meth:`chrome_trace` to *path* as JSON."""
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def __repr__(self):
        return "Tracer(checks=%d, retain=%s)" % (
            len(self._roots), self._retain)
