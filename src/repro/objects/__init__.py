"""Complex-object data model (Levy & Suciu, PODS 1997, Section 3).

Complex objects are built recursively from

* **atoms** — values from an infinite domain (here: ``str``, ``int``,
  ``bool``, ``float``),
* **records** ``[A1: x1, ..., Ak: xk]`` with named components, and
* **finite sets** ``{x1, ..., xn}``.

The package provides the value constructors (:class:`Record`,
:class:`CSet`), the type system (:class:`AtomType`, :class:`RecordType`,
:class:`SetType`), the Hoare containment order :func:`dominated`, nested
databases (:class:`Database`), and the index encoding of nested relations
as flat relations (:func:`encode_database`, :func:`decode_relation`).
"""

from repro.objects.values import Record, CSet, is_atom, is_complex_object, sort_key
from repro.objects.types import (
    AtomType,
    RecordType,
    SetType,
    ATOM,
    infer_type,
    conforms,
    join_types,
)
from repro.objects.order import dominated, hoare_leq, hoare_equivalent
from repro.objects.database import Database, Relation
from repro.objects.encoding import encode_database, encode_relation, decode_relation
from repro.objects.graphs import ObjectGraph, to_graph, graph_simulation, value_simulated
from repro.objects.json_io import dumps_value, loads_value, dumps_database, loads_database

__all__ = [
    "Record",
    "CSet",
    "is_atom",
    "is_complex_object",
    "sort_key",
    "AtomType",
    "RecordType",
    "SetType",
    "ATOM",
    "infer_type",
    "conforms",
    "join_types",
    "dominated",
    "hoare_leq",
    "hoare_equivalent",
    "Database",
    "Relation",
    "encode_database",
    "encode_relation",
    "decode_relation",
    "ObjectGraph",
    "to_graph",
    "graph_simulation",
    "value_simulated",
    "dumps_value",
    "loads_value",
    "dumps_database",
    "loads_database",
]
