"""The containment order on complex objects (paper, Section 3.2).

Set inclusion is not preserved by nesting, so the paper adopts the weakest
order relation that (a) restricts to set inclusion on flat relations and
(b) is preserved by the complex-object constructors:

* on atoms: ``x ⊑ y  iff  x = y``;
* on records: componentwise;
* on sets: ``S ⊑ S'  iff  ∀x ∈ S. ∃y ∈ S'. x ⊑ y``.

This is the lower (Hoare) powerdomain ordering [22] and coincides with the
simulation relation between complex objects represented as graphs [6, 5].
It was previously used for Verso relations [4], partial information [8]
and or-sets [32].

Note that ``⊑`` is a preorder, not a partial order, on nested values:
``{{a}, {a,b}}`` and ``{{a,b}}`` dominate each other but differ.  On flat
relations mutual domination implies equality.
"""

from repro.errors import ValueConstructionError
from repro.objects.values import Record, CSet, is_atom

__all__ = ["dominated", "hoare_leq", "hoare_equivalent"]


def dominated(lower, upper):
    """Return True when ``lower ⊑ upper`` in the Hoare order.

    >>> dominated(CSet([1]), CSet([1, 2]))
    True
    >>> dominated(CSet([CSet([])]), CSet([CSet([1])]))
    True
    >>> dominated(CSet([1, 2]), CSet([1]))
    False
    """
    if is_atom(lower) and is_atom(upper):
        return lower == upper
    if isinstance(lower, Record) and isinstance(upper, Record):
        if lower.keys() != upper.keys():
            return False
        return all(dominated(lower[k], upper[k]) for k in lower.keys())
    if isinstance(lower, CSet) and isinstance(upper, CSet):
        return all(
            any(dominated(x, y) for y in upper.elements())
            for x in lower.elements()
        )
    if not _valid(lower) or not _valid(upper):
        raise ValueConstructionError(
            "dominated() expects complex objects, got %r and %r" % (lower, upper)
        )
    # Well-formed values of different kinds are incomparable.
    return False


def _valid(value):
    return is_atom(value) or isinstance(value, (Record, CSet))


#: Alias emphasising the powerdomain reading of the order.
hoare_leq = dominated


def hoare_equivalent(left, right):
    """Mutual domination (the paper's *weak equality* of answers)."""
    return dominated(left, right) and dominated(right, left)
