"""JSON (de)serialization for complex objects and databases.

Complex objects map onto JSON naturally — records become objects, sets
become arrays (sorted deterministically on output) — except that JSON
arrays are ordered and may contain duplicates, both of which the set
constructor erases.  The mapping here is therefore lossy only in the
harmless direction: ``from_json(to_json(v)) == v`` for every complex
object *v* (property-tested).

Records whose attribute set could be confused with the encoding itself
need no escaping because atoms, objects, and arrays occupy disjoint
JSON syntactic classes.
"""

import json

from repro.errors import ValueConstructionError, SchemaError
from repro.objects.values import Record, CSet, is_atom
from repro.objects.database import Database, Relation

__all__ = [
    "value_to_jsonable",
    "value_from_jsonable",
    "dumps_value",
    "loads_value",
    "dumps_database",
    "loads_database",
]


def value_to_jsonable(value):
    """Complex object → plain Python (dict/list/scalars)."""
    if is_atom(value):
        return value
    if isinstance(value, Record):
        return {name: value_to_jsonable(v) for name, v in value.items()}
    if isinstance(value, CSet):
        return [value_to_jsonable(v) for v in value]  # deterministic order
    raise ValueConstructionError("not a complex object: %r" % (value,))


def value_from_jsonable(data):
    """Plain Python (from JSON) → complex object.

    Dicts become records, lists become sets (duplicates collapse),
    scalars become atoms.  ``None`` is rejected: complex objects have no
    null.
    """
    if data is None:
        raise ValueConstructionError("complex objects have no null value")
    if isinstance(data, (str, int, float, bool)):
        return data
    if isinstance(data, dict):
        return Record({k: value_from_jsonable(v) for k, v in data.items()})
    if isinstance(data, list):
        return CSet([value_from_jsonable(v) for v in data])
    raise ValueConstructionError("cannot decode %r" % (data,))


def dumps_value(value, **kwargs):
    """Serialize a complex object to a JSON string."""
    return json.dumps(value_to_jsonable(value), **kwargs)


def loads_value(text):
    """Deserialize a complex object from a JSON string."""
    return value_from_jsonable(json.loads(text))


def dumps_database(database, **kwargs):
    """Serialize a database to JSON: ``{relation: [row, ...]}``."""
    payload = {
        name: [value_to_jsonable(row) for row in database[name]]
        for name in database.names()
    }
    return json.dumps(payload, **kwargs)


def loads_database(text):
    """Deserialize a database from JSON produced by :func:`dumps_database`.

    Empty relations are dropped (their schema is not recoverable from
    JSON); pass explicit schemas to :meth:`Database.from_dict` when empty
    relations matter.
    """
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise SchemaError("a database JSON document must be an object")
    relations = []
    for name, rows in payload.items():
        if not rows:
            continue
        decoded = [value_from_jsonable(row) for row in rows]
        for row in decoded:
            if not isinstance(row, Record):
                raise SchemaError(
                    "relation %s: rows must be JSON objects" % name
                )
        relations.append(Relation(name, CSet(decoded)))
    return Database(relations)
