"""Databases of named (possibly nested) relations.

A :class:`Database` maps relation names to :class:`Relation` values.  A
relation is a set of records; records may themselves contain sets, so
nested relations are supported throughout.  The decision procedures of
the paper assume *flat* input relations (Section 5.1 reduces the nested
case to the flat case via the index encoding in ``objects.encoding``);
:meth:`Database.is_flat` and :meth:`Database.require_flat` make that
assumption checkable.
"""

from repro.errors import SchemaError
from repro.objects.values import Record, CSet
from repro.objects.types import (
    AtomType,
    infer_type,
    join_types,
    conforms,
)

__all__ = ["Relation", "Database"]


class Relation:
    """A named set of records with a record schema.

    >>> r = Relation.from_rows("r", [{"a": 1, "b": 2}])
    >>> len(r)
    1
    """

    __slots__ = ("name", "rows", "row_type")

    def __init__(self, name, rows, row_type=None):
        if not isinstance(rows, CSet):
            rows = CSet(rows)
        for row in rows:
            if not isinstance(row, Record):
                raise SchemaError(
                    "relation %s: rows must be records, got %r" % (name, row)
                )
        if row_type is None:
            row_type = _infer_row_type(name, rows)
        else:
            for row in rows:
                if not conforms(row, row_type):
                    raise SchemaError(
                        "relation %s: row %r does not conform to %r"
                        % (name, row, row_type)
                    )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "row_type", row_type)

    def __setattr__(self, name, value):
        raise AttributeError("Relation is immutable")

    @classmethod
    def from_rows(cls, name, dict_rows, row_type=None):
        """Build a relation from an iterable of plain dicts."""
        return cls(name, CSet([_to_record(d) for d in dict_rows]), row_type)

    def attributes(self):
        """The attribute names of the row type, sorted."""
        return self.row_type.keys()

    def is_flat(self):
        """True when every attribute is atomic."""
        return all(
            isinstance(self.row_type[a], AtomType) for a in self.row_type.keys()
        )

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return len(self.rows)

    def __eq__(self, other):
        if not isinstance(other, Relation):
            return NotImplemented
        return self.name == other.name and self.rows == other.rows

    def __hash__(self):
        return hash((self.name, self.rows))

    def __repr__(self):
        return "Relation(%s, %d rows)" % (self.name, len(self.rows))


def _to_record(value):
    if isinstance(value, Record):
        return value
    if isinstance(value, dict):
        return Record({k: _convert(v) for k, v in value.items()})
    raise SchemaError("cannot convert %r to a record" % (value,))


def _convert(value):
    if isinstance(value, dict):
        return _to_record(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return CSet([_convert(v) for v in value])
    return value


def _infer_row_type(name, rows):
    row_type = None
    for row in rows:
        inferred = infer_type(row)
        try:
            row_type = inferred if row_type is None else join_types(row_type, inferred)
        except Exception as exc:
            raise SchemaError(
                "relation %s: rows have incompatible types (%s)" % (name, exc)
            )
    if row_type is None:
        raise SchemaError(
            "relation %s: cannot infer schema of an empty relation; "
            "pass row_type explicitly" % name
        )
    return row_type


class Database:
    """A mapping from relation names to relations.

    >>> db = Database.from_dict({"r": [{"a": 1}]})
    >>> db["r"].attributes()
    ('a',)
    """

    __slots__ = ("_relations",)

    def __init__(self, relations):
        by_name = {}
        for rel in relations:
            if not isinstance(rel, Relation):
                raise SchemaError("not a Relation: %r" % (rel,))
            if rel.name in by_name:
                raise SchemaError("duplicate relation name: %s" % rel.name)
            by_name[rel.name] = rel
        object.__setattr__(self, "_relations", by_name)

    def __setattr__(self, name, value):
        raise AttributeError("Database is immutable")

    @classmethod
    def from_dict(cls, tables, schema=None):
        """Build a database from ``{name: [row-dict, ...]}``.

        *schema*, when given, maps names to :class:`RecordType` row types
        (required for empty relations).
        """
        schema = schema or {}
        relations = []
        for name, rows in tables.items():
            relations.append(Relation.from_rows(name, rows, schema.get(name)))
        for name, row_type in schema.items():
            if name not in tables:
                relations.append(Relation(name, CSet(), row_type))
        return cls(relations)

    def __getitem__(self, name):
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError("no relation named %s" % name)

    def __contains__(self, name):
        return name in self._relations

    def names(self):
        """Relation names, sorted."""
        return tuple(sorted(self._relations))

    def relations(self):
        """The relations, in name order."""
        return tuple(self._relations[n] for n in self.names())

    def schema(self):
        """Mapping of relation name to row type."""
        return {name: self._relations[name].row_type for name in self.names()}

    def is_flat(self):
        """True when every relation is flat."""
        return all(rel.is_flat() for rel in self._relations.values())

    def require_flat(self):
        """Raise :class:`SchemaError` unless the database is flat."""
        for rel in self._relations.values():
            if not rel.is_flat():
                raise SchemaError(
                    "relation %s is nested; apply objects.encoding.encode_database "
                    "first (the paper's Section 5.1 reduction)" % rel.name
                )

    def active_domain(self):
        """All atomic values appearing anywhere in the database, sorted."""
        atoms = set()
        for rel in self._relations.values():
            for row in rel:
                _collect_atoms(row, atoms)
        return tuple(sorted(atoms, key=lambda a: (type(a).__name__, repr(a))))

    def with_relation(self, relation):
        """Return a copy with *relation* added or replaced."""
        updated = dict(self._relations)
        updated[relation.name] = relation
        return Database(updated.values())

    def __eq__(self, other):
        if not isinstance(other, Database):
            return NotImplemented
        return self._relations == other._relations

    def __repr__(self):
        inner = ", ".join(
            "%s(%d)" % (n, len(self._relations[n])) for n in self.names()
        )
        return "Database(%s)" % inner


def _collect_atoms(value, out):
    from repro.objects.values import is_atom

    if is_atom(value):
        out.add(value)
    elif isinstance(value, Record):
        for component in value.values():
            _collect_atoms(component, out)
    elif isinstance(value, CSet):
        for member in value:
            _collect_atoms(member, out)
