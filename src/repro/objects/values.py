"""Immutable complex-object values: atoms, records, and sets.

Following the paper (Section 3.1, after [1, 7]) a complex object is

1. an atomic value ``d`` from an infinite domain ``D``, or
2. a record ``[A1: x1, ..., Ak: xk]`` whose components are complex
   objects, or
3. a finite set ``{x1, ..., xn}`` of complex objects.

Atoms are represented by plain Python scalars (``str``, ``int``, ``bool``,
``float``); records by :class:`Record` and sets by :class:`CSet`.  All
values are immutable and hashable so that sets of records of sets (etc.)
work without ceremony.
"""

from repro.errors import ValueConstructionError

__all__ = ["Record", "CSet", "is_atom", "is_complex_object", "sort_key"]

#: Python types accepted as atomic values.  ``bool`` is a subclass of
#: ``int`` but is listed for clarity.
_ATOM_TYPES = (str, int, float, bool)


def is_atom(value):
    """Return True when *value* is an atomic complex-object value."""
    return isinstance(value, _ATOM_TYPES)


def is_complex_object(value):
    """Return True when *value* is a well-formed complex object."""
    if is_atom(value):
        return True
    if isinstance(value, Record):
        return all(is_complex_object(v) for v in value.values())
    if isinstance(value, CSet):
        return all(is_complex_object(v) for v in value)
    return False


class Record:
    """An immutable record ``[A1: x1, ..., Ak: xk]``.

    Components are accessed with ``record["A"]`` or :meth:`get`.  Records
    compare equal iff they have the same attribute names and equal
    component values; attribute order is irrelevant (components are stored
    sorted by name).

    >>> r = Record(name="ann", age=7)
    >>> r["name"]
    'ann'
    >>> r == Record(age=7, name="ann")
    True
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, _fields=None, **kwargs):
        fields = dict(_fields) if _fields is not None else {}
        fields.update(kwargs)
        for name, value in fields.items():
            if not isinstance(name, str):
                raise ValueConstructionError(
                    "record attribute names must be strings, got %r" % (name,)
                )
            if not _is_valid_component(value):
                raise ValueConstructionError(
                    "record component %s=%r is not a complex object" % (name, value)
                )
        object.__setattr__(self, "_items", tuple(sorted(fields.items())))
        object.__setattr__(self, "_hash", hash(self._items))

    def __setattr__(self, name, value):
        raise AttributeError("Record is immutable")

    def __getitem__(self, name):
        for key, value in self._items:
            if key == name:
                return value
        raise KeyError(name)

    def get(self, name, default=None):
        """Return component *name*, or *default* when absent."""
        for key, value in self._items:
            if key == name:
                return value
        return default

    def __contains__(self, name):
        return any(key == name for key, __ in self._items)

    def keys(self):
        """Attribute names, sorted."""
        return tuple(key for key, __ in self._items)

    def values(self):
        """Component values, in attribute-name order."""
        return tuple(value for __, value in self._items)

    def items(self):
        """(name, value) pairs, in attribute-name order."""
        return self._items

    def replace(self, **changes):
        """Return a copy with the given components replaced or added."""
        fields = dict(self._items)
        fields.update(changes)
        return Record(fields)

    def project(self, names):
        """Return a record restricted to the attributes in *names*."""
        return Record({name: self[name] for name in names})

    def __len__(self):
        return len(self._items)

    def __iter__(self):
        return iter(self.keys())

    def __eq__(self, other):
        if not isinstance(other, Record):
            return NotImplemented
        return self._items == other._items

    def __hash__(self):
        return self._hash

    def __repr__(self):
        inner = ", ".join("%s: %r" % (k, v) for k, v in self._items)
        return "[%s]" % inner


class CSet:
    """An immutable finite set of complex objects.

    >>> s = CSet([1, 2, 2])
    >>> len(s)
    2
    >>> CSet([Record(a=1)]) == CSet([Record(a=1)])
    True
    """

    __slots__ = ("_elements", "_hash")

    def __init__(self, elements=()):
        checked = []
        for value in elements:
            if not _is_valid_component(value):
                raise ValueConstructionError(
                    "set element %r is not a complex object" % (value,)
                )
            checked.append(value)
        object.__setattr__(self, "_elements", frozenset(checked))
        object.__setattr__(self, "_hash", hash(self._elements))

    def __setattr__(self, name, value):
        raise AttributeError("CSet is immutable")

    def __iter__(self):
        # Deterministic iteration order (useful for stable output/tests).
        return iter(sorted(self._elements, key=sort_key))

    def __len__(self):
        return len(self._elements)

    def __contains__(self, value):
        return value in self._elements

    def __eq__(self, other):
        if not isinstance(other, CSet):
            return NotImplemented
        return self._elements == other._elements

    def __hash__(self):
        return self._hash

    def __or__(self, other):
        if not isinstance(other, CSet):
            return NotImplemented
        return CSet(self._elements | other._elements)

    def __and__(self, other):
        if not isinstance(other, CSet):
            return NotImplemented
        return CSet(self._elements & other._elements)

    def __le__(self, other):
        """Plain subset test (not the Hoare order; see ``objects.order``)."""
        if not isinstance(other, CSet):
            return NotImplemented
        return self._elements <= other._elements

    def elements(self):
        """The underlying frozenset."""
        return self._elements

    def __repr__(self):
        inner = ", ".join(repr(v) for v in self)
        return "{%s}" % inner


def _is_valid_component(value):
    return is_atom(value) or isinstance(value, (Record, CSet))


def sort_key(value):
    """A total-order key over complex objects, for deterministic output.

    Orders by kind (atoms, then records, then sets), then structurally.
    Atoms of different Python types are ordered by type name then repr, so
    mixed-type sets sort deterministically.
    """
    if is_atom(value):
        return (0, type(value).__name__, repr(value))
    if isinstance(value, Record):
        return (1, tuple((k, sort_key(v)) for k, v in value.items()))
    if isinstance(value, CSet):
        return (2, tuple(sort_key(v) for v in value))
    raise ValueConstructionError("not a complex object: %r" % (value,))
