"""Types for complex objects: atoms, records, and sets.

Types mirror the value constructors: :data:`ATOM` (a singleton
:class:`AtomType`), :class:`RecordType` with named component types, and
:class:`SetType` with an element type.  :func:`infer_type` computes the
type of a value; because the empty set carries no element type, type
inference uses a bottom element :data:`EMPTY_SET` joined with
:func:`join_types`.
"""

from repro.errors import TypeCheckError, ValueConstructionError
from repro.objects.values import Record, CSet, is_atom
from repro.pickling import PicklableSlots

__all__ = [
    "AtomType",
    "RecordType",
    "SetType",
    "EmptySetType",
    "ATOM",
    "EMPTY_SET",
    "infer_type",
    "conforms",
    "join_types",
]


class AtomType:
    """The type of atomic values (a single base type, per the paper)."""

    __slots__ = ()
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __eq__(self, other):
        return isinstance(other, AtomType)

    def __hash__(self):
        return hash("AtomType")

    def __repr__(self):
        return "atom"


#: The unique atom type.
ATOM = AtomType()


class RecordType(PicklableSlots):
    """The type of records; maps attribute names to component types."""

    __slots__ = ("_fields", "_hash")

    def __init__(self, fields):
        items = tuple(sorted(dict(fields).items()))
        for name, component in items:
            if not isinstance(name, str):
                raise TypeCheckError("attribute names must be strings: %r" % (name,))
            if not _is_type(component):
                raise TypeCheckError("not a type: %r" % (component,))
        object.__setattr__(self, "_fields", items)
        object.__setattr__(self, "_hash", hash(items))

    def __setattr__(self, name, value):
        raise AttributeError("RecordType is immutable")

    def __getitem__(self, name):
        for key, value in self._fields:
            if key == name:
                return value
        raise KeyError(name)

    def __contains__(self, name):
        return any(key == name for key, __ in self._fields)

    def keys(self):
        return tuple(key for key, __ in self._fields)

    def items(self):
        return self._fields

    def atomic_attrs(self):
        """Names of attributes with atomic type, sorted."""
        return tuple(k for k, t in self._fields if isinstance(t, AtomType))

    def set_attrs(self):
        """Names of attributes with set type, sorted."""
        return tuple(
            k for k, t in self._fields if isinstance(t, (SetType, EmptySetType))
        )

    def __eq__(self, other):
        if not isinstance(other, RecordType):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self):
        return self._hash

    def __repr__(self):
        inner = ", ".join("%s: %r" % (k, v) for k, v in self._fields)
        return "[%s]" % inner


class SetType(PicklableSlots):
    """The type of finite sets with a given element type."""

    __slots__ = ("element", "_hash")

    def __init__(self, element):
        if not _is_type(element):
            raise TypeCheckError("not a type: %r" % (element,))
        object.__setattr__(self, "element", element)
        object.__setattr__(self, "_hash", hash(("SetType", element)))

    def __setattr__(self, name, value):
        raise AttributeError("SetType is immutable")

    def __eq__(self, other):
        if not isinstance(other, SetType):
            return NotImplemented
        return self.element == other.element

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return "{%r}" % (self.element,)


class EmptySetType:
    """The type of ``{}`` — a set whose element type is unknown.

    Acts as a bottom element under :func:`join_types`: it joins with any
    :class:`SetType` (and with itself).
    """

    __slots__ = ()
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __eq__(self, other):
        return isinstance(other, EmptySetType)

    def __hash__(self):
        return hash("EmptySetType")

    def __repr__(self):
        return "{?}"


#: The unique empty-set type.
EMPTY_SET = EmptySetType()


def _is_type(candidate):
    return isinstance(candidate, (AtomType, RecordType, SetType, EmptySetType))


def infer_type(value):
    """Infer the type of a complex-object value.

    Raises :class:`TypeCheckError` when set elements have incompatible
    types (e.g. ``{1, [A: 2]}``).
    """
    if is_atom(value):
        return ATOM
    if isinstance(value, Record):
        return RecordType({k: infer_type(v) for k, v in value.items()})
    if isinstance(value, CSet):
        element = EMPTY_SET
        first = True
        for member in value:
            member_type = SetType(infer_type(member))
            element = member_type if first else join_types(element, member_type)
            first = False
        if first:
            return EMPTY_SET
        return element
    raise ValueConstructionError("not a complex object: %r" % (value,))


def join_types(left, right):
    """Least upper bound of two types, treating ``{}`` as bottom set type.

    Raises :class:`TypeCheckError` when the types are incompatible.
    """
    if isinstance(left, EmptySetType) and isinstance(right, (SetType, EmptySetType)):
        return right
    if isinstance(right, EmptySetType) and isinstance(left, SetType):
        return left
    if isinstance(left, AtomType) and isinstance(right, AtomType):
        return ATOM
    if isinstance(left, RecordType) and isinstance(right, RecordType):
        if left.keys() != right.keys():
            raise TypeCheckError(
                "record types have different attributes: %r vs %r" % (left, right)
            )
        return RecordType(
            {name: join_types(left[name], right[name]) for name in left.keys()}
        )
    if isinstance(left, SetType) and isinstance(right, SetType):
        return SetType(join_types(left.element, right.element))
    raise TypeCheckError("incompatible types: %r vs %r" % (left, right))


def conforms(value, expected):
    """Return True when *value* has type *expected* (empty sets conform
    to every set type)."""
    if isinstance(expected, AtomType):
        return is_atom(value)
    if isinstance(expected, RecordType):
        if not isinstance(value, Record) or value.keys() != expected.keys():
            return False
        return all(conforms(value[name], expected[name]) for name in expected.keys())
    if isinstance(expected, SetType):
        if not isinstance(value, CSet):
            return False
        return all(conforms(member, expected.element) for member in value)
    if isinstance(expected, EmptySetType):
        return isinstance(value, CSet) and len(value) == 0
    raise TypeCheckError("not a type: %r" % (expected,))
