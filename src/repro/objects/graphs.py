"""Complex objects as rooted graphs; the simulation relation.

The paper notes that its containment order "coincides with the
simulation relation between complex objects represented as graphs
[6, 5]" (the UnQL/unstructured-data view).  This module makes the
coincidence executable:

* :func:`to_graph` — encode a complex-object value as a rooted labelled
  graph (hash-consed, so shared subvalues share nodes);
* :class:`ObjectGraph` — a general rooted labelled graph, which may be
  **cyclic** (the unstructured-data generalization of complex objects);
* :func:`graph_simulation` — the greatest simulation between two rooted
  graphs, computed by iterated refinement (works on cyclic graphs);
* theorem made testable: ``dominated(x, y)`` iff the root of
  ``to_graph(x)`` is simulated by the root of ``to_graph(y)`` (see
  ``tests/test_object_graphs.py``).

Node labels: ``("atom", value)`` for atoms, ``("record", attrs)`` for
records, ``("set",)`` for sets.  Edges are labelled with the record
attribute, or ``"∈"`` for set membership.
"""

from repro.errors import ValueConstructionError, ReproError
from repro.objects.values import Record, CSet, is_atom

__all__ = ["ObjectGraph", "to_graph", "graph_simulation", "value_simulated"]

#: Edge label for set membership.
MEMBER = "∈"


class ObjectGraph:
    """A rooted, edge-labelled graph over complex-object node labels.

    Nodes are arbitrary hashable identifiers; ``labels[node]`` is one of
    ``("atom", value)``, ``("record", (attr, ...))``, ``("set",)``;
    ``edges`` maps ``(node, edge label)`` to a tuple of successor nodes
    (record nodes have exactly one successor per attribute; set nodes
    any number of ``∈`` successors).  Cycles are allowed.
    """

    __slots__ = ("root", "labels", "edges")

    def __init__(self, root, labels, edges):
        self.root = root
        self.labels = dict(labels)
        self.edges = {key: tuple(value) for key, value in edges.items()}
        self._validate()

    def _validate(self):
        if self.root not in self.labels:
            raise ReproError("root %r has no label" % (self.root,))
        for (node, label), successors in self.edges.items():
            if node not in self.labels:
                raise ReproError("edge from unlabelled node %r" % (node,))
            for successor in successors:
                if successor not in self.labels:
                    raise ReproError(
                        "edge to unlabelled node %r" % (successor,)
                    )
            kind = self.labels[node][0]
            if kind == "atom":
                raise ReproError("atom node %r has outgoing edges" % (node,))
            if kind == "record" and label == MEMBER:
                raise ReproError("record node %r has a ∈ edge" % (node,))
            if kind == "set" and label != MEMBER:
                raise ReproError(
                    "set node %r has a non-∈ edge %r" % (node, label)
                )

    def successors(self, node, label):
        return self.edges.get((node, label), ())

    def nodes(self):
        return tuple(self.labels)

    def __repr__(self):
        return "ObjectGraph(root=%r, nodes=%d, edges=%d)" % (
            self.root,
            len(self.labels),
            sum(len(v) for v in self.edges.values()),
        )


def to_graph(value):
    """Encode a complex-object value as an :class:`ObjectGraph`.

    Hash-consed: structurally equal subvalues share a node, so the graph
    is a DAG whose size is the number of distinct subvalues.
    """
    labels = {}
    edges = {}
    ids = {}

    def intern(v):
        key = v
        if key in ids:
            return ids[key]
        if is_atom(v):
            node = ("a", len(ids))
            labels[node] = ("atom", v)
        elif isinstance(v, Record):
            node = ("r", len(ids))
            labels[node] = ("record", v.keys())
        elif isinstance(v, CSet):
            node = ("s", len(ids))
            labels[node] = ("set",)
        else:
            raise ValueConstructionError("not a complex object: %r" % (v,))
        ids[key] = node
        if isinstance(v, Record):
            for attr, component in v.items():
                edges[(node, attr)] = (intern(component),)
        elif isinstance(v, CSet):
            members = tuple(intern(m) for m in v)
            if members:
                edges[(node, MEMBER)] = members
        return node

    root = intern(value)
    return ObjectGraph(root, labels, edges)


def graph_simulation(left, right):
    """The greatest simulation from *left* into *right*.

    A relation R over nodes is a simulation when ``(x, y) ∈ R`` implies

    * labels are compatible: atoms equal; records with equal attribute
      sets; sets with sets;
    * records: for every attribute a, ``(x.a, y.a) ∈ R``;
    * sets: every ∈-successor of x is R-related to some ∈-successor
      of y.

    Computed by iterated refinement from the label-compatible relation —
    terminates on cyclic graphs (greatest fixpoint).

    :returns: the simulation as a set of ``(left node, right node)``.
    """
    relation = set()
    for x in left.nodes():
        for y in right.nodes():
            if _labels_compatible(left.labels[x], right.labels[y]):
                relation.add((x, y))

    changed = True
    while changed:
        changed = False
        for pair in tuple(relation):
            if not _pair_ok(pair, left, right, relation):
                relation.discard(pair)
                changed = True
    return relation


def _labels_compatible(left_label, right_label):
    if left_label[0] != right_label[0]:
        return False
    if left_label[0] == "atom":
        return left_label[1] == right_label[1]
    if left_label[0] == "record":
        return left_label[1] == right_label[1]
    return True


def _pair_ok(pair, left, right, relation):
    x, y = pair
    label = left.labels[x]
    if label[0] == "atom":
        return True
    if label[0] == "record":
        for attr in label[1]:
            xs = left.successors(x, attr)
            ys = right.successors(y, attr)
            if not xs or not ys:
                return False
            if (xs[0], ys[0]) not in relation:
                return False
        return True
    # set node
    for member in left.successors(x, MEMBER):
        if not any(
            (member, candidate) in relation
            for candidate in right.successors(y, MEMBER)
        ):
            return False
    return True


def value_simulated(lower, upper):
    """``lower ⊑ upper`` via graph simulation.

    Coincides with :func:`repro.objects.order.dominated` (tested); kept
    as an independent implementation of the order and as the entry point
    for cyclic/unstructured data.
    """
    left = to_graph(lower)
    right = to_graph(upper)
    return (left.root, right.root) in graph_simulation(left, right)
