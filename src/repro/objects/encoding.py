"""Index encoding of nested relations as flat relations (paper, Sec. 5.1).

"The idea is to replace every inner set (relation) with a fresh atomic
value, called *index*, and to store separately, in another relation, the
correspondence between the indexes and the relations they replace"
(following [21, 18, 39, 25]).

:func:`encode_relation` turns one nested relation ``R`` into a family of
flat relations: ``R`` itself with every set-valued attribute ``b``
replaced by an index column, plus one child relation ``R__b`` holding
``(index, element...)`` pairs, recursively.  Equal inner sets receive the
same index (value-based indexing), so decoding is exact:
``decode_relation(encode_relation(R)) == R``.
"""

from repro.errors import SchemaError
from repro.objects.values import Record, CSet
from repro.objects.types import AtomType, RecordType, SetType, EmptySetType, ATOM

__all__ = ["encode_relation", "encode_database", "decode_relation", "INDEX_ATTR"]

#: Column name used for the parent-index column of child relations.
INDEX_ATTR = "__index"


def _child_name(parent_name, attr):
    return "%s__%s" % (parent_name, attr)


def _element_record(element):
    """View a set element as a record (atoms become single-column rows)."""
    if isinstance(element, Record):
        return element
    return Record({"__value": element})


def encode_relation(relation):
    """Encode one nested relation as a dict of flat relations.

    Returns ``{name: Relation}`` containing the flattened root relation
    under ``relation.name`` plus one child relation per set-valued
    attribute path.  A flat input is returned unchanged (singleton dict).
    """
    from repro.objects.database import Relation

    out = {}
    indexer = _Indexer(relation.name)
    root_rows = []
    root_type = _flatten_type(relation.row_type)
    for row in relation.rows:
        root_rows.append(_encode_record(row, relation.name, indexer, out))
    out[relation.name] = Relation(relation.name, CSet(root_rows), root_type)
    # Materialise child tables collected by the indexer.
    for child_name, rows in indexer.tables.items():
        if rows:
            out[child_name] = Relation(child_name, CSet(rows))
        else:
            out[child_name] = Relation(
                child_name, CSet(), RecordType({INDEX_ATTR: ATOM})
            )
    return out


def encode_database(database):
    """Encode every nested relation of *database*; flat ones pass through."""
    from repro.objects.database import Database

    relations = []
    for rel in database.relations():
        if rel.is_flat():
            relations.append(rel)
        else:
            relations.extend(encode_relation(rel).values())
    return Database(relations)


class _Indexer:
    """Assigns value-based indexes to inner sets and collects child rows."""

    def __init__(self, root_name):
        self.root_name = root_name
        self.tables = {}
        self._index_of = {}

    def index_for(self, table_name, set_value):
        key = (table_name, set_value)
        if key in self._index_of:
            return self._index_of[key]
        index = "%s#%d" % (table_name, len(self._index_of))
        self._index_of[key] = index
        rows = self.tables.setdefault(table_name, [])
        for element in set_value:
            element_rec = _element_record(element)
            encoded = _encode_record(element_rec, table_name, self, None)
            rows.append(encoded.replace(**{INDEX_ATTR: index}))
        return index


def _encode_record(record, table_name, indexer, _unused):
    fields = {}
    for attr, value in record.items():
        if isinstance(value, CSet):
            child = _child_name(table_name, attr)
            fields[attr] = indexer.index_for(child, value)
        elif isinstance(value, Record):
            raise SchemaError(
                "record-valued attribute %s: flatten records before encoding "
                "(only sets are indexed)" % attr
            )
        else:
            fields[attr] = value
    return Record(fields)


def _flatten_type(row_type):
    fields = {}
    for attr, t in row_type.items():
        if isinstance(t, (SetType, EmptySetType)):
            fields[attr] = ATOM  # the index column
        elif isinstance(t, AtomType):
            fields[attr] = ATOM
        else:
            raise SchemaError("record-valued attribute %s not supported" % attr)
    return RecordType(fields)


def decode_relation(name, tables):
    """Invert :func:`encode_relation`.

    *tables* is the dict produced by :func:`encode_relation`; *name* the
    root relation name.  Returns the original nested :class:`Relation`.
    """
    from repro.objects.database import Relation

    root = tables[name]
    rows = [_decode_record(row, name, tables) for row in root.rows]
    return Relation(name, CSet(rows))


def _decode_record(row, table_name, tables):
    fields = {}
    for attr, value in row.items():
        if attr == INDEX_ATTR:
            continue
        child = _child_name(table_name, attr)
        if child in tables:
            fields[attr] = _decode_set(value, child, tables)
        else:
            fields[attr] = value
    return Record(fields)


def _decode_set(index, table_name, tables):
    members = []
    for row in tables[table_name].rows:
        if row[INDEX_ATTR] != index:
            continue
        decoded = _decode_record(row, table_name, tables)
        if decoded.keys() == ("__value",):
            members.append(decoded["__value"])
        else:
            members.append(decoded)
    return CSet(members)
