"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Sub-classes separate the major failure
modes: malformed values, type errors, parse errors, and requests that fall
outside the decidable fragment implemented here.
"""

__all__ = [
    "ReproError",
    "ValueConstructionError",
    "SchemaError",
    "TypeCheckError",
    "ParseError",
    "EvaluationError",
    "UnsupportedQueryError",
    "IncomparableQueriesError",
    "ContainmentTimeout",
    "union_arity_mismatch",
]


def union_arity_mismatch(arities):
    """The one wording for union branches whose head arities disagree.

    Shared by :mod:`repro.cq.unions` (flat Sagiv–Yannakakis unions) and
    the COQL union type checker, so both layers report the same message
    carrying the offending arities.
    """
    return "union branches have different head arities: %s" % (
        ", ".join(str(a) for a in sorted(set(arities)))
    )


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    :param span: optional ``(line, column)`` source position (1-based)
        of the offending construct, when the failing input was parsed
        from text.  Exposed so diagnostics (:mod:`repro.analysis`) can
        point at real spans; None when unknown.
    """

    def __init__(self, *args, span=None):
        super().__init__(*args)
        self.span = span


class ValueConstructionError(ReproError):
    """A complex-object value was built from unsupported raw material."""


class SchemaError(ReproError):
    """A database or relation does not match its declared schema."""


class TypeCheckError(ReproError):
    """A query does not type-check against the given schema."""


class ParseError(ReproError):
    """A textual query could not be parsed."""


class EvaluationError(ReproError):
    """A query failed during evaluation (e.g. unbound variable)."""


class UnsupportedQueryError(ReproError):
    """The query falls outside the fragment the procedure decides.

    The decision procedures implement the COQL fragment of Levy & Suciu
    (PODS 1997); queries outside it (e.g. set-valued equality tests) raise
    this error rather than returning a wrong answer.
    """


class IncomparableQueriesError(ReproError):
    """Two queries cannot be compared because their output types differ."""


class ContainmentTimeout(ReproError):
    """A containment check exceeded its wall-clock budget.

    Simulation of grouping queries is NP-complete (Theorem 5.1), so
    individual checks can be pathologically slow; the parallel engine
    bounds each check with ``timeout_s`` and raises (or converts to the
    ``UNDECIDED`` verdict, per policy) instead of hanging a batch.
    """
