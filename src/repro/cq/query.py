"""Conjunctive queries over flat relations.

A :class:`ConjunctiveQuery` is ``q(t̄) :- a1, ..., am`` with head terms
``t̄`` (variables or constants) and body atoms ``ai``.  Queries are safe:
every head variable must occur in the body.

:func:`freeze` builds the canonical database of a query (each variable
frozen to a fresh atomic value), the basic tool of the Chandra–Merlin
containment test [11].
"""

from repro.errors import ReproError, SchemaError
from repro.cq.terms import Var, Const, Atom, is_var
from repro.pickling import PicklableSlots

__all__ = ["ConjunctiveQuery", "freeze", "frozen_constant", "is_frozen_constant"]

#: Prefix marking frozen-variable constants in canonical databases; chosen
#: so it cannot collide with ordinary constants used in queries (queries
#: written via the parser cannot produce strings with this prefix).
_FROZEN_PREFIX = "⟨"  # "⟨"
_FROZEN_SUFFIX = "⟩"  # "⟩"


def frozen_constant(var, tag=""):
    """The atomic value a variable freezes to in a canonical database."""
    return "%s%s%s%s" % (_FROZEN_PREFIX, var.name, tag, _FROZEN_SUFFIX)


def is_frozen_constant(value):
    """True when *value* is a frozen-variable constant."""
    return (
        isinstance(value, str)
        and value.startswith(_FROZEN_PREFIX)
        and value.endswith(_FROZEN_SUFFIX)
    )


class ConjunctiveQuery(PicklableSlots):
    """``q(t̄) :- body``.

    >>> from repro.cq.parser import parse_query
    >>> q = parse_query("q(X) :- r(X, Y)")
    >>> q.head
    (X,)
    """

    __slots__ = ("name", "head", "body", "_hash")

    def __init__(self, head, body, name="q"):
        head = tuple(head)
        body = tuple(body)
        for term in head:
            if not isinstance(term, (Var, Const)):
                raise ReproError("head terms must be terms, got %r" % (term,))
        for atom in body:
            if not isinstance(atom, Atom):
                raise ReproError("body members must be atoms, got %r" % (atom,))
        body_vars = {v for atom in body for v in atom.variables()}
        for term in head:
            if is_var(term) and term not in body_vars:
                raise ReproError(
                    "unsafe query: head variable %r not in body" % (term,)
                )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "_hash", hash((name, head, body)))

    def __setattr__(self, name, value):
        raise AttributeError("ConjunctiveQuery is immutable")

    def variables(self):
        """All variables of the query (head + body), sorted by name."""
        seen = {v for atom in self.body for v in atom.variables()}
        seen.update(t for t in self.head if is_var(t))
        return tuple(sorted(seen))

    def head_vars(self):
        """The head variables, in head order, without duplicates."""
        out = []
        for term in self.head:
            if is_var(term) and term not in out:
                out.append(term)
        return tuple(out)

    def existential_vars(self):
        """Body variables that do not occur in the head."""
        head = set(self.head_vars())
        return tuple(v for v in self.variables() if v not in head)

    def predicates(self):
        """(pred, arity) pairs used in the body, sorted."""
        return tuple(sorted({(a.pred, a.arity) for a in self.body}))

    def rename_apart(self, suffix):
        """Return a copy with every variable renamed ``X -> X<suffix>``."""
        mapping = {v: Var(v.name + suffix) for v in self.variables()}
        return self.substitute(mapping)

    def substitute(self, mapping):
        """Apply a {Var: term} mapping to head and body."""
        from repro.cq.terms import substitute_term

        head = tuple(substitute_term(t, mapping) for t in self.head)
        body = tuple(atom.substitute(mapping) for atom in self.body)
        return ConjunctiveQuery(head, body, self.name)

    def with_head(self, head):
        """Return a copy with a different head."""
        return ConjunctiveQuery(head, self.body, self.name)

    def with_body(self, body):
        """Return a copy with a different body."""
        return ConjunctiveQuery(self.head, body, self.name)

    def __eq__(self, other):
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return (
            self.name == other.name
            and self.head == other.head
            and self.body == other.body
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        head = ", ".join(repr(t) for t in self.head)
        body = ", ".join(repr(a) for a in self.body)
        return "%s(%s) :- %s" % (self.name, head, body or "true")


def freeze(query, tag=""):
    """Build the canonical database of *query*.

    Every variable is replaced by the fresh constant
    :func:`frozen_constant(var, tag)`; the body atoms become the database
    facts.  Returns ``(database, frozen_head)`` where *frozen_head* is the
    tuple of head values under the freezing.

    The optional *tag* keeps canonical databases of several query copies
    disjoint (used by the witness-copy constructions in
    ``repro.grouping``).
    """
    from repro.objects.database import Database, Relation
    from repro.objects.values import Record, CSet

    mapping = {v: Const(frozen_constant(v, tag)) for v in query.variables()}
    facts = {}
    arities = {}
    for atom in query.body:
        ground = atom.substitute(mapping)
        prev = arities.setdefault(ground.pred, ground.arity)
        if prev != ground.arity:
            raise SchemaError(
                "predicate %s used with arities %d and %d"
                % (ground.pred, prev, ground.arity)
            )
        facts.setdefault(ground.pred, set()).add(
            tuple(term.value for term in ground.args)
        )
    relations = []
    for pred, rows in facts.items():
        records = [
            Record({_col(i): v for i, v in enumerate(row)}) for row in rows
        ]
        relations.append(Relation(pred, CSet(records)))
    frozen_head = tuple(
        mapping[t].value if is_var(t) else t.value for t in query.head
    )
    return Database(relations), frozen_head


def _col(i):
    """Positional column name used for relations built from atoms.

    Zero-padded so that the sorted attribute order of the relation matches
    the positional order (up to 100 columns).
    """
    return "c%02d" % i


def positional_columns(arity):
    """Column names a relation built from an arity-*n* atom uses."""
    return tuple(_col(i) for i in range(arity))


def atoms_to_database(atoms):
    """Build a database from ground atoms (args must all be constants)."""
    from repro.objects.database import Database, Relation
    from repro.objects.values import Record, CSet

    facts = {}
    for atom in atoms:
        row = []
        for term in atom.args:
            if is_var(term):
                raise ReproError("atoms_to_database: non-ground atom %r" % (atom,))
            row.append(term.value)
        facts.setdefault(atom.pred, set()).add(tuple(row))
    relations = []
    for pred, rows in facts.items():
        records = [Record({_col(i): v for i, v in enumerate(r)}) for r in rows]
        relations.append(Relation(pred, CSet(records)))
    return Database(relations)
