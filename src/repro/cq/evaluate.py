"""Evaluation of conjunctive queries over flat databases.

Atoms address relation columns positionally, in the relation's sorted
attribute order (canonical databases built by :func:`repro.cq.query.freeze`
use zero-padded positional names so the orders agree).

The evaluator is a backtracking join with a most-constrained-atom-first
ordering: at each step it picks the unprocessed atom with the fewest
matching rows under the current partial binding.
"""

from repro.errors import EvaluationError, SchemaError
from repro.cq.terms import Const, is_var

__all__ = ["evaluate", "evaluate_bindings", "relation_tuples"]


def relation_tuples(database, pred, arity):
    """The rows of relation *pred* as positional tuples.

    A relation absent from the database is treated as empty (standard for
    canonical databases, which only mention predicates in the body).
    """
    if pred not in database:
        return ()
    relation = database[pred]
    attrs = relation.attributes()
    if len(attrs) != arity:
        raise SchemaError(
            "atom %s/%d does not match relation with attributes %r"
            % (pred, arity, attrs)
        )
    return tuple(tuple(row[a] for a in attrs) for row in relation)


def evaluate_bindings(query, database):
    """Yield all satisfying assignments of the query body.

    Each binding is a dict ``{Var: atomic value}`` covering every variable
    of the body.  Duplicate bindings are not produced (each full
    assignment is distinct by construction).
    """
    tables = {}
    for atom in query.body:
        key = (atom.pred, atom.arity)
        if key not in tables:
            tables[key] = relation_tuples(database, atom.pred, atom.arity)
    yield from _search(list(query.body), tables, {})


def _matches(atom, rows, binding):
    """Rows of *rows* consistent with *binding* on *atom*'s arguments."""
    out = []
    for row in rows:
        extension = _match_row(atom, row, binding)
        if extension is not None:
            out.append(extension)
    return out


def _match_row(atom, row, binding):
    extension = {}
    for term, value in zip(atom.args, row):
        if isinstance(term, Const):
            if term.value != value or type(term.value) != type(value):
                return None
        else:
            bound = binding.get(term, extension.get(term, _UNBOUND))
            if bound is _UNBOUND:
                extension[term] = value
            elif bound != value:
                return None
    return extension


class _Unbound:
    pass


_UNBOUND = _Unbound()


def _search(remaining, tables, binding):
    if not remaining:
        yield dict(binding)
        return
    # Most-constrained-first: count candidate rows per unprocessed atom.
    best_index = None
    best_rows = None
    for index, atom in enumerate(remaining):
        rows = _matches(atom, tables[(atom.pred, atom.arity)], binding)
        if best_rows is None or len(rows) < len(best_rows):
            best_index, best_rows = index, rows
            if not rows:
                return
    atom = remaining[best_index]
    rest = remaining[:best_index] + remaining[best_index + 1:]
    for extension in best_rows:
        binding.update(extension)
        yield from _search(rest, tables, binding)
        for var in extension:
            del binding[var]


def evaluate(query, database):
    """Evaluate the query; return the set of head tuples (a frozenset)."""
    answers = set()
    for binding in evaluate_bindings(query, database):
        row = []
        for term in query.head:
            if is_var(term):
                if term not in binding:
                    raise EvaluationError("unbound head variable %r" % (term,))
                row.append(binding[term])
            else:
                row.append(term.value)
        answers.add(tuple(row))
    return frozenset(answers)
