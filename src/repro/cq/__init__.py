"""Classical conjunctive queries (the paper's flat-relational substrate).

Provides the standard notation of [41]: queries ``q(X,Y) :- r(X,Z), s(Z,Y)``
over flat relations, with evaluation, homomorphism search, Chandra–Merlin
containment [11], equivalence, and minimization.  The grouping/simulation
machinery of the paper (``repro.grouping``) builds on these primitives.
"""

from repro.cq.terms import Var, Const, Atom, is_var, is_const, substitute_term
from repro.cq.query import ConjunctiveQuery, freeze
from repro.cq.parser import parse_query, parse_atom
from repro.cq.evaluate import evaluate, evaluate_bindings
from repro.cq.homomorphism import (
    find_homomorphism,
    find_all_homomorphisms,
    count_homomorphisms,
)
from repro.cq.containment import contains, equivalent, minimize, containment_mapping
from repro.cq.unions import UnionQuery, union_contains, union_equivalent

__all__ = [
    "Var",
    "Const",
    "Atom",
    "is_var",
    "is_const",
    "substitute_term",
    "ConjunctiveQuery",
    "freeze",
    "parse_query",
    "parse_atom",
    "evaluate",
    "evaluate_bindings",
    "find_homomorphism",
    "find_all_homomorphisms",
    "count_homomorphisms",
    "contains",
    "equivalent",
    "minimize",
    "containment_mapping",
    "UnionQuery",
    "union_contains",
    "union_equivalent",
]
