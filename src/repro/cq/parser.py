"""A small datalog-style parser for conjunctive queries.

Syntax::

    q(X, Y) :- r(X, Z), s(Z, Y), t("blue", X), u(3, X)

* identifiers starting with an upper-case letter or ``_`` are variables;
* numbers (``3``, ``-2``, ``2.5``) and quoted strings are constants;
* identifiers starting with a lower-case letter in argument position are
  string constants (datalog convention);
* the head may be empty (``q() :- ...``) for boolean queries.
"""

import re

from repro.errors import ParseError
from repro.cq.terms import Var, Const, Atom
from repro.cq.query import ConjunctiveQuery

__all__ = ["parse_query", "parse_atom"]

_TOKEN_RE = re.compile(
    r"""
    \s*(
        :-                          |  # rule separator
        [(),]                       |  # punctuation
        -?\d+\.\d+                  |  # float
        -?\d+                       |  # int
        "(?:[^"\\]|\\.)*"          |  # double-quoted string
        '(?:[^'\\]|\\.)*'          |  # single-quoted string
        [A-Za-z_][A-Za-z_0-9.]*        # identifier
    )
    """,
    re.VERBOSE,
)


def _tokenize(text):
    pos = 0
    tokens = []
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError("cannot tokenize %r (at %r)" % (text, remainder[:20]))
        token = match.group(1)
        tokens.append(token)
        pos = match.end()
    return tokens


class _Stream:
    def __init__(self, tokens, source):
        self.tokens = tokens
        self.source = source
        self.index = 0

    def peek(self):
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self):
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input in %r" % self.source)
        self.index += 1
        return token

    def expect(self, token):
        got = self.next()
        if got != token:
            raise ParseError(
                "expected %r but got %r in %r" % (token, got, self.source)
            )

    def done(self):
        return self.index >= len(self.tokens)


def _parse_term(token):
    if token.startswith(("'", '"')):
        body = token[1:-1]
        return Const(body.replace("\\\"", '"').replace("\\'", "'"))
    if re.fullmatch(r"-?\d+", token):
        return Const(int(token))
    if re.fullmatch(r"-?\d+\.\d+", token):
        return Const(float(token))
    if token[0].isupper() or token[0] == "_":
        return Var(token)
    return Const(token)


def _parse_atom_from(stream):
    pred = stream.next()
    if not re.fullmatch(r"[a-z][A-Za-z_0-9]*", pred):
        raise ParseError("invalid predicate name %r in %r" % (pred, stream.source))
    stream.expect("(")
    args = []
    if stream.peek() == ")":
        stream.next()
        return Atom(pred, args)
    while True:
        args.append(_parse_term(stream.next()))
        token = stream.next()
        if token == ")":
            return Atom(pred, args)
        if token != ",":
            raise ParseError(
                "expected ',' or ')' but got %r in %r" % (token, stream.source)
            )


def parse_atom(text):
    """Parse a single atom, e.g. ``r(X, "blue", 3)``."""
    stream = _Stream(_tokenize(text), text)
    atom = _parse_atom_from(stream)
    if not stream.done():
        raise ParseError("trailing tokens after atom in %r" % text)
    return atom


def parse_query(text):
    """Parse a rule ``q(X) :- r(X, Y), s(Y)`` into a ConjunctiveQuery."""
    stream = _Stream(_tokenize(text), text)
    head_atom = _parse_atom_from(stream)
    body = []
    if not stream.done():
        stream.expect(":-")
        while True:
            body.append(_parse_atom_from(stream))
            if stream.done():
                break
            stream.expect(",")
    return ConjunctiveQuery(head_atom.args, body, name=head_atom.pred)
