"""Terms and atoms for conjunctive queries.

A term is a :class:`Var` or a :class:`Const`; an :class:`Atom` is a
predicate name applied to a tuple of terms.  All are immutable and
hashable.
"""

from repro.errors import ReproError
from repro.objects.values import is_atom as _is_atomic_value
from repro.pickling import PicklableSlots

__all__ = ["Var", "Const", "Atom", "is_var", "is_const", "substitute_term"]


class Var(PicklableSlots):
    """A query variable, identified by name.

    >>> Var("X") == Var("X")
    True
    """

    __slots__ = ("name",)

    def __init__(self, name):
        if not isinstance(name, str) or not name:
            raise ReproError("variable names must be non-empty strings")
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, value):
        raise AttributeError("Var is immutable")

    def __eq__(self, other):
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self):
        return hash(("Var", self.name))

    def __lt__(self, other):
        if not isinstance(other, Var):
            return NotImplemented
        return self.name < other.name

    def __repr__(self):
        return self.name


class Const(PicklableSlots):
    """A constant (an atomic complex-object value).

    >>> Const(3) == Const(3)
    True
    """

    __slots__ = ("value",)

    def __init__(self, value):
        if not _is_atomic_value(value):
            raise ReproError("constants must be atomic values, got %r" % (value,))
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, value):
        raise AttributeError("Const is immutable")

    def __eq__(self, other):
        return (
            isinstance(other, Const)
            and type(other.value) == type(self.value)
            and other.value == self.value
        )

    def __hash__(self):
        return hash(("Const", type(self.value).__name__, self.value))

    def __repr__(self):
        return repr(self.value)


def is_var(term):
    """True when *term* is a :class:`Var`."""
    return isinstance(term, Var)


def is_const(term):
    """True when *term* is a :class:`Const`."""
    return isinstance(term, Const)


class Atom(PicklableSlots):
    """A relational atom ``pred(t1, ..., tn)``.

    >>> Atom("r", (Var("X"), Const(1))).pred
    'r'
    """

    __slots__ = ("pred", "args", "_hash")

    def __init__(self, pred, args):
        if not isinstance(pred, str) or not pred:
            raise ReproError("predicate names must be non-empty strings")
        args = tuple(args)
        for term in args:
            if not isinstance(term, (Var, Const)):
                raise ReproError("atom arguments must be terms, got %r" % (term,))
        object.__setattr__(self, "pred", pred)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "_hash", hash((pred, args)))

    def __setattr__(self, name, value):
        raise AttributeError("Atom is immutable")

    @property
    def arity(self):
        return len(self.args)

    def variables(self):
        """The variables occurring in the atom, in argument order."""
        return tuple(t for t in self.args if isinstance(t, Var))

    def substitute(self, mapping):
        """Apply a {Var: term} mapping to the arguments."""
        return Atom(self.pred, tuple(substitute_term(t, mapping) for t in self.args))

    def __eq__(self, other):
        if not isinstance(other, Atom):
            return NotImplemented
        return self.pred == other.pred and self.args == other.args

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return "%s(%s)" % (self.pred, ", ".join(repr(a) for a in self.args))


def substitute_term(term, mapping):
    """Apply a {Var: term} mapping to one term (constants pass through)."""
    if isinstance(term, Var):
        return mapping.get(term, term)
    return term
