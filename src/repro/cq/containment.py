"""Containment, equivalence, and minimization of conjunctive queries.

The Chandra–Merlin theorem [11]: ``Q1 ⊑ Q2`` iff there is a containment
mapping from ``Q2`` to ``Q1`` — a variable mapping sending every body atom
of ``Q2`` to a body atom of ``Q1`` and the head of ``Q2`` to the head of
``Q1``.  Equivalently: the frozen head of ``Q1`` is an answer of ``Q2``
over the canonical database of ``Q1``.

These are the baseline procedures (experiment E9); the paper's simulation
conditions generalize them.
"""

from repro.errors import IncomparableQueriesError
from repro.cq.terms import is_var
from repro.cq.query import ConjunctiveQuery, frozen_constant
from repro.cq.homomorphism import find_homomorphism, ground_atoms_of_query

__all__ = ["containment_mapping", "contains", "equivalent", "minimize"]


def containment_mapping(sub, sup):
    """Find a containment mapping from *sup* to *sub*, or None.

    A mapping φ with φ(head of sup) = head of sub and φ(body of sup) ⊆
    body of sub witnesses ``sub ⊑ sup``.  Returned as ``{Var: value}``
    over *sup*'s variables, where values are frozen constants of *sub*'s
    variables or ordinary constants.
    """
    if len(sub.head) != len(sup.head):
        raise IncomparableQueriesError(
            "queries have different head arities: %d vs %d"
            % (len(sub.head), len(sup.head))
        )
    target = ground_atoms_of_query(sub)
    fixed = {}
    for sup_term, sub_term in zip(sup.head, sub.head):
        sub_value = (
            frozen_constant(sub_term) if is_var(sub_term) else sub_term.value
        )
        if is_var(sup_term):
            if fixed.get(sup_term, sub_value) != sub_value:
                return None
            fixed[sup_term] = sub_value
        else:
            if sup_term.value != sub_value:
                return None
    return find_homomorphism(sup.body, target, fixed=fixed)


def contains(sup, sub):
    """``contains(Q2, Q1)`` is True iff ``Q1 ⊑ Q2`` (Q2 contains Q1).

    >>> from repro.cq.parser import parse_query
    >>> big = parse_query("q(X) :- r(X, Y)")
    >>> small = parse_query("q(X) :- r(X, Y), s(Y)")
    >>> contains(big, small)
    True
    >>> contains(small, big)
    False
    """
    return containment_mapping(sub, sup) is not None


def equivalent(q1, q2):
    """True iff the queries return the same answers on every database."""
    return contains(q1, q2) and contains(q2, q1)


def minimize(query):
    """Return an equivalent query with a minimal number of body atoms.

    Classical core computation: repeatedly try to drop a body atom while
    preserving equivalence; the result is unique up to isomorphism.
    """
    body = list(query.body)
    changed = True
    while changed:
        changed = False
        for index in range(len(body)):
            candidate_body = body[:index] + body[index + 1:]
            if not _safe(query.head, candidate_body):
                continue
            candidate = ConjunctiveQuery(query.head, candidate_body, query.name)
            # Dropping an atom can only grow the answer set, so only the
            # "candidate ⊑ query" direction needs checking.
            if contains(query, candidate):
                body = candidate_body
                changed = True
                break
    return ConjunctiveQuery(query.head, body, query.name)


def _safe(head, body):
    body_vars = {v for atom in body for v in atom.variables()}
    return all((not is_var(t)) or t in body_vars for t in head)
