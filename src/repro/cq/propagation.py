"""The constraint-propagating homomorphism search core.

Every decision procedure in this library — Chandra–Merlin containment,
the Theorem 4.1 simulation certificate, strong simulation, and the
weak-equivalence truncation sweep — bottoms out in the homomorphism
search of :mod:`repro.cq.homomorphism`, the NP-complete kernel the paper
leans on for its hardness results (Theorem 5.1).  This module is the
engine behind the default ``ordering="propagating"`` strategy; the
legacy strategies (``"adaptive"``, ``"static"``) live in
:mod:`repro.cq.homomorphism` as ablation baselines.

The propagating search replaces the legacy per-node rescans with
classic CSP machinery:

* **Compiled targets** — :func:`compile_target` turns ground target
  atoms into a :class:`CompiledTarget`: deduplicated rows in insertion
  order (so enumeration is deterministic, independent of hash seeds)
  plus a per-``(pred, position, value)`` inverted index, so candidate
  rows are fetched by lookup instead of scanning.  Compiled targets are
  reusable and cacheable — every search entry point accepts one in
  place of raw atoms.
* **Variable domains + AC-3 preprocessing** — every unbound variable
  starts with the intersection, over its occurrences, of the values
  seen at that column (further cut by the caller's ``allowed`` sets);
  an optional arc-consistency pass (in the style of AC-3, here
  generalized-arc-consistency over whole atoms) narrows domains to
  values supported by some candidate row of every atom.  An empty
  domain refutes the instance with **no search tree at all**.
* **Forward checking** — each assignment prunes the candidate-row lists
  of the still-unsolved atoms that share a just-bound variable, via the
  inverted index; a pruned-to-empty list (a *domain wipeout*) backtracks
  immediately instead of rediscovering the conflict atoms later.
* **Component decomposition** — after ``fixed``/constant substitution
  the source atoms split into connected components (atoms linked by
  shared unbound variables); each component is solved independently and
  :func:`repro.cq.homomorphism.find_all_homomorphisms` enumerates the
  cross product lazily.  This is exactly Chandra–Merlin's argument that
  a join of independent subqueries is decided componentwise —
  multiplicative search cost becomes additive.

Search effort is reported through :class:`SearchCounters` (installed
process-wide with :func:`install_search_counters`): ``nodes`` and
``backtracks`` as before, plus ``domain_wipeouts`` (refutations by
propagation) and ``components_solved`` (independent component
searches).
"""

from contextlib import contextmanager
from dataclasses import dataclass, fields

from repro.errors import ReproError
from repro.cq.terms import Var, Const

__all__ = [
    "CompiledTarget",
    "compile_target",
    "SearchCounters",
    "install_search_counters",
    "propagating_search",
    "default_ordering",
    "use_ordering",
    "ORDERINGS",
    "component_cost_estimate",
    "component_strategy",
    "COST_SIMPLE_THRESHOLD",
]

#: The recognized atom-selection strategies, in default-first order.
#: ``"cost"`` is the cost-model-driven hybrid: it decides *per connected
#: component* (from the compiled candidate counts, the same quantities
#: the static :class:`repro.analysis.interp.CostCertificate` bounds)
#: whether the CSP machinery is worth its overhead, running tiny
#: components with plain backtracking and large ones with the full
#: propagating engine.
ORDERINGS = ("propagating", "adaptive", "static", "cost")

_DEFAULT_ORDERING = "propagating"


def default_ordering():
    """The process-wide default ordering strategy (``"propagating"``)."""
    return _DEFAULT_ORDERING


@contextmanager
def use_ordering(ordering):
    """Temporarily switch the process-wide default ordering strategy.

    Used by the ablation benchmarks to run whole decision procedures
    (which do not thread ``ordering=`` through every layer) under a
    legacy strategy::

        with use_ordering("adaptive"):
            is_simulated(sub, sup)
    """
    global _DEFAULT_ORDERING
    if ordering not in ORDERINGS:
        raise ReproError("unknown ordering %r" % (ordering,))
    previous = _DEFAULT_ORDERING
    _DEFAULT_ORDERING = ordering
    try:
        yield
    finally:
        _DEFAULT_ORDERING = previous


@dataclass(slots=True)
class SearchCounters:
    """Tallies of backtracking-search effort.

    ``nodes`` counts candidate-row extensions applied (search-tree nodes
    visited); ``backtracks`` counts extensions undone;
    ``domain_wipeouts`` counts refutations by constraint propagation (an
    empty variable domain before search, or a candidate list pruned to
    empty by forward checking); ``components_solved`` counts independent
    connected-component searches.  Install an instance with
    :func:`install_search_counters` to have every search in the process
    report into it; the :class:`repro.engine.core.ContainmentEngine`
    does this around each decision.

    A dataclass on purpose: aggregation code (``EngineStats.merge`` /
    ``as_dict``, the benchmark harness) iterates
    :func:`dataclasses.fields` instead of naming counters, so a counter
    added here can never be silently dropped by worker-stat merging.
    """

    nodes: int = 0
    backtracks: int = 0
    domain_wipeouts: int = 0
    components_solved: int = 0

    def reset(self):
        """Zero every counter field."""
        for field in fields(self):
            setattr(self, field.name, 0)

    def merge(self, other):
        """Add every counter of *other* into this object; return self."""
        for field in fields(self):
            setattr(
                self, field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )
        return self

    def as_dict(self):
        """Every counter as ``{field name: value}``."""
        return {
            field.name: getattr(self, field.name) for field in fields(self)
        }


_counters = None


def install_search_counters(counters):
    """Set the active :class:`SearchCounters` sink (or None to disable).

    Returns the previously installed sink so callers can restore it.
    """
    global _counters
    previous = _counters
    _counters = counters
    return previous


def active_counters():
    """The currently installed :class:`SearchCounters` sink (or None)."""
    return _counters


class _Unbound:
    pass


_UNBOUND = _Unbound()
_EMPTY = frozenset()


# -- the per-component cost model -------------------------------------------

#: Estimated-work threshold below which a component is solved by plain
#: backtracking instead of forward checking.  Forward checking touches
#: the inverted index once per (extension, remaining atom) pair; when the
#: whole component's optimistic search tree is this small, the pruning
#: bookkeeping costs more than the nodes it could save.
COST_SIMPLE_THRESHOLD = 64


def component_cost_estimate(candidate_counts):
    """The optimistic work estimate of one component: the sum of prefix
    products of its candidate-row counts, smallest lists first.

    This models a best-case most-constrained-first search tree (level k
    holds at most the product of the k smallest candidate lists).  It is
    an *estimate* for strategy selection, not a sound bound — the sound
    per-component node bound (``prod(1 + c_i) - 1``, every consistent
    partial assignment counted once) lives in
    :func:`repro.analysis.interp.component_node_bound` and is what the
    :class:`~repro.analysis.interp.CostCertificate` certifies.
    """
    total = 0
    product = 1
    for count in sorted(candidate_counts):
        product *= count
        total += product
    return total


def component_strategy(candidate_counts):
    """``"simple"`` or ``"propagate"`` for one component's candidates.

    The decision rule behind ``ordering="cost"`` — shared with the
    static analyzer, whose :class:`~repro.analysis.interp.CostCertificate`
    records the same per-component recommendation, so the certificate
    and the runtime search can never disagree about the plan.
    """
    if component_cost_estimate(candidate_counts) <= COST_SIMPLE_THRESHOLD:
        return "simple"
    return "propagate"


class CompiledTarget:
    """Ground target atoms compiled for constraint-propagating search.

    Attributes:
        atoms: the original ground atoms, as given.
        rows: ``{(pred, arity): tuple of value rows}`` — deduplicated in
            first-occurrence order, so every search strategy enumerates
            rows (and therefore homomorphisms) in a deterministic,
            hash-seed-independent order.
        index: ``{(pred, arity): per-position ({value: frozenset of row
            positions})}`` — the inverted index forward checking prunes
            with.
        domains: ``{(pred, arity): per-position frozenset of values}`` —
            the column value sets that seed variable domains.

    Instances are immutable by convention and safe to cache and share
    across searches (the :class:`repro.engine.core.ContainmentEngine`
    does, keyed on the originating query and witness count).
    """

    __slots__ = ("atoms", "rows", "index", "domains")

    def __init__(self, atoms, rows, index, domains):
        self.atoms = atoms
        self.rows = rows
        self.index = index
        self.domains = domains

    def __repr__(self):
        return "CompiledTarget(preds=%d, rows=%d)" % (
            len(self.rows),
            sum(len(r) for r in self.rows.values()),
        )


def compile_target(target_atoms):
    """Compile ground atoms into a :class:`CompiledTarget`.

    Idempotent: a :class:`CompiledTarget` passes through unchanged, so
    callers may hand either form to the search entry points.  Raises
    :class:`ReproError` when a target atom is not ground.
    """
    if isinstance(target_atoms, CompiledTarget):
        return target_atoms
    atoms = tuple(target_atoms)
    deduped = {}
    for atom in atoms:
        for term in atom.args:
            if isinstance(term, Var):
                raise ReproError(
                    "target atoms must be ground; %r is not" % (atom,)
                )
        key = (atom.pred, atom.arity)
        deduped.setdefault(key, {})[
            tuple(term.value for term in atom.args)
        ] = None
    rows = {key: tuple(seen) for key, seen in deduped.items()}
    index = {}
    domains = {}
    for key, key_rows in rows.items():
        per_position = [{} for __ in range(key[1])]
        for row_id, row in enumerate(key_rows):
            for position, value in enumerate(row):
                per_position[position].setdefault(value, set()).add(row_id)
        index[key] = tuple(
            {value: frozenset(ids) for value, ids in column.items()}
            for column in per_position
        )
        domains[key] = tuple(frozenset(column) for column in per_position)
    return CompiledTarget(atoms, rows, index, domains)


def _row_feasible(atom, row, binding, domains):
    """Can *row* extend *binding* with every new value inside its domain?"""
    local = {}
    for term, value in zip(atom.args, row):
        if isinstance(term, Const):
            if term.value != value:
                return False
            continue
        bound = binding.get(term, local.get(term, _UNBOUND))
        if bound is _UNBOUND:
            if value not in domains[term]:
                return False
            local[term] = value
        elif bound != value:
            return False
    return True


def _match_row(atom, row, binding):
    """The ``{Var: value}`` extension mapping *atom* onto *row*, or None.

    Domain membership is already guaranteed by candidate filtering; this
    re-checks only binding consistency (shared and repeated variables).
    """
    extension = {}
    for term, value in zip(atom.args, row):
        if isinstance(term, Const):
            if term.value != value:
                return None
            continue
        bound = binding.get(term, extension.get(term, _UNBOUND))
        if bound is _UNBOUND:
            extension[term] = value
        elif bound != value:
            return None
    return extension


def _initial_domains(source_atoms, keys, compiled, binding, allowed):
    """Seed per-variable domains from column values and ``allowed``."""
    domains = {}
    for atom, key in zip(source_atoms, keys):
        columns = compiled.domains.get(key)
        for position, term in enumerate(atom.args):
            if not isinstance(term, Var) or term in binding:
                continue
            values = columns[position] if columns is not None else _EMPTY
            if term in domains:
                domains[term] = domains[term] & values
            else:
                restriction = allowed.get(term)
                domains[term] = (
                    frozenset(values)
                    if restriction is None
                    else values & frozenset(restriction)
                )
    return domains


def _ac3(source_atoms, keys, compiled, candidates, domains, binding, counters):
    """Generalized arc consistency: narrow domains to supported values.

    Iterates atom-wise revisions to a fixpoint.  Returns False on a
    domain wipeout (the instance has no homomorphism); *candidates* and
    *domains* are narrowed in place.
    """
    changed = True
    while changed:
        changed = False
        for position_in_source, atom in enumerate(source_atoms):
            rows = compiled.rows.get(keys[position_in_source], ())
            kept = [
                row_id
                for row_id in candidates[position_in_source]
                if _row_feasible(atom, rows[row_id], binding, domains)
            ]
            if not kept:
                if counters is not None:
                    counters.domain_wipeouts += 1
                return False
            if len(kept) != len(candidates[position_in_source]):
                candidates[position_in_source] = kept
            for position, term in enumerate(atom.args):
                if not isinstance(term, Var) or term in binding:
                    continue
                supported = {rows[row_id][position] for row_id in kept}
                narrowed = domains[term] & supported
                if len(narrowed) < len(domains[term]):
                    domains[term] = narrowed
                    changed = True
                    if not narrowed:
                        if counters is not None:
                            counters.domain_wipeouts += 1
                        return False
    return True


def _components(source_atoms, binding):
    """Connected components of atoms linked by shared unbound variables.

    Returns a list of sorted atom-position lists; atoms with no unbound
    variables form singleton components.  Deterministic: components are
    ordered by their smallest member.
    """
    unbound_vars = []
    var_to_atoms = {}
    for position, atom in enumerate(source_atoms):
        mine = {v for v in atom.variables() if v not in binding}
        unbound_vars.append(mine)
        for var in mine:
            var_to_atoms.setdefault(var, []).append(position)
    seen = set()
    components = []
    for start in range(len(source_atoms)):
        if start in seen:
            continue
        seen.add(start)
        stack = [start]
        members = []
        while stack:
            position = stack.pop()
            members.append(position)
            for var in unbound_vars[position]:
                for neighbor in var_to_atoms[var]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
        members.sort()
        components.append(members)
    return components


def _forward_check(extension, rest, source_atoms, keys, compiled,
                   candidates, trail):
    """Prune candidate lists of *rest* atoms against the new *extension*.

    Pruned lists are pushed onto *trail* as ``(position, old list)`` for
    restoration on backtrack.  Returns False on a wipeout (some atom
    lost every candidate row).
    """
    for position_in_source in rest:
        atom = source_atoms[position_in_source]
        inverted = compiled.index.get(keys[position_in_source])
        required = []
        for position, term in enumerate(atom.args):
            if isinstance(term, Var) and term in extension:
                if inverted is None:
                    return False
                required.append(
                    inverted[position].get(extension[term], _EMPTY)
                )
        if not required:
            continue
        old = candidates[position_in_source]
        narrowed = [
            row_id
            for row_id in old
            if all(row_id in rows for rows in required)
        ]
        if len(narrowed) != len(old):
            trail.append((position_in_source, old))
            candidates[position_in_source] = narrowed
            if not narrowed:
                return False
    return True


def _solve_component(order, source_atoms, keys, compiled, candidates,
                     binding, counters):
    """Yield every assignment of one component's unbound variables.

    *candidates* and *binding* are private to this component (the caller
    copies them), so paused generators of sibling components never
    interfere.
    """

    def descend(remaining, assigned):
        if not remaining:
            yield dict(assigned)
            return
        best = min(remaining, key=lambda p: (len(candidates[p]), p))
        if not candidates[best]:
            return
        rest = [p for p in remaining if p != best]
        atom = source_atoms[best]
        rows = compiled.rows[keys[best]]
        for row_id in candidates[best]:
            extension = _match_row(atom, rows[row_id], binding)
            if extension is None:
                continue
            if counters is not None:
                counters.nodes += 1
            binding.update(extension)
            assigned.update(extension)
            trail = []
            consistent = True
            if extension and rest:
                consistent = _forward_check(
                    extension, rest, source_atoms, keys, compiled,
                    candidates, trail,
                )
            if consistent:
                yield from descend(rest, assigned)
            elif counters is not None:
                counters.domain_wipeouts += 1
            for pruned_position, old in trail:
                candidates[pruned_position] = old
            for var in extension:
                del binding[var]
                del assigned[var]
            if counters is not None:
                counters.backtracks += 1

    yield from descend(list(order), {})


def _solve_component_simple(order, source_atoms, keys, compiled, candidates,
                            binding, counters):
    """The ``"cost"`` strategy's solver for tiny components.

    Identical search tree shape to :func:`_solve_component` (same
    most-constrained-first atom choice over the same candidate lists,
    rows in insertion order, so the two solvers enumerate the same
    solutions in the same order) but with no forward checking: below
    :data:`COST_SIMPLE_THRESHOLD` the pruning bookkeeping dominates the
    work it saves.
    """

    def descend(remaining, assigned):
        if not remaining:
            yield dict(assigned)
            return
        best = min(remaining, key=lambda p: (len(candidates[p]), p))
        if not candidates[best]:
            return
        rest = [p for p in remaining if p != best]
        atom = source_atoms[best]
        rows = compiled.rows[keys[best]]
        for row_id in candidates[best]:
            extension = _match_row(atom, rows[row_id], binding)
            if extension is None:
                continue
            if counters is not None:
                counters.nodes += 1
            binding.update(extension)
            assigned.update(extension)
            yield from descend(rest, assigned)
            for var in extension:
                del binding[var]
                del assigned[var]
            if counters is not None:
                counters.backtracks += 1

    yield from descend(list(order), {})


class _LazySolutions:
    """A generator with positional access and caching.

    Lets the cross-product enumeration revisit a component's solutions
    without re-running its search, while still computing each solution
    only on demand.
    """

    __slots__ = ("_generator", "_items", "_exhausted")

    def __init__(self, generator):
        self._generator = generator
        self._items = []
        self._exhausted = False

    def get(self, position):
        """The solution at *position*, or None past the end."""
        while not self._exhausted and len(self._items) <= position:
            try:
                self._items.append(next(self._generator))
            except StopIteration:
                self._exhausted = True
        if position < len(self._items):
            return self._items[position]
        return None


def _cross(lazies, binding):
    """Lazily enumerate the cross product of component solutions."""

    def descend(level, accumulated):
        if level == len(lazies):
            yield dict(accumulated)
            return
        position = 0
        while True:
            solution = lazies[level].get(position)
            if solution is None:
                return
            accumulated.update(solution)
            yield from descend(level + 1, accumulated)
            for var in solution:
                del accumulated[var]
            position += 1

    yield from descend(0, dict(binding))


def propagating_search(source_atoms, compiled, binding, allowed, ac3=True,
                       cost=False):
    """Yield every homomorphism under the propagating strategy.

    :param source_atoms: tuple of source atoms.
    :param compiled: a :class:`CompiledTarget`.
    :param binding: the initial ``{Var: value}`` assignment (the
        caller's ``fixed``); echoed in every yielded mapping.
    :param allowed: ``{Var: allowed values}`` restrictions.
    :param ac3: run the arc-consistency preprocessing fixpoint before
        search (on by default; turn off to measure its contribution).
    :param cost: the ``ordering="cost"`` hybrid — choose a solver per
        connected component via :func:`component_strategy`: plain
        backtracking for components whose estimated work is below
        :data:`COST_SIMPLE_THRESHOLD`, the full propagating machinery
        (and the AC-3 pass, run only when some component needs it)
        otherwise.  Enumerates the same homomorphism set as every other
        strategy.
    """
    counters = _counters
    keys = tuple((atom.pred, atom.arity) for atom in source_atoms)
    domains = _initial_domains(source_atoms, keys, compiled, binding, allowed)
    if any(not domain for domain in domains.values()):
        if counters is not None:
            counters.domain_wipeouts += 1
        return
    candidates = []
    for atom, key in zip(source_atoms, keys):
        rows = compiled.rows.get(key, ())
        feasible = [
            row_id
            for row_id, row in enumerate(rows)
            if _row_feasible(atom, row, binding, domains)
        ]
        if not feasible:
            if counters is not None:
                counters.domain_wipeouts += 1
            return
        candidates.append(feasible)
    components = _components(source_atoms, binding)
    if cost:
        plans = [
            component_strategy(
                [len(candidates[position]) for position in order]
            )
            for order in components
        ]
        run_ac3 = ac3 and any(plan == "propagate" for plan in plans)
    else:
        plans = ["propagate"] * len(components)
        run_ac3 = ac3
    if run_ac3 and not _ac3(
        source_atoms, keys, compiled, candidates, domains, binding, counters
    ):
        return
    lazies = []
    for order, plan in zip(components, plans):
        if counters is not None:
            counters.components_solved += 1
        solve = (
            _solve_component_simple if plan == "simple" else _solve_component
        )
        generator = solve(
            order,
            source_atoms,
            keys,
            compiled,
            {position: list(candidates[position]) for position in order},
            dict(binding),
            counters,
        )
        lazy = _LazySolutions(generator)
        if lazy.get(0) is None:
            return
        lazies.append(lazy)
    yield from _cross(lazies, binding)
