"""The constraint-propagating homomorphism search core.

Every decision procedure in this library — Chandra–Merlin containment,
the Theorem 4.1 simulation certificate, strong simulation, and the
weak-equivalence truncation sweep — bottoms out in the homomorphism
search of :mod:`repro.cq.homomorphism`, the NP-complete kernel the paper
leans on for its hardness results (Theorem 5.1).  This module is the
engine behind the default ``ordering="bitset"`` strategy and its
list-based twin ``ordering="propagating"``; the legacy strategies
(``"adaptive"``, ``"static"``) live in :mod:`repro.cq.homomorphism` as
ablation baselines.

The propagating search replaces the legacy per-node rescans with
classic CSP machinery:

* **Compiled targets** — :func:`compile_target` turns ground target
  atoms into a :class:`CompiledTarget`: deduplicated rows in insertion
  order (so enumeration is deterministic, independent of hash seeds),
  a per-``(pred, position, value)`` inverted index, and the same index
  as **integer bitmasks** over row ids (bit ``i`` set ⇔ row ``i``
  carries the value), so candidate rows are fetched by lookup instead
  of scanning.  Compiled targets are reusable and cacheable — every
  search entry point accepts one in place of raw atoms, and the
  engine's target cache amortizes mask construction along with the
  rest of the compile.
* **Variable domains + AC-3 preprocessing** — every unbound variable
  starts with the intersection, over its occurrences, of the values
  seen at that column (further cut by the caller's ``allowed`` sets);
  an optional arc-consistency pass (in the style of AC-3, here
  generalized-arc-consistency over whole atoms) narrows domains to
  values supported by some candidate row of every atom.  An empty
  domain refutes the instance with **no search tree at all**.
* **Forward checking** — each assignment prunes the candidate sets
  of the still-unsolved atoms that share a just-bound variable, via the
  inverted index; a pruned-to-empty set (a *domain wipeout*) backtracks
  immediately instead of rediscovering the conflict atoms later.
* **Component decomposition** — after ``fixed``/constant substitution
  the source atoms split into connected components (atoms linked by
  shared unbound variables); each component is solved independently and
  :func:`repro.cq.homomorphism.find_all_homomorphisms` enumerates the
  cross product lazily.  This is exactly Chandra–Merlin's argument that
  a join of independent subqueries is decided componentwise —
  multiplicative search cost becomes additive.

The **bitset kernel** (``ordering="bitset"``, the default) runs the
same search over a vectorized representation: candidate sets are
arbitrary-precision Python ints (intersection is ``&``, emptiness is
``== 0``, cardinality is a cached ``.bit_count()``), trail entries are
``(position, old mask, old count)`` tuples, and each source atom gets a
:class:`_AtomPlan` with a **generated matcher closure** that fuses its
constant-position checks and repeated-variable equalities into
straight-line code — no per-row ``isinstance``/``zip`` interpretation.
Row enumeration walks set bits in ascending row-id order, which is
exactly insertion order, so the bitset kernel enumerates the identical
homomorphism sequence as ``ordering="propagating"`` and visits the
identical search tree (the differential suite in
``tests/test_bitset_kernel.py`` pins this).  ``ordering="cost"``
chooses per component, from :func:`component_cost_estimate`, between
plain mask backtracking (``"simple"``) and the full bitset machinery
(``"bitset"``).

Search effort is reported through :class:`SearchCounters` (installed
process-wide with :func:`install_search_counters`): ``nodes`` and
``backtracks`` as before, ``domain_wipeouts`` (refutations by
propagation), ``components_solved`` (independent component searches),
``mask_intersections`` (bitmask ``&`` operations on the bitset hot
path), and ``kernel_selected`` (components solved by the bitset
forward-checking kernel).
"""

from contextlib import contextmanager
from dataclasses import dataclass, fields

from repro.errors import ReproError
from repro.cq.terms import Var, Const

__all__ = [
    "CompiledTarget",
    "compile_target",
    "SearchCounters",
    "install_search_counters",
    "propagating_search",
    "default_ordering",
    "use_ordering",
    "ORDERINGS",
    "component_cost_estimate",
    "component_strategy",
    "COST_SIMPLE_THRESHOLD",
]

#: The recognized atom-selection strategies, in default-first order.
#: ``"bitset"`` (the default) and ``"propagating"`` run the same
#: constraint-propagating search over bitmask and list candidate sets
#: respectively — identical search tree, identical enumeration order.
#: ``"cost"`` is the cost-model-driven hybrid: it decides *per connected
#: component* (from the compiled candidate counts, the same quantities
#: the static :class:`repro.analysis.interp.CostCertificate` bounds)
#: whether the CSP machinery is worth its overhead, running tiny
#: components with plain backtracking and large ones with the full
#: bitset engine.
ORDERINGS = ("bitset", "propagating", "adaptive", "static", "cost")

_DEFAULT_ORDERING = "bitset"


def default_ordering():
    """The process-wide default ordering strategy (``"bitset"``)."""
    return _DEFAULT_ORDERING


@contextmanager
def use_ordering(ordering):
    """Temporarily switch the process-wide default ordering strategy.

    Used by the ablation benchmarks to run whole decision procedures
    (which do not thread ``ordering=`` through every layer) under a
    legacy strategy::

        with use_ordering("adaptive"):
            is_simulated(sub, sup)
    """
    global _DEFAULT_ORDERING
    if ordering not in ORDERINGS:
        raise ReproError("unknown ordering %r" % (ordering,))
    previous = _DEFAULT_ORDERING
    _DEFAULT_ORDERING = ordering
    try:
        yield
    finally:
        _DEFAULT_ORDERING = previous


@dataclass(slots=True)
class SearchCounters:
    """Tallies of backtracking-search effort.

    ``nodes`` counts candidate-row extensions applied (search-tree nodes
    visited); ``backtracks`` counts extensions undone;
    ``domain_wipeouts`` counts refutations by constraint propagation (an
    empty variable domain before search, or a candidate set pruned to
    empty by forward checking); ``components_solved`` counts independent
    connected-component searches; ``mask_intersections`` counts bitmask
    ``&`` operations performed by the bitset kernel (zero under the
    list-based strategies); ``kernel_selected`` counts components
    solved by the bitset forward-checking kernel (every component under
    ``ordering="bitset"``, the cost model's picks under
    ``ordering="cost"``).  Install an instance with
    :func:`install_search_counters` to have every search in the process
    report into it; the :class:`repro.engine.core.ContainmentEngine`
    does this around each decision.

    A dataclass on purpose: aggregation code (``EngineStats.merge`` /
    ``as_dict``, the benchmark harness) iterates
    :func:`dataclasses.fields` instead of naming counters, so a counter
    added here can never be silently dropped by worker-stat merging.
    """

    nodes: int = 0
    backtracks: int = 0
    domain_wipeouts: int = 0
    components_solved: int = 0
    mask_intersections: int = 0
    kernel_selected: int = 0

    def reset(self):
        """Zero every counter field."""
        for field in fields(self):
            setattr(self, field.name, 0)

    def merge(self, other):
        """Add every counter of *other* into this object; return self."""
        for field in fields(self):
            setattr(
                self, field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )
        return self

    def as_dict(self):
        """Every counter as ``{field name: value}``."""
        return {
            field.name: getattr(self, field.name) for field in fields(self)
        }


_counters = None


def install_search_counters(counters):
    """Set the active :class:`SearchCounters` sink (or None to disable).

    Returns the previously installed sink so callers can restore it.
    """
    global _counters
    previous = _counters
    _counters = counters
    return previous


def active_counters():
    """The currently installed :class:`SearchCounters` sink (or None)."""
    return _counters


class _Unbound:
    pass


_UNBOUND = _Unbound()
_EMPTY = frozenset()


# -- the per-component cost model -------------------------------------------

#: Estimated-work threshold below which a component is solved by plain
#: backtracking instead of forward checking.  Forward checking touches
#: the inverted index once per (extension, remaining atom) pair; when the
#: whole component's optimistic search tree is this small, the pruning
#: bookkeeping costs more than the nodes it could save.
COST_SIMPLE_THRESHOLD = 64


def component_cost_estimate(candidate_counts):
    """The optimistic work estimate of one component: the sum of prefix
    products of its candidate-row counts, smallest lists first.

    This models a best-case most-constrained-first search tree (level k
    holds at most the product of the k smallest candidate lists).  It is
    an *estimate* for strategy selection, not a sound bound — the sound
    per-component node bound (``prod(1 + c_i) - 1``, every consistent
    partial assignment counted once) lives in
    :func:`repro.analysis.interp.component_node_bound` and is what the
    :class:`~repro.analysis.interp.CostCertificate` certifies.
    """
    total = 0
    product = 1
    for count in sorted(candidate_counts):
        product *= count
        total += product
    return total


def component_strategy(candidate_counts):
    """``"simple"`` or ``"bitset"`` for one component's candidates.

    The decision rule behind ``ordering="cost"`` — shared with the
    static analyzer, whose :class:`~repro.analysis.interp.CostCertificate`
    records the same per-component recommendation, so the certificate
    and the runtime search can never disagree about the plan.
    ``"simple"`` is plain mask backtracking (no forward checking);
    ``"bitset"`` is the full forward-checking bitset kernel.
    """
    if component_cost_estimate(candidate_counts) <= COST_SIMPLE_THRESHOLD:
        return "simple"
    return "bitset"


class CompiledTarget:
    """Ground target atoms compiled for constraint-propagating search.

    Attributes:
        atoms: the original ground atoms, as given.
        rows: ``{(pred, arity): tuple of value rows}`` — deduplicated in
            first-occurrence order, so every search strategy enumerates
            rows (and therefore homomorphisms) in a deterministic,
            hash-seed-independent order.
        index: ``{(pred, arity): per-position ({value: frozenset of row
            positions})}`` — the inverted index the list-based
            ``"propagating"`` strategy prunes with.
        domains: ``{(pred, arity): per-position frozenset of values}`` —
            the column value sets that seed variable domains.
        masks: ``{(pred, arity): per-position ({value: int bitmask})}``
            — the inverted index as arbitrary-precision integer
            bitmasks over row ids (bit ``i`` set ⇔ ``rows[key][i]``
            carries the value at that position); the bitset kernel's
            hot-path representation.
        full_masks: ``{(pred, arity): int}`` — the all-rows mask
            ``(1 << len(rows[key])) - 1`` per predicate.

    Instances are immutable by convention and safe to cache and share
    across searches (the :class:`repro.engine.core.ContainmentEngine`
    does, keyed on the originating query and witness count, so cache
    hits amortize mask construction too).
    """

    __slots__ = ("atoms", "rows", "index", "domains", "masks", "full_masks")

    def __init__(self, atoms, rows, index, domains, masks, full_masks):
        self.atoms = atoms
        self.rows = rows
        self.index = index
        self.domains = domains
        self.masks = masks
        self.full_masks = full_masks

    def __repr__(self):
        return "CompiledTarget(preds=%d, rows=%d)" % (
            len(self.rows),
            sum(len(r) for r in self.rows.values()),
        )


def compile_target(target_atoms):
    """Compile ground atoms into a :class:`CompiledTarget`.

    Idempotent: a :class:`CompiledTarget` passes through unchanged, so
    callers may hand either form to the search entry points.  Raises
    :class:`ReproError` when a target atom is not ground.
    """
    if isinstance(target_atoms, CompiledTarget):
        return target_atoms
    atoms = tuple(target_atoms)
    deduped = {}
    for atom in atoms:
        for term in atom.args:
            if isinstance(term, Var):
                raise ReproError(
                    "target atoms must be ground; %r is not" % (atom,)
                )
        key = (atom.pred, atom.arity)
        deduped.setdefault(key, {})[
            tuple(term.value for term in atom.args)
        ] = None
    rows = {key: tuple(seen) for key, seen in deduped.items()}
    index = {}
    domains = {}
    masks = {}
    full_masks = {}
    for key, key_rows in rows.items():
        per_position = [{} for __ in range(key[1])]
        for row_id, row in enumerate(key_rows):
            for position, value in enumerate(row):
                per_position[position].setdefault(value, set()).add(row_id)
        index[key] = tuple(
            {value: frozenset(ids) for value, ids in column.items()}
            for column in per_position
        )
        domains[key] = tuple(frozenset(column) for column in per_position)
        masks[key] = tuple(
            {
                value: _ids_to_mask(ids)
                for value, ids in column.items()
            }
            for column in per_position
        )
        full_masks[key] = (1 << len(key_rows)) - 1
    return CompiledTarget(atoms, rows, index, domains, masks, full_masks)


def _ids_to_mask(row_ids):
    mask = 0
    for row_id in row_ids:
        mask |= 1 << row_id
    return mask


def _row_feasible(atom, row, binding, domains):
    """Can *row* extend *binding* with every new value inside its domain?"""
    local = {}
    for term, value in zip(atom.args, row):
        if isinstance(term, Const):
            if term.value != value:
                return False
            continue
        bound = binding.get(term, local.get(term, _UNBOUND))
        if bound is _UNBOUND:
            if value not in domains[term]:
                return False
            local[term] = value
        elif bound != value:
            return False
    return True


def _match_row(atom, row, binding):
    """The ``{Var: value}`` extension mapping *atom* onto *row*, or None.

    Domain membership is already guaranteed by candidate filtering; this
    re-checks only binding consistency (shared and repeated variables).
    """
    extension = {}
    for term, value in zip(atom.args, row):
        if isinstance(term, Const):
            if term.value != value:
                return None
            continue
        bound = binding.get(term, extension.get(term, _UNBOUND))
        if bound is _UNBOUND:
            extension[term] = value
        elif bound != value:
            return None
    return extension


# -- the bitset kernel -------------------------------------------------------
#
# The same search as the list-based machinery below, over a vectorized
# representation: a candidate set is one arbitrary-precision int (bit i
# set <=> target row i is still viable), and each source atom carries a
# matcher closure generated once — straight-line code for its constant
# positions and repeated variables instead of a per-row zip/isinstance
# interpreter.  Enumeration walks set bits lowest-first, i.e. ascending
# row id, i.e. target insertion order, so the bitset kernel visits the
# identical search tree (same variable choices, same row order, same
# node/backtrack/wipeout counts) as ``ordering="propagating"``.


class _AtomPlan:
    """One source atom compiled for the bitset kernel.

    ``const_positions`` is ``((position, value), ...)`` for the atom's
    constant arguments; ``var_positions`` is ``((var, (positions, ...)),
    ...)`` in first-occurrence order, one entry per distinct variable;
    ``match`` is the generated matcher closure — ``match(row, binding)``
    returns the ``{Var: value}`` extension or None, fusing constant
    checks, repeated-variable equality, and binding consistency.
    """

    __slots__ = ("const_positions", "var_positions", "match")

    def __init__(self, const_positions, var_positions, match):
        self.const_positions = const_positions
        self.var_positions = var_positions
        self.match = match


def _generate_matcher(const_positions, var_positions):
    """Build the specialized matcher closure for one atom shape.

    The function body is generated source — one comparison per constant
    position, one per repeated occurrence, one binding probe per
    distinct variable — compiled once and reused for every row the atom
    is ever matched against.
    """
    env = {"_UNBOUND": _UNBOUND}
    lines = ["def match(row, binding):"]
    for i, (position, value) in enumerate(const_positions):
        env["c%d" % i] = value
        lines.append("    if row[%d] != c%d:" % (position, i))
        lines.append("        return None")
    for i, (var, positions) in enumerate(var_positions):
        env["v%d" % i] = var
        lines.append("    value%d = row[%d]" % (i, positions[0]))
        for position in positions[1:]:
            lines.append("    if row[%d] != value%d:" % (position, i))
            lines.append("        return None")
    lines.append("    extension = {}")
    for i, (var, positions) in enumerate(var_positions):
        lines.append("    bound = binding.get(v%d, _UNBOUND)" % i)
        lines.append("    if bound is _UNBOUND:")
        lines.append("        extension[v%d] = value%d" % (i, i))
        lines.append("    elif bound != value%d:" % i)
        lines.append("        return None")
    lines.append("    return extension")
    namespace = {}
    exec("\n".join(lines), env, namespace)  # noqa: S102 - generated from terms
    return namespace["match"]


_PLAN_CACHE = {}
_PLAN_CACHE_LIMIT = 4096


def _atom_plan(atom):
    """The (memoized) :class:`_AtomPlan` of one source atom."""
    plan = _PLAN_CACHE.get(atom)
    if plan is not None:
        return plan
    const_positions = []
    occurrences = {}
    for position, term in enumerate(atom.args):
        if isinstance(term, Const):
            const_positions.append((position, term.value))
        else:
            occurrences.setdefault(term, []).append(position)
    const_positions = tuple(const_positions)
    var_positions = tuple(
        (var, tuple(positions)) for var, positions in occurrences.items()
    )
    plan = _AtomPlan(
        const_positions,
        var_positions,
        _generate_matcher(const_positions, var_positions),
    )
    if len(_PLAN_CACHE) >= _PLAN_CACHE_LIMIT:
        _PLAN_CACHE.clear()
    _PLAN_CACHE[atom] = plan
    return plan


def _feasible_mask(plan, columns, start, column_domains, binding, domains):
    """Narrow *start* to the rows the atom can map onto.

    The mask analogue of filtering with :func:`_row_feasible`: a row
    survives iff every constant position matches, every bound variable's
    value matches at each occurrence, and every unbound variable finds a
    single in-domain value across all its occurrences.  Returns
    ``(mask, intersections performed)``.
    """
    mask = start
    intersections = 0
    for position, value in plan.const_positions:
        mask &= columns[position].get(value, 0)
        intersections += 1
        if not mask:
            return mask, intersections
    for var, positions in plan.var_positions:
        bound = binding.get(var, _UNBOUND)
        if bound is not _UNBOUND:
            for position in positions:
                mask &= columns[position].get(bound, 0)
                intersections += 1
            if not mask:
                return mask, intersections
            continue
        domain = domains[var]
        if len(positions) == 1:
            position = positions[0]
            if len(domain) == len(column_domains[position]):
                # The domain covers every value of the column: every row
                # passes, the union of the per-value masks is `start`.
                continue
            column = columns[position]
            union = 0
            for value in domain:
                entry = column.get(value)
                if entry:
                    union |= entry
            intersections += 1
            mask &= union
        else:
            # A repeated variable: a row survives when some in-domain
            # value occupies *all* of its positions.
            union = 0
            first = columns[positions[0]]
            for value in domain:
                rows_with_value = first.get(value, 0)
                if not rows_with_value:
                    continue
                for position in positions[1:]:
                    rows_with_value &= columns[position].get(value, 0)
                    intersections += 1
                union |= rows_with_value
            intersections += 1
            mask &= union
        if not mask:
            return mask, intersections
    return mask, intersections


def _ac3_masks(source_atoms, plans, keys, compiled, candidates, counts,
               domains, binding, counters):
    """Generalized arc consistency over mask candidate sets.

    The mask twin of :func:`_ac3`: identical revision order, identical
    narrowing, identical fixpoint — only the candidate representation
    differs.  Returns False on a domain wipeout.
    """
    intersections = 0
    changed = True
    while changed:
        changed = False
        for position_in_source, atom in enumerate(source_atoms):
            key = keys[position_in_source]
            columns = compiled.masks.get(key)
            if columns is None:
                kept = 0
            else:
                kept, used = _feasible_mask(
                    plans[position_in_source], columns,
                    candidates[position_in_source], compiled.domains[key],
                    binding, domains,
                )
                intersections += used
            if not kept:
                if counters is not None:
                    counters.mask_intersections += intersections
                    counters.domain_wipeouts += 1
                return False
            if kept != candidates[position_in_source]:
                candidates[position_in_source] = kept
                counts[position_in_source] = kept.bit_count()
            for var, positions in plans[position_in_source].var_positions:
                if var in binding:
                    continue
                for position in positions:
                    column = columns[position]
                    domain = domains[var]
                    narrowed = frozenset(
                        value
                        for value in domain
                        if kept & column.get(value, 0)
                    )
                    intersections += len(domain)
                    if len(narrowed) < len(domain):
                        domains[var] = narrowed
                        changed = True
                        if not narrowed:
                            if counters is not None:
                                counters.mask_intersections += intersections
                                counters.domain_wipeouts += 1
                            return False
    if counters is not None:
        counters.mask_intersections += intersections
    return True


def _forward_check_masks(extension, rest, plans, keys, compiled, candidates,
                         counts, trail):
    """Prune the mask candidate sets of *rest* atoms against *extension*.

    Pruned sets are pushed onto *trail* as ``(position, old mask, old
    count)`` for O(1) restoration on backtrack.  Returns ``(consistent,
    intersections performed)``; inconsistent means some atom lost every
    candidate row.
    """
    intersections = 0
    for position_in_source in rest:
        columns = compiled.masks.get(keys[position_in_source])
        mask = candidates[position_in_source]
        old = mask
        for var, positions in plans[position_in_source].var_positions:
            value = extension.get(var, _UNBOUND)
            if value is _UNBOUND:
                continue
            if columns is None:
                mask = 0
                break
            for position in positions:
                mask &= columns[position].get(value, 0)
                intersections += 1
            if not mask:
                break
        if mask != old:
            trail.append(
                (position_in_source, old, counts[position_in_source])
            )
            candidates[position_in_source] = mask
            counts[position_in_source] = mask.bit_count()
            if not mask:
                return False, intersections
    return True, intersections


def _solve_component_masks(order, plans, keys, compiled, candidates, counts,
                           binding, counters):
    """The bitset kernel's per-component search (forward checking).

    *candidates* and *counts* are ``{atom position: mask}`` /
    ``{atom position: cardinality}`` private to this component; the
    cached cardinalities make the most-constrained-first choice an O(1)
    dict probe per remaining atom instead of a recount.
    """

    def descend(remaining, assigned):
        if not remaining:
            yield dict(assigned)
            return
        best = min(remaining, key=lambda p: (counts[p], p))
        mask = candidates[best]
        if not mask:
            return
        rest = [p for p in remaining if p != best]
        match = plans[best].match
        rows = compiled.rows[keys[best]]
        while mask:
            low = mask & -mask
            mask ^= low
            extension = match(rows[low.bit_length() - 1], binding)
            if extension is None:
                continue
            if counters is not None:
                counters.nodes += 1
            binding.update(extension)
            assigned.update(extension)
            trail = []
            consistent = True
            if extension and rest:
                consistent, used = _forward_check_masks(
                    extension, rest, plans, keys, compiled, candidates,
                    counts, trail,
                )
                if counters is not None:
                    counters.mask_intersections += used
            if consistent:
                yield from descend(rest, assigned)
            elif counters is not None:
                counters.domain_wipeouts += 1
            for pruned_position, old_mask, old_count in trail:
                candidates[pruned_position] = old_mask
                counts[pruned_position] = old_count
            for var in extension:
                del binding[var]
                del assigned[var]
            if counters is not None:
                counters.backtracks += 1

    yield from descend(list(order), {})


def _solve_component_simple_masks(order, plans, keys, compiled, candidates,
                                  counts, binding, counters):
    """The ``"cost"`` strategy's mask solver for tiny components.

    Identical search tree shape to :func:`_solve_component_masks` (same
    most-constrained-first atom choice over the same candidate masks,
    set bits in ascending row-id order, so the two solvers enumerate
    the same solutions in the same order) but with no forward checking:
    below :data:`COST_SIMPLE_THRESHOLD` the pruning bookkeeping
    dominates the work it saves.
    """

    def descend(remaining, assigned):
        if not remaining:
            yield dict(assigned)
            return
        best = min(remaining, key=lambda p: (counts[p], p))
        mask = candidates[best]
        if not mask:
            return
        rest = [p for p in remaining if p != best]
        match = plans[best].match
        rows = compiled.rows[keys[best]]
        while mask:
            low = mask & -mask
            mask ^= low
            extension = match(rows[low.bit_length() - 1], binding)
            if extension is None:
                continue
            if counters is not None:
                counters.nodes += 1
            binding.update(extension)
            assigned.update(extension)
            yield from descend(rest, assigned)
            for var in extension:
                del binding[var]
                del assigned[var]
            if counters is not None:
                counters.backtracks += 1

    yield from descend(list(order), {})


def _initial_domains(source_atoms, keys, compiled, binding, allowed):
    """Seed per-variable domains from column values and ``allowed``."""
    domains = {}
    for atom, key in zip(source_atoms, keys):
        columns = compiled.domains.get(key)
        for position, term in enumerate(atom.args):
            if not isinstance(term, Var) or term in binding:
                continue
            values = columns[position] if columns is not None else _EMPTY
            if term in domains:
                domains[term] = domains[term] & values
            else:
                restriction = allowed.get(term)
                domains[term] = (
                    frozenset(values)
                    if restriction is None
                    else values & frozenset(restriction)
                )
    return domains


def _ac3(source_atoms, keys, compiled, candidates, domains, binding, counters):
    """Generalized arc consistency: narrow domains to supported values.

    Iterates atom-wise revisions to a fixpoint.  Returns False on a
    domain wipeout (the instance has no homomorphism); *candidates* and
    *domains* are narrowed in place.
    """
    changed = True
    while changed:
        changed = False
        for position_in_source, atom in enumerate(source_atoms):
            rows = compiled.rows.get(keys[position_in_source], ())
            kept = [
                row_id
                for row_id in candidates[position_in_source]
                if _row_feasible(atom, rows[row_id], binding, domains)
            ]
            if not kept:
                if counters is not None:
                    counters.domain_wipeouts += 1
                return False
            if len(kept) != len(candidates[position_in_source]):
                candidates[position_in_source] = kept
            for position, term in enumerate(atom.args):
                if not isinstance(term, Var) or term in binding:
                    continue
                supported = {rows[row_id][position] for row_id in kept}
                narrowed = domains[term] & supported
                if len(narrowed) < len(domains[term]):
                    domains[term] = narrowed
                    changed = True
                    if not narrowed:
                        if counters is not None:
                            counters.domain_wipeouts += 1
                        return False
    return True


def _components(source_atoms, binding):
    """Connected components of atoms linked by shared unbound variables.

    Returns a list of sorted atom-position lists; atoms with no unbound
    variables form singleton components.  Deterministic: components are
    ordered by their smallest member.
    """
    unbound_vars = []
    var_to_atoms = {}
    for position, atom in enumerate(source_atoms):
        mine = {v for v in atom.variables() if v not in binding}
        unbound_vars.append(mine)
        for var in mine:
            var_to_atoms.setdefault(var, []).append(position)
    seen = set()
    components = []
    for start in range(len(source_atoms)):
        if start in seen:
            continue
        seen.add(start)
        stack = [start]
        members = []
        while stack:
            position = stack.pop()
            members.append(position)
            for var in unbound_vars[position]:
                for neighbor in var_to_atoms[var]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
        members.sort()
        components.append(members)
    return components


def _forward_check(extension, rest, source_atoms, keys, compiled,
                   candidates, counts, trail):
    """Prune candidate lists of *rest* atoms against the new *extension*.

    Pruned lists are pushed onto *trail* as ``(position, old list, old
    count)`` for restoration on backtrack; *counts* mirrors
    ``len(candidates[p])`` so the variable-ordering heuristic never
    recounts.  Returns False on a wipeout (some atom lost every
    candidate row).
    """
    for position_in_source in rest:
        atom = source_atoms[position_in_source]
        inverted = compiled.index.get(keys[position_in_source])
        required = []
        for position, term in enumerate(atom.args):
            if isinstance(term, Var) and term in extension:
                if inverted is None:
                    return False
                required.append(
                    inverted[position].get(extension[term], _EMPTY)
                )
        if not required:
            continue
        old = candidates[position_in_source]
        narrowed = [
            row_id
            for row_id in old
            if all(row_id in rows for rows in required)
        ]
        if len(narrowed) != len(old):
            trail.append(
                (position_in_source, old, counts[position_in_source])
            )
            candidates[position_in_source] = narrowed
            counts[position_in_source] = len(narrowed)
            if not narrowed:
                return False
    return True


def _solve_component(order, source_atoms, keys, compiled, candidates, counts,
                     binding, counters):
    """Yield every assignment of one component's unbound variables.

    *candidates*, *counts*, and *binding* are private to this component
    (the caller copies them), so paused generators of sibling components
    never interfere.  *counts* caches each candidate list's length,
    maintained incrementally by :func:`_forward_check` and the trail, so
    the most-constrained-first ``min`` is a dict probe, not a recount.
    """

    def descend(remaining, assigned):
        if not remaining:
            yield dict(assigned)
            return
        best = min(remaining, key=lambda p: (counts[p], p))
        if not candidates[best]:
            return
        rest = [p for p in remaining if p != best]
        atom = source_atoms[best]
        rows = compiled.rows[keys[best]]
        for row_id in candidates[best]:
            extension = _match_row(atom, rows[row_id], binding)
            if extension is None:
                continue
            if counters is not None:
                counters.nodes += 1
            binding.update(extension)
            assigned.update(extension)
            trail = []
            consistent = True
            if extension and rest:
                consistent = _forward_check(
                    extension, rest, source_atoms, keys, compiled,
                    candidates, counts, trail,
                )
            if consistent:
                yield from descend(rest, assigned)
            elif counters is not None:
                counters.domain_wipeouts += 1
            for pruned_position, old, old_count in trail:
                candidates[pruned_position] = old
                counts[pruned_position] = old_count
            for var in extension:
                del binding[var]
                del assigned[var]
            if counters is not None:
                counters.backtracks += 1

    yield from descend(list(order), {})


class _LazySolutions:
    """A generator with positional access and caching.

    Lets the cross-product enumeration revisit a component's solutions
    without re-running its search, while still computing each solution
    only on demand.
    """

    __slots__ = ("_generator", "_items", "_exhausted")

    def __init__(self, generator):
        self._generator = generator
        self._items = []
        self._exhausted = False

    def get(self, position):
        """The solution at *position*, or None past the end."""
        while not self._exhausted and len(self._items) <= position:
            try:
                self._items.append(next(self._generator))
            except StopIteration:
                self._exhausted = True
        if position < len(self._items):
            return self._items[position]
        return None


def _cross(lazies, binding):
    """Lazily enumerate the cross product of component solutions."""

    def descend(level, accumulated):
        if level == len(lazies):
            yield dict(accumulated)
            return
        position = 0
        while True:
            solution = lazies[level].get(position)
            if solution is None:
                return
            accumulated.update(solution)
            yield from descend(level + 1, accumulated)
            for var in solution:
                del accumulated[var]
            position += 1

    yield from descend(0, dict(binding))


def propagating_search(source_atoms, compiled, binding, allowed, ac3=True,
                       cost=False, kernel=None):
    """Yield every homomorphism under the propagating strategy.

    :param source_atoms: tuple of source atoms.
    :param compiled: a :class:`CompiledTarget`.
    :param binding: the initial ``{Var: value}`` assignment (the
        caller's ``fixed``); echoed in every yielded mapping.
    :param allowed: ``{Var: allowed values}`` restrictions.
    :param ac3: run the arc-consistency preprocessing fixpoint before
        search (on by default; turn off to measure its contribution).
    :param cost: the ``ordering="cost"`` hybrid — choose a solver per
        connected component via :func:`component_strategy`: plain mask
        backtracking for components whose estimated work is below
        :data:`COST_SIMPLE_THRESHOLD`, the full bitset machinery (and
        the AC-3 pass, run only when some component needs it)
        otherwise.  Enumerates the same homomorphism set as every other
        strategy.
    :param kernel: ``"bitset"`` (the default: mask candidate sets and
        generated matchers) or ``"list"`` (the list-based machinery,
        kept as ``ordering="propagating"`` for ablation).  ``cost=True``
        always runs on masks.  Both kernels visit the identical search
        tree and enumerate the identical homomorphism sequence.
    """
    counters = _counters
    keys = tuple((atom.pred, atom.arity) for atom in source_atoms)
    domains = _initial_domains(source_atoms, keys, compiled, binding, allowed)
    if any(not domain for domain in domains.values()):
        if counters is not None:
            counters.domain_wipeouts += 1
        return
    if kernel is None:
        kernel = "bitset"
    if cost or kernel == "bitset":
        yield from _masked_search(
            source_atoms, keys, compiled, binding, domains, ac3, cost,
            counters,
        )
        return
    candidates = []
    for atom, key in zip(source_atoms, keys):
        rows = compiled.rows.get(key, ())
        feasible = [
            row_id
            for row_id, row in enumerate(rows)
            if _row_feasible(atom, row, binding, domains)
        ]
        if not feasible:
            if counters is not None:
                counters.domain_wipeouts += 1
            return
        candidates.append(feasible)
    components = _components(source_atoms, binding)
    if ac3 and not _ac3(
        source_atoms, keys, compiled, candidates, domains, binding, counters
    ):
        return
    lazies = []
    for order in components:
        if counters is not None:
            counters.components_solved += 1
        generator = _solve_component(
            order,
            source_atoms,
            keys,
            compiled,
            {position: list(candidates[position]) for position in order},
            {position: len(candidates[position]) for position in order},
            dict(binding),
            counters,
        )
        lazy = _LazySolutions(generator)
        if lazy.get(0) is None:
            return
        lazies.append(lazy)
    yield from _cross(lazies, binding)


def _masked_search(source_atoms, keys, compiled, binding, domains, ac3, cost,
                   counters):
    """The bitset kernel's pipeline behind :func:`propagating_search`.

    Same stages as the list pipeline — initial feasibility, optional
    AC-3, component decomposition, per-component lazy solve, lazy cross
    product — over mask candidate sets, with the ``cost`` hybrid
    choosing ``"simple"`` vs ``"bitset"`` per component.
    """
    plans = tuple(_atom_plan(atom) for atom in source_atoms)
    candidates = []
    counts = []
    intersections = 0
    for plan, key in zip(plans, keys):
        columns = compiled.masks.get(key)
        if columns is None:
            mask = 0
        else:
            mask, used = _feasible_mask(
                plan, columns, compiled.full_masks[key],
                compiled.domains[key], binding, domains,
            )
            intersections += used
        if not mask:
            if counters is not None:
                counters.mask_intersections += intersections
                counters.domain_wipeouts += 1
            return
        candidates.append(mask)
        counts.append(mask.bit_count())
    if counters is not None:
        counters.mask_intersections += intersections
    components = _components(source_atoms, binding)
    if cost:
        strategies = [
            component_strategy([counts[position] for position in order])
            for order in components
        ]
        run_ac3 = ac3 and any(s == "bitset" for s in strategies)
    else:
        strategies = ["bitset"] * len(components)
        run_ac3 = ac3
    if run_ac3 and not _ac3_masks(
        source_atoms, plans, keys, compiled, candidates, counts, domains,
        binding, counters,
    ):
        return
    lazies = []
    for order, strategy in zip(components, strategies):
        if counters is not None:
            counters.components_solved += 1
            if strategy == "bitset":
                counters.kernel_selected += 1
        solve = (
            _solve_component_simple_masks
            if strategy == "simple"
            else _solve_component_masks
        )
        generator = solve(
            order,
            plans,
            keys,
            compiled,
            {position: candidates[position] for position in order},
            {position: counts[position] for position in order},
            dict(binding),
            counters,
        )
        lazy = _LazySolutions(generator)
        if lazy.get(0) is None:
            return
        lazies.append(lazy)
    yield from _cross(lazies, binding)
