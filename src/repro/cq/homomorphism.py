"""Homomorphism search between sets of atoms.

The workhorse of every decision procedure in this library: find a mapping
from the variables of a set of *source* atoms to atomic values such that
every source atom's image is one of the (ground) *target* atoms.

Supports a *fixed* partial assignment (used to pin head variables in the
Chandra–Merlin test) and per-variable *allowed* value sets (used by the
simulation certificates of ``repro.grouping``, where index variables may
only map to witness-copy values).

The search is NP-complete in general (the paper leans on this for its
hardness results).  Five atom-selection strategies are available via
``ordering=``:

* ``"bitset"`` (the default) — the constraint-propagation engine of
  :mod:`repro.cq.propagation` on its bitset kernel: candidate sets are
  integer bitmasks (``&`` intersection, cached ``.bit_count()``
  cardinality), each source atom gets a generated matcher closure, and
  forward checking is mask intersection;
* ``"propagating"`` — the same search over list candidate sets and the
  frozenset inverted index (the previous default, kept as the bitset
  kernel's differential twin: identical search tree, identical
  enumeration order);
* ``"adaptive"`` — most-constrained-atom-first with per-node candidate
  rescans (ablation baseline);
* ``"static"`` — source order (ablation baseline);
* ``"cost"`` — the cost-model hybrid: per connected component, plain
  mask backtracking when the estimated work is tiny (the CSP overhead
  would dominate), the full bitset machinery otherwise — the runtime
  side of the :class:`repro.analysis.interp.CostCertificate` plan.

All strategies enumerate the same homomorphism *set*; orders may differ
between strategies but are deterministic (target rows are deduplicated
in insertion order, never hash order).  Targets may be given as atoms or
as a precompiled :class:`repro.cq.propagation.CompiledTarget`, which
callers deciding many questions against one target should build once
with :func:`compile_target` (the containment engine caches these per
simulation target).
"""

from repro.errors import ReproError
from repro.cq.terms import Var, Const
from repro.cq.propagation import (
    CompiledTarget,
    SearchCounters,
    compile_target,
    default_ordering,
    install_search_counters,
    active_counters,
    propagating_search,
    use_ordering,
    ORDERINGS,
)

__all__ = [
    "find_homomorphism",
    "find_all_homomorphisms",
    "count_homomorphisms",
    "ground_atoms_of_query",
    "SearchCounters",
    "install_search_counters",
    "CompiledTarget",
    "compile_target",
    "default_ordering",
    "use_ordering",
    "ORDERINGS",
]


def ground_atoms_of_query(query, tag=""):
    """The frozen body atoms of *query* as ground atoms.

    Variables are replaced by their frozen constants (see
    :func:`repro.cq.query.frozen_constant`).
    """
    from repro.cq.query import frozen_constant

    mapping = {v: Const(frozen_constant(v, tag)) for v in query.variables()}
    return tuple(atom.substitute(mapping) for atom in query.body)


def find_homomorphism(
    source_atoms, target_atoms, fixed=None, allowed=None, ordering=None
):
    """Find one homomorphism, or None.

    :param source_atoms: atoms whose variables are to be mapped.
    :param target_atoms: ground atoms to map into, or a precompiled
        :class:`CompiledTarget`.
    :param fixed: optional ``{Var: value}`` pinning some variables.
    :param allowed: optional ``{Var: set-of-values}`` restricting some
        variables' images (variables not listed are unrestricted).
    :param ordering: one of :data:`ORDERINGS` — ``"bitset"``,
        ``"propagating"``, ``"adaptive"``, ``"static"``, or ``"cost"``
        (None = the process default, normally ``"bitset"``).
    :returns: a complete ``{Var: value}`` mapping or ``None``.
    """
    for mapping in find_all_homomorphisms(
        source_atoms, target_atoms, fixed=fixed, allowed=allowed,
        ordering=ordering,
    ):
        return mapping
    return None


def count_homomorphisms(
    source_atoms, target_atoms, fixed=None, allowed=None, ordering=None
):
    """The number of distinct homomorphisms.

    *ordering* selects the search strategy exactly as in
    :func:`find_homomorphism`; every strategy counts the same set.
    """
    return sum(
        1
        for __ in find_all_homomorphisms(
            source_atoms, target_atoms, fixed=fixed, allowed=allowed,
            ordering=ordering,
        )
    )


def find_all_homomorphisms(
    source_atoms, target_atoms, fixed=None, allowed=None, ordering=None
):
    """Yield every homomorphism (as ``{Var: value}`` dicts).

    Variables that occur in no source atom are not assigned; callers that
    pin such variables should include them in *fixed* (they are then
    echoed in the result).

    *ordering* selects the atom-selection strategy: ``"bitset"`` (the
    constraint-propagating search on mask candidate sets, the default),
    ``"propagating"`` (the same search on lists), ``"cost"`` (the
    per-component hybrid), ``"adaptive"`` (most-constrained-first), or
    ``"static"`` (source order) — the legacy strategies are kept for
    the ablation benchmarks.  Enumeration order is deterministic for
    each strategy (and identical between ``"bitset"`` and
    ``"propagating"``): target rows are deduplicated in insertion
    order, never hash order, and the bitset kernel walks set bits in
    ascending row-id order.
    """
    source_atoms = tuple(source_atoms)
    compiled = compile_target(target_atoms)
    if ordering is None:
        ordering = default_ordering()
    binding = dict(fixed or {})
    if allowed:
        for var, values in allowed.items():
            if var in binding and binding[var] not in values:
                return
    if ordering == "bitset":
        yield from propagating_search(
            source_atoms, compiled, binding, allowed or {}, kernel="bitset"
        )
    elif ordering == "propagating":
        yield from propagating_search(
            source_atoms, compiled, binding, allowed or {}, kernel="list"
        )
    elif ordering == "cost":
        yield from propagating_search(
            source_atoms, compiled, binding, allowed or {}, cost=True
        )
    elif ordering == "adaptive":
        yield from _search(list(source_atoms), compiled.rows, binding,
                           allowed or {})
    elif ordering == "static":
        yield from _search_static(list(source_atoms), compiled.rows, binding,
                                  allowed or {})
    else:
        raise ReproError("unknown ordering %r" % (ordering,))


# -- legacy strategies (ablation baselines) ---------------------------------


def _candidate_rows(atom, rows, binding, allowed):
    out = []
    for row in rows:
        extension = _match(atom, row, binding, allowed)
        if extension is not None:
            out.append(extension)
    return out


def _match(atom, row, binding, allowed):
    extension = {}
    for term, value in zip(atom.args, row):
        if isinstance(term, Const):
            if term.value != value:
                return None
            continue
        bound = binding.get(term, extension.get(term, _UNBOUND))
        if bound is _UNBOUND:
            restriction = allowed.get(term)
            if restriction is not None and value not in restriction:
                return None
            extension[term] = value
        elif bound != value:
            return None
    return extension


class _Unbound:
    pass


_UNBOUND = _Unbound()


def _search_static(remaining, rows_by_key, binding, allowed):
    counters = active_counters()
    if not remaining:
        yield dict(binding)
        return
    atom = remaining[0]
    rows = _candidate_rows(
        atom, rows_by_key.get((atom.pred, atom.arity), ()), binding, allowed
    )
    for extension in rows:
        if counters is not None:
            counters.nodes += 1
        binding.update(extension)
        yield from _search_static(remaining[1:], rows_by_key, binding, allowed)
        for var in extension:
            del binding[var]
        if counters is not None:
            counters.backtracks += 1


def _search(remaining, rows_by_key, binding, allowed):
    counters = active_counters()
    if not remaining:
        yield dict(binding)
        return
    best_index = None
    best_rows = None
    for position, atom in enumerate(remaining):
        rows = _candidate_rows(
            atom, rows_by_key.get((atom.pred, atom.arity), ()), binding, allowed
        )
        if best_rows is None or len(rows) < len(best_rows):
            best_index, best_rows = position, rows
            if not rows:
                return
    atom = remaining[best_index]
    rest = remaining[:best_index] + remaining[best_index + 1:]
    for extension in best_rows:
        if counters is not None:
            counters.nodes += 1
        binding.update(extension)
        yield from _search(rest, rows_by_key, binding, allowed)
        for var in extension:
            del binding[var]
        if counters is not None:
            counters.backtracks += 1
