"""Homomorphism search between sets of atoms.

The workhorse of every decision procedure in this library: find a mapping
from the variables of a set of *source* atoms to atomic values such that
every source atom's image is one of the (ground) *target* atoms.

Supports a *fixed* partial assignment (used to pin head variables in the
Chandra–Merlin test) and per-variable *allowed* value sets (used by the
simulation certificates of ``repro.grouping``, where index variables may
only map to witness-copy values).

The search is NP-complete in general (the paper leans on this for its
hardness results); the implementation uses most-constrained-atom-first
ordering and per-predicate indexing, which keeps typical instances fast.
"""

from repro.errors import ReproError
from repro.cq.terms import Var, Const

__all__ = [
    "find_homomorphism",
    "find_all_homomorphisms",
    "count_homomorphisms",
    "ground_atoms_of_query",
    "SearchCounters",
    "install_search_counters",
]


class SearchCounters:
    """Tallies of backtracking-search effort.

    ``nodes`` counts candidate-row extensions applied (search-tree nodes
    visited); ``backtracks`` counts extensions undone.  Install an
    instance with :func:`install_search_counters` to have every search
    in the process report into it; the :class:`repro.engine.core.\
ContainmentEngine` does this around each decision.
    """

    __slots__ = ("nodes", "backtracks")

    def __init__(self):
        self.nodes = 0
        self.backtracks = 0

    def reset(self):
        self.nodes = 0
        self.backtracks = 0

    def __repr__(self):
        return "SearchCounters(nodes=%d, backtracks=%d)" % (
            self.nodes,
            self.backtracks,
        )


_counters = None


def install_search_counters(counters):
    """Set the active :class:`SearchCounters` sink (or None to disable).

    Returns the previously installed sink so callers can restore it.
    """
    global _counters
    previous = _counters
    _counters = counters
    return previous


def ground_atoms_of_query(query, tag=""):
    """The frozen body atoms of *query* as ground atoms.

    Variables are replaced by their frozen constants (see
    :func:`repro.cq.query.frozen_constant`).
    """
    from repro.cq.query import frozen_constant

    mapping = {v: Const(frozen_constant(v, tag)) for v in query.variables()}
    return tuple(atom.substitute(mapping) for atom in query.body)


def _check_ground(atoms):
    for atom in atoms:
        for term in atom.args:
            if isinstance(term, Var):
                raise ReproError(
                    "target atoms must be ground; %r is not" % (atom,)
                )


def _target_index(target_atoms):
    index = {}
    for atom in target_atoms:
        index.setdefault((atom.pred, atom.arity), set()).add(
            tuple(t.value for t in atom.args)
        )
    return index


def find_homomorphism(
    source_atoms, target_atoms, fixed=None, allowed=None, ordering="adaptive"
):
    """Find one homomorphism, or None.

    :param source_atoms: atoms whose variables are to be mapped.
    :param target_atoms: ground atoms to map into.
    :param fixed: optional ``{Var: value}`` pinning some variables.
    :param allowed: optional ``{Var: set-of-values}`` restricting some
        variables' images (variables not listed are unrestricted).
    :param ordering: ``"adaptive"`` (default) or ``"static"`` atom order.
    :returns: a complete ``{Var: value}`` mapping or ``None``.
    """
    for mapping in find_all_homomorphisms(
        source_atoms, target_atoms, fixed=fixed, allowed=allowed, ordering=ordering
    ):
        return mapping
    return None


def count_homomorphisms(source_atoms, target_atoms, fixed=None, allowed=None):
    """The number of distinct homomorphisms."""
    return sum(
        1
        for __ in find_all_homomorphisms(
            source_atoms, target_atoms, fixed=fixed, allowed=allowed
        )
    )


def find_all_homomorphisms(
    source_atoms, target_atoms, fixed=None, allowed=None, ordering="adaptive"
):
    """Yield every homomorphism (as ``{Var: value}`` dicts).

    Variables that occur in no source atom are not assigned; callers that
    pin such variables should include them in *fixed* (they are then
    echoed in the result).

    *ordering* selects the atom-selection strategy: ``"adaptive"``
    (most-constrained-first, the default) or ``"static"`` (source order —
    kept for the ablation benchmarks).
    """
    source_atoms = tuple(source_atoms)
    target_atoms = tuple(target_atoms)
    _check_ground(target_atoms)
    index = _target_index(target_atoms)
    binding = dict(fixed or {})
    if allowed:
        for var, values in allowed.items():
            if var in binding and binding[var] not in values:
                return
    if ordering == "adaptive":
        yield from _search(list(source_atoms), index, binding, allowed or {})
    elif ordering == "static":
        yield from _search_static(list(source_atoms), index, binding, allowed or {})
    else:
        raise ReproError("unknown ordering %r" % (ordering,))


def _candidate_rows(atom, rows, binding, allowed):
    out = []
    for row in rows:
        extension = _match(atom, row, binding, allowed)
        if extension is not None:
            out.append(extension)
    return out


def _match(atom, row, binding, allowed):
    extension = {}
    for term, value in zip(atom.args, row):
        if isinstance(term, Const):
            if term.value != value:
                return None
            continue
        bound = binding.get(term, extension.get(term, _UNBOUND))
        if bound is _UNBOUND:
            restriction = allowed.get(term)
            if restriction is not None and value not in restriction:
                return None
            extension[term] = value
        elif bound != value:
            return None
    return extension


class _Unbound:
    pass


_UNBOUND = _Unbound()


def _search_static(remaining, index, binding, allowed):
    if not remaining:
        yield dict(binding)
        return
    atom = remaining[0]
    rows = _candidate_rows(
        atom, index.get((atom.pred, atom.arity), ()), binding, allowed
    )
    for extension in rows:
        if _counters is not None:
            _counters.nodes += 1
        binding.update(extension)
        yield from _search_static(remaining[1:], index, binding, allowed)
        for var in extension:
            del binding[var]
        if _counters is not None:
            _counters.backtracks += 1


def _search(remaining, index, binding, allowed):
    if not remaining:
        yield dict(binding)
        return
    best_index = None
    best_rows = None
    for position, atom in enumerate(remaining):
        rows = _candidate_rows(
            atom, index.get((atom.pred, atom.arity), ()), binding, allowed
        )
        if best_rows is None or len(rows) < len(best_rows):
            best_index, best_rows = position, rows
            if not rows:
                return
    atom = remaining[best_index]
    rest = remaining[:best_index] + remaining[best_index + 1:]
    for extension in best_rows:
        if _counters is not None:
            _counters.nodes += 1
        binding.update(extension)
        yield from _search(rest, index, binding, allowed)
        for var in extension:
            del binding[var]
        if _counters is not None:
            _counters.backtracks += 1
