"""Unions of conjunctive queries (the Sagiv–Yannakakis baseline [36]).

The paper's related-work baseline for flat relational expressions with
union: ``⋃ᵢ Qᵢ ⊑ ⋃ⱼ Q'ⱼ`` iff every disjunct ``Qᵢ`` is contained in
*some* disjunct ``Q'ⱼ`` — so containment and equivalence of unions of
conjunctive queries reduce to quadratically many classical tests.

COQL deliberately drops union (else set difference becomes expressible
[7]); this module exists as the flat-world reference point the paper
positions itself against.
"""

from repro.errors import ReproError, IncomparableQueriesError
from repro.cq.query import ConjunctiveQuery
from repro.cq.containment import contains as cq_contains
from repro.cq.evaluate import evaluate

__all__ = ["UnionQuery", "union_contains", "union_equivalent"]


class UnionQuery:
    """A finite union of conjunctive queries with equal head arity."""

    __slots__ = ("disjuncts", "name")

    def __init__(self, disjuncts, name="u"):
        disjuncts = tuple(disjuncts)
        if not disjuncts:
            raise ReproError("a union query needs at least one disjunct")
        arities = {len(q.head) for q in disjuncts}
        if len(arities) != 1:
            raise IncomparableQueriesError(
                "disjuncts have different head arities: %r" % sorted(arities)
            )
        for q in disjuncts:
            if not isinstance(q, ConjunctiveQuery):
                raise ReproError("disjuncts must be conjunctive queries")
        object.__setattr__(self, "disjuncts", disjuncts)
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, value):
        raise AttributeError("UnionQuery is immutable")

    @property
    def arity(self):
        return len(self.disjuncts[0].head)

    def evaluate(self, database):
        """The union of the disjuncts' answers."""
        answer = frozenset()
        for disjunct in self.disjuncts:
            answer |= evaluate(disjunct, database)
        return answer

    def minimize(self):
        """Drop disjuncts contained in other disjuncts."""
        kept = list(self.disjuncts)
        changed = True
        while changed:
            changed = False
            for i, candidate in enumerate(kept):
                rest = kept[:i] + kept[i + 1:]
                if rest and any(cq_contains(other, candidate) for other in rest):
                    kept = rest
                    changed = True
                    break
        return UnionQuery(kept, self.name)

    def __repr__(self):
        return "UnionQuery(%s; %d disjuncts)" % (self.name, len(self.disjuncts))


def union_contains(sup, sub):
    """``sub ⊑ sup`` for union queries (Sagiv–Yannakakis).

    Each disjunct of *sub* must be contained in some disjunct of *sup*.
    """
    sub = _as_union(sub)
    sup = _as_union(sup)
    if sub.arity != sup.arity:
        raise IncomparableQueriesError(
            "unions have different head arities: %d vs %d"
            % (sub.arity, sup.arity)
        )
    return all(
        any(cq_contains(candidate, disjunct) for candidate in sup.disjuncts)
        for disjunct in sub.disjuncts
    )


def union_equivalent(first, second):
    """Equivalence of union queries (containment both ways)."""
    return union_contains(first, second) and union_contains(second, first)


def _as_union(query):
    if isinstance(query, UnionQuery):
        return query
    if isinstance(query, ConjunctiveQuery):
        return UnionQuery((query,))
    raise ReproError("not a (union of) conjunctive queries: %r" % (query,))
